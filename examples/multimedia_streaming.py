#!/usr/bin/env python3
"""Multimedia streaming: quota allocation for mixed voice/video/data.

The paper's target workload — "applications with QoS requirements" — mapped
concretely: three attendees stream video, three run voice calls, everyone
browses.  We use the bandwidth-allocation extension (footnote 1: "apply to
WRT-Ring the algorithms developed for FDDI") to size each station's
guaranteed quota ``l_i`` from its rate and deadline, then verify in
simulation that the worst observed access delay stays below each station's
Theorem-3 bound and no real-time packet misses its deadline.

Run:  python examples/multimedia_streaming.py
"""

from repro.analysis import access_delay_bound
from repro.bandwidth import AllocationProblem, StationDemand, allocate
from repro.core import (QuotaConfig, ServiceClass, WRTRingConfig,
                        WRTRingNetwork)
from repro.sim import Engine, RandomStreams
from repro.traffic import FlowSpec, Workload


def main() -> None:
    N = 6
    horizon = 30_000
    K_PER_STATION = 2

    # station roles: 0-2 video senders, 3-5 voice senders; all browse.
    video_rate = 20 / (9 * 25.0)        # GoP of 9 frames / 25-slot interval
    voice_rate = 1 / 40.0
    demands = []
    for sid in range(N):
        rate = video_rate if sid < 3 else voice_rate
        # video tolerates a burst backlog (a whole I frame), voice does not
        backlog = 6 if sid < 3 else 1
        deadline = 500.0 if sid < 3 else 700.0
        demands.append(StationDemand(sid=sid, rt_rate=rate, deadline=deadline,
                                     max_backlog=backlog, k=K_PER_STATION))

    problem = AllocationProblem(demands=demands)
    allocation = allocate(problem, scheme="local")
    assert allocation.feasible, allocation.violations
    print("deadline-driven quota allocation (local scheme):")
    for d in demands:
        role = "video" if d.sid < 3 else "voice"
        print(f"  station {d.sid} ({role}): rate={d.rt_rate:.4f} pkt/slot, "
              f"deadline={d.deadline:.0f} -> l={allocation.l[d.sid]}")

    engine = Engine()
    quotas = {d.sid: QuotaConfig.two_class(allocation.l[d.sid], d.k)
              for d in demands}
    config = WRTRingConfig(quotas=quotas, rap_enabled=False)
    net = WRTRingNetwork(engine, list(range(N)), config)

    workload = Workload(net, RandomStreams(11))
    quota_pairs = [(allocation.l[d.sid], d.k) for d in demands]
    for d in demands:
        dst = (d.sid + 3) % N
        bound = access_delay_bound(d.max_backlog, allocation.l[d.sid],
                                   N, 0, quota_pairs)
        deadline = bound + N  # queueing bound + worst-case path
        if d.sid < 3:
            workload.add_video(
                FlowSpec(src=d.sid, dst=dst, service=ServiceClass.PREMIUM,
                         deadline=deadline),
                frame_interval=25.0,
                packets_per_frame={"I": 6, "P": 4, "B": 2})
        else:
            workload.add_cbr(
                FlowSpec(src=d.sid, dst=dst, service=ServiceClass.PREMIUM,
                         deadline=deadline),
                period=40.0)
        workload.add_poisson(
            FlowSpec(src=d.sid, dst=(d.sid + 1) % N,
                     service=ServiceClass.BEST_EFFORT), rate=0.10)

    net.start()
    engine.run(until=horizon)

    print(f"\noffered load {workload.offered_load():.2f} pkt/slot "
          f"over {horizon} slots")
    print(f"{'class':8s} {'delivered':>9s} {'mean':>7s} {'p99':>7s} {'max':>6s}")
    for cls in (ServiceClass.PREMIUM, ServiceClass.BEST_EFFORT):
        series = net.metrics.e2e_delay[cls]
        print(f"{cls.short:8s} {series.count:9d} {series.mean:7.1f} "
              f"{series.percentile(99):7.1f} {series.max:6.0f}")

    d = net.metrics.deadlines
    print(f"\nreal-time deadlines: {d.met} met, {d.missed} missed")
    assert d.missed == 0, "an allocated RT stream missed a deadline!"

    # per-station check: worst access delay below the Theorem-3 bound
    print("\nper-station worst access delay vs Theorem-3 bound:")
    for dem in demands:
        bound = access_delay_bound(dem.max_backlog, allocation.l[dem.sid],
                                   N, 0, quota_pairs)
        sent = [p for src in workload.sources for p in getattr(src, "packets", [])
                if p.src == dem.sid and p.service is ServiceClass.PREMIUM
                and p.access_delay is not None]
        worst = max(p.access_delay for p in sent)
        flag = "OK " if worst <= bound else "VIOLATED"
        print(f"  [{flag}] station {dem.sid}: worst={worst:5.0f} "
              f"<= bound={bound:.0f}")
        assert worst <= bound
    print("\nOK: every stream held its Theorem-3 guarantee.")


if __name__ == "__main__":
    main()
