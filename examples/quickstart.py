#!/usr/bin/env python3
"""Quickstart: a WRT-Ring carrying QoS traffic, validated against Theorem 1.

Builds an 8-station virtual ring, loads it with real-time (Premium) CBR
voice-like flows plus best-effort background, runs 20k slots and checks the
paper's central claim: every measured SAT rotation stays strictly below the
Theorem-1 bound, and every admitted real-time packet meets its deadline.

Run:  python examples/quickstart.py
"""

from repro.analysis import (access_delay_bound, check_rotation_samples,
                            sat_rotation_bound_homogeneous)
from repro.core import ServiceClass, WRTRingConfig, WRTRingNetwork
from repro.sim import Engine, RandomStreams
from repro.traffic import FlowSpec, Workload


def main() -> None:
    N, l, k = 8, 2, 2
    horizon = 20_000

    engine = Engine()
    config = WRTRingConfig.homogeneous(range(N), l=l, k=k, rap_enabled=False)
    net = WRTRingNetwork(engine, list(range(N)), config)

    # Theorem 3 tells us what deadline the protocol can honour for a voice
    # packet that finds at most 2 queued packets ahead of it:
    deadline = access_delay_bound(2, l, N, 0, [(l, k)] * N) + N  # + worst path
    print(f"ring: N={N}, l={l}, k={k}")
    print(f"Theorem-3 delivery budget used as deadline: {deadline:.0f} slots")

    workload = Workload(net, RandomStreams(42))
    for sid in range(N):
        # a 'voice call' to the station across the ring
        workload.add_cbr(
            FlowSpec(src=sid, dst=(sid + N // 2) % N,
                     service=ServiceClass.PREMIUM, deadline=deadline),
            period=25.0)
        # plus elastic background traffic
        workload.add_poisson(
            FlowSpec(src=sid, dst=(sid + 1) % N,
                     service=ServiceClass.BEST_EFFORT),
            rate=0.08)

    net.start()
    engine.run(until=horizon)

    bound = sat_rotation_bound_homogeneous(N, l, k)
    check = check_rotation_samples(net.rotation_log.all_samples(), bound)
    print()
    print(check)
    print(f"offered load: {workload.offered_load():.2f} pkt/slot, "
          f"delivered: {net.metrics.total_delivered} "
          f"({net.metrics.total_delivered / horizon:.2f} pkt/slot)")
    premium = net.metrics.e2e_delay[ServiceClass.PREMIUM]
    print(f"premium end-to-end delay: mean {premium.mean:.1f}, "
          f"p99 {premium.percentile(99):.1f}, max {premium.max:.0f} slots")
    d = net.metrics.deadlines
    print(f"deadlines: {d.met} met, {d.missed} missed")

    assert check.holds, "Theorem 1 violated!"
    assert d.missed == 0, "an admitted RT packet missed its deadline!"
    print("\nOK: delay-bounded service delivered as the paper promises.")


if __name__ == "__main__":
    main()
