#!/usr/bin/env python3
"""Conference room: the paper's motivating dynamic scenario (Sec. 2.4).

Attendees sit around a meeting room running a WRT-Ring over CDMA.  During
the session:

* a late attendant walks in and joins through the Random Access Period
  (Sec. 2.4.1 / Fig. 3) — without disturbing anyone's guarantees;
* one attendant announces departure (graceful leave, Sec. 2.4.2);
* another's battery dies mid-session (silent failure -> SAT_TIMER detection
  and SAT_REC cut-out, Sec. 2.5).

The script prints a timeline of the events the protocol handles, and checks
that the real-time service of the surviving stations never misses a beat.

Run:  python examples/conference_room.py
"""

import random

import numpy as np

from repro.core import (QuotaConfig, ServiceClass, WRTRingConfig,
                        WRTRingNetwork)
from repro.core.join import JoinOutcome, JoinRequester
from repro.phy import ConnectivityGraph, SlottedChannel, ring_placement
from repro.sim import Engine, RandomStreams, TraceRecorder
from repro.traffic import FlowSpec, Workload


def main() -> None:
    N = 8                      # attendees seated around the table
    radius = 5.0               # metres
    radio_range = 2 * radius * np.sin(np.pi / N) * 2.2

    # the latecomer (id 99) waits near seats 2 and 3
    seats = ring_placement(N, radius=radius)
    latecomer_spot = (seats[2] + seats[3]) / 2 * 1.05
    positions = np.vstack([seats, latecomer_spot])
    graph = ConnectivityGraph(positions, radio_range,
                              node_ids=list(range(N)) + [99])

    engine = Engine()
    trace = TraceRecorder()
    trace.enable_only(["ring.insert", "ring.remove",
                       "ring.leave_announced", "ring.kill", "sat.timeout",
                       "sat.recovered", "sat.graceful_cutout"])
    config = WRTRingConfig.homogeneous(range(N), l=2, k=1, rap_enabled=True,
                                       t_ear=8, t_update=4)
    channel = SlottedChannel(graph)
    net = WRTRingNetwork(engine, list(range(N)), config, graph=graph,
                         channel=channel, trace=trace)

    # everyone shares a whiteboard stream with a neighbour (Premium)
    workload = Workload(net, RandomStreams(7))
    deadline = net.sat_time_bound() * 3
    for sid in range(N):
        workload.add_cbr(FlowSpec(src=sid, dst=(sid + 1) % N,
                                  service=ServiceClass.PREMIUM,
                                  deadline=deadline), period=40.0)

    latecomer = JoinRequester(net, 99, QuotaConfig.two_class(2, 1),
                              rng=random.Random(3))
    net.start()

    # timeline of room events
    engine.run(until=2_000)         # latecomer joins somewhere in here
    assert latecomer.state is JoinOutcome.JOINED, "latecomer failed to join"
    print(f"[t={latecomer.t_joined:6.0f}] attendant 99 joined "
          f"(latency {latecomer.join_latency:.0f} slots, "
          f"{latecomer.attempts} attempt(s))")

    engine.run(until=4_000)
    net.leave_gracefully(5)
    print(f"[t={engine.now:6.0f}] attendant 5 announces departure")
    engine.run(until=6_000)

    net.kill_station(1)
    print(f"[t={engine.now:6.0f}] attendant 1's battery dies (silent)")
    engine.run(until=10_000)

    print()
    print("protocol event log:")
    for ev in trace:
        detail = ", ".join(f"{k}={v}" for k, v in ev.fields.items())
        print(f"  [t={ev.time:6.0f}] {ev.category:22s} {detail}")

    print()
    print(f"final ring: {net.members}")
    for rec in net.recovery.records:
        print(f"  recovery: {rec.kind:9s} station={rec.failed_station} "
              f"detected(+{rec.detection_delay or 0:.0f}) "
              f"repaired in {rec.total_delay:.0f} slots -> {rec.outcome}")

    d = net.metrics.deadlines
    undeliverable = net.metrics.orphaned + net.metrics.lost
    print(f"deadlines met/missed: {d.met}/{d.missed} "
          f"({undeliverable} packets were addressed to departed attendants "
          f"and could never be delivered)")
    assert 99 in net.members and 5 not in net.members and 1 not in net.members
    assert not net.network_down
    # every miss is a packet to/through a departed station, not a QoS breach
    assert d.missed <= undeliverable
    print("\nOK: the ring survived a join, a leave and a failure.")


if __name__ == "__main__":
    main()
