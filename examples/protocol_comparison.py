#!/usr/bin/env python3
"""WRT-Ring vs TPT head-to-head (the Sec. 3 comparison, live).

Same scenario on both protocols — N stations, identical reserved real-time
bandwidth (Σ(l+k) = Σ H_e), same T_rap — then three measurements:

1. control-signal round trip (token needs 2(N-1) hops, SAT needs N);
2. aggregate capacity under saturation (concurrent CDMA transmissions vs
   one-token-holder-at-a-time);
3. reaction to a silent station failure (SAT_TIME watchdog + cut-out vs
   2·TTRT watchdog + probe + full tree rebuild).

Run:  python examples/protocol_comparison.py
"""

import random

from repro.baselines import TPTConfig, TPTNetwork, choose_ttrt
from repro.core import Packet, ServiceClass, WRTRingConfig, WRTRingNetwork
from repro.phy import ConnectivityGraph, build_bfs_tree, construct_ring, ring_placement
from repro.sim import Engine

N, L, K = 8, 2, 1
H = L + K  # same reserved bandwidth per station on both protocols


def make_wrt():
    engine = Engine()
    cfg = WRTRingConfig.homogeneous(range(N), l=L, k=K, rap_enabled=False)
    net = WRTRingNetwork(engine, list(range(N)), cfg)
    return engine, net


def make_tpt():
    engine = Engine()
    pos = ring_placement(N, radius=30.0)
    graph = ConnectivityGraph(pos, 60.0)
    children = build_bfs_tree(graph, root=0)
    ttrt = choose_ttrt([H] * N, 2 * (N - 1), margin=1.5)
    cfg = TPTConfig(H={i: H for i in range(N)}, ttrt=ttrt)
    net = TPTNetwork(engine, children, root=0, config=cfg, graph=graph)
    return engine, net


def saturate(net, seed=0):
    rng = random.Random(seed)

    def top(t):
        for sid, st in list(net.stations.items()):
            if not getattr(st, "alive", True) or sid not in net.members:
                continue
            while len(st.rt_queue) < 10:
                dst = rng.choice([d for d in net.members if d != sid])
                st.enqueue(Packet(src=sid, dst=dst,
                                  service=ServiceClass.PREMIUM, created=t), t)
            while len(st.be_queue) < 10:
                dst = rng.choice([d for d in net.members if d != sid])
                st.enqueue(Packet(src=sid, dst=dst,
                                  service=ServiceClass.BEST_EFFORT,
                                  created=t), t)
    net.add_tick_hook(top)


def main() -> None:
    print(f"scenario: N={N}, per-station reserved bandwidth "
          f"{H} packets/round on both protocols\n")

    # 1. idle control-signal round trip -------------------------------
    e1, wrt = make_wrt()
    wrt.start()
    e1.run(until=500)
    wrt_rt = wrt.rotation_log.all_samples()[-1]
    e2, tpt = make_tpt()
    tpt.start()
    e2.run(until=500)
    tpt_rt = tpt.rotation_log.all_samples()[-1]
    print(f"1. idle round trip:  SAT {wrt_rt:.0f} slots "
          f"(N hops) vs token {tpt_rt:.0f} slots (2(N-1) hops)")
    assert wrt_rt < tpt_rt

    # 2. saturation capacity -------------------------------------------
    horizon = 10_000
    e1, wrt = make_wrt()
    saturate(wrt)
    wrt.start()
    e1.run(until=horizon)
    wrt_thr = wrt.metrics.total_delivered / horizon
    e2, tpt = make_tpt()
    saturate(tpt)
    tpt.start()
    e2.run(until=horizon)
    tpt_thr = tpt.metrics.total_delivered / horizon
    print(f"2. saturation capacity:  WRT-Ring {wrt_thr:.2f} pkt/slot vs "
          f"TPT {tpt_thr:.2f} pkt/slot  ({wrt_thr / tpt_thr:.1f}x)")
    assert wrt_thr > tpt_thr

    # 3. failure reaction -----------------------------------------------
    e1, wrt = make_wrt()
    wrt.start()
    e1.run(until=100)
    wrt.kill_station(3)
    e1.run(until=10_000)
    [wrec] = wrt.recovery.records
    e2, tpt = make_tpt()
    tpt.start()
    e2.run(until=100)
    tpt.kill_station(3)
    e2.run(until=10_000)
    [trec] = tpt.records
    print(f"3. silent failure at t=100:")
    print(f"     WRT-Ring: detected +{wrec.detection_delay:.0f}, repaired "
          f"+{wrec.total_delay:.0f} slots ({wrec.outcome}; watchdog = "
          f"SAT_TIME = {wrt.sat_time_bound():.0f})")
    print(f"     TPT:      detected +{trec.detection_delay:.0f}, repaired "
          f"+{trec.total_delay:.0f} slots ({trec.outcome}; watchdog = "
          f"2*TTRT = {2 * tpt.config.ttrt:.0f})")
    assert wrec.total_delay < trec.total_delay

    print("\nOK: WRT-Ring wins all three comparisons, as Sec. 3 argues.")


if __name__ == "__main__":
    main()
