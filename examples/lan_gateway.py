#!/usr/bin/env python3
"""Fig. 2 scenario: an ad hoc WRT-Ring interconnected with a Diffserv LAN.

Station G1 (ring station 0) bridges the two networks.  The script runs both
admission handshakes the paper describes:

* a LAN video server asks G1 for bandwidth toward a ring station — admitted
  only if the stream fits in G1's free guaranteed quota;
* a ring station asks to stream toward a LAN host — admitted only if the
  Diffserv architecture can reserve the Premium bandwidth on the LAN.

Over-demand is *rejected at admission*, never absorbed as degraded service:
the admitted premium streams run end-to-end across both networks with zero
deadline misses while best-effort cross traffic fills the remaining capacity.

Run:  python examples/lan_gateway.py
"""

from repro.core import ServiceClass, WRTRingConfig, WRTRingNetwork
from repro.gateway import (DiffservLAN, Gateway, LanHost, LanPacket,
                           StreamRequest)
from repro.sim import Engine, RandomStreams
from repro.traffic import FlowSpec, Workload


def main() -> None:
    N = 6
    engine = Engine()
    config = WRTRingConfig.homogeneous(range(N), l=2, k=2, rap_enabled=False)
    net = WRTRingNetwork(engine, list(range(N)), config)

    lan = DiffservLAN(engine, capacity=4, premium_share=0.5)
    video_server, file_server = LanHost(50), LanHost(51)
    lan.attach_host(video_server)
    lan.attach_host(file_server)
    gw = Gateway(net, sid=0, lan=lan)

    print(f"G1 guaranteed capacity toward the ring: "
          f"{gw._premium_capacity():.4f} pkt/slot "
          f"(l={net.stations[0].quota.l} per worst-case SAT round)")
    print(f"LAN premium budget: {lan.premium_budget:.1f} pkt/slot")

    # --- admission handshakes -------------------------------------------
    inbound = gw.request_stream(StreamRequest(
        rate=gw._premium_capacity() * 0.6, service=ServiceClass.PREMIUM,
        direction="lan_to_ring", ring_endpoint=3, lan_endpoint=50))
    print(f"\nLAN->ring video stream: "
          f"{'ADMITTED' if inbound.accepted else 'REJECTED'} ({inbound.reason})")
    assert inbound.accepted

    greedy = gw.request_stream(StreamRequest(
        rate=gw._premium_capacity(), service=ServiceClass.PREMIUM,
        direction="lan_to_ring", ring_endpoint=4, lan_endpoint=50))
    print(f"second (over-demand) LAN->ring stream: "
          f"{'ADMITTED' if greedy.accepted else 'REJECTED'} ({greedy.reason})")
    assert not greedy.accepted

    outbound = gw.request_stream(StreamRequest(
        rate=1.0, service=ServiceClass.PREMIUM,
        direction="ring_to_lan", ring_endpoint=2, lan_endpoint=51))
    print(f"ring->LAN stream: "
          f"{'ADMITTED' if outbound.accepted else 'REJECTED'} ({outbound.reason})")
    assert outbound.accepted

    # --- dataplane -------------------------------------------------------
    net.start()
    lan.start()

    horizon = 20_000
    in_rate = gw._premium_capacity() * 0.6
    in_period = 1.0 / in_rate
    deadline_budget = 3 * net.sat_time_bound()

    def feed_inbound(t, state={"next": 10.0}):
        while t >= state["next"]:
            pkt = LanPacket(src=50, dst=0, service=ServiceClass.PREMIUM,
                            created=state["next"])
            gw.lan_ingress(pkt, ring_dst=3,
                           deadline=state["next"] + deadline_budget)
            state["next"] += in_period
    net.add_tick_hook(feed_inbound)

    def feed_outbound(t, state={"next": 10.0}):
        while t >= state["next"]:
            gw.send_to_lan(src_station=2, lan_dst=51,
                           service=ServiceClass.PREMIUM,
                           deadline=deadline_budget)
            state["next"] += 20.0
    net.add_tick_hook(feed_outbound)

    # best-effort cross traffic inside the ring
    workload = Workload(net, RandomStreams(5))
    workload.uniform_poisson(0.10, service=ServiceClass.BEST_EFFORT)

    engine.run(until=horizon)

    d = net.metrics.deadlines
    print(f"\nafter {horizon} slots:")
    print(f"  LAN->ring forwarded: {gw.forwarded_to_ring}, "
          f"ring->LAN forwarded: {gw.forwarded_to_lan}")
    print(f"  premium deadlines: {d.met} met, {d.missed} missed")
    print(f"  LAN premium delivered: {lan.delivered[ServiceClass.PREMIUM]}, "
          f"mean LAN delay {lan.delay[ServiceClass.PREMIUM].mean:.1f} slots")
    assert d.missed == 0
    assert gw.forwarded_to_lan > 100
    print("\nOK: admitted streams kept their guarantees across both networks.")


if __name__ == "__main__":
    main()
