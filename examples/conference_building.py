#!/usr/bin/env python3
"""Conference building: dozens of WRT rings bridged into one fabric.

Every meeting room of the building runs its own WRT-Ring (Sec. 2); the
corridor backbone is a ring of gateway stations, and each room is bridged
onto it through a gateway (the Sec. 3 interconnection idea, scaled from one
G1 gateway to a whole building).  Premium video/audio flows cross from room
to room through the backbone — at least two gateway hops each — while the
fabric layer co-simulates all rings at once, one OS process per ring,
synchronized by conservative SAT-rotation windows.

The run is byte-deterministic: the sharded run below produces exactly the
same merged trace hash, per-ring table and per-flow table as a serial
single-process run of the same topology (pass ``--parity`` to verify —
that is also what ``python -m repro fabric --parity`` does).

Run:  python examples/conference_building.py [--parity] [--rooms 23]
"""

import argparse
import time
from pathlib import Path

from repro.fabric import FabricRunner, Topology, load_topology


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--rooms", type=int, default=None,
                    help="meeting rooms (rings beyond the backbone); "
                         "default: the 23 of conference_building.json")
    ap.add_argument("--parity", action="store_true",
                    help="also run serially and verify byte-identical "
                         "results")
    args = ap.parse_args()

    config = Path(__file__).with_name("conference_building.json")
    topo = load_topology(config)
    if args.rooms is not None:
        from dataclasses import replace
        topo = replace(topo, rings=args.rooms + 1)
    print(f"conference building: {topo.rings - 1} rooms + 1 backbone ring, "
          f"{topo.stations} stations, "
          f"{len(topo.resolved_flows())} cross-ring Premium flows")

    start = time.perf_counter()
    with FabricRunner(topo, mode="sharded") as runner:
        runner.run()
        sharded = runner.result(include_trace=True)
    elapsed = time.perf_counter() - start
    s = sharded.summary()
    print(f"\nsharded run: {elapsed:.1f}s wall, "
          f"{s['events_executed']:,} engine events, "
          f"clock={s['clock']:.0f} slots")
    print(f"frames: {s['frames_completed']}/{s['frames_created']} completed, "
          f"{s['cross_ring_deadline_misses']} past deadline "
          f"({s['cross_ring_deadline_miss_rate']:.1%}), "
          f"{s['gw_forwards']} gateway forwards")

    if args.parity:
        with FabricRunner(topo, mode="serial") as runner:
            runner.run()
            serial = runner.result(include_trace=True)
        assert serial.trace_hash() == sharded.trace_hash()
        assert serial.ring_table() == sharded.ring_table()
        assert serial.flow_table() == sharded.flow_table()
        print("parity OK: serial run is byte-identical "
              f"(trace {sharded.trace_hash()[:16]}...)")

    print()
    print(sharded.ring_table())

    # the slowest end-to-end flows, with their per-ring hop breakdown
    flows = topo.resolved_flows()
    print()
    print("slowest flows by worst end-to-end delay:")
    by_flow = {}
    for flow, seq, t, delay, miss, hop_log in sharded.completions():
        by_flow.setdefault(flow, []).append((delay, hop_log))
    worst = sorted(by_flow, key=lambda f: -max(d for d, _ in by_flow[f]))[:3]
    for fid in worst:
        f = flows[fid]
        delay, hop_log = max(by_flow[fid])
        legs = " + ".join(f"r{int(r)}:{t1 - t0:.0f}"
                          for r, t0, t1 in hop_log)
        buffered = delay - sum(t1 - t0 for _, t0, t1 in hop_log)
        print(f"  flow {fid} r{f.src_ring}.s{f.src_station}->"
              f"r{f.dst_ring}.s{f.dst_station}: worst {delay:.0f} slots "
              f"({legs} + {buffered:.0f} in gateway buffers)")

    assert s["frames_completed"] > 0
    assert s["frames_created"] == (s["frames_completed"]
                                   + s["frames_dropped"]
                                   + s["frames_in_flight"])
    print(f"\nOK: {topo.rings} rings / {topo.stations} stations "
          f"co-simulated sharded; {s['frames_completed']} cross-ring "
          f"frames completed, conservation holds"
          + (", serial parity verified" if args.parity else ""))


if __name__ == "__main__":
    main()
