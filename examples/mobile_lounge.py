#!/usr/bin/env python3
"""Airport lounge: the limits of "low mobility", measured.

The paper scopes WRT-Ring to "indoor scenarios in which terminals have low
mobility and limited movement space (airport lounge, conference site,
meeting room)".  This walkthrough uses the declarative scenario layer to ask:
how much movement can the lounge tolerate?

Travellers wander inside discs around their seats; ring links physically
break when two neighbours drift out of radio range; the SAT-loss watchdogs,
cut-outs and ring re-formation keep the network alive.  We sweep the wander
radius and report recoveries, availability and goodput — the quantitative
content of the paper's low-mobility caveat.

Run:  python examples/mobile_lounge.py
"""

from repro.core import ServiceClass
from repro.scenarios import MobilitySpec, Scenario, TrafficMix, run_scenario


def main() -> None:
    horizon = 6_000
    print("lounge: 8 travellers seated in a circle (range margin 2.0),")
    print(f"Premium Poisson traffic, {horizon} slots per configuration\n")

    header = (f"{'wander(m)':>10s} {'recoveries':>11s} {'re-formations':>14s} "
              f"{'network':>8s} {'goodput':>8s} {'worst rotation':>15s}")
    print(header)
    results = {}
    for wander in (0.0, 2.0, 6.0, 10.0, 13.0, 18.0):
        scn = Scenario(
            n=8, range_margin=2.0,
            mobility=(MobilitySpec(wander_radius=wander, speed=0.5)
                      if wander > 0 else None),
            traffic=TrafficMix(kind="poisson", rate=0.04,
                               service=ServiceClass.PREMIUM),
            horizon=horizon, seed=42)
        summary = run_scenario(scn).summary()
        results[wander] = summary
        print(f"{wander:>10.1f} {summary['recoveries']:>11d} "
              f"{summary['rebuilds']:>14d} "
              f"{'down' if summary['network_down'] else 'up':>8s} "
              f"{summary['goodput_per_slot']:>8.3f} "
              f"{summary.get('worst_rotation', float('nan')):>15.0f}")

    print()
    calm = results[0.0]
    stormy = max(results.values(), key=lambda s: s["recoveries"])
    print(f"while seated (wander 0): {calm['recoveries']} recoveries, "
          f"goodput {calm['goodput_per_slot']:.3f} pkt/slot")
    print(f"at the worst sweep point: {stormy['recoveries']} recoveries and "
          f"{stormy['rebuilds']} full ring re-formations — yet the network "
          f"{'survived' if not stormy['network_down'] else 'went down'} and "
          f"kept delivering {stormy['goodput_per_slot']:.3f} pkt/slot")

    assert calm["recoveries"] == 0
    assert all(s["bound_holds"] for s in results.values()
               if "bound_holds" in s)
    print("\nOK: Theorem 1 held in every configuration; the 'low mobility' "
          "assumption buys\nzero-recovery operation, and beyond it the "
          "protocol degrades by self-healing, not by collapsing.")


if __name__ == "__main__":
    main()
