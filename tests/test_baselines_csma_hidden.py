"""Hidden-terminal behaviour of the CSMA baseline (graph-based sensing)."""

import random

import numpy as np
import pytest

from repro.baselines import CSMAConfig, CSMANetwork
from repro.core import Packet, ServiceClass
from repro.phy import ConnectivityGraph
from repro.sim import Engine


def hidden_terminal_world():
    """Classic A - B - C line: A and C cannot hear each other."""
    pos = np.array([[0.0, 0.0], [10.0, 0.0], [20.0, 0.0]])
    return ConnectivityGraph(pos, 12.0)   # A<->B, B<->C only


def make_net(graph=None, n=3, seed=0, **cfg):
    engine = Engine()
    net = CSMANetwork(engine, list(range(n)), config=CSMAConfig(**cfg),
                      rng=random.Random(seed), graph=graph)
    return engine, net


class TestHiddenTerminals:
    def test_hidden_senders_collide_at_common_receiver(self):
        graph = hidden_terminal_world()
        engine, net = make_net(graph)
        rng = random.Random(1)

        def top(t):
            for sid in (0, 2):   # A and C both flood B
                st = net.stations[sid]
                while len(st.rt_queue) < 4:
                    st.enqueue(Packet(src=sid, dst=1,
                                      service=ServiceClass.PREMIUM,
                                      created=t), t)
        net.add_tick_hook(top)
        net.start()
        engine.run(until=4000)
        # carrier sense cannot prevent these: A never hears C
        assert net.hidden_terminal_collisions > 0
        # yet some frames do get through when backoffs miss each other
        assert net.metrics.total_delivered > 0

    def test_single_cell_has_no_hidden_collisions(self):
        engine, net = make_net(graph=None, n=6)
        rng = random.Random(2)

        def top(t):
            for sid, st in net.stations.items():
                while len(st.rt_queue) < 4:
                    dst = rng.choice([d for d in net.members if d != sid])
                    st.enqueue(Packet(src=sid, dst=dst,
                                      service=ServiceClass.PREMIUM,
                                      created=t), t)
        net.add_tick_hook(top)
        net.start()
        engine.run(until=3000)
        assert net.collision_slots > 0
        assert net.hidden_terminal_collisions == 0

    def test_disjoint_cells_transmit_concurrently(self):
        """With a graph, spatially-separate pairs reuse the channel — the
        upside contention MACs get from space, correctly modelled."""
        pos = np.array([[0.0, 0.0], [5.0, 0.0], [500.0, 0.0], [505.0, 0.0]])
        graph = ConnectivityGraph(pos, 10.0)
        engine, net = make_net(graph, n=4)

        def top(t):
            for src, dst in ((0, 1), (2, 3)):
                st = net.stations[src]
                while len(st.rt_queue) < 4:
                    st.enqueue(Packet(src=src, dst=dst,
                                      service=ServiceClass.PREMIUM,
                                      created=t), t)
        net.add_tick_hook(top)
        net.start()
        engine.run(until=3000)
        # both pairs progress; aggregate exceeds the single-cell ceiling is
        # possible here because the cells are independent
        assert net.stations[1].received[ServiceClass.PREMIUM] > 300
        assert net.stations[3].received[ServiceClass.PREMIUM] > 300
        assert net.hidden_terminal_collisions == 0   # no common receiver

    def test_half_duplex_destination(self):
        """Two stations transmitting *to each other* in the same slot lose
        both frames (a transmitting radio cannot receive)."""
        engine, net = make_net(graph=None, n=2, cw_min_rt=1, cw_min_be=1)
        t0 = 0.0
        net.stations[0].enqueue(Packet(src=0, dst=1,
                                       service=ServiceClass.PREMIUM,
                                       created=t0), t0)
        net.stations[1].enqueue(Packet(src=1, dst=0,
                                       service=ServiceClass.PREMIUM,
                                       created=t0), t0)
        net.start()
        engine.run(until=0.5)   # exactly the t=0 slot
        # cw_min=1 -> both fire in the first slot -> mutual loss
        assert net.metrics.total_delivered == 0
        assert net.collision_slots == 1

    def test_out_of_range_destination_lost(self):
        graph = hidden_terminal_world()
        engine, net = make_net(graph)
        net.start()
        engine.run(until=5)
        t0 = engine.now
        p = Packet(src=0, dst=2, service=ServiceClass.PREMIUM, created=t0)
        net.enqueue(p)
        engine.run(until=t0 + 100)
        # A fires; C is out of range: in this MAC the frame simply never
        # arrives (no multi-hop routing) — the delivery check is in-range
        assert not p.delivered
