"""Unit tests for metric collectors, statistics and bound checks."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    BoundCheck,
    DeadlineTracker,
    DelaySeries,
    ThroughputMeter,
    batch_means_ci,
    check_multi_round,
    check_rotation_samples,
    jain_fairness,
    summarize,
)


class TestDelaySeries:
    def test_basic_stats(self):
        s = DelaySeries()
        s.extend([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.max == 4.0
        assert s.min == 1.0
        assert s.percentile(50) == 2.5

    def test_summary_keys(self):
        s = DelaySeries()
        s.extend(range(100))
        summary = s.summary()
        assert set(summary) == {"count", "mean", "p50", "p95", "p99", "max"}
        assert summary["p95"] <= summary["p99"] <= summary["max"]

    def test_negative_rejected(self):
        s = DelaySeries("x")
        with pytest.raises(ValueError):
            s.add(-1.0)

    def test_empty_raises(self):
        s = DelaySeries()
        assert s.empty
        with pytest.raises(ValueError):
            _ = s.mean

    def test_std_single_sample(self):
        s = DelaySeries()
        s.add(3.0)
        assert s.std == 0.0


class TestThroughputMeter:
    def test_rate(self):
        m = ThroughputMeter()
        m.open_window(100.0)
        for _ in range(50):
            m.count()
        m.close_window(200.0)
        assert m.rate == 0.5

    def test_count_units(self):
        m = ThroughputMeter()
        m.open_window(0.0)
        m.count(10)
        m.close_window(5.0)
        assert m.rate == 2.0

    def test_window_reset(self):
        m = ThroughputMeter()
        m.open_window(0.0)
        m.count(5)
        m.close_window(10.0)
        m.open_window(10.0)
        m.close_window(20.0)
        assert m.rate == 0.0

    def test_errors(self):
        m = ThroughputMeter()
        with pytest.raises(ValueError):
            m.close_window(1.0)
        m.open_window(5.0)
        with pytest.raises(ValueError):
            m.close_window(1.0)
        m2 = ThroughputMeter()
        m2.open_window(0.0)
        m2.close_window(0.0)
        with pytest.raises(ValueError):
            _ = m2.rate


class TestDeadlineTracker:
    def test_met_and_missed(self):
        d = DeadlineTracker()
        d.observe(5.0, 10.0)
        d.observe(15.0, 10.0)
        d.observe(5.0, None)     # no deadline -> ignored
        assert d.met == 1 and d.missed == 1
        assert d.total == 2
        assert d.miss_ratio == 0.5
        assert d.miss_lateness == [5.0]

    def test_drops(self):
        d = DeadlineTracker()
        d.observe_drop(10.0)
        d.observe_drop(None)
        assert d.missed == 1

    def test_empty_ratio_raises(self):
        with pytest.raises(ValueError):
            _ = DeadlineTracker().miss_ratio

    def test_boundary_delivery_meets(self):
        d = DeadlineTracker()
        d.observe(10.0, 10.0)
        assert d.met == 1


class TestJainFairness:
    def test_equal_shares_is_one(self):
        assert jain_fairness([5, 5, 5, 5]) == pytest.approx(1.0)

    def test_single_user_monopoly(self):
        assert jain_fairness([10, 0, 0, 0]) == pytest.approx(0.25)

    def test_errors(self):
        with pytest.raises(ValueError):
            jain_fairness([])
        with pytest.raises(ValueError):
            jain_fairness([1, -1])
        with pytest.raises(ValueError):
            jain_fairness([0, 0])

    @given(st.lists(st.floats(min_value=0.01, max_value=1000), min_size=1,
                    max_size=30))
    def test_bounds_property(self, xs):
        f = jain_fairness(xs)
        assert 1.0 / len(xs) - 1e-9 <= f <= 1.0 + 1e-9

    @given(st.floats(min_value=0.1, max_value=100), st.integers(min_value=1, max_value=20))
    def test_scale_invariance(self, scale, n):
        xs = list(range(1, n + 1))
        assert jain_fairness(xs) == pytest.approx(
            jain_fairness([x * scale for x in xs]))


class TestBatchMeans:
    def test_iid_normal_covers_mean(self):
        rng = np.random.default_rng(0)
        hits = 0
        for trial in range(20):
            data = rng.normal(10.0, 2.0, size=2000)
            ci = batch_means_ci(data, batches=20, confidence=0.95)
            if ci.contains(10.0):
                hits += 1
        assert hits >= 16  # ~95% coverage, generous slack

    def test_warmup_discard(self):
        data = [100.0] * 500 + [10.0] * 2000
        ci = batch_means_ci(data, batches=10, warmup_fraction=0.25)
        assert abs(ci.mean - 10.0) < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_means_ci([1.0] * 100, batches=1)
        with pytest.raises(ValueError):
            batch_means_ci([1.0] * 10, batches=20)
        with pytest.raises(ValueError):
            batch_means_ci([1.0] * 100, confidence=1.5)
        with pytest.raises(ValueError):
            batch_means_ci([1.0] * 100, warmup_fraction=1.0)

    def test_str_rendering(self):
        ci = batch_means_ci([1.0, 2.0] * 100, batches=10)
        assert "batches" in str(ci)


class TestSummarize:
    def test_keys_and_order(self):
        s = summarize(range(1000))
        assert s["min"] <= s["p50"] <= s["p95"] <= s["p99"] <= s["max"]
        assert s["count"] == 1000

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestBoundChecks:
    def test_rotation_check_strict(self):
        check = check_rotation_samples([10.0, 20.0, 29.9], bound=30.0)
        assert check.holds
        assert check.worst == 29.9
        assert check.tightness == pytest.approx(29.9 / 30.0)
        exact = check_rotation_samples([30.0], bound=30.0)
        assert not exact.holds  # strict '<'

    def test_rotation_check_nonstrict(self):
        check = check_rotation_samples([30.0], bound=30.0, strict=False)
        assert check.holds

    def test_violation_rendering(self):
        check = check_rotation_samples([31.0], bound=30.0)
        assert not check.holds
        assert "VIOLATED" in str(check)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            check_rotation_samples([], bound=10.0)

    def test_multi_round_windows(self):
        samples = [5.0] * 10
        check = check_multi_round(samples, n=4, bound=25.0)
        assert check.holds
        assert check.worst == 20.0
        assert check.samples == 7  # sliding windows

    def test_multi_round_detects_burst(self):
        samples = [5.0, 5.0, 20.0, 20.0, 5.0]
        check = check_multi_round(samples, n=2, bound=30.0)
        assert check.worst == 40.0
        assert not check.holds

    def test_multi_round_validation(self):
        with pytest.raises(ValueError):
            check_multi_round([5.0], n=2, bound=10.0)
        with pytest.raises(ValueError):
            check_multi_round([5.0], n=0, bound=10.0)
