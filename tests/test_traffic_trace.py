"""Tests for the trace-replay source."""

import pytest

from repro.core import ServiceClass, WRTRingConfig, WRTRingNetwork
from repro.sim import Engine
from repro.traffic import FlowSpec, TraceSource, Workload


def collecting_sink():
    packets = []
    return packets, packets.append


class TestTraceSource:
    def test_replays_exact_times(self):
        eng = Engine()
        got, sink = collecting_sink()
        trace = [1.0, 4.0, 4.0, 9.5, 100.0]
        TraceSource(eng, FlowSpec(src=0, dst=1), sink, trace)
        eng.run()
        assert [p.created for p in got] == trace

    def test_zero_time_arrival(self):
        eng = Engine()
        got, sink = collecting_sink()
        TraceSource(eng, FlowSpec(src=0, dst=1), sink, [0.0, 2.0])
        eng.run()
        assert [p.created for p in got] == [0.0, 2.0]

    def test_validation(self):
        eng = Engine()
        flow = FlowSpec(src=0, dst=1)
        with pytest.raises(ValueError):
            TraceSource(eng, flow, lambda p: None, [])
        with pytest.raises(ValueError):
            TraceSource(eng, flow, lambda p: None, [5.0, 1.0])
        with pytest.raises(ValueError):
            TraceSource(eng, flow, lambda p: None, [-1.0, 1.0])

    def test_duplicate_timestamps_all_emitted(self):
        # a measured trace can carry several arrivals at the same instant
        # (sub-slot timestamps rounded to the grid); each must become its
        # own packet, in trace order
        eng = Engine()
        got, sink = collecting_sink()
        TraceSource(eng, FlowSpec(src=0, dst=1), sink, [5.0, 5.0, 5.0, 10.0])
        eng.run()
        assert [p.created for p in got] == [5.0, 5.0, 5.0, 10.0]
        pids = [p.pid for p in got]
        assert pids == sorted(pids)

    def test_rate_estimate(self):
        eng = Engine()
        src = TraceSource(eng, FlowSpec(src=0, dst=1), lambda p: None,
                          [0.0, 10.0, 20.0, 30.0, 40.0])
        assert src.rate == pytest.approx(5 / 40.0)

    def test_deadlines_stamped_relative_to_replay(self):
        eng = Engine()
        got, sink = collecting_sink()
        flow = FlowSpec(src=0, dst=1, service=ServiceClass.PREMIUM,
                        deadline=50.0)
        TraceSource(eng, flow, sink, [3.0, 7.0])
        eng.run()
        assert [p.deadline for p in got] == [53.0, 57.0]

    def test_end_to_end_over_ring(self):
        eng = Engine()
        cfg = WRTRingConfig.homogeneous(range(4), l=2, k=1, rap_enabled=False)
        net = WRTRingNetwork(eng, list(range(4)), cfg)
        wl = Workload(net)
        src = wl.add_trace(FlowSpec(src=0, dst=2,
                                    service=ServiceClass.PREMIUM,
                                    deadline=100.0),
                           [5.0, 6.0, 7.0, 40.0])
        net.start()
        eng.run(until=200)
        assert src.generated == 4
        assert all(p.delivered for p in src.packets)
        assert net.metrics.deadlines.missed == 0
