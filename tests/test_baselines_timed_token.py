"""Unit tests for the timed-token rules and TTRT selection."""

import pytest
from hypothesis import given, strategies as st

from repro.baselines import TimedTokenRules, choose_ttrt


class TestRules:
    def test_sync_budget_is_allocation(self):
        rules = TimedTokenRules(ttrt=50.0)
        assert rules.sync_budget(7.0) == 7.0
        with pytest.raises(ValueError):
            rules.sync_budget(-1.0)

    def test_async_budget_early_token(self):
        rules = TimedTokenRules(ttrt=50.0)
        assert rules.async_budget(30.0) == 20.0

    def test_async_budget_late_token_zero(self):
        rules = TimedTokenRules(ttrt=50.0)
        assert rules.async_budget(50.0) == 0.0
        assert rules.async_budget(80.0) == 0.0
        with pytest.raises(ValueError):
            rules.async_budget(-1.0)

    def test_feasibility(self):
        rules = TimedTokenRules(ttrt=50.0)
        assert rules.feasible([10, 10, 10], walk_time=20.0)
        assert not rules.feasible([10, 10, 11], walk_time=20.0)
        with pytest.raises(ValueError):
            rules.feasible([1], walk_time=-1.0)

    def test_max_rotation(self):
        assert TimedTokenRules(ttrt=25.0).max_rotation == 50.0

    def test_invalid_ttrt(self):
        with pytest.raises(ValueError):
            TimedTokenRules(ttrt=0.0)


class TestChooseTTRT:
    def test_minimum_feasible(self):
        ttrt = choose_ttrt([5, 5], walk_time=10.0)
        assert ttrt == 20.0
        assert TimedTokenRules(ttrt).feasible([5, 5], 10.0)

    def test_margin(self):
        assert choose_ttrt([5, 5], walk_time=10.0, margin=1.5) == 30.0

    def test_validation(self):
        with pytest.raises(ValueError):
            choose_ttrt([5], walk_time=10.0, margin=0.5)
        with pytest.raises(ValueError):
            choose_ttrt([5], walk_time=0.0)
        with pytest.raises(ValueError):
            choose_ttrt([-1], walk_time=10.0)

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1,
                    max_size=20),
           st.floats(min_value=1.0, max_value=100.0),
           st.floats(min_value=1.0, max_value=3.0))
    def test_always_feasible(self, H, walk, margin):
        ttrt = choose_ttrt(H, walk, margin)
        assert TimedTokenRules(ttrt).feasible(H, walk)
