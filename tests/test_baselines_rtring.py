"""Tests for the wired RT-Ring reference baseline."""

import pytest

from repro.baselines import RTRingNetwork
from repro.core import Packet, QuotaConfig, ServiceClass
from repro.sim import Engine


def make_rtring(n=5, l=2, k=1):
    engine = Engine()
    quotas = {i: QuotaConfig.two_class(l, k) for i in range(n)}
    net = RTRingNetwork(engine, list(range(n)), quotas)
    return engine, net


class TestRTRing:
    def test_no_rap_ever(self):
        engine, net = make_rtring()
        net.start()
        engine.run(until=2000)
        assert net.join_manager.raps_opened == 0
        assert net.config.effective_t_rap() == 0

    def test_idle_rotation_is_exactly_S(self):
        engine, net = make_rtring(7)
        net.start()
        engine.run(until=200)
        assert net.rotation_log.all_samples()[-1] == 7.0

    def test_bound_excludes_t_rap(self):
        engine, net = make_rtring(5, l=2, k=1)
        assert net.sat_time_bound() == 5 + 2 * 5 * 3  # no T_rap term

    def test_wrt_bound_exceeds_rtring_bound_by_t_rap(self):
        """The wireless overhead is exactly the RAP term."""
        from repro.core import WRTRingConfig, WRTRingNetwork
        engine, rt = make_rtring(5, l=2, k=1)
        engine2 = Engine()
        cfg = WRTRingConfig.homogeneous(range(5), l=2, k=1, rap_enabled=True,
                                        t_ear=6, t_update=3)
        wrt = WRTRingNetwork(engine2, list(range(5)), cfg)
        assert wrt.sat_time_bound() - rt.sat_time_bound() == 9

    def test_carries_traffic(self):
        engine, net = make_rtring()
        net.start()
        engine.run(until=20)
        t0 = engine.now
        p = Packet(src=0, dst=3, service=ServiceClass.PREMIUM, created=t0)
        net.enqueue(p)
        engine.run(until=t0 + 100)
        assert p.delivered

    def test_insert_station_forbidden(self):
        engine, net = make_rtring()
        with pytest.raises(NotImplementedError):
            net.insert_station(99, after=0, quota=QuotaConfig.two_class(1, 1))

    def test_cutout_recovery_always_geometrically_possible(self):
        """A wire has no radio range: the SAT_REC skip-hop always works."""
        engine, net = make_rtring(6)
        net.start()
        engine.run(until=25)
        net.kill_station(3)
        engine.run(until=500)
        [rec] = net.recovery.records
        assert rec.outcome == "cutout"
        assert 3 not in net.members
