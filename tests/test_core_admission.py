"""Unit tests for the admission controller (Sec. 2.4.1's QoS check)."""

import pytest

from repro.core import QuotaConfig, WRTRingConfig, WRTRingNetwork
from repro.core.admission import QoSRequirement
from repro.core.join import JoinRequest
from repro.sim import Engine


def make_net(n=5, l=2, k=1, max_network_delay=None):
    engine = Engine()
    cfg = WRTRingConfig.homogeneous(range(n), l=l, k=k, rap_enabled=False,
                                    max_network_delay=max_network_delay)
    net = WRTRingNetwork(engine, list(range(n)), cfg)
    return net


def request(l=1, k=1, deadline=None, backlog=0):
    return JoinRequest(requester=99, code_new=50,
                       quota=QuotaConfig.two_class(l, k),
                       deadline_req=deadline, max_backlog=backlog)


class TestQoSRequirement:
    def test_validation(self):
        with pytest.raises(ValueError):
            QoSRequirement(deadline=0)
        with pytest.raises(ValueError):
            QoSRequirement(deadline=10, max_backlog=-1)


class TestBudgetCheck:
    def test_no_budget_accepts(self):
        net = make_net()
        decision = net.join_manager.admission.evaluate(request())
        assert decision.accepted

    def test_budget_rejects_projected_overflow(self):
        net = make_net()
        # projected bound: S+1 + 2*(5*3 + 2) = 6 + 34 = 40
        net.config.max_network_delay = 39.0
        decision = net.join_manager.admission.evaluate(request(l=1, k=1))
        assert not decision.accepted
        assert decision.projected_sat_bound == 40.0
        assert "budget" in decision.reason

    def test_budget_boundary_accepts(self):
        net = make_net()
        net.config.max_network_delay = 40.0
        decision = net.join_manager.admission.evaluate(request(l=1, k=1))
        assert decision.accepted

    def test_projected_bound_reported(self):
        net = make_net()
        decision = net.join_manager.admission.evaluate(request(l=3, k=2))
        assert decision.projected_sat_bound == 6 + 2 * (15 + 5)


class TestRequirementCheck:
    def test_existing_requirement_blocks(self):
        from repro.analysis import access_delay_bound
        net = make_net()
        adm = net.join_manager.admission
        # deadline exactly at the current ring's bound: any join breaks it
        current = access_delay_bound(0, 2, 5, 0, [(2, 1)] * 5)
        adm.register_requirement(0, deadline=current)
        decision = adm.evaluate(request())
        assert not decision.accepted
        assert decision.violated_station == 0

    def test_loose_requirement_admits(self):
        net = make_net()
        adm = net.join_manager.admission
        adm.register_requirement(0, deadline=10_000.0)
        assert adm.evaluate(request()).accepted

    def test_clear_requirement(self):
        net = make_net()
        adm = net.join_manager.admission
        adm.register_requirement(0, deadline=1.0)
        adm.clear_requirement(0)
        assert adm.evaluate(request()).accepted

    def test_requirement_for_departed_station_ignored(self):
        net = make_net()
        adm = net.join_manager.admission
        adm.register_requirement(42, deadline=1.0)  # not a member
        assert adm.evaluate(request()).accepted

    def test_joiner_deadline_checked(self):
        net = make_net()
        adm = net.join_manager.admission
        decision = adm.evaluate(request(deadline=5.0))
        assert not decision.accepted
        assert "unachievable" in decision.reason
        ok = adm.evaluate(request(deadline=10_000.0))
        assert ok.accepted

    def test_joiner_deadline_without_l_rejected(self):
        net = make_net()
        decision = net.join_manager.admission.evaluate(
            JoinRequest(requester=99, code_new=50,
                        quota=QuotaConfig.two_class(0, 2),
                        deadline_req=100.0))
        assert not decision.accepted
        assert "l=0" in decision.reason

    def test_decisions_logged(self):
        net = make_net()
        adm = net.join_manager.admission
        adm.evaluate(request())
        adm.evaluate(request(deadline=1.0))
        assert len(adm.decisions) == 2
        assert [d.accepted for d in adm.decisions] == [True, False]


class TestMaxAdmissibleQuota:
    def test_unlimited_without_budget(self):
        net = make_net()
        assert net.join_manager.admission.max_admissible_quota() >= 10 ** 6

    def test_headroom_computation(self):
        net = make_net()
        # current total quota = 15, S_new = 6
        # budget = 6 + 2*(15 + q) <= B  ->  q <= (B - 6 - 30)/2
        net.config.max_network_delay = 56.0
        assert net.join_manager.admission.max_admissible_quota() == 10

    def test_no_headroom_is_zero(self):
        net = make_net()
        net.config.max_network_delay = 30.0
        assert net.join_manager.admission.max_admissible_quota() == 0
