"""Import contracts: the dependency arrow of the event spine points one way.

The protocol layers (``repro.core``, ``repro.sim``, ``repro.phy``,
``repro.baselines``) emit typed events; the observability and fuzzing
layers (``repro.obs``, ``repro.fuzz``) subscribe.  Nothing in a protocol
layer may import a subscriber layer — that would reintroduce the inverted
dependency this refactor removed.  Enforced statically (AST walk over the
source tree) so a violation fails even if the import is unused or lazy.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).parent.parent / "src" / "repro"

#: emitting packages -> packages they must never import
CONTRACTS = {
    "core": ("repro.obs", "repro.fuzz"),
    "sim": ("repro.obs", "repro.fuzz", "repro.core"),
    "phy": ("repro.obs", "repro.fuzz"),
    "baselines": ("repro.obs", "repro.fuzz"),
    "events": ("repro.obs", "repro.fuzz", "repro.core"),
}


def _imports(path: Path):
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node.lineno, alias.name
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            # absolute imports only: the tree uses no relative imports
            if node.module:
                yield node.lineno, node.module


@pytest.mark.parametrize("package", sorted(CONTRACTS))
def test_layer_never_imports_subscribers(package):
    forbidden = CONTRACTS[package]
    violations = []
    for path in sorted((SRC / package).rglob("*.py")):
        for lineno, module in _imports(path):
            if any(module == f or module.startswith(f + ".")
                   for f in forbidden):
                violations.append(
                    f"{path.relative_to(SRC.parent)}:{lineno} imports {module}")
    assert not violations, "\n".join(violations)


def test_contract_covers_real_packages():
    for package in CONTRACTS:
        assert (SRC / package).is_dir(), package
