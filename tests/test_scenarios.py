"""Tests for the declarative scenario runner."""

import pytest

from repro.core import QuotaConfig, ServiceClass
from repro.faults import FaultSchedule
from repro.scenarios import (MobilitySpec, Scenario, ScenarioResult,
                             TrafficMix, run_scenario)


class TestValidation:
    def test_traffic_kind_validated(self):
        with pytest.raises(ValueError):
            TrafficMix(kind="carrier-pigeon")

    def test_scenario_validated(self):
        with pytest.raises(ValueError):
            Scenario(n=1)
        with pytest.raises(ValueError):
            Scenario(placement="moon")
        with pytest.raises(ValueError):
            Scenario(horizon=0)
        with pytest.raises(ValueError):
            Scenario(range_margin=0.9)


class TestStaticScenarios:
    def test_basic_run_and_summary(self):
        result = run_scenario(Scenario(
            n=6, horizon=2000,
            traffic=TrafficMix(kind="poisson", rate=0.05)))
        summary = result.summary()
        assert summary["delivered"] > 0
        assert summary["bound_holds"]
        assert not summary["network_down"]
        assert summary["recoveries"] == 0

    def test_reproducible_across_runs(self):
        scn = Scenario(n=6, horizon=1500, seed=7,
                       traffic=TrafficMix(kind="poisson", rate=0.08))
        a = run_scenario(scn).summary()
        b = run_scenario(scn).summary()
        assert a == b

    def test_different_seeds_differ(self):
        base = dict(n=6, horizon=1500,
                    traffic=TrafficMix(kind="poisson", rate=0.08))
        a = run_scenario(Scenario(seed=1, **base)).summary()
        b = run_scenario(Scenario(seed=2, **base)).summary()
        assert a["delivered"] != b["delivered"]

    def test_traffic_kinds(self):
        for kind in ("cbr", "video", "backlog", "none"):
            result = run_scenario(Scenario(
                n=5, horizon=1000,
                traffic=TrafficMix(kind=kind, period=25.0,
                                   service=ServiceClass.PREMIUM)))
            summary = result.summary()
            if kind == "none":
                assert summary["delivered"] == 0
            else:
                assert summary["delivered"] > 0

    def test_onoff_traffic_kind(self):
        result = run_scenario(Scenario(
            n=5, horizon=4000,
            traffic=TrafficMix(kind="onoff", peak_rate=0.05,
                               mean_on=200.0, mean_off=300.0)))
        assert result.summary()["delivered"] > 0
        # one unidirectional on/off source per station
        assert len(result.workload.sources) == 5

    def test_voice_traffic_kind_is_bidirectional(self):
        result = run_scenario(Scenario(
            n=5, horizon=4000,
            traffic=TrafficMix(kind="voice", peak_rate=0.05,
                               service=ServiceClass.PREMIUM,
                               deadline=200.0)))
        assert result.summary()["delivered"] > 0
        # each station's call gets a forward and a reverse leg
        assert len(result.workload.sources) == 10
        pairs = {(s.flow.src, s.flow.dst) for s in result.workload.sources}
        for src, dst in list(pairs):
            assert (dst, src) in pairs

    def test_onoff_kind_validation(self):
        with pytest.raises(ValueError):
            TrafficMix(kind="onoff", peak_rate=0.0)
        with pytest.raises(ValueError):
            TrafficMix(kind="voice", mean_on=-1.0)

    def test_custom_quotas(self):
        quotas = {sid: QuotaConfig.two_class(sid % 2 + 1, 1)
                  for sid in range(5)}
        result = run_scenario(Scenario(n=5, quotas=quotas, horizon=800))
        net = result.network
        assert net.stations[1].quota.l == 2
        assert net.stations[2].quota.l == 1

    def test_uniform_placement_dense(self):
        result = run_scenario(Scenario(
            n=8, placement="uniform", range_margin=3.0, horizon=800,
            traffic=TrafficMix(kind="poisson", rate=0.02)))
        assert not result.network.network_down

    def test_invariants_checked_when_requested(self):
        result = run_scenario(Scenario(n=5, horizon=800,
                                       check_invariants=True))
        assert result.checker is not None
        assert result.summary()["invariants_clean"]

    def test_faults_integrated(self):
        faults = FaultSchedule.builder().kill(2, at=300).build()
        result = run_scenario(Scenario(n=6, horizon=3000, faults=faults,
                                       check_invariants=True))
        summary = result.summary()
        assert 2 not in summary["members"]
        assert summary["recoveries"] == 1
        assert summary["invariants_clean"]

    def test_rap_enabled_scenario(self):
        result = run_scenario(Scenario(n=6, rap_enabled=True, horizon=2000))
        assert result.network.join_manager.raps_opened > 0

    def test_validate_phy_zero_collisions(self):
        """Every data hop through the CDMA channel model: no collisions —
        the paper's 'CDMA avoids collisions' claim on the live dataplane."""
        result = run_scenario(Scenario(
            n=6, horizon=1500, validate_phy=True,
            traffic=TrafficMix(kind="backlog",
                               service=ServiceClass.PREMIUM)))
        assert result.network.channel.stats.collisions == 0
        assert result.network.channel.stats.frames_sent > 1000
        assert result.summary()["delivered"] > 500


class TestMobilityScenarios:
    def test_static_when_no_mobility(self):
        result = run_scenario(Scenario(n=6, horizon=500))
        import numpy as np
        assert np.allclose(result.mobility.positions,
                           result.mobility.positions)
        assert result.network.config.enforce_radio_links is False

    def test_small_wander_survives(self):
        """Wander well inside the range margin: no recoveries at all."""
        result = run_scenario(Scenario(
            n=8, range_margin=2.5,
            mobility=MobilitySpec(wander_radius=1.0, speed=0.2),
            traffic=TrafficMix(kind="poisson", rate=0.03),
            horizon=5000, seed=3))
        summary = result.summary()
        assert not summary["network_down"]
        assert summary["recoveries"] == 0
        assert summary["delivered"] > 0

    def test_large_wander_triggers_recoveries(self):
        result = run_scenario(Scenario(
            n=8, range_margin=1.4,
            mobility=MobilitySpec(wander_radius=12.0, speed=1.5),
            traffic=TrafficMix(kind="poisson", rate=0.03),
            horizon=6000, seed=4))
        summary = result.summary()
        assert summary["recoveries"] > 0

    def test_mobility_enables_link_enforcement(self):
        result = run_scenario(Scenario(
            n=6, mobility=MobilitySpec(wander_radius=2.0), horizon=300))
        assert result.network.config.enforce_radio_links is True
