"""Differential tests: the batched kernel must be byte-identical to scalar.

This is the enforcement arm of the equivalence contract in docs/KERNEL.md:
every checked-in fuzz corpus bundle and every scenario in the pinned seeded
grid is replayed through both kernels, and every observable — trace hash,
summary, per-station tables, rotation samples, final clock — must match
exactly.  ``events_executed`` is the single excluded statistic (the batched
driver dispatches fewer agenda events by design).
"""

import glob
import os

import pytest

from repro.fuzz.bundle import load_bundle
from repro.fuzz.generate import FuzzCase, generate_case
from repro.kernel.diff import diff_fuzz_case, diff_scenario, seeded_grid

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))
GRID = seeded_grid()


class TestCorpusParity:
    """Every checked-in repro bundle runs identically under both kernels."""

    @pytest.mark.parametrize("path", CORPUS,
                             ids=[os.path.basename(p) for p in CORPUS])
    def test_bundle_parity(self, path):
        case = FuzzCase.from_dict(load_bundle(path)["case"])
        diff = diff_fuzz_case(case, label=os.path.basename(path))
        assert diff.ok, diff.describe()

    def test_corpus_is_nonempty(self):
        # the sweep above is vacuous if the corpus dir ever goes missing
        assert len(CORPUS) >= 4


class TestSeededGridParity:
    """The pinned scenario grid covers one regime per protocol feature:
    idle rings (fast-forward saturated), sparse/periodic/bursty traffic,
    saturation (no fast-forward), RAP joins, kills, leaves, SAT loss,
    invariant checkers, and off-grid run windows."""

    @pytest.mark.parametrize("idx", range(len(GRID)),
                             ids=[f"seed{s.seed}-{s.traffic.kind}"
                                  for s in GRID])
    def test_grid_point_parity(self, idx):
        diff = diff_scenario(GRID[idx], label=f"grid[{idx}]")
        assert diff.ok, diff.describe()


class TestFabricKernelParity:
    """Per-ring kernel choice must not change fabric-level behaviour."""

    def _result(self, topo, mode, kernel):
        from repro.fabric import FabricRunner
        with FabricRunner(topo, mode=mode, trace=True,
                          kernel=kernel) as runner:
            runner.run()
            return runner.result(include_trace=True)

    def test_serial_fabric_cross_kernel(self):
        from repro.fabric import Topology
        topo = Topology(rings=2, ring_size=6, layout="chain", cross_flows=2,
                        horizon=600.0, seed=5)
        scalar = self._result(topo, "serial", "scalar")
        batched = self._result(topo, "serial", "batched")
        assert scalar.trace_hash() == batched.trace_hash()
        assert scalar.flow_table() == batched.flow_table()
        # the ring table's trailing "events" column is engine
        # events_executed — the one excluded statistic; strip it
        def sans_events(table):
            return ["".join(line.split()[:-1])
                    for line in table.splitlines()]
        assert sans_events(scalar.ring_table()) == \
            sans_events(batched.ring_table())

    def test_sharded_fabric_matches_serial_under_batched(self):
        from repro.fabric import Topology
        from repro.fabric.merge import merged_trace_lines
        topo = Topology(rings=2, ring_size=6, layout="chain", cross_flows=2,
                        horizon=600.0, seed=7)
        serial = self._result(topo, "serial", "batched")
        sharded = self._result(topo, "sharded", "batched")
        assert serial.trace_hash() == sharded.trace_hash()
        assert serial.ring_table() == sharded.ring_table()
        assert serial.flow_table() == sharded.flow_table()
        assert merged_trace_lines(serial) == merged_trace_lines(sharded)


class TestGeneratedCaseParity:
    """A pinned slice of the fuzz generator's output (random topologies,
    impairments, channels, fault schedules, irregular ``max_events``
    drive chunks) replayed through both kernels."""

    @pytest.mark.parametrize("index", range(25))
    def test_generated_case_parity(self, index):
        case = generate_case(20260808, index)
        diff = diff_fuzz_case(case, label=f"gen[{index}]")
        assert diff.ok, diff.describe()
