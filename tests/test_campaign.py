"""Tests for the campaign subsystem: sweeps, store, runner, aggregation."""

import json

import pytest

from repro.campaign import (CampaignRunner, ResultStore, Sweep, aligned_table,
                            campaign_markdown, campaign_table,
                            default_columns, get_field, normalize_record,
                            point_hash, run_point, sweep_from_dict,
                            sweep_to_dict)
from repro.campaign.sweep import apply_overrides
from repro.config_io import scenario_to_dict
from repro.scenarios import Scenario, TrafficMix
from repro.sim.rng import RandomStreams

QUIET = lambda *a, **k: None  # noqa: E731

BASE = Scenario(horizon=400.0, traffic=TrafficMix(kind="poisson", rate=0.02))


def tiny_sweep(**kwargs):
    kwargs.setdefault("axes", {"n": [4, 6], "l": [1, 2]})
    return Sweep(base=BASE, **kwargs)


# ----------------------------------------------------------------------
class TestSweepExpansion:
    def test_grid_is_cartesian_product(self):
        points = tiny_sweep().expand()
        assert len(points) == 4
        combos = {(p.scenario_dict["n"], p.scenario_dict["l"])
                  for p in points}
        assert combos == {(4, 1), (4, 2), (6, 1), (6, 2)}

    def test_zip_advances_in_lockstep(self):
        sweep = Sweep(base=BASE, mode="zip",
                      axes={"n": [4, 6, 8], "horizon": [100, 200, 300]})
        points = sweep.expand()
        assert [(p.scenario_dict["n"], p.scenario_dict["horizon"])
                for p in points] == [(4, 100), (6, 200), (8, 300)]

    def test_zip_rejects_unequal_axes(self):
        with pytest.raises(ValueError, match="equal lengths"):
            Sweep(base=BASE, mode="zip", axes={"n": [4, 6], "l": [1]})

    def test_explicit_points(self):
        sweep = Sweep(base=BASE, points=[{"n": 5}, {"n": 7, "l": 3}])
        points = sweep.expand()
        assert points[0].scenario_dict["n"] == 5
        assert points[1].scenario_dict["l"] == 3
        # untouched fields come from the base
        assert points[0].scenario_dict["horizon"] == 400.0

    def test_dotted_override_reaches_nested_field(self):
        sweep = Sweep(base=BASE, axes={"traffic.rate": [0.01, 0.09]})
        points = sweep.expand()
        assert [p.scenario_dict["traffic"]["rate"] for p in points] \
            == [0.01, 0.09]
        # the rest of the traffic block is preserved
        assert points[0].scenario_dict["traffic"]["kind"] == "poisson"

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Sweep(base=BASE, points=[{"n": 5}, {"n": 5}]).expand()

    def test_axes_and_points_mutually_exclusive(self):
        with pytest.raises(ValueError):
            Sweep(base=BASE, axes={"n": [4]}, points=[{"n": 5}])
        with pytest.raises(ValueError):
            Sweep(base=BASE)

    def test_round_trip_through_dict(self):
        sweep = tiny_sweep(name="rt", seed=7)
        back = sweep_from_dict(json.loads(json.dumps(sweep_to_dict(sweep))))
        assert [p.scenario_dict for p in back.expand()] \
            == [p.scenario_dict for p in sweep.expand()]


class TestSeedDerivation:
    def test_points_get_independent_derived_seeds(self):
        seeds = [p.scenario_dict["seed"] for p in tiny_sweep().expand()]
        assert len(set(seeds)) == len(seeds)
        assert all(s != BASE.seed for s in seeds)

    def test_derivation_is_stable_and_order_free(self):
        a = {p.key: p.scenario_dict["seed"] for p in tiny_sweep().expand()}
        reordered = tiny_sweep(axes={"l": [2, 1], "n": [6, 4]}).expand()
        for p in reordered:
            assert p.scenario_dict["seed"] == a[p.key]

    def test_master_seed_changes_every_point(self):
        a = [p.scenario_dict["seed"] for p in tiny_sweep(seed=0).expand()]
        b = [p.scenario_dict["seed"] for p in tiny_sweep(seed=1).expand()]
        assert all(x != y for x, y in zip(a, b))

    def test_explicit_seed_override_wins(self):
        sweep = Sweep(base=BASE, points=[{"n": 4, "seed": 123}])
        assert sweep.expand()[0].scenario_dict["seed"] == 123

    def test_derive_seeds_false_keeps_base_seed(self):
        sweep = tiny_sweep(derive_seeds=False)
        assert all(p.scenario_dict["seed"] == BASE.seed
                   for p in sweep.expand())

    def test_rng_derive_is_deterministic(self):
        assert RandomStreams(5).derive("x") == RandomStreams(5).derive("x")
        assert RandomStreams(5).derive("x") != RandomStreams(5).derive("y")
        assert RandomStreams(5).derive("x") != RandomStreams(6).derive("x")


class TestApplyOverrides:
    def test_base_not_mutated(self):
        base = {"a": {"b": 1}}
        out = apply_overrides(base, {"a.b": 2, "c": 3})
        assert base == {"a": {"b": 1}}
        assert out == {"a": {"b": 2}, "c": 3}

    def test_override_creates_missing_parents(self):
        out = apply_overrides({}, {"mobility.wander_radius": 4.0})
        assert out == {"mobility": {"wander_radius": 4.0}}


# ----------------------------------------------------------------------
class TestDeterminism:
    """The cache's correctness assumption: a point's record is a pure
    function of its scenario dict (satellite: seed determinism)."""

    def test_same_scenario_same_summary_twice(self):
        scn = scenario_to_dict(Scenario(n=6, horizon=500.0, seed=3))
        a = normalize_record(run_point(scn))
        b = normalize_record(run_point(scn))
        a.pop("elapsed"), b.pop("elapsed")
        assert a == b

    def test_summary_identical_across_worker_process_boundary(self):
        sweep = Sweep(base=BASE, axes={"n": [4, 5, 6]})
        serial = CampaignRunner(sweep, workers=0, progress=QUIET).run()
        parallel = CampaignRunner(sweep, workers=3, progress=QUIET).run()
        assert serial.ok and parallel.ok
        for s, p in zip(serial.records, parallel.records):
            assert s["hash"] == p["hash"]
            assert s["summary"] == p["summary"]
            assert s["scenario"] == p["scenario"]

    def test_different_seeds_differ(self):
        base = scenario_to_dict(Scenario(n=6, horizon=500.0, seed=3))
        other = dict(base, seed=4)
        a = run_point(base)["summary"]
        b = run_point(other)["summary"]
        assert a != b


# ----------------------------------------------------------------------
class TestStore:
    def test_hash_covers_scenario_content(self):
        a = scenario_to_dict(Scenario(n=4))
        b = scenario_to_dict(Scenario(n=5))
        assert point_hash(a) != point_hash(b)
        assert point_hash(a) == point_hash(dict(a))

    def test_put_get_reload(self, tmp_path):
        store = ResultStore(tmp_path / "c")
        record = {"hash": "abc", "summary": {"delivered": 1}}
        store.put(record)
        assert "abc" in store
        fresh = ResultStore(tmp_path / "c")
        assert fresh.get("abc")["summary"] == {"delivered": 1}

    def test_truncated_tail_ignored(self, tmp_path):
        store = ResultStore(tmp_path / "c")
        store.put({"hash": "abc", "summary": {}})
        with store.results_path.open("a") as fh:
            fh.write('{"hash": "def", "summ')   # crash mid-write
        fresh = ResultStore(tmp_path / "c")
        assert "abc" in fresh and "def" not in fresh

    def test_write_index(self, tmp_path):
        store = ResultStore(tmp_path / "c")
        store.put({"hash": "abc", "summary": {}, "label": "n=4"})
        store.write_index()
        index = json.loads(store.index_path.read_text())
        assert index["count"] == 1
        assert "abc" in index["points"]


# ----------------------------------------------------------------------
class TestRunner:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        sweep = tiny_sweep()
        store = ResultStore(tmp_path / "c")
        first = CampaignRunner(sweep, store, workers=0, progress=QUIET).run()
        assert first.cached == 0 and first.ran == 4
        events = []
        second = CampaignRunner(
            sweep, ResultStore(tmp_path / "c"), workers=0,
            progress=lambda ev, p=None, **i: events.append(ev)).run()
        assert second.cached == 4 and second.ran == 0
        assert events.count("cached") == 4
        # and the records agree with the cold run
        for a, b in zip(first.records, second.records):
            assert a["summary"] == b["summary"]

    def test_interrupted_campaign_resumes_remaining_points(self, tmp_path):
        sweep = tiny_sweep()
        points = sweep.expand()
        store = ResultStore(tmp_path / "c")
        # simulate a crash after two completed points
        for point in points[:2]:
            record = normalize_record(run_point(point.scenario_dict))
            record["hash"] = point_hash(point.scenario_dict)
            store.put(record)
        result = CampaignRunner(sweep, ResultStore(tmp_path / "c"),
                                workers=0, progress=QUIET).run()
        assert result.cached == 2 and result.ran == 2
        assert len(result.records) == 4

    def test_failed_point_reported_and_rest_completes(self, tmp_path):
        # n=1 fails Scenario validation inside the worker
        sweep = Sweep(base=BASE, points=[{"n": 4}, {"n": 1}])
        result = CampaignRunner(sweep, ResultStore(tmp_path / "c"),
                                workers=2, retries=1, progress=QUIET).run()
        assert not result.ok
        assert len(result.records) == 1
        [failure] = result.failures
        assert failure.point.overrides == {"n": 1}
        assert failure.attempts == 2
        assert "at least 2 stations" in failure.error

    def test_serial_failure_path(self):
        sweep = Sweep(base=BASE, points=[{"n": 1}, {"n": 4}])
        result = CampaignRunner(sweep, workers=0, retries=0,
                                progress=QUIET).run()
        assert len(result.failures) == 1 and len(result.records) == 1

    def test_timeout_kills_and_fails_point(self, tmp_path, monkeypatch):
        # make the worker hang: horizon so large the run outlives the timeout
        sweep = Sweep(base=BASE, points=[{"n": 4, "horizon": 5e7}])
        result = CampaignRunner(sweep, workers=1, timeout=0.2, retries=0,
                                progress=QUIET).run()
        assert not result.ok
        assert "timeout" in result.failures[0].error

    def test_records_ordered_by_sweep_not_completion(self, tmp_path):
        sweep = Sweep(base=BASE, mode="zip",
                      axes={"n": [12, 4, 8], "horizon": [900.0, 100.0,
                                                         400.0]})
        result = CampaignRunner(sweep, workers=3, progress=QUIET).run()
        assert [r["scenario"]["n"] for r in result.records] == [12, 4, 8]


# ----------------------------------------------------------------------
class TestAggregation:
    def run_records(self):
        sweep = tiny_sweep()
        return sweep, CampaignRunner(sweep, workers=0,
                                     progress=QUIET).run().records

    def test_get_field_resolution_order(self):
        record = {"hash": "h", "summary": {"delivered": 9},
                  "scenario": {"n": 4, "traffic": {"rate": 0.02}}}
        assert get_field(record, "hash") == "h"
        assert get_field(record, "delivered") == 9
        assert get_field(record, "n") == 4
        assert get_field(record, "traffic.rate") == 0.02
        assert get_field(record, "nope") is None

    def test_table_and_markdown(self):
        sweep, records = self.run_records()
        table = campaign_table(records, ["n", "l", "delivered"], title="t")
        assert table.startswith("=== t ===")
        assert len(table.splitlines()) == 2 + len(records)
        md = campaign_markdown(records, ["n", "l", "delivered"])
        assert md.splitlines()[0] == "| n | l | delivered |"

    def test_default_columns_start_with_axes(self):
        sweep, records = self.run_records()
        columns = default_columns(sweep, records)
        headers = [c[0] if isinstance(c, tuple) else c for c in columns]
        assert headers[:2] == ["n", "l"]
        assert "delivered" in headers

    def test_aligned_table_matches_harness_format(self):
        out = aligned_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        assert out == " a     bb\n 1  2.500\n10  0.250"


# ----------------------------------------------------------------------
class TestSummaryConfigEcho:
    def test_summary_carries_resolved_config(self):
        from repro.scenarios import run_scenario
        scn = Scenario(n=5, l=2, k=1, horizon=300.0, seed=42,
                       traffic=TrafficMix(kind="poisson", rate=0.03))
        summary = run_scenario(scn).summary()
        config = summary["config"]
        assert config["n"] == 5 and config["l"] == 2 and config["k"] == 1
        assert config["seed"] == 42 and config["horizon"] == 300.0
        assert config["traffic"]["kind"] == "poisson"
        assert config["traffic"]["rate"] == 0.03

    def test_campaign_records_share_the_shape(self, tmp_path):
        result = CampaignRunner(Sweep(base=BASE, points=[{"n": 4}]),
                                ResultStore(tmp_path / "c"),
                                workers=0, progress=QUIET).run()
        [record] = result.records
        config = record["summary"]["config"]
        assert config["n"] == 4
        assert config["seed"] == record["scenario"]["seed"]
