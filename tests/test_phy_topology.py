"""Unit + property tests for connectivity graphs, ring and tree construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy import (
    ConnectivityGraph,
    TopologyError,
    build_bfs_tree,
    construct_ring,
    dfs_token_tour,
    ring_is_feasible,
    ring_placement,
)


def circle_graph(n, radius=30.0, radio_range=None):
    pos = ring_placement(n, radius=radius)
    if radio_range is None:
        # comfortably covers adjacent chords
        radio_range = 2 * radius * np.sin(np.pi / n) * 1.3
    return ConnectivityGraph(pos, radio_range)


class TestConnectivityGraph:
    def test_basic_adjacency(self):
        pos = np.array([[0, 0], [1, 0], [5, 0]], dtype=float)
        g = ConnectivityGraph(pos, 2.0)
        assert g.in_range(0, 1)
        assert not g.in_range(0, 2)
        assert g.neighbors(0) == [1]
        assert g.degree(1) == 1
        assert g.distance(0, 2) == pytest.approx(5.0)

    def test_custom_node_ids(self):
        pos = np.array([[0, 0], [1, 0]], dtype=float)
        g = ConnectivityGraph(pos, 2.0, node_ids=[10, 20])
        assert g.in_range(10, 20)
        assert g.has_node(10) and not g.has_node(0)
        assert np.allclose(g.position(20), [1, 0])

    def test_duplicate_node_ids_rejected(self):
        pos = np.zeros((2, 2))
        with pytest.raises(ValueError):
            ConnectivityGraph(pos, 1.0, node_ids=[1, 1])

    def test_mismatched_ids_rejected(self):
        with pytest.raises(ValueError):
            ConnectivityGraph(np.zeros((2, 2)), 1.0, node_ids=[1])

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            ConnectivityGraph(np.zeros((2, 2)), 0.0)

    def test_is_connected(self):
        pos = np.array([[0, 0], [1, 0], [2, 0], [50, 50]], dtype=float)
        g = ConnectivityGraph(pos, 1.5)
        assert not g.is_connected()
        g2 = ConnectivityGraph(pos[:3], 1.5)
        assert g2.is_connected()

    def test_single_node_connected(self):
        g = ConnectivityGraph(np.zeros((1, 2)), 1.0)
        assert g.is_connected()
        assert g.min_degree() == 0

    def test_min_degree(self):
        g = circle_graph(6)
        assert g.min_degree() == 2


class TestRingConstruction:
    def test_circle_layout_yields_feasible_ring(self):
        g = circle_graph(10)
        order = construct_ring(g)
        assert ring_is_feasible(order, g)
        assert sorted(order) == list(range(10))

    def test_two_station_ring(self):
        g = ConnectivityGraph(np.array([[0.0, 0], [1, 0]]), 2.0)
        assert construct_ring(g) == [0, 1]

    def test_two_station_out_of_range(self):
        g = ConnectivityGraph(np.array([[0.0, 0], [10, 0]]), 2.0)
        with pytest.raises(TopologyError):
            construct_ring(g)

    def test_degree_below_two_rejected(self):
        # chain of 3: endpoints have degree 1
        pos = np.array([[0.0, 0], [1, 0], [2, 0]])
        g = ConnectivityGraph(pos, 1.5)
        with pytest.raises(TopologyError):
            construct_ring(g)

    def test_empty_graph_rejected(self):
        g = ConnectivityGraph(np.zeros((0, 2)), 1.0)
        with pytest.raises(TopologyError):
            construct_ring(g)

    def test_single_station_ring(self):
        g = ConnectivityGraph(np.zeros((1, 2)), 1.0)
        assert construct_ring(g) == [0]

    def test_feasibility_checker_rejects_wrong_sets(self):
        g = circle_graph(5)
        assert not ring_is_feasible([0, 1, 2, 3], g)       # missing node
        assert not ring_is_feasible([0, 1, 2, 3, 3], g)    # duplicate

    def test_feasibility_checker_rejects_out_of_range_edge(self):
        pos = np.array([[0.0, 0], [1, 0], [1, 1], [0, 1], [0.5, 10.0]])
        g = ConnectivityGraph(pos, 1.6)
        assert not ring_is_feasible([0, 1, 2, 3, 4], g)

    def test_scrambled_circle_recovered(self):
        """Angular heuristic must recover a ring regardless of id order."""
        rng = np.random.default_rng(3)
        pos = ring_placement(12, radius=30.0)
        perm = rng.permutation(12)
        g = ConnectivityGraph(pos[perm], 2 * 30.0 * np.sin(np.pi / 12) * 1.3)
        order = construct_ring(g)
        assert ring_is_feasible(order, g)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=3, max_value=25))
    def test_ring_on_dense_clique_always_found(self, n):
        rng = np.random.default_rng(n)
        pos = rng.uniform(0, 10, size=(n, 2))
        g = ConnectivityGraph(pos, 100.0)  # clique
        order = construct_ring(g)
        assert ring_is_feasible(order, g)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=3, max_value=30), st.floats(min_value=1.1, max_value=2.0))
    def test_ring_on_circle_with_margin(self, n, margin):
        g = circle_graph(n, radio_range=2 * 30.0 * np.sin(np.pi / n) * margin)
        order = construct_ring(g)
        assert ring_is_feasible(order, g)


class TestTree:
    def test_bfs_tree_shape(self):
        g = circle_graph(6)
        children = build_bfs_tree(g, root=0)
        # every non-root appears exactly once as a child
        all_children = [c for cs in children.values() for c in cs]
        assert sorted(all_children) == [1, 2, 3, 4, 5]

    def test_bfs_tree_respects_radio_range(self):
        g = circle_graph(8)
        children = build_bfs_tree(g, root=0)
        for parent, cs in children.items():
            for c in cs:
                assert g.in_range(parent, c)

    def test_bfs_tree_disconnected_raises(self):
        pos = np.array([[0.0, 0], [1, 0], [100, 100], [101, 100]])
        g = ConnectivityGraph(pos, 2.0)
        with pytest.raises(TopologyError):
            build_bfs_tree(g, root=0)

    def test_bfs_tree_unknown_root(self):
        g = circle_graph(4)
        with pytest.raises(TopologyError):
            build_bfs_tree(g, root=99)

    def test_dfs_tour_length_is_2n_minus_2_hops(self):
        """The Sec. 3.2.1 claim: token crosses 2(N-1) links per round."""
        for n in (3, 5, 8, 13):
            g = circle_graph(n)
            children = build_bfs_tree(g, root=0)
            tour = dfs_token_tour(children, root=0)
            assert len(tour) - 1 == 2 * (n - 1)
            assert tour[0] == tour[-1] == 0

    def test_dfs_tour_visits_every_station(self):
        g = circle_graph(9)
        children = build_bfs_tree(g, root=0)
        tour = dfs_token_tour(children, root=0)
        assert set(tour) == set(range(9))

    def test_dfs_tour_consecutive_hops_are_tree_edges(self):
        g = circle_graph(7)
        children = build_bfs_tree(g, root=0)
        edges = {(p, c) for p, cs in children.items() for c in cs}
        edges |= {(c, p) for p, c in edges}
        tour = dfs_token_tour(children, root=0)
        for a, b in zip(tour, tour[1:]):
            assert (a, b) in edges

    def test_dfs_tour_fig4_example(self):
        """Fig. 4(a): root 1 with children 2 and 3 -> tour 1,2,1,3,1."""
        children = {1: [2, 3], 2: [], 3: []}
        assert dfs_token_tour(children, root=1) == [1, 2, 1, 3, 1]

    def test_dfs_tour_unknown_root(self):
        with pytest.raises(TopologyError):
            dfs_token_tour({0: []}, root=5)
