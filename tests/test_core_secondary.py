"""Tests for secondary ring formation and CDMA coexistence."""

import numpy as np
import pytest

from repro.core import (Packet, QuotaConfig, ServiceClass, WRTRingConfig,
                        WRTRingNetwork)
from repro.core.secondary import (SecondaryRingError, form_secondary_ring,
                                  partition_unreachable_requesters)
from repro.phy import ConnectivityGraph, SlottedChannel, ring_placement
from repro.sim import Engine


def two_cluster_world(n_primary=5, n_secondary=4, separation=500.0):
    """Two circles of stations too far apart to hear each other."""
    a = ring_placement(n_primary, radius=20.0)
    b = ring_placement(n_secondary, radius=20.0) + np.array([separation, 0.0])
    pos = np.vstack([a, b])
    ids = list(range(n_primary)) + [100 + i for i in range(n_secondary)]
    rng = 2 * 20.0 * np.sin(np.pi / min(n_primary, n_secondary)) * 1.6
    graph = ConnectivityGraph(pos, rng, node_ids=ids)
    return graph, list(range(n_primary)), [100 + i for i in range(n_secondary)]


class TestPartition:
    def test_far_outsiders_flagged(self):
        graph, primary, outsiders = two_cluster_world()
        excluded = partition_unreachable_requesters(graph, primary, outsiders)
        assert excluded == outsiders

    def test_close_requester_not_flagged(self):
        n = 6
        pos = ring_placement(n, radius=30.0)
        spot = (pos[0] + pos[1]) / 2 * 1.02
        graph = ConnectivityGraph(np.vstack([pos, spot.reshape(1, 2)]),
                                  2 * 30.0 * np.sin(np.pi / n) * 1.4,
                                  node_ids=list(range(n)) + [99])
        excluded = partition_unreachable_requesters(graph, list(range(n)), [99])
        assert excluded == []


class TestFormation:
    def test_secondary_ring_forms_and_runs(self):
        graph, primary, outsiders = two_cluster_world()
        engine = Engine()
        quotas = {sid: QuotaConfig.two_class(1, 1) for sid in outsiders}
        net = form_secondary_ring(engine, outsiders, graph, quotas)
        net.start()
        engine.run(until=200)
        assert sorted(net.members) == sorted(outsiders)
        assert net.rotation_log.all_samples()
        # carries traffic
        t0 = engine.now
        p = Packet(src=outsiders[0], dst=outsiders[2],
                   service=ServiceClass.PREMIUM, created=t0)
        net.enqueue(p)
        engine.run(until=t0 + 100)
        assert p.delivered

    def test_too_few_candidates(self):
        graph, primary, outsiders = two_cluster_world()
        with pytest.raises(SecondaryRingError):
            form_secondary_ring(Engine(), outsiders[:1], graph,
                                {outsiders[0]: QuotaConfig.two_class(1, 1)})

    def test_unreachable_candidates(self):
        pos = np.array([[0.0, 0.0], [1000.0, 0.0], [2000.0, 0.0]])
        graph = ConnectivityGraph(pos, 10.0, node_ids=[1, 2, 3])
        quotas = {sid: QuotaConfig.two_class(1, 1) for sid in (1, 2, 3)}
        with pytest.raises(SecondaryRingError):
            form_secondary_ring(Engine(), [1, 2, 3], graph, quotas)

    def test_missing_quota_rejected(self):
        graph, primary, outsiders = two_cluster_world()
        with pytest.raises(SecondaryRingError):
            form_secondary_ring(Engine(), outsiders, graph, {})

    def test_codes_disjoint_from_primary(self):
        graph, primary, outsiders = two_cluster_world()
        engine = Engine()
        from repro.phy.cdma import assign_codes_sequential
        primary_codes = assign_codes_sequential(primary)
        quotas = {sid: QuotaConfig.two_class(1, 1) for sid in outsiders}
        net = form_secondary_ring(engine, outsiders, graph, quotas,
                                  primary_codes=primary_codes)
        primary_set = {primary_codes.code_of(s) for s in primary}
        secondary_set = {net.codes.code_of(s) for s in net.members}
        assert primary_set.isdisjoint(secondary_set)


class TestCoexistence:
    def test_two_rings_share_the_air_without_collisions(self):
        """Both rings fully saturated, every hop of both through ONE shared
        channel: CDMA isolation means zero collisions and full throughput."""
        # place the clusters close enough that stations could overhear the
        # other ring if codes clashed
        graph, primary, outsiders = two_cluster_world(separation=45.0)
        engine = Engine()
        channel = SlottedChannel(graph)

        cfg_a = WRTRingConfig.homogeneous(primary, l=2, k=1,
                                          rap_enabled=False,
                                          validate_phy=True)
        net_a = WRTRingNetwork(engine, primary, cfg_a, graph=graph,
                               channel=channel)
        from repro.core.config import WRTRingConfig as _Cfg
        cfg_b = _Cfg(quotas={sid: QuotaConfig.two_class(2, 1)
                             for sid in outsiders},
                     rap_enabled=False, validate_phy=True)
        net_b = form_secondary_ring(engine, outsiders, graph,
                                    dict(cfg_b.quotas), channel=channel,
                                    primary_codes=net_a.codes, config=cfg_b)

        import random
        rng = random.Random(0)

        def saturate(net):
            def top(t):
                for sid in net.members:
                    st = net.stations[sid]
                    while len(st.rt_queue) < 8:
                        dst = rng.choice([d for d in net.members if d != sid])
                        st.enqueue(Packet(src=sid, dst=dst,
                                          service=ServiceClass.PREMIUM,
                                          created=t), t)
            net.add_tick_hook(top)

        saturate(net_a)
        saturate(net_b)
        from repro.core.secondary import SharedChannelPump
        pump = SharedChannelPump(engine, channel, [net_a, net_b])
        net_a.start()
        net_b.start()
        pump.start()
        engine.run(until=2000)

        assert channel.stats.collisions == 0
        assert channel.stats.frames_sent > 5000
        assert net_a.metrics.total_delivered > 500
        assert net_b.metrics.total_delivered > 500
        # both rings also kept their Theorem-1 guarantees
        assert net_a.rotation_log.worst() < net_a.sat_time_bound()
        assert net_b.rotation_log.worst() < net_b.sat_time_bound()

    def test_clashing_codes_do_collide_through_the_pump(self):
        """Negative control: reuse the primary's codes in the secondary ring
        while a bridge station can hear both — the pump must observe real
        cross-ring collisions (proving the zero above is meaningful)."""
        import random

        # overlapping clusters: several stations hear members of both rings
        graph, primary, outsiders = two_cluster_world(separation=25.0)
        engine = Engine()
        channel = SlottedChannel(graph)
        cfg_a = WRTRingConfig.homogeneous(primary, l=2, k=1,
                                          rap_enabled=False,
                                          validate_phy=True)
        net_a = WRTRingNetwork(engine, primary, cfg_a, graph=graph,
                               channel=channel)
        # secondary deliberately assigned the SAME code ids as the primary
        from repro.phy.cdma import CodeSpace
        clash = CodeSpace()
        for i, sid in enumerate(outsiders):
            clash.assign(sid, i)           # identical to primary's 0..n-1
        cfg_b = WRTRingConfig(
            quotas={sid: QuotaConfig.two_class(2, 1) for sid in outsiders},
            rap_enabled=False, validate_phy=True)
        net_b = WRTRingNetwork(engine, outsiders, cfg_b, graph=graph,
                               channel=channel, codes=clash)

        rng = random.Random(1)

        def saturate(net):
            def top(t):
                for sid in net.members:
                    st = net.stations[sid]
                    while len(st.rt_queue) < 8:
                        dst = rng.choice([d for d in net.members if d != sid])
                        st.enqueue(Packet(src=sid, dst=dst,
                                          service=ServiceClass.PREMIUM,
                                          created=t), t)
            net.add_tick_hook(top)

        saturate(net_a)
        saturate(net_b)
        from repro.core.secondary import SharedChannelPump
        pump = SharedChannelPump(engine, channel, [net_a, net_b])
        net_a.start()
        net_b.start()
        pump.start()
        engine.run(until=1000)
        # only run this assertion when the geometry actually overlaps
        bridge = [h for h in primary
                  if any(graph.in_range(h, o) for o in outsiders)]
        assert bridge, "test geometry must overlap"
        assert channel.stats.collisions > 0


class TestPumpLifecycle:
    def test_double_start_rejected_and_stop(self):
        import numpy as np

        from repro.core.secondary import SharedChannelPump
        from repro.phy import ConnectivityGraph, SlottedChannel
        from repro.sim import Engine

        graph = ConnectivityGraph(np.zeros((2, 2)), 1.0)
        engine = Engine()
        channel = SlottedChannel(graph)
        pump = SharedChannelPump(engine, channel, [])
        assert channel.external_pump is True
        pump.start()
        with pytest.raises(RuntimeError):
            pump.start()
        pump.stop()
        engine.run(until=10)   # no pump events left

    def test_per_network_resolve_is_noop_under_pump(self):
        import numpy as np

        from repro.core.secondary import SharedChannelPump
        from repro.phy import ConnectivityGraph, Frame, SlottedChannel
        from repro.sim import Engine

        graph = ConnectivityGraph(np.array([[0.0, 0.0], [1.0, 0.0]]), 2.0)
        engine = Engine()
        channel = SlottedChannel(graph)
        channel.register_listener(1, {7})
        SharedChannelPump(engine, channel, [])
        channel.transmit(Frame(src=0, code=7, payload="x"))
        # ordinary resolution is suppressed...
        assert channel.resolve_slot(0.0) == {}
        assert channel.pending_count() == 1
        # ...until the pump forces it
        out = channel.force_resolve_slot(0.0)
        assert 1 in out
