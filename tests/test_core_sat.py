"""Unit tests for the SAT signal object and the rotation log."""

import pytest

from repro.core import SAT, RotationLog
from repro.core.ring import NetworkMetrics
from repro.core.config import WRTRingConfig
from repro.core.packet import ServiceClass


class TestSAT:
    def test_departure_and_arrival(self):
        sat = SAT()
        sat.at_station = 0
        sat.depart(1, arrival_time=5.0)
        assert sat.in_flight and sat.at_station is None
        assert sat.in_flight_to == 1 and sat.arrival_time == 5.0
        arrived_at = sat.arrive()
        assert arrived_at == 1
        assert sat.at_station == 1 and not sat.in_flight
        assert sat.hops == 1

    def test_double_depart_rejected(self):
        sat = SAT()
        sat.at_station = 0
        sat.depart(1, 5.0)
        with pytest.raises(RuntimeError):
            sat.depart(2, 6.0)

    def test_arrive_without_flight_rejected(self):
        with pytest.raises(RuntimeError):
            SAT().arrive()

    def test_recovery_transitions(self):
        sat = SAT()
        sat.to_recovery(failed_station=3, originator=4)
        assert sat.kind == SAT.RECOVERY
        assert sat.failed_station == 3 and sat.originator == 4
        sat.to_normal()
        assert sat.kind == SAT.NORMAL
        assert sat.failed_station is None and sat.originator is None

    def test_rap_fields_default_clear(self):
        sat = SAT()
        assert not sat.rap_mutex and sat.rap_owner is None


class TestRotationLog:
    def test_per_station_samples(self):
        log = RotationLog()
        log.add(0, 5.0)
        log.add(0, 6.0)
        log.add(1, 7.0)
        assert log.samples(0) == [5.0, 6.0]
        assert log.samples(1) == [7.0]
        assert log.samples(9) == []
        assert log.stations() == [0, 1]
        assert sorted(log.all_samples()) == [5.0, 6.0, 7.0]
        assert log.worst() == 7.0
        assert log.mean() == 6.0

    def test_nonpositive_rotation_rejected(self):
        log = RotationLog()
        with pytest.raises(ValueError):
            log.add(0, 0.0)
        with pytest.raises(ValueError):
            log.add(0, -1.0)

    def test_empty_worst_raises(self):
        with pytest.raises(ValueError):
            RotationLog().worst()
        with pytest.raises(ValueError):
            RotationLog().mean()

    def test_hops_per_round_marks(self):
        log = RotationLog()
        log.mark_round(6)     # warm-up mark
        log.mark_round(12)
        log.mark_round(18)
        assert log.hops_per_round() == [6, 6, 6]

    def test_samples_are_copies(self):
        log = RotationLog()
        log.add(0, 5.0)
        log.samples(0).append(99.0)
        assert log.samples(0) == [5.0]


class TestNetworkMetrics:
    def test_network_metrics_totals(self):
        m = NetworkMetrics()
        m.delivered[ServiceClass.PREMIUM] = 3
        m.delivered[ServiceClass.BEST_EFFORT] = 4
        assert m.total_delivered == 7


class TestConfigValidation:
    def test_t_rap_sum(self):
        cfg = WRTRingConfig.homogeneous(range(3), l=1, k=1, t_ear=5,
                                        t_update=2)
        assert cfg.t_rap == 7
        assert cfg.effective_t_rap() == 7
        cfg2 = WRTRingConfig.homogeneous(range(3), l=1, k=1,
                                         rap_enabled=False)
        assert cfg2.effective_t_rap() == 0

    def test_bounds_on_fields(self):
        with pytest.raises(ValueError):
            WRTRingConfig(t_ear=1)
        with pytest.raises(ValueError):
            WRTRingConfig(t_update=0)
        with pytest.raises(ValueError):
            WRTRingConfig(s_round=-1)
        with pytest.raises(ValueError):
            WRTRingConfig(sat_hop_slots=0)
        with pytest.raises(ValueError):
            WRTRingConfig(rebuild_retry_limit=0)

    def test_quota_type_checked(self):
        with pytest.raises(TypeError):
            WRTRingConfig(quotas={0: (1, 1)})
