"""Integration tests for the TPT baseline (Sec. 3.1)."""

import random

import numpy as np
import pytest

from repro.baselines import TPTConfig, TPTNetwork, choose_ttrt
from repro.core import Packet, ServiceClass
from repro.phy import ConnectivityGraph, ring_placement
from repro.sim import Engine


def star_children(n):
    """Fig. 4(a)-style: root 0 with n-1 leaves."""
    children = {i: [] for i in range(n)}
    children[0] = list(range(1, n))
    return children


def chain_children(n):
    children = {i: [] for i in range(n)}
    for i in range(n - 1):
        children[i] = [i + 1]
    return children


def make_tpt(n=5, H=2, margin=2.0, children=None, **cfg_kwargs):
    engine = Engine()
    children = children if children is not None else star_children(n)
    walk = 2 * (n - 1)
    ttrt = choose_ttrt([H] * n, walk, margin=margin)
    cfg = TPTConfig(H={i: H for i in range(n)}, ttrt=ttrt, **cfg_kwargs)
    net = TPTNetwork(engine, children, root=0, config=cfg)
    return engine, net


def saturate(net, rng_seed=0, rt=10, be=10):
    rng = random.Random(rng_seed)

    def top(t):
        for sid, st in list(net.stations.items()):
            if not st.alive:
                continue
            while len(st.rt_queue) < rt:
                dst = rng.choice([d for d in net.members if d != sid])
                st.enqueue(Packet(src=sid, dst=dst,
                                  service=ServiceClass.PREMIUM, created=t), t)
            while len(st.be_queue) < be:
                dst = rng.choice([d for d in net.members if d != sid])
                st.enqueue(Packet(src=sid, dst=dst,
                                  service=ServiceClass.BEST_EFFORT,
                                  created=t), t)
    net.add_tick_hook(top)


class TestConstruction:
    def test_missing_H_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError):
            TPTNetwork(engine, star_children(3), root=0,
                       config=TPTConfig(H={0: 1}, ttrt=20.0))

    def test_bad_root_rejected(self):
        engine = Engine()
        with pytest.raises(ValueError):
            TPTNetwork(engine, star_children(3), root=9,
                       config=TPTConfig(H={i: 1 for i in range(3)}, ttrt=20.0))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TPTConfig(H={}, ttrt=0.0)
        with pytest.raises(ValueError):
            TPTConfig(H={}, ttrt=10.0, hop_slots=0)
        with pytest.raises(ValueError):
            TPTConfig(H={}, ttrt=10.0, rap_enabled=True, t_rap=1)

    def test_walk_time(self):
        _, net = make_tpt(7)
        assert net.walk_time() == 12


class TestTokenCirculation:
    def test_hops_per_round_is_2n_minus_2(self):
        """Sec. 3.2.1 / Fig. 4a measured on the live protocol."""
        for n, children in ((4, star_children(4)), (5, chain_children(5))):
            engine, net = make_tpt(n, children=children)
            net.start()
            engine.run(until=60 * n)
            hops = net.rotation_log.hops_per_round()[1:]
            assert hops and all(h == 2 * (n - 1) for h in hops)

    def test_idle_rotation_equals_walk_time(self):
        engine, net = make_tpt(6)
        net.start()
        engine.run(until=500)
        samples = net.rotation_log.all_samples()
        assert samples and all(s == net.walk_time() for s in samples)

    def test_hop_slots_scale_walk(self):
        engine = Engine()
        n = 4
        cfg = TPTConfig(H={i: 1 for i in range(n)}, ttrt=60.0, hop_slots=3)
        net = TPTNetwork(engine, star_children(n), root=0, config=cfg)
        net.start()
        engine.run(until=500)
        assert net.rotation_log.all_samples()[-1] == 2 * (n - 1) * 3


class TestTimedTokenBehaviour:
    def test_rotation_never_exceeds_2ttrt(self):
        engine, net = make_tpt(6, H=2, margin=1.6)
        saturate(net)
        net.start()
        engine.run(until=8000)
        assert net.rotation_log.worst() <= 2 * net.config.ttrt

    def test_sync_capped_at_H_per_round(self):
        engine, net = make_tpt(4, H=3)
        saturate(net, be=0)
        net.start()
        engine.run(until=2000)
        for sid, st in net.stations.items():
            assert st.sent[ServiceClass.PREMIUM] <= st.token_visits * 3

    def test_only_token_holder_transmits(self):
        """Aggregate throughput can never exceed 1 packet/slot."""
        engine, net = make_tpt(6, H=3, margin=2.0)
        saturate(net)
        net.start()
        engine.run(until=4000)
        assert net.metrics.total_delivered <= 4000

    def test_async_squeezed_under_sync_load(self):
        engine, net = make_tpt(5, H=4, margin=1.2)
        saturate(net)
        net.start()
        engine.run(until=4000)
        sync = sum(st.sent[ServiceClass.PREMIUM] for st in net.stations.values())
        async_ = sum(st.sent[ServiceClass.BEST_EFFORT]
                     for st in net.stations.values())
        assert sync > async_

    def test_delivery_and_delays_recorded(self):
        engine, net = make_tpt(4)
        net.start()
        engine.run(until=50)
        t0 = engine.now
        p = Packet(src=1, dst=2, service=ServiceClass.PREMIUM, created=t0,
                   deadline=t0 + 4 * net.config.ttrt)
        net.enqueue(p)
        engine.run(until=t0 + 300)
        assert p.delivered
        assert net.metrics.deadlines.met == 1

    def test_enqueue_unknown_station_rejected(self):
        engine, net = make_tpt(3)
        with pytest.raises(KeyError):
            net.enqueue(Packet(src=9, dst=1, service=ServiceClass.PREMIUM,
                               created=0.0))


class TestTokenLoss:
    def test_injected_loss_reissued_without_rebuild(self):
        """Token lost but no station dead: the probe comes back and the
        token is re-issued (tree still valid)."""
        engine, net = make_tpt(5)
        net.start()
        engine.run(until=50)
        net.drop_token()
        engine.run(until=2000)
        [rec] = net.records
        assert rec.kind == "token_loss"
        assert rec.outcome == "token_reissued"
        assert sorted(net.members) == list(range(5))
        # rotations resume
        assert net.rotation_log.all_samples()[-1] == net.walk_time()

    def test_detection_within_2ttrt_plus_round(self):
        engine, net = make_tpt(5)
        net.start()
        engine.run(until=50)
        net.drop_token()
        engine.run(until=3000)
        [rec] = net.records
        assert rec.detection_delay <= 2 * net.config.ttrt + net.walk_time()

    def test_dead_station_forces_tree_rebuild(self):
        engine, net = make_tpt(6)
        net.start()
        engine.run(until=60)
        net.kill_station(3)
        engine.run(until=4000)
        [rec] = net.records
        assert rec.outcome == "rebuild"
        assert 3 not in net.members
        assert len(net.members) == 5
        # tree functional again
        t0 = engine.now
        p = Packet(src=1, dst=2, service=ServiceClass.PREMIUM, created=t0)
        net.enqueue(p)
        engine.run(until=t0 + 500)
        assert p.delivered

    def test_rebuild_uses_graph_when_available(self):
        n = 6
        pos = ring_placement(n, radius=30.0)
        graph = ConnectivityGraph(pos, 100.0)  # dense
        engine = Engine()
        ttrt = choose_ttrt([2] * n, 2 * (n - 1), margin=2.0)
        cfg = TPTConfig(H={i: 2 for i in range(n)}, ttrt=ttrt)
        net = TPTNetwork(engine, star_children(n), root=0, config=cfg,
                         graph=graph)
        net.start()
        engine.run(until=60)
        net.kill_station(2)
        engine.run(until=4000)
        assert 2 not in net.members
        assert not net.network_down

    def test_timers_quiet_when_healthy(self):
        engine, net = make_tpt(5, margin=2.5)
        saturate(net)
        net.start()
        engine.run(until=5000)
        assert net.records == []


class TestTPTJoin:
    def test_join_at_rap(self):
        engine, net = make_tpt(4, H=1, margin=3.0, rap_enabled=True, t_rap=6)
        net.start()
        engine.run(until=30)
        req = net.request_join(100, H_new=1, parent=0)
        engine.run(until=2000)
        assert req.accepted is True
        assert 100 in net.members
        assert req.t_joined is not None
        # tour now covers the new station
        assert 100 in net.tour

    def test_join_rejected_when_infeasible(self):
        engine, net = make_tpt(4, H=2, margin=1.05, rap_enabled=True, t_rap=6)
        net.start()
        engine.run(until=30)
        req = net.request_join(100, H_new=50, parent=0)
        engine.run(until=2000)
        assert req.accepted is False
        assert "Eq.7" in req.reason
        assert 100 not in net.members

    def test_join_requires_known_parent(self):
        engine, net = make_tpt(3, rap_enabled=True, t_rap=6)
        with pytest.raises(KeyError):
            net.request_join(100, H_new=1, parent=77)
        with pytest.raises(ValueError):
            net.request_join(0, H_new=1, parent=0)

    def test_rap_pauses_affect_rotation(self):
        engine, net = make_tpt(4, H=1, margin=3.0, rap_enabled=True, t_rap=8)
        net.start()
        engine.run(until=1000)
        assert net.raps_opened > 5
        # idle rotations now include the T_rap pause at the root
        tail = net.rotation_log.all_samples()[-5:]
        assert all(s >= net.walk_time() for s in tail)
        assert max(tail) >= net.walk_time() + 8
