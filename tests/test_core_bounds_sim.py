"""Empirical validation of the Sec. 2.6 theorems against the simulator.

These are the paper's central claims: under *any* traffic pattern the SAT
rotation time, multi-round windows and tagged-packet access delays stay
within the closed-form bounds.  We drive the simulator with saturating and
randomized adversarial loads and check every sample.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    check_multi_round,
    check_rotation_samples,
    mean_sat_rotation_bound,
    sat_multi_round_bound_homogeneous,
    sat_rotation_bound_homogeneous,
)
from repro.core import (Packet, ServiceClass, WRTRingConfig, WRTRingNetwork)
from repro.sim import Engine


def saturated_net(n, l, k, horizon, seed=0, rt_target=20, be_target=20,
                  rap_enabled=False, **cfg_kwargs):
    """A ring with every station backlogged in both classes."""
    rng = random.Random(seed)
    engine = Engine()
    cfg = WRTRingConfig.homogeneous(range(n), l=l, k=k,
                                    rap_enabled=rap_enabled, **cfg_kwargs)
    net = WRTRingNetwork(engine, list(range(n)), cfg)
    net.start()

    def top(t):
        for sid in net.members:
            st_ = net.stations[sid]
            while len(st_.rt_queue) < rt_target:
                dst = rng.choice([d for d in net.members if d != sid])
                st_.enqueue(Packet(src=sid, dst=dst,
                                   service=ServiceClass.PREMIUM, created=t), t)
            while len(st_.be_queue) < be_target:
                dst = rng.choice([d for d in net.members if d != sid])
                st_.enqueue(Packet(src=sid, dst=dst,
                                   service=ServiceClass.BEST_EFFORT,
                                   created=t), t)
    net.add_tick_hook(top)
    engine.run(until=horizon)
    return net


class TestTheorem1:
    """SAT_TIME_i < S + T_rap + 2·Σ(l_j + k_j)."""

    @pytest.mark.parametrize("n,l,k", [(3, 1, 1), (5, 2, 2), (8, 3, 1),
                                       (10, 1, 4), (6, 4, 0)])
    def test_saturated_rotations_below_bound(self, n, l, k):
        net = saturated_net(n, l, k, horizon=4000)
        bound = sat_rotation_bound_homogeneous(n, l, k)
        check = check_rotation_samples(net.rotation_log.all_samples(), bound)
        assert check.holds, str(check)
        assert check.samples > 50

    def test_bound_holds_per_station(self):
        net = saturated_net(6, 2, 2, horizon=4000)
        bound = sat_rotation_bound_homogeneous(6, 2, 2)
        for sid in net.rotation_log.stations():
            assert max(net.rotation_log.samples(sid)) < bound

    def test_bound_holds_with_rap(self):
        """With the RAP enabled, T_rap enters both measurement and bound."""
        net = saturated_net(5, 2, 1, horizon=6000, rap_enabled=True,
                            t_ear=6, t_update=3)
        bound = sat_rotation_bound_homogeneous(5, 2, 1, T_rap=9)
        check = check_rotation_samples(net.rotation_log.all_samples(), bound)
        assert check.holds, str(check)
        # and without accounting T_rap the measurements must exceed the
        # no-RAP bound's *idle* floor, proving the RAP is actually exercised
        assert net.join_manager.raps_opened > 10

    def test_heterogeneous_quotas(self):
        from repro.analysis import sat_rotation_bound
        from repro.core import QuotaConfig
        rng = random.Random(3)
        engine = Engine()
        quotas = {0: QuotaConfig.two_class(1, 0),
                  1: QuotaConfig.two_class(4, 2),
                  2: QuotaConfig.two_class(2, 3),
                  3: QuotaConfig.two_class(1, 1)}
        cfg = WRTRingConfig(quotas=quotas, rap_enabled=False)
        net = WRTRingNetwork(engine, [0, 1, 2, 3], cfg)
        net.start()

        def top(t):
            for sid in net.members:
                st_ = net.stations[sid]
                while len(st_.rt_queue) < 15:
                    dst = rng.choice([d for d in net.members if d != sid])
                    st_.enqueue(Packet(src=sid, dst=dst,
                                       service=ServiceClass.PREMIUM,
                                       created=t), t)
                while len(st_.be_queue) < 15:
                    dst = rng.choice([d for d in net.members if d != sid])
                    st_.enqueue(Packet(src=sid, dst=dst,
                                       service=ServiceClass.BEST_EFFORT,
                                       created=t), t)
        net.add_tick_hook(top)
        engine.run(until=4000)
        bound = sat_rotation_bound(4, 0, quotas.values())
        assert net.rotation_log.worst() < bound

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=3, max_value=9),
           l=st.integers(min_value=1, max_value=4),
           k=st.integers(min_value=0, max_value=3),
           seed=st.integers(min_value=0, max_value=10_000))
    def test_property_randomized_loads(self, n, l, k, seed):
        """Hypothesis-driven sweep: the Theorem-1 bound must hold for every
        (N, l, k, traffic-seed) combination."""
        rng = random.Random(seed)
        net = saturated_net(n, l, k, horizon=1500, seed=seed,
                            rt_target=rng.randint(1, 25),
                            be_target=rng.randint(0, 25))
        bound = sat_rotation_bound_homogeneous(n, l, k)
        samples = net.rotation_log.all_samples()
        assert samples and max(samples) < bound


class TestTheorem2:
    """SAT_TIME_i[n] <= n·S + n·T_rap + (n+1)·Σ(l_j + k_j)."""

    @pytest.mark.parametrize("window", [1, 2, 4, 8, 16])
    def test_multi_round_windows(self, window):
        net = saturated_net(6, 2, 1, horizon=6000)
        samples = net.rotation_log.samples(0)
        bound = sat_multi_round_bound_homogeneous(window, 6, 2, 1)
        check = check_multi_round(samples, window, bound)
        assert check.holds, str(check)

    def test_every_station_every_window(self):
        net = saturated_net(4, 1, 2, horizon=4000)
        for sid in net.rotation_log.stations():
            samples = net.rotation_log.samples(sid)
            for window in (1, 3, 7):
                bound = sat_multi_round_bound_homogeneous(window, 4, 1, 2)
                assert check_multi_round(samples, window, bound).holds


class TestProposition3:
    """E[SAT_TIME] <= S + T_rap + Σ(l_j + k_j)."""

    @pytest.mark.parametrize("n,l,k", [(4, 2, 1), (8, 1, 1), (6, 3, 3)])
    def test_mean_rotation_below_mean_bound(self, n, l, k):
        net = saturated_net(n, l, k, horizon=6000)
        mean = net.rotation_log.mean()
        bound = mean_sat_rotation_bound(n, 0, [(l, k)] * n)
        assert mean <= bound

    def test_saturation_pushes_mean_toward_bound(self):
        """Under full saturation the mean rotation is a significant fraction
        of the Prop. 3 value (the bound is meaningful, not vacuous)."""
        n, l, k = 6, 2, 2
        net = saturated_net(n, l, k, horizon=8000)
        mean = net.rotation_log.mean()
        bound = mean_sat_rotation_bound(n, 0, [(l, k)] * n)
        assert mean >= 0.3 * bound
        # and an idle ring sits far below it
        engine = Engine()
        cfg = WRTRingConfig.homogeneous(range(n), l=l, k=k, rap_enabled=False)
        idle = WRTRingNetwork(engine, list(range(n)), cfg)
        idle.start()
        engine.run(until=2000)
        assert idle.rotation_log.mean() < mean


class TestTheorem3:
    """T_wait <= SAT_TIME[ceil((x+1)/l) + 1] for a tagged RT packet."""

    @pytest.mark.parametrize("backlog", [0, 1, 3, 7])
    def test_tagged_packet_wait(self, backlog):
        from repro.analysis import access_delay_bound
        n, l, k = 5, 2, 2
        rng = random.Random(42 + backlog)
        engine = Engine()
        cfg = WRTRingConfig.homogeneous(range(n), l=l, k=k, rap_enabled=False)
        net = WRTRingNetwork(engine, list(range(n)), cfg)
        net.start()

        # adversarial background: all *other* stations saturated
        def top(t):
            for sid in net.members:
                if sid == 0:
                    continue
                st_ = net.stations[sid]
                while len(st_.rt_queue) < 15:
                    dst = rng.choice([d for d in net.members if d != sid])
                    st_.enqueue(Packet(src=sid, dst=dst,
                                       service=ServiceClass.PREMIUM,
                                       created=t), t)
                while len(st_.be_queue) < 15:
                    dst = rng.choice([d for d in net.members if d != sid])
                    st_.enqueue(Packet(src=sid, dst=dst,
                                       service=ServiceClass.BEST_EFFORT,
                                       created=t), t)
        net.add_tick_hook(top)
        engine.run(until=500)

        bound = access_delay_bound(backlog, l, n, 0, [(l, k)] * n)
        # repeat the tagged experiment at several epochs
        for epoch in range(10):
            t0 = engine.now
            st0 = net.stations[0]
            # install exactly `backlog` packets ahead of the tagged one
            for _ in range(backlog):
                st0.enqueue(Packet(src=0, dst=2,
                                   service=ServiceClass.PREMIUM,
                                   created=t0), t0)
            tagged = Packet(src=0, dst=2, service=ServiceClass.PREMIUM,
                            created=t0)
            st0.enqueue(tagged, t0)
            engine.run(until=t0 + bound + 5)
            assert tagged.t_send is not None, "tagged packet never sent"
            wait = tagged.t_send - tagged.t_enqueue
            assert wait <= bound, (
                f"epoch {epoch}: wait {wait} > bound {bound} (x={backlog})")
            engine.run(until=engine.now + 50)
