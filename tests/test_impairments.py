"""Tests for the stochastic channel-impairment layer and the protocol
hardening that lets the stack survive a lossy control plane.

Covers the loss model itself (spec validation, Gilbert-Elliott analytics,
noise windows, per-link determinism), the channel/ring integration points,
and the robustness contracts: rings under sustained 1-10% loss never hang
or corrupt state, consecutive SAT losses are attributed to the right
recovery episode, stale/duplicated control signals are discarded, and joins
on a lossy channel terminate (JOINED or GAVE_UP).  See docs/RESILIENCE.md.
"""

import json

import pytest

from repro.core import QuotaConfig, ServiceClass
from repro.core.config import WRTRingConfig
from repro.core.ring import WRTRingNetwork
from repro.events import types as _ev
from repro.faults import FaultSchedule
from repro.phy.impairments import (ChannelImpairments, ImpairmentSpec,
                                   NoiseBurst)
from repro.scenarios import Scenario, TrafficMix, build_scenario, run_scenario
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams


def _streams(seed=1):
    return RandomStreams(seed).fork("impairments")


# ----------------------------------------------------------------------
class TestNoiseBurst:
    def test_window_semantics(self):
        burst = NoiseBurst(start=10.0, end=20.0)
        assert not burst.covers(9.9)
        assert burst.covers(10.0)
        assert burst.covers(19.9)
        assert not burst.covers(20.0)   # half-open

    def test_code_band_filter(self):
        burst = NoiseBurst(start=0.0, end=100.0, code=7)
        assert burst.covers(5.0, code=7)
        assert not burst.covers(5.0, code=8)
        assert not burst.covers(5.0, code=None)
        # an unbanded burst hits every code
        assert NoiseBurst(0.0, 100.0).covers(5.0, code=8)

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseBurst(start=10.0, end=10.0)
        with pytest.raises(ValueError):
            NoiseBurst(start=10.0, end=5.0)


class TestImpairmentSpec:
    def test_defaults_are_a_perfect_channel(self):
        spec = ImpairmentSpec()
        assert not spec.enabled
        assert spec.to_dict() == {}

    def test_probability_bounds_validated(self):
        for field in ("loss_prob", "ge_p_gb", "ge_p_bg",
                      "ge_loss_good", "ge_loss_bad"):
            with pytest.raises(ValueError):
                ImpairmentSpec(**{field: 1.5})
            with pytest.raises(ValueError):
                ImpairmentSpec(**{field: -0.1})

    def test_absorbing_bad_state_rejected(self):
        with pytest.raises(ValueError, match="absorbing"):
            ImpairmentSpec(ge_p_gb=0.01, ge_p_bg=0.0)

    def test_enabled_logic(self):
        assert ImpairmentSpec(loss_prob=0.01).enabled
        assert ImpairmentSpec(ge_p_gb=0.01, ge_p_bg=0.2).enabled
        assert ImpairmentSpec(bursts=(NoiseBurst(0, 10),)).enabled
        # a GE chain whose both states are lossless cannot drop anything
        assert not ImpairmentSpec(ge_p_gb=0.01, ge_p_bg=0.2,
                                  ge_loss_bad=0.0).enabled

    def test_dict_round_trip(self):
        spec = ImpairmentSpec(loss_prob=0.02, ge_p_gb=0.005, ge_p_bg=0.3,
                              ge_loss_bad=0.8,
                              bursts=(NoiseBurst(10.0, 60.0, code=3),))
        again = ImpairmentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown impairment"):
            ImpairmentSpec.from_dict({"loss_probability": 0.1})


# ----------------------------------------------------------------------
class TestChannelImpairments:
    def test_deterministic_per_seed(self):
        spec = ImpairmentSpec(loss_prob=0.2, ge_p_gb=0.01, ge_p_bg=0.2)

        def outcomes(seed):
            imp = ChannelImpairments(spec, _streams(seed))
            return [imp.loss(float(t), 0, 1) for t in range(400)]

        assert outcomes(5) == outcomes(5)
        assert outcomes(5) != outcomes(6)

    def test_links_do_not_share_draws(self):
        """Interleaving queries on other links never changes a link's fate."""
        spec = ImpairmentSpec(loss_prob=0.3)
        solo = ChannelImpairments(spec, _streams())
        alone = [solo.loss(float(t), 0, 1) for t in range(200)]

        mixed = ChannelImpairments(spec, _streams())
        interleaved = []
        for t in range(200):
            mixed.loss(float(t), 2, 3)          # noise on another link
            interleaved.append(mixed.loss(float(t), 0, 1))
            mixed.loss(float(t), 1, 0)          # reverse direction differs too
        assert interleaved == alone

    def test_independent_loss_rate(self):
        imp = ChannelImpairments(ImpairmentSpec(loss_prob=0.1), _streams())
        drops = sum(imp.loss(float(t), 0, 1) is not None for t in range(5000))
        assert 400 < drops < 600   # ~10%, seeded so exact per seed

    def test_ge_stationary_loss_rate(self):
        # pi_bad = 0.01 / (0.01 + 0.19) = 5%; loss_bad = 1 -> ~5% loss
        spec = ImpairmentSpec(ge_p_gb=0.01, ge_p_bg=0.19)
        imp = ChannelImpairments(spec, _streams(3))
        drops = sum(imp.loss(float(t), 0, 1) is not None
                    for t in range(10000))
        assert 350 < drops < 650

    def test_ge_losses_are_bursty(self):
        """Same mean rate: the GE process produces longer loss runs than
        the memoryless process."""
        def longest_run(spec, seed):
            imp = ChannelImpairments(spec, _streams(seed))
            longest = run = 0
            for t in range(20000):
                if imp.loss(float(t), 0, 1) is not None:
                    run += 1
                    longest = max(longest, run)
                else:
                    run = 0
            return longest

        bursty = longest_run(ImpairmentSpec(ge_p_gb=0.005, ge_p_bg=0.095), 9)
        memoryless = longest_run(ImpairmentSpec(loss_prob=0.05), 9)
        assert bursty > 2 * memoryless

    def test_ge_sparse_queries_one_draw_each(self):
        """The analytical advance costs one state draw per query no matter
        how many slots were skipped: a link queried every 50 slots sees the
        exact same decision sequence as the RNG replay predicts."""
        spec = ImpairmentSpec(ge_p_gb=0.02, ge_p_bg=0.2)
        a = ChannelImpairments(spec, _streams(4))
        sparse = [a.loss(float(t), 0, 1) for t in range(0, 5000, 50)]
        b = ChannelImpairments(spec, _streams(4))
        again = [b.loss(float(t), 0, 1) for t in range(0, 5000, 50)]
        assert sparse == again
        assert a.queries == len(sparse)

    def test_noise_burst_kills_without_randomness(self):
        spec = ImpairmentSpec(bursts=(NoiseBurst(100.0, 110.0),))
        imp = ChannelImpairments(spec, _streams())
        assert imp.loss(99.0, 0, 1) is None
        for t in range(100, 110):
            assert imp.loss(float(t), 0, 1) == "noise"
        assert imp.loss(110.0, 0, 1) is None
        # no stochastic source -> no link RNG was ever created
        assert not imp._links

    def test_banded_burst_spares_other_codes(self):
        spec = ImpairmentSpec(bursts=(NoiseBurst(0.0, 50.0, code=7),))
        imp = ChannelImpairments(spec, _streams())
        assert imp.loss(5.0, 0, 1, code=7) == "noise"
        assert imp.loss(5.0, 0, 1, code=8) is None

    def test_counters_and_summary(self):
        spec = ImpairmentSpec(loss_prob=0.5,
                              bursts=(NoiseBurst(0.0, 10.0),))
        imp = ChannelImpairments(spec, _streams())
        for t in range(100):
            imp.loss(float(t), 0, 1, kind="sat")
            imp.loss(float(t), 1, 2)
        summary = imp.summary()
        assert summary["queries"] == 200
        assert summary["drops"] == imp.drops > 0
        assert summary["drops_by_reason"]["noise"] == 20
        assert summary["drops_by_reason"]["fade"] > 0
        assert set(summary["drops_by_kind"]) == {"sat", "data"}
        assert summary["worst_links"][0]["drops"] >= \
            summary["worst_links"][-1]["drops"]


# ----------------------------------------------------------------------
class TestChannelIntegration:
    def _channel(self, spec):
        from repro.phy.channel import Frame, SlottedChannel
        from repro.phy.geometry import ring_placement
        from repro.phy.topology import ConnectivityGraph
        graph = ConnectivityGraph(ring_placement(4, radius=10.0), 100.0)
        ch = SlottedChannel(graph)
        ch.impairments = ChannelImpairments(spec, _streams())
        ch.register_listener(1, {5})
        return ch, Frame

    def test_control_frames_filtered(self):
        ch, Frame = self._channel(
            ImpairmentSpec(bursts=(NoiseBurst(0.0, 100.0),)))
        drops = []
        ch.drop_hook = lambda t, fr, rx, reason: drops.append((fr.src, rx, reason))
        ch.transmit(Frame(src=0, code=5, payload="x", kind="control"))
        delivered = ch.force_resolve_slot(1.0)
        assert delivered == {}
        assert drops == [(0, 1, "noise")]
        assert ch.stats.frames_dropped == 1
        assert ch.stats.drops_by_kind == {"control": 1}

    def test_data_frames_exempt(self):
        """validate_phy data frames mirror ring hops the network already
        impairs internally; the channel must not draw for them again."""
        ch, Frame = self._channel(
            ImpairmentSpec(bursts=(NoiseBurst(0.0, 100.0),)))
        ch.transmit(Frame(src=0, code=5, payload="x", kind="data"))
        delivered = ch.force_resolve_slot(1.0)
        assert [f.payload for f in delivered[1]] == ["x"]
        assert ch.stats.frames_dropped == 0

    def test_faded_frame_cannot_collide(self):
        """Two same-code frames, one eaten by noise on its sender's band:
        the survivor is delivered instead of colliding."""
        from repro.phy.channel import Frame, SlottedChannel
        from repro.phy.geometry import ring_placement
        from repro.phy.topology import ConnectivityGraph
        graph = ConnectivityGraph(ring_placement(4, radius=10.0), 100.0)
        ch = SlottedChannel(graph)
        ch.register_listener(1, {5})
        ch.transmit(Frame(src=0, code=5, payload="a", kind="control"))
        ch.transmit(Frame(src=2, code=5, payload="b", kind="control"))
        assert ch.force_resolve_slot(1.0) == {}     # clean channel: collision
        assert ch.stats.collisions == 1

        ch.impairments = ChannelImpairments(
            ImpairmentSpec(loss_prob=1.0), _streams())
        ch.transmit(Frame(src=0, code=5, payload="a", kind="control"))
        ch.transmit(Frame(src=2, code=5, payload="b", kind="control"))
        assert ch.force_resolve_slot(2.0) == {}     # both faded, no collision
        assert ch.stats.collisions == 1
        assert ch.stats.frames_dropped == 2


# ----------------------------------------------------------------------
def _impaired_scenario(loss, seed=11, horizon=3000.0, **kw):
    return Scenario(
        n=6, horizon=horizon, seed=seed, check_invariants=True,
        traffic=TrafficMix(kind="poisson", rate=0.05,
                           service=ServiceClass.PREMIUM),
        impairments=ImpairmentSpec(loss_prob=loss), **kw)


class TestRingUnderSustainedLoss:
    """Satellite contract: a ring under 1-10% frame loss keeps circulating
    the SAT or cleanly reaches cut-out / rebuild / network-down — it never
    hangs with a live ring and no control signal."""

    @pytest.mark.parametrize("loss", [0.01, 0.05, 0.10])
    @pytest.mark.parametrize("seed", [11, 12])
    def test_never_hangs_never_corrupts(self, loss, seed):
        result = run_scenario(_impaired_scenario(loss, seed=seed))
        net, engine = result.network, result.engine
        assert engine.now >= result.scenario.horizon
        summary = result.summary()
        assert summary["invariants_clean"], summary["invariant_violations"]
        assert summary["impairments"]["drops"] > 0
        assert summary["recoveries"] > 0    # loss actually bit the SAT
        if not net.network_down and net.rebuilding_until is None:
            # the ring is alive: the control plane must not be stranded —
            # either the SAT exists (held/flying) or its loss is flagged
            # and the Sec. 2.5 watchdogs are on it
            sat = net.sat
            assert (sat.at_station is not None or sat.in_flight
                    or net._sat_lost)
            if net._sat_lost:
                assert any(timer.running
                           for timer in net.recovery.timers.values())

    def test_full_oracle_battery_is_clean(self):
        """Run impaired cases under the complete fuzz oracle set (strict
        invariants, clock probe, packet conservation, orphan check)."""
        from repro.config_io import scenario_to_dict
        from repro.fuzz.generate import FuzzCase
        from repro.fuzz.runner import run_case

        for loss, seed in [(0.01, 21), (0.05, 22), (0.10, 23)]:
            scenario = scenario_to_dict(_impaired_scenario(loss, seed=seed))
            case = FuzzCase(seed=seed, index=0, scenario=scenario,
                            drive=[{"until": scenario["horizon"]}])
            result = run_case(case)
            assert result.ok, (loss, seed, result.failures)
            assert result.stats["impairment_drops"] > 0

    def test_trace_hash_deterministic(self):
        from repro.fuzz.runner import hash_trace

        def run_once():
            built = build_scenario(_impaired_scenario(0.05))
            built.engine.run(until=built.scenario.horizon)
            return hash_trace(built.trace)

        assert run_once() == run_once()

    def test_clean_channel_builds_no_impairments(self):
        built = build_scenario(Scenario(n=5, horizon=500))
        assert built.network.impairments is None
        built = build_scenario(Scenario(n=5, horizon=500,
                                        impairments=ImpairmentSpec()))
        assert built.network.impairments is None   # all-defaults spec = clean


# ----------------------------------------------------------------------
class TestConsecutiveSatLosses:
    """Regression: a SAT(_REC) lost while a recovery episode is already
    running must be attributed to that episode, not queued as a phantom
    trigger that mis-dates the next one."""

    def _net(self):
        engine = Engine()
        cfg = WRTRingConfig.homogeneous(range(6), l=2, k=1, rap_enabled=False)
        net = WRTRingNetwork(engine, list(range(6)), cfg)
        net.start()
        return engine, net

    def _run_until(self, engine, predicate, limit):
        while not predicate() and engine.now < limit:
            engine.run(until=engine.now + 1)
        assert predicate(), f"condition not reached by t={limit}"

    def test_back_to_back_losses_single_episode(self):
        engine, net = self._net()
        rec = net.recovery
        engine.run(until=100)
        net.drop_sat()
        assert rec._pending_event == ("sat_loss", None, 100.0)

        self._run_until(engine, lambda: rec.active is not None, 400)
        episode = rec.active
        assert episode.t_event == 100.0
        assert rec._pending_event is None

        # second loss while the SAT_REC episode is running
        t2 = engine.now
        net.drop_sat()
        assert rec.active is episode
        assert episode.extra["extra_losses"] == [t2]
        assert rec._pending_event is None      # no phantom trigger queued

        # everything settles; a later, unrelated loss opens a fresh episode
        # dated at *its* injection time
        self._run_until(engine,
                        lambda: rec.active is None
                        and net.rebuilding_until is None
                        and not net.network_down, 2000)
        engine.run(until=2500)
        count = len(rec.records)
        net.drop_sat()
        assert rec._pending_event == ("sat_loss", None, 2500.0)
        self._run_until(engine, lambda: len(rec.records) > count, 4000)
        assert rec.records[count].t_event == 2500.0

    def test_impairment_sat_rec_loss_attributed_to_active(self):
        """A SAT_REC hop eaten by the channel lands in the running
        episode's extra_losses via the same path."""
        result = run_scenario(_impaired_scenario(0.10, seed=13,
                                                 horizon=2000.0))
        records = result.network.recovery.records
        assert records
        # at 10% loss some episode must have absorbed a follow-on loss
        assert any(r.extra.get("extra_losses") for r in records)


# ----------------------------------------------------------------------
class TestStaleSat:
    def _running_net(self):
        from repro.sim.trace import TraceRecorder
        engine = Engine()
        cfg = WRTRingConfig.homogeneous(range(5), l=1, k=1, rap_enabled=False)
        net = WRTRingNetwork(engine, list(range(5)), cfg,
                             trace=TraceRecorder())
        net.start()
        engine.run(until=200)
        return engine, net

    def test_replayed_signal_discarded(self):
        engine, net = self._running_net()
        station = net.order[0]
        st = net.stations[station]
        before = (st.rt_pck, st.nrt_pck)
        assert net.inject_stale_sat(station) is True
        # no quota renewal happened and the real SAT keeps circulating
        assert (st.rt_pck, st.nrt_pck) == before
        rec_count = len(net.recovery.records)
        engine.run(until=400)
        assert len(net.recovery.records) == rec_count
        assert not net.network_down
        assert net.trace.count("sat.stale_discarded") == 1

    def test_forged_seq_defeats_guard_and_recovery_catches_it(self):
        engine, net = self._running_net()
        station = net.order[0]
        assert net.inject_stale_sat(station, seq=10**9) is False
        # the next real SAT arriving at the poisoned station is flagged
        # stale, the signal is treated as lost, and Sec. 2.5 repairs it
        engine.run(until=1200)
        assert net.trace.count("sat.stale_discarded") >= 1
        assert net.recovery.records
        if not net.network_down:
            sat = net.sat
            assert sat.at_station is not None or sat.in_flight or net._sat_lost

    def test_seq_monotone_on_clean_channel(self):
        """The legit monotone signal is never flagged stale."""
        engine, net = self._running_net()
        engine.run(until=2000)
        assert net.trace.count("sat.stale_discarded") == 0
        assert net.recovery.records == []

    def test_stale_sat_fault_kind(self):
        schedule = FaultSchedule.builder().stale_sat(at=300.0).build()
        result = run_scenario(Scenario(
            n=6, horizon=1500, check_invariants=True, faults=schedule,
            traffic=TrafficMix(kind="poisson", rate=0.03)))
        summary = result.summary()
        assert summary["faults_applied"] == 1
        assert summary["faults_skipped"] == 0
        assert summary["invariants_clean"]
        assert result.network.trace.count("sat.stale_discarded") == 1

    def test_injection_rejected_when_down(self):
        engine, net = self._running_net()
        with pytest.raises(KeyError):
            net.inject_stale_sat(99)


# ----------------------------------------------------------------------
class TestJoinUnderLoss:
    def _net(self, spec, seed):
        """Six-station circle ring with station 100 placed between stations
        2 and 3 (in radio range of both), handshake over a lossy channel."""
        import math
        import random as _random

        import numpy as np

        from repro.phy.channel import SlottedChannel
        from repro.phy.geometry import ring_placement
        from repro.phy.topology import ConnectivityGraph
        n, radius = 6, 10.0
        pos = ring_placement(n, radius=radius)
        pos = np.vstack([pos, ((pos[2] + pos[3]) / 2).reshape(1, 2)])
        radio_range = 2 * radius * math.sin(math.pi / n) * 1.4
        graph = ConnectivityGraph(pos, radio_range,
                                  node_ids=list(range(n)) + [100])
        engine = Engine()
        cfg = WRTRingConfig.homogeneous(range(n), l=1, k=1,
                                        rap_enabled=True,
                                        t_ear=6, t_update=3)
        channel = SlottedChannel(graph)
        impairments = (ChannelImpairments(spec, RandomStreams(seed)
                                          .fork("impairments"))
                       if spec is not None else None)
        net = WRTRingNetwork(engine, list(range(n)), cfg, graph=graph,
                             channel=channel, impairments=impairments)
        return engine, net, _random.Random(seed)

    def test_requester_terminates_on_lossy_channel(self):
        from repro.core.join import JoinOutcome, JoinRequester
        terminal = {JoinOutcome.JOINED, JoinOutcome.GAVE_UP,
                    JoinOutcome.REJECTED, JoinOutcome.LISTENING,
                    JoinOutcome.REQUEST_SENT, JoinOutcome.ACCEPTED}
        outcomes = set()
        for seed in range(6):
            engine, net, rng = self._net(ImpairmentSpec(loss_prob=0.05),
                                         seed)
            req = JoinRequester(net, 100, QuotaConfig.two_class(1, 1),
                                rng=rng, max_attempts=4, retry_jitter=2)
            net.start()
            engine.run(until=8000)
            assert req.state in terminal
            assert req.attempts <= 4
            # (JOINED does not imply membership at the horizon: a later
            # impairment-triggered recovery may have cut the newcomer out
            # again — the Sec. 2.5 false-positive semantics)
            outcomes.add(req.state)
        # across seeds the lossy handshake must actually succeed sometimes
        assert JoinOutcome.JOINED in outcomes

    def test_gave_up_after_capped_attempts(self):
        from repro.core.join import JoinOutcome, JoinRequester
        gave_up = 0
        for seed in range(8):
            # 45%: lossy enough that attempts fail, not so lossy that the
            # ring churns before the requester ever hears two NEXT_FREEs
            engine, net, rng = self._net(ImpairmentSpec(loss_prob=0.45),
                                         seed)
            req = JoinRequester(net, 100, QuotaConfig.two_class(1, 1),
                                rng=rng, max_attempts=2)
            net.start()
            engine.run(until=10000)
            assert req.attempts <= 2
            if req.state is JoinOutcome.GAVE_UP:
                gave_up += 1
                assert 100 not in net._pos
        # at 45% loss a two-attempt cap must trip for some seed
        assert gave_up > 0

    def test_clean_channel_join_unchanged(self):
        """The hardening knobs are inert on a lossless channel: the first
        eligible attempt succeeds, as in the paper's Sec. 2.4.1 walkthrough."""
        from repro.core.join import JoinOutcome, JoinRequester
        engine, net, rng = self._net(None, 1)
        req = JoinRequester(net, 100, QuotaConfig.two_class(1, 1),
                            rng=rng, max_attempts=5, retry_jitter=2)
        net.start()
        engine.run(until=4000)
        assert req.state is JoinOutcome.JOINED
        assert req.attempts == 1
        assert 100 in net._pos


# ----------------------------------------------------------------------
class TestFaultSkippedEvent:
    def test_skipped_fault_emits_event_and_counts(self):
        schedule = FaultSchedule.builder().kill(99, at=50.0).build()
        built = build_scenario(Scenario(n=5, horizon=500, faults=schedule))
        seen = []
        built.network.events.subscribe(_ev.FaultSkipped,
                                       lambda ev: seen.append(ev))
        built.engine.run(until=500)
        assert len(seen) == 1
        assert seen[0].kind == "kill" and seen[0].station == 99
        summary = built.summary()
        assert summary["faults_applied"] == 0
        assert summary["faults_skipped"] == 1

    def test_simulate_json_carries_counts(self, capsys):
        from repro.cli import main
        rc = main(["simulate", "--n", "5", "--horizon", "800",
                   "--kill", "99:50", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["faults_applied"] == 0
        assert payload["faults_skipped"] == 1


# ----------------------------------------------------------------------
class TestConfigAndCli:
    def test_scenario_dict_round_trip(self):
        from repro.config_io import scenario_from_dict, scenario_to_dict
        scenario = _impaired_scenario(0.03)
        data = json.loads(json.dumps(scenario_to_dict(scenario)))
        again = scenario_from_dict(data)
        assert again.impairments == scenario.impairments
        assert scenario_to_dict(again) == scenario_to_dict(scenario)

    def test_clean_scenario_dict_has_no_impairments_key(self):
        from repro.config_io import scenario_to_dict
        assert "impairments" not in scenario_to_dict(Scenario(n=5))

    def test_simulate_loss_flags(self, capsys):
        from repro.cli import main
        rc = main(["simulate", "--n", "6", "--horizon", "2000",
                   "--loss-prob", "0.02", "--check-invariants", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["impairments"]["drops"] > 0
        assert payload["invariants_clean"]

    def test_simulate_ge_and_burst_flags(self, capsys):
        from repro.cli import main
        rc = main(["simulate", "--n", "6", "--horizon", "2000",
                   "--ge", "0.005:0.2:0.9", "--noise-burst", "500:520",
                   "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["impairments"]["drops"] > 0
        assert "noise" in payload["impairments"]["drops_by_reason"]

    def test_bad_flag_shapes_rejected(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["simulate", "--ge", "0.5"])
        with pytest.raises(SystemExit):
            main(["simulate", "--noise-burst", "100"])
        with pytest.raises(SystemExit):
            main(["simulate", "--loss-prob", "1.5"])

    def test_metrics_snapshot_counts_impairments(self, capsys):
        from repro.cli import main
        rc = main(["simulate", "--n", "6", "--horizon", "2000",
                   "--loss-prob", "0.05", "--metrics", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        metrics = payload["metrics"]
        # every impaired SAT hop is a labeled sat.hop_lost increment
        assert sum(metrics["sat.hop_lost"].values()) \
            == payload["impairments"]["drops_by_kind"]["sat"]

    def test_sweep_axis_over_loss_prob(self, tmp_path, capsys):
        from repro.cli import main
        rc = main(["sweep", "--axis", "impairments.loss_prob=0.0,0.05",
                   "--n", "5", "--horizon", "800", "--workers", "0",
                   "--store", str(tmp_path / "store"), "--json"])
        assert rc == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 2
        clean = [r for r in records
                 if r["scenario"].get("impairments", {}).get("loss_prob") == 0.0]
        lossy = [r for r in records
                 if r["scenario"].get("impairments", {}).get("loss_prob") == 0.05]
        assert "impairments" not in clean[0]["summary"]
        assert lossy[0]["summary"]["impairments"]["drops"] > 0


# ----------------------------------------------------------------------
class TestCampaignDeterminism:
    def test_sweep_serial_parallel_and_resume_agree(self, tmp_path):
        from repro.campaign import CampaignRunner, ResultStore, Sweep
        base = _impaired_scenario(0.05, horizon=800.0)
        sweep = Sweep(base=base, axes={"n": [5, 6]}, name="det")

        def summaries(workers, store_dir):
            store = ResultStore(str(tmp_path / store_dir))
            result = CampaignRunner(sweep, store, workers=workers,
                                    progress=lambda *a, **k: None).run()
            assert result.ok
            return [r["summary"] for r in result.records]

        serial = summaries(0, "serial")
        parallel = summaries(2, "parallel")
        resumed = summaries(0, "serial")    # second pass: all cache hits
        assert serial == parallel == resumed

    def test_chaos_fuzz_campaign_replays_identically(self, tmp_path):
        from repro.campaign.store import ResultStore
        from repro.fuzz import run_fuzz_campaign

        def hashes(store_dir):
            store = ResultStore(str(tmp_path / store_dir))
            campaign = run_fuzz_campaign(
                master_seed=77, runs=6, store=store,
                out_dir=tmp_path / store_dir / "bundles",
                max_slots=600, chaos=True)
            assert campaign.ok, campaign.failed
            return [r["trace_hash"] for r in campaign.records]

        assert hashes("a") == hashes("b")

    def test_chaos_cases_always_impaired(self):
        from repro.fuzz.generate import generate_case
        for index in range(10):
            case = generate_case(123, index, max_slots=600, chaos=True)
            assert case.scenario.get("impairments")


# ----------------------------------------------------------------------
class TestObsIntegration:
    def _observed(self, scenario):
        from repro.obs import MetricsRegistry, attach_network_metrics
        built = build_scenario(scenario)
        registry = MetricsRegistry()
        sub = attach_network_metrics(built.network, registry)
        built.engine.run(until=scenario.horizon)
        sub.flush()
        return built, registry.snapshot()

    def test_subscriber_counts_sat_hop_losses(self):
        built, snap = self._observed(_impaired_scenario(0.05,
                                                        horizon=2000.0))
        summary = built.network.impairments.summary()
        assert sum(snap["sat.hop_lost"].values()) \
            == summary["drops_by_kind"]["sat"]
        # dataplane impairment losses surface through the packet-loss
        # accounting (ring.lost), not as channel frame drops
        assert "phy.drops" not in snap
        assert snap["ring.lost"][""] > 0

    def test_channel_frame_drops_counted(self):
        built, snap = self._observed(Scenario(
            n=6, rap_enabled=True, use_channel=True, horizon=2000.0,
            seed=7, impairments=ImpairmentSpec(loss_prob=0.2)))
        stats = built.network.channel.stats
        assert stats.frames_dropped > 0
        assert sum(snap["phy.drops"].values()) == stats.frames_dropped
        assert sum(snap["phy.link_drops"].values()) == stats.frames_dropped
        assert any("reason=fade" in label for label in snap["phy.drops"])

    def test_channel_stats_mirrored(self):
        schedule = FaultSchedule.builder().join(100, at=60.0).build()
        built, snap = self._observed(Scenario(
            n=5, rap_enabled=True, use_channel=True, horizon=1500.0,
            faults=schedule))
        stats = built.network.channel.stats
        assert snap["phy.frames_sent"][""] == stats.frames_sent > 0
        assert sum(snap["phy.frames_delivered"].values()) \
            == stats.frames_delivered

    def test_channel_less_snapshot_unchanged(self):
        built, snap = self._observed(Scenario(n=5, horizon=800.0))
        assert not any(name.startswith("phy.") for name in snap)
