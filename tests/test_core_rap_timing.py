"""RAP scheduling properties from Sec. 2.4.1's timing remarks.

"To ensure the fairness, after acting as ingress station, a node has to
wait S_round(i) >= N SAT rounds in order to enter the RAP period again"
and (footnote 2) "the time that elapses between two consecutive NEXT_FREE
messages [from the same station] is equal to S_round · SAT_TIME."
"""

import numpy as np

from repro.core import WRTRingConfig, WRTRingNetwork
from repro.phy import ConnectivityGraph, SlottedChannel, ring_placement
from repro.sim import Engine, TraceRecorder


def rap_ring(n=6, s_round=0, horizon=6000):
    pos = ring_placement(n, radius=30.0)
    graph = ConnectivityGraph(pos, 2 * 30.0 * np.sin(np.pi / n) * 2.2)
    engine = Engine()
    trace = TraceRecorder()
    trace.enable_only(["rap.open"])
    cfg = WRTRingConfig.homogeneous(range(n), l=1, k=1, rap_enabled=True,
                                    t_ear=6, t_update=3, s_round=s_round)
    net = WRTRingNetwork(engine, list(range(n)), cfg, graph=graph,
                         channel=SlottedChannel(graph), trace=trace)
    net.start()
    engine.run(until=horizon)
    return net, trace


class TestRapCadence:
    def test_every_station_takes_rap_turns(self):
        net, trace = rap_ring()
        ingresses = {ev["ingress"] for ev in trace.select("rap.open")}
        assert ingresses == set(range(6))

    def test_s_round_spacing_in_rounds(self):
        """Consecutive RAPs by the same station are >= max(s_round, N)
        SAT rounds apart (measured in that station's SAT visits)."""
        net, trace = rap_ring(n=6, s_round=0)
        # reconstruct per-station RAP times
        by_station = {}
        for ev in trace.select("rap.open"):
            by_station.setdefault(ev["ingress"], []).append(ev.time)
        # idle ring with one RAP per round: rotation = N + T_rap = 15
        rotation = 6 + 9
        for sid, times in by_station.items():
            gaps = np.diff(times)
            assert (gaps >= 6 * (rotation - 9) - 1).all()  # >= N rounds of travel
            # with the staggered schedule each station returns every
            # effective_s_round rounds: gap ~ s_round * rotation
            assert (gaps <= 8 * rotation).all()

    def test_custom_s_round_stretches_cadence(self):
        net_fast, trace_fast = rap_ring(n=5, s_round=0, horizon=8000)
        net_slow, trace_slow = rap_ring(n=5, s_round=15, horizon=8000)
        assert trace_fast.count("rap.open") > trace_slow.count("rap.open")

    def test_next_free_period_matches_footnote2(self):
        """Footnote 2: consecutive NEXT_FREE from the same station arrive
        about S_round rotations apart — the requester's listening budget."""
        net, trace = rap_ring(n=6, s_round=0, horizon=9000)
        by_station = {}
        for ev in trace.select("rap.open"):
            by_station.setdefault(ev["ingress"], []).append(ev.time)
        rotation_with_rap = 6 + 9   # idle rotation incl. one T_rap per round
        expected = net.join_manager.effective_s_round() * rotation_with_rap
        for sid, times in by_station.items():
            gaps = np.diff(times)
            assert len(gaps) >= 2
            # equality up to the one-slot granularity of SAT processing
            assert np.allclose(gaps, expected, atol=net.n)

    def test_at_most_one_rap_per_round(self):
        net, trace = rap_ring(horizon=8000)
        raps = trace.times("rap.open")
        # RAP windows never overlap: consecutive opens are >= T_rap apart
        gaps = np.diff(raps)
        assert (gaps >= net.config.t_rap).all()
        # and there are no more opens than completed rounds + 1
        assert len(raps) <= net.sat.rounds + 1
