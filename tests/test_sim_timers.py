"""Unit tests for watchdog and periodic timers."""

import pytest

from repro.sim import Engine, Timer, PeriodicTimer


class TestTimer:
    def test_fires_once_after_duration(self):
        eng = Engine()
        fired = []
        t = Timer(eng, 10.0, lambda: fired.append(eng.now))
        t.start()
        eng.run()
        assert fired == [10.0]
        assert t.expirations == 1
        assert not t.running

    def test_restart_postpones_expiry(self):
        eng = Engine()
        fired = []
        t = Timer(eng, 10.0, lambda: fired.append(eng.now))
        t.start()
        eng.run(until=6.0)
        t.restart()
        eng.run()
        assert fired == [16.0]

    def test_watchdog_never_fires_if_kicked(self):
        eng = Engine()
        fired = []
        t = Timer(eng, 10.0, lambda: fired.append(eng.now))
        t.start()
        for kick in range(1, 20):
            eng.run(until=float(kick * 5))
            t.restart()
        t.stop()
        eng.run()
        assert fired == []

    def test_stop_disarms(self):
        eng = Engine()
        fired = []
        t = Timer(eng, 10.0, lambda: fired.append(eng.now))
        t.start()
        eng.run(until=5.0)
        t.stop()
        eng.run()
        assert fired == []
        assert not t.running

    def test_start_while_running_is_noop(self):
        eng = Engine()
        fired = []
        t = Timer(eng, 10.0, lambda: fired.append(eng.now))
        t.start()
        eng.run(until=5.0)
        t.start()  # must not re-arm from t=5
        eng.run()
        assert fired == [10.0]

    def test_restart_with_new_duration(self):
        eng = Engine()
        fired = []
        t = Timer(eng, 10.0, lambda: fired.append(eng.now))
        t.start()
        eng.run(until=2.0)
        t.restart(duration=3.0)
        eng.run()
        assert fired == [5.0]
        assert t.duration == 3.0

    def test_deadline_property(self):
        eng = Engine()
        t = Timer(eng, 7.0, lambda: None)
        assert t.deadline is None
        t.start()
        assert t.deadline == 7.0

    def test_nonpositive_duration_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            Timer(eng, 0.0, lambda: None)
        t = Timer(eng, 1.0, lambda: None)
        with pytest.raises(ValueError):
            t.restart(duration=-2.0)

    def test_timer_can_rearm_itself_from_callback(self):
        eng = Engine()
        fired = []

        def on_expire():
            fired.append(eng.now)
            if len(fired) < 3:
                t.start()

        t = Timer(eng, 4.0, on_expire)
        t.start()
        eng.run()
        assert fired == [4.0, 8.0, 12.0]
        assert t.expirations == 3


class TestPeriodicTimer:
    def test_fires_every_period(self):
        eng = Engine()
        fired = []
        pt = PeriodicTimer(eng, 5.0, lambda: fired.append(eng.now))
        pt.start()
        eng.run(until=26.0)
        pt.stop()
        assert fired == [0.0, 5.0, 10.0, 15.0, 20.0, 25.0]

    def test_phase_offsets_first_firing(self):
        eng = Engine()
        fired = []
        pt = PeriodicTimer(eng, 10.0, lambda: fired.append(eng.now), phase=3.0)
        pt.start()
        eng.run(until=25.0)
        pt.stop()
        assert fired == [3.0, 13.0, 23.0]

    def test_stop_from_callback(self):
        eng = Engine()
        fired = []

        def cb():
            fired.append(eng.now)
            if len(fired) == 2:
                pt.stop()

        pt = PeriodicTimer(eng, 2.0, cb)
        pt.start()
        eng.run(until=100.0)
        assert fired == [0.0, 2.0]

    def test_firings_counter(self):
        eng = Engine()
        pt = PeriodicTimer(eng, 1.0, lambda: None)
        pt.start()
        eng.run(until=4.5)
        pt.stop()
        assert pt.firings == 5

    def test_invalid_params_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            PeriodicTimer(eng, 0.0, lambda: None)
        with pytest.raises(ValueError):
            PeriodicTimer(eng, 1.0, lambda: None, phase=-1.0)

    def test_start_twice_is_noop(self):
        eng = Engine()
        fired = []
        pt = PeriodicTimer(eng, 5.0, lambda: fired.append(eng.now))
        pt.start()
        pt.start()
        eng.run(until=11.0)
        pt.stop()
        assert fired == [0.0, 5.0, 10.0]
