"""Tests for scenario JSON (de)serialization and the --config CLI path."""

import json

import pytest

from repro.config_io import (load_scenario, save_scenario, scenario_from_dict,
                             scenario_to_dict)
from repro.core import QuotaConfig, ServiceClass
from repro.faults import FaultSchedule
from repro.scenarios import MobilitySpec, Scenario, TrafficMix, run_scenario


def full_scenario():
    return Scenario(
        n=6, placement="circle", radius=25.0, range_margin=2.4,
        l=2, k=2, rap_enabled=True, t_ear=7, t_update=4,
        quotas={sid: QuotaConfig.three_class(2, 1, 1) for sid in range(6)},
        traffic=TrafficMix(kind="cbr", period=30.0,
                           service=ServiceClass.PREMIUM, deadline=400.0),
        mobility=MobilitySpec(wander_radius=2.0, speed=0.3, update_every=20),
        faults=FaultSchedule.builder().kill(3, at=1000).build(),
        check_invariants=True, horizon=2500.0, seed=9)


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self):
        scn = full_scenario()
        data = scenario_to_dict(scn)
        back = scenario_from_dict(data)
        assert scenario_to_dict(back) == data

    def test_json_round_trip(self, tmp_path):
        scn = full_scenario()
        path = tmp_path / "scenario.json"
        save_scenario(scn, path)
        loaded = load_scenario(path)
        assert scenario_to_dict(loaded) == scenario_to_dict(scn)
        # the file is genuinely JSON
        json.loads(path.read_text())

    def test_round_tripped_scenario_runs_identically(self, tmp_path):
        scn = Scenario(n=5, horizon=1200, seed=4,
                       traffic=TrafficMix(kind="poisson", rate=0.06))
        path = tmp_path / "s.json"
        save_scenario(scn, path)
        a = run_scenario(scn).summary()
        b = run_scenario(load_scenario(path)).summary()
        assert a == b

    def test_minimal_dict(self):
        scn = scenario_from_dict({"n": 4, "horizon": 500})
        assert scn.n == 4 and scn.horizon == 500
        assert scn.traffic.kind == "poisson"   # defaults kept

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError):
            scenario_from_dict({"n": 4, "warp_drive": True})

    def test_unknown_service_rejected(self):
        with pytest.raises(ValueError):
            scenario_from_dict({"traffic": {"kind": "cbr",
                                            "service": "platinum"}})

    def test_onoff_traffic_round_trip(self):
        scn = Scenario(n=6, traffic=TrafficMix(kind="onoff", peak_rate=0.08,
                                               mean_on=120.0, mean_off=480.0),
                       horizon=1000.0, seed=3)
        data = scenario_to_dict(scn)
        assert data["traffic"]["peak_rate"] == 0.08
        back = scenario_from_dict(data)
        assert back.traffic.kind == "onoff"
        assert back.traffic.mean_on == 120.0
        assert scenario_to_dict(back) == data

    def test_calls_round_trip(self):
        from repro.qoe.sessions import CallsSpec
        scn = Scenario(n=8, rap_enabled=True, use_channel=True,
                       traffic=TrafficMix(kind="none"),
                       calls=CallsSpec(count=20, arrival_rate=0.01,
                                       deadline=300.0, join_via_rap=True),
                       horizon=2000.0, seed=4)
        data = scenario_to_dict(scn)
        back = scenario_from_dict(data)
        assert back.calls == scn.calls
        assert scenario_to_dict(back) == data

    def test_no_calls_key_when_absent(self):
        data = scenario_to_dict(Scenario(n=4))
        assert "calls" not in data
        assert scenario_from_dict(data).calls is None

    def test_faults_survive(self):
        scn = full_scenario()
        back = scenario_from_dict(scenario_to_dict(scn))
        assert len(back.faults.events) == 1
        assert back.faults.events[0].kind == "kill"
        assert back.faults.events[0].station == 3


class TestCliConfig:
    def test_simulate_with_config_file(self, tmp_path, capsys):
        from repro.cli import main
        scn = Scenario(n=5, horizon=1000, seed=2,
                       traffic=TrafficMix(kind="poisson", rate=0.05,
                                          service=ServiceClass.PREMIUM,
                                          deadline=300.0))
        path = tmp_path / "cfg.json"
        save_scenario(scn, path)
        rc = main(["simulate", "--config", str(path), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["delivered"] > 0
        assert payload["bound_holds"]
