"""Tests for the runtime invariant checker — including long fuzz/soak runs
that hammer the protocol with every dynamic at once."""

import random

import pytest

from repro.core import Packet, ServiceClass, WRTRingConfig, WRTRingNetwork
from repro.core.invariants import InvariantViolation, RingInvariantChecker
from repro.sim import Engine


def checked_net(n=6, l=2, k=2, strict=True):
    engine = Engine()
    cfg = WRTRingConfig.homogeneous(range(n), l=l, k=k, rap_enabled=False)
    net = WRTRingNetwork(engine, list(range(n)), cfg)
    checker = RingInvariantChecker(net, strict=strict).attach(net.events)
    return engine, net, checker


class TestCleanRuns:
    def test_idle_network_clean(self):
        engine, net, checker = checked_net()
        net.start()
        engine.run(until=500)
        assert checker.clean
        assert checker.checks_run >= 500

    def test_saturated_network_clean(self):
        engine, net, checker = checked_net()
        rng = random.Random(0)

        def top(t):
            for sid in net.members:
                st = net.stations[sid]
                while len(st.rt_queue) < 10:
                    dst = rng.choice([d for d in net.members if d != sid])
                    st.enqueue(Packet(src=sid, dst=dst,
                                      service=ServiceClass.PREMIUM,
                                      created=t), t)
                while len(st.be_queue) < 10:
                    dst = rng.choice([d for d in net.members if d != sid])
                    st.enqueue(Packet(src=sid, dst=dst,
                                      service=ServiceClass.BEST_EFFORT,
                                      created=t), t)
        net.add_tick_hook(top)
        engine.run(until=2000)
        assert checker.clean

    def test_recovery_keeps_invariants(self):
        engine, net, checker = checked_net()
        net.start()
        engine.run(until=50)
        net.kill_station(3)
        engine.run(until=500)
        assert checker.clean
        assert 3 not in net.members

    def test_graceful_leave_keeps_invariants(self):
        engine, net, checker = checked_net()
        net.start()
        engine.run(until=50)
        net.leave_gracefully(2)
        engine.run(until=500)
        assert checker.clean

    def test_sat_loss_keeps_invariants(self):
        engine, net, checker = checked_net()
        net.start()
        engine.run(until=37)
        net.drop_sat()
        engine.run(until=800)
        assert checker.clean


class TestDetection:
    def test_detects_forged_counter(self):
        engine, net, checker = checked_net(strict=True)
        net.start()
        engine.run(until=10)
        net.stations[0].rt_pck = 99   # corrupt state
        with pytest.raises(InvariantViolation):
            engine.run(until=20)

    def test_detects_duplicate_order_entry(self):
        engine, net, checker = checked_net(strict=False)
        net.start()
        engine.run(until=10)
        net.order.append(net.order[0])
        engine.run(until=12)
        assert not checker.clean
        assert any("duplicate" in v or "inconsistent" in v
                   for v in checker.violations)

    def test_detects_vanished_packet(self):
        engine, net, checker = checked_net(strict=False)
        net.start()
        engine.run(until=10)
        t0 = engine.now
        p = Packet(src=0, dst=3, service=ServiceClass.PREMIUM, created=t0)
        net.stations[0].enqueue(p, t0)
        net.stations[0].rt_queue.clear()   # packet vanishes
        engine.run(until=20)
        assert any("conservation" in v for v in checker.violations)

    def test_non_strict_accumulates(self):
        engine, net, checker = checked_net(strict=False)
        net.start()
        engine.run(until=10)
        net.stations[0].rt_pck = 99
        engine.run(until=15)
        # accumulates until the SAT pass resets the corrupted counter
        assert len(checker.violations) >= 2
        assert not checker.clean


class TestFuzzSoak:
    """Randomized long-run soak: joins disabled (no channel) but kills,
    leaves, SAT drops and bursty traffic all interleaved, invariants strict.
    """

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_dynamics_soak(self, seed):
        rng = random.Random(seed)
        n = 10
        engine = Engine()
        cfg = WRTRingConfig.homogeneous(range(n), l=2, k=1, rap_enabled=False)
        net = WRTRingNetwork(engine, list(range(n)), cfg)
        checker = RingInvariantChecker(net, strict=True).attach(net.events)

        def traffic(t):
            for sid in net.members:
                st = net.stations[sid]
                if not st.alive or st.leaving:
                    continue
                if rng.random() < 0.3 and len(st.rt_queue) < 8:
                    dst = rng.choice([d for d in net.members if d != sid])
                    st.enqueue(Packet(src=sid, dst=dst,
                                      service=ServiceClass.PREMIUM,
                                      created=t), t)
                if rng.random() < 0.3 and len(st.be_queue) < 8:
                    dst = rng.choice([d for d in net.members if d != sid])
                    st.enqueue(Packet(src=sid, dst=dst,
                                      service=ServiceClass.BEST_EFFORT,
                                      created=t), t)
        net.add_tick_hook(traffic)
        net.start()

        # interleave random dynamics while the ring is big enough
        for step in range(6):
            engine.run(until=engine.now + rng.randint(200, 600))
            if net.network_down or net.n <= 4:
                break
            action = rng.choice(["kill", "leave", "drop", "none"])
            alive = [s for s in net.members if net.stations[s].alive
                     and not net.stations[s].leaving]
            if action == "kill" and len(alive) > 4:
                net.kill_station(rng.choice(alive))
            elif action == "leave" and len(alive) > 4:
                net.leave_gracefully(rng.choice(alive))
            elif action == "drop" and not net._sat_lost:
                net.drop_sat()
        engine.run(until=engine.now + 2000)
        assert checker.clean, checker.violations[:3]
        # the network either survived or went down cleanly — never hung
        if not net.network_down:
            assert net.rotation_log.all_samples(), "ring stopped rotating"
