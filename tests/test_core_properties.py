"""Hypothesis property tests over the live WRT-Ring dataplane.

Random flow sets, quotas and horizons — the properties that must hold for
*every* configuration:

* delivery completeness: with finite offered traffic and an intact ring,
  everything eventually arrives;
* delay floor: a packet can never arrive faster than its hop distance;
* conservation: delivered + queued + transit + terminal = enqueued;
* fairness of the guaranteed class under symmetric saturation;
* per-flow accounting consistency (flow_report vs network metrics).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis import flow_report, jain_fairness
from repro.core import (Packet, ServiceClass, WRTRingConfig, WRTRingNetwork)
from repro.sim import Engine
from repro.traffic import FlowSpec, Workload


def ring(n, l, k):
    engine = Engine()
    cfg = WRTRingConfig.homogeneous(range(n), l=l, k=k, rap_enabled=False)
    return engine, WRTRingNetwork(engine, list(range(n)), cfg)


def hop_distance(net, src, dst):
    return (net._pos[dst] - net._pos[src]) % net.n


class TestDeliveryProperties:
    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=3, max_value=10),
           l=st.integers(min_value=1, max_value=3),
           k=st.integers(min_value=0, max_value=3),
           seed=st.integers(min_value=0, max_value=9999),
           batch=st.integers(min_value=1, max_value=40))
    def test_finite_traffic_fully_delivered(self, n, l, k, seed, batch):
        engine, net = ring(n, l, k)
        rng = random.Random(seed)
        net.start()
        engine.run(until=5)
        packets = []
        # only classes with a non-zero quota can ever be served (a k=0
        # station legitimately never transmits best-effort)
        classes = [ServiceClass.PREMIUM] if l > 0 else []
        if k > 0:
            classes.append(ServiceClass.BEST_EFFORT)
        for _ in range(batch):
            src = rng.randrange(n)
            dst = rng.choice([d for d in range(n) if d != src])
            p = Packet(src=src, dst=dst, service=rng.choice(classes),
                       created=engine.now)
            net.enqueue(p)
            packets.append(p)
        # generous horizon: every batch must drain on an intact ring
        engine.run(until=engine.now + 50 * batch + 50 * n)
        assert all(p.delivered for p in packets)
        assert net.metrics.total_delivered == batch
        assert net.metrics.lost == 0 and net.metrics.orphaned == 0

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=3, max_value=10),
           seed=st.integers(min_value=0, max_value=9999))
    def test_delay_floor_is_hop_distance(self, n, seed):
        engine, net = ring(n, l=2, k=1)
        rng = random.Random(seed)
        net.start()
        engine.run(until=5)
        packets = []
        for _ in range(10):
            src = rng.randrange(n)
            dst = rng.choice([d for d in range(n) if d != src])
            p = Packet(src=src, dst=dst, service=ServiceClass.PREMIUM,
                       created=engine.now)
            net.enqueue(p)
            packets.append(p)
        engine.run(until=engine.now + 600 + 50 * n)
        for p in packets:
            assert p.delivered
            hops = hop_distance(net, p.src, p.dst)
            assert p.t_deliver - p.t_send >= hops
            assert p.end_to_end_delay >= hops

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=3, max_value=8),
           l=st.integers(min_value=1, max_value=3),
           seed=st.integers(min_value=0, max_value=999),
           horizon=st.integers(min_value=200, max_value=1500))
    def test_conservation_at_any_stop_time(self, n, l, seed, horizon):
        engine, net = ring(n, l, 1)
        rng = random.Random(seed)

        def top(t):
            for sid in net.members:
                st_ = net.stations[sid]
                if rng.random() < 0.4 and len(st_.rt_queue) < 6:
                    dst = rng.choice([d for d in net.members if d != sid])
                    st_.enqueue(Packet(src=sid, dst=dst,
                                       service=ServiceClass.PREMIUM,
                                       created=t), t)
        net.add_tick_hook(top)
        net.start()
        engine.run(until=horizon)
        enqueued = sum(sum(s.enqueued.values()) for s in net.stations.values())
        queued = sum(s.queue_length() for s in net.stations.values())
        transit = sum(len(s.transit) for s in net.stations.values())
        terminal = (net.metrics.total_delivered + net.metrics.lost
                    + net.metrics.orphaned)
        assert queued + transit + terminal == enqueued


class TestFairnessProperty:
    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=3, max_value=9),
           l=st.integers(min_value=1, max_value=3),
           seed=st.integers(min_value=0, max_value=999))
    def test_rt_fairness_under_symmetric_saturation(self, n, l, seed):
        engine, net = ring(n, l, 1)
        rng = random.Random(seed)

        def top(t):
            for sid in net.members:
                st_ = net.stations[sid]
                while len(st_.rt_queue) < 2 * l:
                    dst = rng.choice([d for d in net.members if d != sid])
                    st_.enqueue(Packet(src=sid, dst=dst,
                                       service=ServiceClass.PREMIUM,
                                       created=t), t)
        net.add_tick_hook(top)
        net.start()
        engine.run(until=2500)
        shares = [net.stations[s].sent[ServiceClass.PREMIUM]
                  for s in net.members]
        assert jain_fairness(shares) > 0.99


class TestFlowReportConsistency:
    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(min_value=4, max_value=8),
           rate=st.floats(min_value=0.005, max_value=0.05),
           seed=st.integers(min_value=0, max_value=999))
    def test_flow_report_matches_network_metrics(self, n, rate, seed):
        engine, net = ring(n, 2, 2)
        from repro.sim import RandomStreams
        wl = Workload(net, RandomStreams(seed))
        wl.uniform_poisson(rate, service=ServiceClass.PREMIUM)
        net.start()
        engine.run(until=3000)
        report = flow_report(wl.sources)
        assert len(report) == n
        total_delivered = sum(r["delivered"] for r in report.values())
        assert total_delivered == net.metrics.total_delivered
        for r in report.values():
            assert r["delivered"] <= r["generated"]
            assert r["deadline_misses"] == 0
