"""Unit tests for the station-side send and SAT algorithms (Sec. 2.2-2.3)."""

import pytest

from repro.core import Packet, QuotaConfig, ServiceClass, WRTRingStation


def make(service, src=0, dst=1, created=0.0, deadline=None):
    return Packet(src=src, dst=dst, service=service, created=created,
                  deadline=deadline)


def station(l=2, k1=0, k2=2, sid=0):
    return WRTRingStation(sid, QuotaConfig(l=l, k1=k1, k2=k2))


class TestQueueing:
    def test_enqueue_routes_by_class(self):
        st = station(k1=1)
        st.enqueue(make(ServiceClass.PREMIUM), 0.0)
        st.enqueue(make(ServiceClass.ASSURED), 0.0)
        st.enqueue(make(ServiceClass.BEST_EFFORT), 0.0)
        assert st.queue_length(ServiceClass.PREMIUM) == 1
        assert st.queue_length(ServiceClass.ASSURED) == 1
        assert st.queue_length(ServiceClass.BEST_EFFORT) == 1
        assert st.queue_length() == 3

    def test_enqueue_stamps_time(self):
        st = station()
        p = make(ServiceClass.PREMIUM)
        st.enqueue(p, 7.0)
        assert p.t_enqueue == 7.0

    def test_wrong_source_rejected(self):
        st = station(sid=5)
        with pytest.raises(ValueError):
            st.enqueue(make(ServiceClass.PREMIUM, src=0), 0.0)

    def test_dead_station_rejects(self):
        st = station()
        st.alive = False
        with pytest.raises(RuntimeError):
            st.enqueue(make(ServiceClass.PREMIUM), 0.0)


class TestSendAlgorithm:
    def test_rule1_rt_capped_at_l(self):
        st = station(l=2, k2=0)
        # k2=0 invalid? l=2,k=0 fine
        for _ in range(5):
            st.enqueue(make(ServiceClass.PREMIUM), 0.0)
        sent = []
        while True:
            p = st.select_packet()
            if p is None:
                break
            sent.append(p)
        assert len(sent) == 2
        assert st.rt_pck == 2

    def test_rule2_be_needs_rt_done_or_empty(self):
        st = station(l=2, k2=3)
        for _ in range(1):
            st.enqueue(make(ServiceClass.PREMIUM), 0.0)
        for _ in range(3):
            st.enqueue(make(ServiceClass.BEST_EFFORT), 0.0)
        # RT queue nonempty and rt_pck < l: RT goes first
        assert st.select_packet().service is ServiceClass.PREMIUM
        # RT queue now empty -> BE may flow
        assert st.select_packet().service is ServiceClass.BEST_EFFORT

    def test_be_flows_once_rt_quota_exhausted(self):
        st = station(l=1, k2=2)
        for _ in range(4):
            st.enqueue(make(ServiceClass.PREMIUM), 0.0)
        for _ in range(2):
            st.enqueue(make(ServiceClass.BEST_EFFORT), 0.0)
        assert st.select_packet().service is ServiceClass.PREMIUM   # uses l
        # RT queue nonempty but quota exhausted: rule 2's second arm
        assert st.select_packet().service is ServiceClass.BEST_EFFORT
        assert st.select_packet().service is ServiceClass.BEST_EFFORT
        assert st.select_packet() is None   # everything capped

    def test_nrt_total_capped_at_k(self):
        st = station(l=0, k1=2, k2=2)
        for _ in range(5):
            st.enqueue(make(ServiceClass.ASSURED), 0.0)
        for _ in range(5):
            st.enqueue(make(ServiceClass.BEST_EFFORT), 0.0)
        sent = []
        while True:
            p = st.select_packet()
            if p is None:
                break
            sent.append(p.service)
        assert len(sent) == 4  # k = k1 + k2 = 4
        assert sent == [ServiceClass.ASSURED] * 2 + [ServiceClass.BEST_EFFORT] * 2

    def test_assured_priority_over_best_effort(self):
        st = station(l=0, k1=1, k2=1)
        st.enqueue(make(ServiceClass.BEST_EFFORT), 0.0)
        st.enqueue(make(ServiceClass.ASSURED), 0.0)
        assert st.select_packet().service is ServiceClass.ASSURED
        assert st.select_packet().service is ServiceClass.BEST_EFFORT

    def test_k1_cap_respected_even_with_assured_backlog(self):
        st = station(l=0, k1=1, k2=2)
        for _ in range(5):
            st.enqueue(make(ServiceClass.ASSURED), 0.0)
        for _ in range(5):
            st.enqueue(make(ServiceClass.BEST_EFFORT), 0.0)
        sent = [st.select_packet().service for _ in range(3)]
        assert sent == [ServiceClass.ASSURED,
                        ServiceClass.BEST_EFFORT, ServiceClass.BEST_EFFORT]
        assert st.select_packet() is None

    def test_empty_queues_select_none(self):
        assert station().select_packet() is None

    def test_counters_reset_on_release(self):
        st = station(l=1, k2=1)
        st.enqueue(make(ServiceClass.PREMIUM), 0.0)
        st.enqueue(make(ServiceClass.BEST_EFFORT), 0.0)
        st.select_packet()
        st.select_packet()
        assert st.rt_pck == 1 and st.nrt_pck == 1
        st.on_sat_release(10.0)
        assert st.rt_pck == 0 and st.nrt_pck == 0
        assert st.as_pck == 0 and st.be_pck == 0
        assert st.last_sat_departure == 10.0


class TestSatAlgorithm:
    def test_satisfied_when_rt_queue_empty(self):
        st = station(l=2)
        assert st.satisfied

    def test_not_satisfied_with_pending_rt_and_quota(self):
        st = station(l=2)
        st.enqueue(make(ServiceClass.PREMIUM), 0.0)
        assert not st.satisfied

    def test_satisfied_when_quota_exhausted(self):
        st = station(l=1)
        st.enqueue(make(ServiceClass.PREMIUM), 0.0)
        st.enqueue(make(ServiceClass.PREMIUM), 0.0)
        st.select_packet()
        assert st.rt_pck == 1
        assert st.satisfied  # quota used, even though queue nonempty

    def test_be_backlog_never_blocks_satisfaction(self):
        st = station(l=1, k2=5)
        for _ in range(10):
            st.enqueue(make(ServiceClass.BEST_EFFORT), 0.0)
        assert st.satisfied

    def test_arrival_measures_rotation(self):
        st = station()
        assert st.on_sat_arrival(10.0) is None
        assert st.on_sat_arrival(25.0) == 15.0
        assert st.sat_visits == 2

    def test_holds_counted(self):
        st = station(l=1)
        st.enqueue(make(ServiceClass.PREMIUM), 0.0)
        st.on_sat_arrival(5.0)
        assert st.sat_holds == 1

    def test_zero_l_station_always_satisfied(self):
        st = WRTRingStation(0, QuotaConfig(l=0, k1=0, k2=2))
        # no RT quota: satisfied by the rt_pck >= l arm immediately
        assert st.satisfied
