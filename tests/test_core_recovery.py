"""Integration tests for leave and SAT-loss recovery (Sec. 2.4.2 + 2.5)."""

import numpy as np
import pytest

from repro.core import Packet, ServiceClass, WRTRingConfig, WRTRingNetwork
from repro.phy import ConnectivityGraph, ring_placement
from repro.sim import Engine


def make_net(n=6, l=2, k=1, graph=None, **cfg_kwargs):
    engine = Engine()
    cfg_kwargs.setdefault("rap_enabled", False)
    cfg = WRTRingConfig.homogeneous(range(n), l=l, k=k, **cfg_kwargs)
    net = WRTRingNetwork(engine, list(range(n)), cfg, graph=graph)
    return engine, net


def circle_graph(n, margin=2.5):
    """Generous range: every cut-out hop (two chords) is feasible."""
    pos = ring_placement(n, radius=30.0)
    radio_range = 2 * 30.0 * np.sin(np.pi / n) * margin
    return ConnectivityGraph(pos, radio_range)


class TestSilentFailure:
    def test_dead_station_detected_and_cut_out(self):
        engine, net = make_net(6)
        net.start()
        engine.run(until=25)
        net.kill_station(3)
        engine.run(until=400)
        assert net.members == [0, 1, 2, 4, 5]
        assert not net.network_down
        [rec] = net.recovery.records
        assert rec.kind == "silent"
        assert rec.failed_station == 3
        assert rec.outcome == "cutout"
        assert rec.t_completed is not None

    def test_detection_within_sat_time_bound(self):
        """The watchdog is armed with SAT_TIME, so detection takes at most
        one bound from the moment the signal was due."""
        engine, net = make_net(5)
        bound = net.sat_time_bound()
        net.start()
        engine.run(until=17)
        net.kill_station(2)
        engine.run(until=2000)
        [rec] = net.recovery.records
        assert rec.detection_delay is not None
        # the SAT is lost up to one rotation after the death (when it next
        # tries to enter the dead station); detection follows within the
        # SAT_TIME watchdog of that loss
        assert rec.detection_delay <= bound + net.ring_latency()
        # repair (SAT_REC walk) adds at most one more ring latency
        assert rec.total_delay <= bound + 2 * net.ring_latency() + 1

    def test_detector_is_successor_of_dead_station(self):
        engine, net = make_net(7)
        net.start()
        engine.run(until=30)
        net.kill_station(4)
        engine.run(until=600)
        [rec] = net.recovery.records
        assert rec.extra["originator"] == 5

    def test_ring_functional_after_cutout(self):
        engine, net = make_net(6)
        net.start()
        engine.run(until=20)
        net.kill_station(1)
        engine.run(until=400)
        t0 = engine.now
        p = Packet(src=0, dst=4, service=ServiceClass.PREMIUM, created=t0)
        net.enqueue(p)
        engine.run(until=t0 + 100)
        assert p.delivered

    def test_rotations_resume_at_reduced_latency(self):
        engine, net = make_net(6)
        net.start()
        engine.run(until=20)
        net.kill_station(2)
        engine.run(until=600)
        tail = net.rotation_log.samples(0)[-3:]
        assert tail == [5.0, 5.0, 5.0]   # idle ring of 5 now

    def test_quota_bound_shrinks_after_cutout(self):
        engine, net = make_net(6)
        bound_before = net.sat_time_bound()
        net.start()
        engine.run(until=20)
        net.kill_station(2)
        engine.run(until=600)
        assert net.sat_time_bound() == bound_before - 1 - 2 * 3  # -S hop, -2(l+k)

    def test_transit_packets_at_dead_station_lost(self):
        engine, net = make_net(6, l=3)
        net.start()
        engine.run(until=12)
        t0 = engine.now
        # long-haul packets that must cross station 3
        for _ in range(3):
            net.enqueue(Packet(src=2, dst=4, service=ServiceClass.PREMIUM,
                               created=t0))
        net.kill_station(3)
        engine.run(until=500)
        assert net.metrics.lost >= 1

    def test_kill_unknown_station_raises(self):
        engine, net = make_net(4)
        with pytest.raises(KeyError):
            net.kill_station(42)


class TestInjectedSatLoss:
    def test_loss_detected_and_ring_repaired(self):
        engine, net = make_net(5)
        net.start()
        engine.run(until=13)
        net.drop_sat()
        engine.run(until=500)
        [rec] = net.recovery.records
        assert rec.kind == "sat_loss"
        assert rec.outcome == "cutout"
        # the paper's conservative repair removes the presumed-failed
        # (actually alive) predecessor of the detector
        assert len(net.members) == 4
        assert rec.failed_station not in net.members

    def test_reaction_time_below_bound(self):
        engine, net = make_net(8, l=1, k=1)
        bound = net.sat_time_bound()
        net.start()
        engine.run(until=21)
        net.drop_sat()
        engine.run(until=2000)
        [rec] = net.recovery.records
        assert rec.detection_delay <= bound

    def test_rotation_log_clean_after_recovery(self):
        """Recovery gaps must not pollute the Theorem-1 samples."""
        engine, net = make_net(5)
        net.start()
        engine.run(until=13)
        net.drop_sat()
        engine.run(until=1000)
        # every logged rotation still respects the (current) bound
        assert net.rotation_log.worst() < net.sat_time_bound() + 2 * 4 + 1


class TestGracefulLeave:
    def test_announced_leave_faster_than_silent(self):
        engine, net = make_net(6)
        net.start()
        engine.run(until=20)
        net.leave_gracefully(3)
        engine.run(until=400)
        [rec] = net.recovery.records
        assert rec.kind == "graceful"
        assert 3 not in net.members
        graceful_total = rec.total_delay

        engine2, net2 = make_net(6)
        net2.start()
        engine2.run(until=20)
        net2.kill_station(3)
        engine2.run(until=400)
        [rec2] = net2.recovery.records
        assert graceful_total < rec2.total_delay

    def test_leaving_station_stops_inserting(self):
        engine, net = make_net(5, l=3)
        net.start()
        engine.run(until=10)
        t0 = engine.now
        net.leave_gracefully(2)
        p = Packet(src=2, dst=4, service=ServiceClass.PREMIUM, created=t0)
        net.stations[2].enqueue(p, t0)
        engine.run(until=400)
        assert not p.delivered
        assert p.t_send is None

    def test_leave_below_three_members_rejected(self):
        engine, net = make_net(2)
        with pytest.raises(RuntimeError):
            net.leave_gracefully(0)

    def test_sequential_leaves(self):
        engine, net = make_net(6)
        net.start()
        engine.run(until=20)
        net.leave_gracefully(1)
        engine.run(until=300)
        net.leave_gracefully(4)
        engine.run(until=600)
        assert net.members == [0, 2, 3, 5]
        assert all(r.outcome == "cutout" for r in net.recovery.records)


class TestUnrecoverableGeometry:
    def test_cutout_fails_out_of_range_then_rebuild(self):
        """If pred(failed) cannot reach succ(failed), the SAT_REC dies and a
        full ring re-formation follows (Sec. 2.5's last paragraph)."""
        # a tight ring: each station reaches ONLY its two ring neighbours,
        # so the cut-out chord is always out of range...
        n = 6
        pos = ring_placement(n, radius=30.0)
        tight = ConnectivityGraph(pos, 2 * 30.0 * np.sin(np.pi / n) * 1.05)
        engine, net = make_net(n, graph=tight)
        net.start()
        engine.run(until=20)
        net.kill_station(3)
        engine.run(until=3000)
        # ... and with the dead station gone no Hamiltonian cycle exists
        # over the survivors: the network must be declared down, not hang
        [rec] = net.recovery.records
        assert rec.outcome == "down"
        assert net.network_down

    def test_rebuild_succeeds_with_dense_graph_after_double_fault(self):
        """Kill the detector during recovery: rebuild over the survivors."""
        engine, net = make_net(6, graph=circle_graph(6, margin=4.0))
        net.start()
        engine.run(until=20)
        net.kill_station(3)
        # kill the detector-to-be (4) shortly after so the SAT_REC dies too
        engine.run(until=25)
        net.kill_station(4)
        engine.run(until=4000)
        assert not net.network_down
        assert set(net.members) == {0, 1, 2, 5}
        assert net.recovery.ring_rebuilds >= 1
        # ring still works
        t0 = engine.now
        p = Packet(src=0, dst=5, service=ServiceClass.PREMIUM, created=t0)
        net.enqueue(p)
        engine.run(until=t0 + 100)
        assert p.delivered

    def test_two_station_ring_death_is_fatal(self):
        engine, net = make_net(2)
        net.start()
        engine.run(until=5)
        net.kill_station(1)
        engine.run(until=1000)
        assert net.network_down


class TestTimers:
    def test_timers_never_fire_in_healthy_network(self):
        engine, net = make_net(6)
        net.start()

        def top(t):  # saturate to stress rotation times
            for sid in net.members:
                st = net.stations[sid]
                while len(st.rt_queue) < 10:
                    st.enqueue(Packet(src=sid, dst=(sid + 1) % 6,
                                      service=ServiceClass.PREMIUM,
                                      created=t), t)
        net.add_tick_hook(top)
        engine.run(until=5000)
        assert net.recovery.records == []
        assert all(timer.expirations == 0
                   for timer in net.recovery.timers.values())

    def test_timer_durations_track_bound(self):
        engine, net = make_net(5)
        net.start()
        engine.run(until=30)
        for timer in net.recovery.timers.values():
            assert timer.duration == net.sat_time_bound()
