"""Tests for the Diffserv mapping (Sec. 2.3) — unit + service differentiation."""

import pytest

from repro.core import (DiffservProfile, Packet, QuotaConfig, ServiceClass,
                        WRTRingConfig, WRTRingNetwork, split_k_quota)
from repro.core.diffserv import dscp_to_service_class
from repro.sim import Engine


class TestSplitK:
    def test_split_sums_to_k(self):
        for k in range(10):
            for frac in (0.0, 0.3, 0.5, 0.9, 1.0):
                k1, k2 = split_k_quota(k, frac)
                assert k1 + k2 == k
                assert k1 >= 0 and k2 >= 0

    def test_extremes(self):
        assert split_k_quota(4, 0.0) == (0, 4)
        assert split_k_quota(4, 1.0) == (4, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            split_k_quota(-1, 0.5)
        with pytest.raises(ValueError):
            split_k_quota(4, 1.5)


class TestProfile:
    def test_roundtrip(self):
        p = DiffservProfile(premium=2, assured=3, best_effort=1)
        q = p.to_quota()
        assert q.l == 2 and q.k1 == 3 and q.k2 == 1
        assert DiffservProfile.from_quota(q) == p

    def test_service_share(self):
        p = DiffservProfile(premium=2, assured=3, best_effort=1)
        assert p.service_share(ServiceClass.PREMIUM) == 2
        assert p.service_share(ServiceClass.ASSURED) == 3
        assert p.service_share(ServiceClass.BEST_EFFORT) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DiffservProfile(premium=-1, assured=0, best_effort=0)
        with pytest.raises(ValueError):
            DiffservProfile(premium=0, assured=0, best_effort=0)


class TestDscpMapping:
    def test_names(self):
        assert dscp_to_service_class("premium") is ServiceClass.PREMIUM
        assert dscp_to_service_class("EF") is ServiceClass.PREMIUM
        assert dscp_to_service_class("Assured") is ServiceClass.ASSURED
        assert dscp_to_service_class("af") is ServiceClass.ASSURED
        assert dscp_to_service_class("be") is ServiceClass.BEST_EFFORT
        assert dscp_to_service_class("default") is ServiceClass.BEST_EFFORT

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            dscp_to_service_class("diamond")


class TestServiceDifferentiation:
    """Sec. 2.3 end-to-end: Premium bounded, Assured preferred over BE."""

    def run_three_class_overload(self, horizon=4000):
        engine = Engine()
        n = 5
        quotas = {sid: QuotaConfig.three_class(l=2, k1=2, k2=2)
                  for sid in range(n)}
        cfg = WRTRingConfig(quotas=quotas, rap_enabled=False)
        net = WRTRingNetwork(engine, list(range(n)), cfg)
        net.start()

        def top(t):
            for sid in net.members:
                st = net.stations[sid]
                dst = (sid + 2) % n
                while len(st.rt_queue) < 5:
                    st.enqueue(Packet(src=sid, dst=dst,
                                      service=ServiceClass.PREMIUM,
                                      created=t), t)
                while len(st.as_queue) < 15:
                    st.enqueue(Packet(src=sid, dst=dst,
                                      service=ServiceClass.ASSURED,
                                      created=t), t)
                while len(st.be_queue) < 15:
                    st.enqueue(Packet(src=sid, dst=dst,
                                      service=ServiceClass.BEST_EFFORT,
                                      created=t), t)
        net.add_tick_hook(top)
        engine.run(until=horizon)
        return net

    def test_premium_access_delay_below_bound(self):
        from repro.analysis import access_delay_bound
        net = self.run_three_class_overload()
        worst_premium = net.metrics.access_delay[ServiceClass.PREMIUM].max
        # backlog is capped at 5 by the generator
        bound = access_delay_bound(5, 2, 5, 0, [(2, 4)] * 5)
        assert worst_premium <= bound

    def test_class_delay_ordering(self):
        net = self.run_three_class_overload()
        premium = net.metrics.access_delay[ServiceClass.PREMIUM].mean
        assured = net.metrics.access_delay[ServiceClass.ASSURED].mean
        assert premium < assured

    def test_assured_outruns_best_effort(self):
        net = self.run_three_class_overload()
        sent_as = sum(net.stations[s].sent[ServiceClass.ASSURED]
                      for s in net.members)
        sent_be = sum(net.stations[s].sent[ServiceClass.BEST_EFFORT]
                      for s in net.members)
        # equal caps (k1 == k2) but Assured drains first every round; under
        # expiry pressure BE loses more authorizations
        assert sent_as >= sent_be

    def test_classes_are_per_station_local(self):
        """'Any single station can decide the number of classes to
        implement ... without affecting the other stations.'"""
        engine = Engine()
        quotas = {0: QuotaConfig.three_class(l=1, k1=2, k2=1),
                  1: QuotaConfig.two_class(l=1, k=3),
                  2: QuotaConfig.two_class(l=2, k=2)}
        cfg = WRTRingConfig(quotas=quotas, rap_enabled=False)
        net = WRTRingNetwork(engine, [0, 1, 2], cfg)
        net.start()

        def top(t):
            st0 = net.stations[0]
            while len(st0.as_queue) < 5:
                st0.enqueue(Packet(src=0, dst=1,
                                   service=ServiceClass.ASSURED,
                                   created=t), t)
            st1 = net.stations[1]
            while len(st1.be_queue) < 5:
                st1.enqueue(Packet(src=1, dst=2,
                                   service=ServiceClass.BEST_EFFORT,
                                   created=t), t)
        net.add_tick_hook(top)
        engine.run(until=1000)
        # both stations progress within their own class structures
        assert net.stations[0].sent[ServiceClass.ASSURED] > 100
        assert net.stations[1].sent[ServiceClass.BEST_EFFORT] > 100
        # and rotations stay at the Theorem-1 bound of the mixed quotas
        from repro.analysis import sat_rotation_bound
        bound = sat_rotation_bound(3, 0, quotas.values())
        assert net.rotation_log.worst() < bound
