"""Edge cases of the timed-token behaviour in TPT."""

import pytest

from repro.baselines import TPTConfig, TPTNetwork, choose_ttrt
from repro.baselines.tpt.station import TPTStation
from repro.core import Packet, ServiceClass
from repro.sim import Engine


def star(n):
    children = {i: [] for i in range(n)}
    children[0] = list(range(1, n))
    return children


class TestStationBudgets:
    def test_grant_budgets_first_visit(self):
        st = TPTStation(0, H=3)
        trt = st.grant_budgets(10.0, ttrt=50.0)
        assert trt is None                      # very first visit
        assert st.sync_budget == 3
        assert st.async_budget == 0             # no TRT measurement yet

    def test_early_token_grants_async(self):
        st = TPTStation(0, H=2)
        st.grant_budgets(10.0, ttrt=50.0)
        trt = st.grant_budgets(40.0, ttrt=50.0)
        assert trt == 30.0
        assert st.async_budget == 20            # TTRT - TRT

    def test_late_token_no_async(self):
        st = TPTStation(0, H=2)
        st.grant_budgets(10.0, ttrt=50.0)
        st.grant_budgets(70.0, ttrt=50.0)       # TRT = 60 > TTRT
        assert st.async_budget == 0
        assert st.sync_budget == 2              # sync unconditional

    def test_zero_H_station_sends_only_async(self):
        st = TPTStation(0, H=0)
        st.grant_budgets(0.0, ttrt=50.0)
        st.grant_budgets(10.0, ttrt=50.0)
        st.enqueue(Packet(src=0, dst=1, service=ServiceClass.PREMIUM,
                          created=0.0), 0.0)
        st.enqueue(Packet(src=0, dst=1, service=ServiceClass.BEST_EFFORT,
                          created=0.0), 0.0)
        # RT has no sync budget; async (BE) flows
        p = st.select_packet()
        assert p.service is ServiceClass.BEST_EFFORT
        assert st.rt_queue            # premium stuck without allocation

    def test_select_respects_budgets(self):
        st = TPTStation(0, H=1)
        st.grant_budgets(0.0, ttrt=50.0)
        st.grant_budgets(10.0, ttrt=12.0)   # async budget = 2
        for _ in range(3):
            st.enqueue(Packet(src=0, dst=1, service=ServiceClass.PREMIUM,
                              created=0.0), 0.0)
            st.enqueue(Packet(src=0, dst=1,
                              service=ServiceClass.BEST_EFFORT,
                              created=0.0), 0.0)
        sent = []
        while True:
            p = st.select_packet()
            if p is None:
                break
            sent.append(p.service)
        assert sent == [ServiceClass.PREMIUM,
                        ServiceClass.BEST_EFFORT, ServiceClass.BEST_EFFORT]

    def test_negative_H_rejected(self):
        with pytest.raises(ValueError):
            TPTStation(0, H=-1)

    def test_wrong_source_rejected(self):
        st = TPTStation(5, H=1)
        with pytest.raises(ValueError):
            st.enqueue(Packet(src=0, dst=1, service=ServiceClass.PREMIUM,
                              created=0.0), 0.0)


class TestAsymmetricAllocations:
    def test_heterogeneous_H_respected(self):
        """Station allocations differ: each sends at most H_i sync/round."""
        engine = Engine()
        n = 4
        H = {0: 1, 1: 4, 2: 0, 3: 2}
        ttrt = choose_ttrt(list(H.values()), 2 * (n - 1), margin=2.0)
        net = TPTNetwork(engine, star(n), root=0,
                         config=TPTConfig(H=H, ttrt=ttrt))
        import random
        rng = random.Random(0)

        def top(t):
            for sid, st in net.stations.items():
                while len(st.rt_queue) < 10:
                    dst = rng.choice([d for d in net.members if d != sid])
                    st.enqueue(Packet(src=sid, dst=dst,
                                      service=ServiceClass.PREMIUM,
                                      created=t), t)
        net.add_tick_hook(top)
        net.start()
        engine.run(until=4000)
        for sid, st in net.stations.items():
            assert st.sent[ServiceClass.PREMIUM] <= st.token_visits * H[sid]
        # station 2 (H=0) sent no sync at all
        assert net.stations[2].sent[ServiceClass.PREMIUM] == 0
        # rotation bound still holds
        assert net.rotation_log.worst() <= 2 * ttrt

    def test_rotation_tracks_actual_allocation_usage(self):
        """Idle stations don't consume their allocation: rotation stays near
        the walk time when queues are empty, regardless of Σ H."""
        engine = Engine()
        n = 5
        H = {i: 10 for i in range(n)}
        ttrt = choose_ttrt([10] * n, 2 * (n - 1), margin=1.2)
        net = TPTNetwork(engine, star(n), root=0,
                         config=TPTConfig(H=H, ttrt=ttrt))
        net.start()
        engine.run(until=2000)
        assert net.rotation_log.all_samples()[-1] == 2 * (n - 1)


class TestTokenLossEdge:
    def test_loss_while_held_at_leaf(self):
        engine = Engine()
        n = 4
        ttrt = choose_ttrt([2] * n, 2 * (n - 1), margin=2.0)
        net = TPTNetwork(engine, star(n), root=0,
                         config=TPTConfig(H={i: 2 for i in range(n)},
                                          ttrt=ttrt))
        net.start()
        engine.run(until=9)      # token is somewhere mid-tour
        net.drop_token()
        engine.run(until=3000)
        [rec] = net.records
        assert rec.outcome == "token_reissued"
        assert net.rotation_log.all_samples()[-1] == 2 * (n - 1)

    def test_two_quick_losses(self):
        engine = Engine()
        n = 5
        ttrt = choose_ttrt([1] * n, 2 * (n - 1), margin=2.0)
        net = TPTNetwork(engine, star(n), root=0,
                         config=TPTConfig(H={i: 1 for i in range(n)},
                                          ttrt=ttrt))
        net.start()
        engine.run(until=20)
        net.drop_token()
        engine.run(until=engine.now + 4 * ttrt + 50)
        net.drop_token()
        engine.run(until=engine.now + 8 * ttrt + 200)
        assert len(net.records) == 2
        assert all(r.outcome == "token_reissued" for r in net.records)
        assert not net.network_down

    def test_root_death_rebuild_elects_new_root(self):
        engine = Engine()
        n = 5
        from repro.phy import ConnectivityGraph, ring_placement
        graph = ConnectivityGraph(ring_placement(n, radius=20.0), 100.0)
        ttrt = choose_ttrt([2] * n, 2 * (n - 1), margin=2.0)
        net = TPTNetwork(engine, star(n), root=0,
                         config=TPTConfig(H={i: 2 for i in range(n)},
                                          ttrt=ttrt), graph=graph)
        net.start()
        engine.run(until=30)
        net.kill_station(0)      # the root itself dies
        engine.run(until=6000)
        assert 0 not in net.members
        assert net.root != 0
        assert not net.network_down
        # tree works: deliver something
        t0 = engine.now
        p = Packet(src=net.members[0], dst=net.members[1],
                   service=ServiceClass.PREMIUM, created=t0)
        net.enqueue(p)
        engine.run(until=t0 + 500)
        assert p.delivered
