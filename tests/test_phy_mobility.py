"""Unit tests for mobility models."""

import numpy as np
import pytest

from repro.phy import Arena, JitterMobility, RandomWaypointMobility, StaticMobility


class TestStatic:
    def test_never_moves(self):
        pos = np.array([[1.0, 2.0], [3.0, 4.0]])
        m = StaticMobility(pos)
        m.advance(100.0)
        assert np.allclose(m.positions, pos)
        assert m.n == 2

    def test_copies_input(self):
        pos = np.array([[1.0, 2.0]])
        m = StaticMobility(pos)
        pos[0, 0] = 99.0
        assert m.positions[0, 0] == 1.0

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            StaticMobility(np.zeros((3,)))

    def test_negative_dt_rejected(self):
        m = StaticMobility(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            m.advance(-1.0)


class TestJitter:
    def test_stays_within_wander_radius(self):
        rng = np.random.default_rng(0)
        home = np.array([[50.0, 50.0]] * 20)
        m = JitterMobility(home, wander_radius=3.0, speed=2.0)
        for _ in range(200):
            m.advance(1.0, rng)
            dist = np.linalg.norm(m.positions - home, axis=1)
            assert (dist <= 3.0 + 1e-9).all()

    def test_actually_moves(self):
        rng = np.random.default_rng(1)
        home = np.zeros((5, 2)) + 50.0
        m = JitterMobility(home, wander_radius=10.0, speed=1.0)
        m.advance(1.0, rng)
        assert not np.allclose(m.positions, home)

    def test_zero_speed_is_static(self):
        rng = np.random.default_rng(2)
        home = np.zeros((3, 2))
        m = JitterMobility(home, wander_radius=5.0, speed=0.0)
        m.advance(10.0, rng)
        assert np.allclose(m.positions, home)

    def test_arena_clipping(self):
        rng = np.random.default_rng(3)
        arena = Arena(10.0, 10.0)
        home = np.array([[0.0, 0.0]])
        m = JitterMobility(home, wander_radius=50.0, speed=10.0, arena=arena)
        for _ in range(50):
            m.advance(1.0, rng)
            assert arena.contains(m.positions).all()

    def test_requires_rng_when_moving(self):
        m = JitterMobility(np.zeros((1, 2)), wander_radius=1.0, speed=1.0)
        with pytest.raises(ValueError):
            m.advance(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            JitterMobility(np.zeros((1, 2)), wander_radius=-1.0)
        with pytest.raises(ValueError):
            JitterMobility(np.zeros((1, 2)), wander_radius=1.0, speed=-1.0)


class TestRandomWaypoint:
    def test_stays_in_arena(self):
        rng = np.random.default_rng(4)
        arena = Arena(20.0, 20.0)
        pos = np.full((10, 2), 10.0)
        m = RandomWaypointMobility(pos, arena, speed=2.0, rng=rng)
        for _ in range(100):
            m.advance(1.0, rng)
            assert arena.contains(m.positions).all()

    def test_speed_limits_displacement(self):
        rng = np.random.default_rng(5)
        arena = Arena(1000.0, 1000.0)
        pos = np.full((5, 2), 500.0)
        m = RandomWaypointMobility(pos, arena, speed=3.0, rng=rng)
        prev = m.positions.copy()
        for _ in range(50):
            m.advance(2.0, rng)
            step = np.linalg.norm(m.positions - prev, axis=1)
            assert (step <= 3.0 * 2.0 + 1e-6).all()
            prev = m.positions.copy()

    def test_pause_reduces_distance_travelled(self):
        rng1 = np.random.default_rng(6)
        rng2 = np.random.default_rng(6)
        arena = Arena(100.0, 100.0)
        pos = np.full((8, 2), 50.0)
        fast = RandomWaypointMobility(pos, arena, speed=5.0, rng=np.random.default_rng(7))
        slow = RandomWaypointMobility(pos, arena, speed=5.0, rng=np.random.default_rng(7), pause=20.0)
        path_fast = path_slow = 0.0
        pf, ps = fast.positions.copy(), slow.positions.copy()
        for _ in range(100):
            fast.advance(1.0, rng1)
            slow.advance(1.0, rng2)
            path_fast += np.linalg.norm(fast.positions - pf, axis=1).sum()
            path_slow += np.linalg.norm(slow.positions - ps, axis=1).sum()
            pf, ps = fast.positions.copy(), slow.positions.copy()
        assert path_slow < path_fast  # pausing walkers cover less path

    def test_validation(self):
        arena = Arena(10, 10)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            RandomWaypointMobility(np.zeros((1, 2)), arena, speed=0.0, rng=rng)
        with pytest.raises(ValueError):
            RandomWaypointMobility(np.zeros((1, 2)), arena, speed=1.0, rng=rng, pause=-1.0)
        m = RandomWaypointMobility(np.zeros((1, 2)), arena, speed=1.0, rng=rng)
        with pytest.raises(ValueError):
            m.advance(1.0)  # missing rng
