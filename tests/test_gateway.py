"""Tests for the Diffserv LAN and the Fig. 2 gateway scenario."""

import pytest

from repro.core import (Packet, QuotaConfig, ServiceClass, WRTRingConfig,
                        WRTRingNetwork)
from repro.gateway import DiffservLAN, Gateway, LanHost, LanPacket, StreamRequest
from repro.sim import Engine


def lan_setup(capacity=4, premium_share=0.5, hosts=(50, 51)):
    engine = Engine()
    lan = DiffservLAN(engine, capacity=capacity, premium_share=premium_share)
    for hid in hosts:
        lan.attach_host(LanHost(hid))
    lan.start()
    return engine, lan


class TestDiffservLAN:
    def test_delivery(self):
        engine, lan = lan_setup()
        lan.send(LanPacket(src=99, dst=50, service=ServiceClass.PREMIUM,
                           created=0.0))
        engine.run(until=5.0)
        assert len(lan.hosts[50].received) == 1
        assert lan.delivered[ServiceClass.PREMIUM] == 1

    def test_priority_scheduling(self):
        engine, lan = lan_setup(capacity=1)
        # enqueue BE first, then premium: premium must still go first
        lan.send(LanPacket(src=99, dst=50, service=ServiceClass.BEST_EFFORT,
                           created=0.0))
        lan.send(LanPacket(src=99, dst=50, service=ServiceClass.PREMIUM,
                           created=0.0))
        engine.run(until=1.0)
        assert lan.hosts[50].received[0].service is ServiceClass.PREMIUM

    def test_capacity_limits_served_per_slot(self):
        engine, lan = lan_setup(capacity=2)
        for _ in range(6):
            lan.send(LanPacket(src=99, dst=50, service=ServiceClass.BEST_EFFORT,
                               created=0.0))
        engine.run(until=0.5)   # only the t=0 service slot has run
        assert len(lan.hosts[50].received) == 2
        engine.run(until=2.5)
        assert len(lan.hosts[50].received) == 6

    def test_reservation_budget(self):
        engine, lan = lan_setup(capacity=4, premium_share=0.5)
        assert lan.premium_budget == 2.0
        assert lan.reserve(1, 1.5)
        assert not lan.reserve(2, 0.6)   # 1.5 + 0.6 > 2.0
        assert lan.reserve(3, 0.5)
        lan.release(1)
        assert lan.reserve(4, 1.0)

    def test_duplicate_reservation_rejected(self):
        engine, lan = lan_setup()
        lan.reserve(1, 0.5)
        with pytest.raises(ValueError):
            lan.reserve(1, 0.1)
        with pytest.raises(ValueError):
            lan.reserve(2, 0.0)

    def test_unknown_destination_rejected(self):
        engine, lan = lan_setup()
        with pytest.raises(KeyError):
            lan.send(LanPacket(src=99, dst=77, service=ServiceClass.PREMIUM,
                               created=0.0))

    def test_validation(self):
        engine = Engine()
        with pytest.raises(ValueError):
            DiffservLAN(engine, capacity=0)
        with pytest.raises(ValueError):
            DiffservLAN(engine, capacity=1, premium_share=0.0)

    def test_host_callback(self):
        engine = Engine()
        got = []
        lan = DiffservLAN(engine)
        lan.attach_host(LanHost(50, receive=lambda p, t: got.append((p, t))))
        lan.start()
        lan.send(LanPacket(src=1, dst=50, service=ServiceClass.ASSURED,
                           created=0.0))
        engine.run(until=2.0)
        assert len(got) == 1 and got[0][1] == 1.0

    def test_duplicate_host_rejected(self):
        engine, lan = lan_setup()
        with pytest.raises(ValueError):
            lan.attach_host(LanHost(50))


def bridge_setup(n=5, l=2, k=2, capacity=4):
    engine = Engine()
    cfg = WRTRingConfig.homogeneous(range(n), l=l, k=k, rap_enabled=False)
    net = WRTRingNetwork(engine, list(range(n)), cfg)
    lan = DiffservLAN(engine, capacity=capacity)
    lan.attach_host(LanHost(50))
    lan.attach_host(LanHost(51))
    gw = Gateway(net, sid=0, lan=lan)
    net.start()
    lan.start()
    return engine, net, lan, gw


class TestGatewayAdmission:
    def test_lan_to_ring_premium_within_capacity(self):
        engine, net, lan, gw = bridge_setup()
        capacity = gw._premium_capacity()
        grant = gw.request_stream(StreamRequest(
            rate=capacity * 0.8, service=ServiceClass.PREMIUM,
            direction="lan_to_ring", ring_endpoint=2, lan_endpoint=50))
        assert grant.accepted

    def test_lan_to_ring_premium_over_capacity_rejected(self):
        engine, net, lan, gw = bridge_setup()
        capacity = gw._premium_capacity()
        g1 = gw.request_stream(StreamRequest(
            rate=capacity * 0.7, service=ServiceClass.PREMIUM,
            direction="lan_to_ring", ring_endpoint=2, lan_endpoint=50))
        g2 = gw.request_stream(StreamRequest(
            rate=capacity * 0.7, service=ServiceClass.PREMIUM,
            direction="lan_to_ring", ring_endpoint=3, lan_endpoint=50))
        assert g1.accepted and not g2.accepted
        assert "guaranteed capacity" in g2.reason

    def test_ring_to_lan_uses_lan_reservation(self):
        engine, net, lan, gw = bridge_setup()
        g = gw.request_stream(StreamRequest(
            rate=1.5, service=ServiceClass.PREMIUM,
            direction="ring_to_lan", ring_endpoint=2, lan_endpoint=50))
        assert g.accepted
        assert lan.reserved_premium == 1.5
        g2 = gw.request_stream(StreamRequest(
            rate=1.0, service=ServiceClass.PREMIUM,
            direction="ring_to_lan", ring_endpoint=3, lan_endpoint=51))
        assert not g2.accepted

    def test_release_frees_capacity(self):
        engine, net, lan, gw = bridge_setup()
        g = gw.request_stream(StreamRequest(
            rate=2.0, service=ServiceClass.PREMIUM,
            direction="ring_to_lan", ring_endpoint=2, lan_endpoint=50))
        gw.release_stream(g.stream_id)
        assert lan.reserved_premium == 0.0
        inbound = gw.request_stream(StreamRequest(
            rate=gw._premium_capacity(), service=ServiceClass.PREMIUM,
            direction="lan_to_ring", ring_endpoint=2, lan_endpoint=50))
        gw.release_stream(inbound.stream_id)
        assert gw.reserved_inbound_rate == 0.0

    def test_best_effort_needs_no_reservation(self):
        engine, net, lan, gw = bridge_setup()
        g = gw.request_stream(StreamRequest(
            rate=100.0, service=ServiceClass.BEST_EFFORT,
            direction="lan_to_ring", ring_endpoint=2, lan_endpoint=50))
        assert g.accepted

    def test_gateway_must_be_member(self):
        engine, net, lan, _ = bridge_setup()
        with pytest.raises(KeyError):
            Gateway(net, sid=99, lan=lan)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            StreamRequest(rate=0.0, service=ServiceClass.PREMIUM,
                          direction="lan_to_ring", ring_endpoint=1,
                          lan_endpoint=50)
        with pytest.raises(ValueError):
            StreamRequest(rate=1.0, service=ServiceClass.PREMIUM,
                          direction="sideways", ring_endpoint=1,
                          lan_endpoint=50)


class TestGatewayForwarding:
    def test_lan_to_ring_end_to_end(self):
        engine, net, lan, gw = bridge_setup()
        engine.run(until=10)
        t0 = engine.now
        lan_pkt = LanPacket(src=50, dst=0, service=ServiceClass.PREMIUM,
                            created=t0)
        ring_pkt = gw.lan_ingress(lan_pkt, ring_dst=3, deadline=t0 + 200)
        engine.run(until=t0 + 150)
        assert ring_pkt.delivered
        assert gw.forwarded_to_ring == 1
        assert net.metrics.deadlines.met == 1

    def test_ring_to_lan_end_to_end(self):
        engine, net, lan, gw = bridge_setup()
        engine.run(until=10)
        p = gw.send_to_lan(src_station=3, lan_dst=51,
                           service=ServiceClass.PREMIUM)
        engine.run(until=200)
        assert p.delivered                      # reached G1 on the ring
        assert gw.forwarded_to_lan == 1
        assert len(lan.hosts[51].received) == 1
        # end-to-end delay spans both networks
        lan_delivery = lan.hosts[51].received[0]
        assert lan_delivery.t_deliver > p.t_deliver

    def test_ordinary_traffic_to_gateway_not_forwarded(self):
        engine, net, lan, gw = bridge_setup()
        engine.run(until=10)
        p = Packet(src=2, dst=0, service=ServiceClass.BEST_EFFORT,
                   created=engine.now)
        net.enqueue(p)
        engine.run(until=200)
        assert p.delivered
        assert gw.forwarded_to_lan == 0

    def test_admitted_premium_stream_meets_deadlines(self):
        """Fig. 2's promise: an admitted stream gets its guarantee."""
        import random
        engine, net, lan, gw = bridge_setup(l=2, k=2)
        rate = gw._premium_capacity() * 0.5
        grant = gw.request_stream(StreamRequest(
            rate=rate, service=ServiceClass.PREMIUM,
            direction="lan_to_ring", ring_endpoint=3, lan_endpoint=50))
        assert grant.accepted
        from repro.analysis import access_delay_bound
        deadline_budget = access_delay_bound(
            2 * net.stations[0].quota.l, net.stations[0].quota.l,
            5, 0, [(2, 2)] * 5) + 10
        period = 1.0 / rate
        misses = []

        def feed(t, state={"next": 20.0}):
            while t >= state["next"]:
                lan_pkt = LanPacket(src=50, dst=0,
                                    service=ServiceClass.PREMIUM,
                                    created=state["next"])
                gw.lan_ingress(lan_pkt, ring_dst=3,
                               deadline=state["next"] + deadline_budget)
                state["next"] += period
        net.add_tick_hook(feed)
        engine.run(until=5000)
        assert net.metrics.deadlines.missed == 0
        assert net.metrics.deadlines.met > 50


class TestGatewayEvents:
    """The bridge speaks the typed event spine: every forward/drop/buffer
    fact lands on the network's bus as gw.* events."""

    def test_forward_events_both_directions(self):
        from repro.events.types import GatewayForward

        engine, net, lan, gw = bridge_setup()
        got = []
        net.events.subscribe(GatewayForward, got.append)
        engine.run(until=10)
        t0 = engine.now
        gw.lan_ingress(LanPacket(src=50, dst=0,
                                 service=ServiceClass.PREMIUM, created=t0),
                       ring_dst=3)
        gw.send_to_lan(src_station=3, lan_dst=51,
                       service=ServiceClass.PREMIUM)
        engine.run(until=300)
        assert sorted({ev.direction for ev in got}) == \
            ["lan_to_ring", "ring_to_lan"]
        assert all(ev.gateway == gw.sid for ev in got)

    def test_bounded_ingress_buffer_overflow(self):
        from repro.events.types import GatewayBuffer, GatewayDrop

        engine = Engine()
        cfg = WRTRingConfig.homogeneous(range(5), l=2, k=2,
                                        rap_enabled=False)
        net = WRTRingNetwork(engine, list(range(5)), cfg)
        lan = DiffservLAN(engine, capacity=4)
        lan.attach_host(LanHost(50))
        gw = Gateway(net, sid=0, lan=lan, buffer_limit=1)
        drops, buffers = [], []
        net.events.subscribe(GatewayDrop, drops.append)
        net.events.subscribe(GatewayBuffer, buffers.append)
        net.start()
        lan.start()
        first = gw.lan_ingress(LanPacket(src=50, dst=0,
                                         service=ServiceClass.PREMIUM,
                                         created=0.0), ring_dst=2)
        second = gw.lan_ingress(LanPacket(src=50, dst=0,
                                          service=ServiceClass.PREMIUM,
                                          created=0.0), ring_dst=3)
        assert first is not None and second is None
        assert gw.ingress_attempts == 2
        assert gw.ingress_drops == 1
        assert [(ev.reason, ev.direction) for ev in drops] == \
            [("overflow", "lan_to_ring")]
        assert buffers[0].occupancy == 1 and buffers[0].capacity == 1

    def test_buffer_limit_validation(self):
        engine, net, lan, _ = bridge_setup()
        with pytest.raises(ValueError):
            Gateway(net, sid=1, lan=lan, buffer_limit=0)

    def test_lan_queue_limit_overflow(self):
        from repro.events.bus import EventBus
        from repro.events.types import GatewayDrop

        engine = Engine()
        bus = EventBus()
        lan = DiffservLAN(engine, capacity=1, queue_limit=2,
                          events=bus, lan_id=-7)
        lan.attach_host(LanHost(50))
        drops = []
        bus.subscribe(GatewayDrop, drops.append)
        lan.start()
        sent = [lan.send(LanPacket(src=9, dst=50,
                                   service=ServiceClass.BEST_EFFORT,
                                   created=0.0))
                for _ in range(3)]
        assert sent == [True, True, False]
        assert lan.dropped == 1
        assert drops[-1].reason == "overflow"
        assert drops[-1].gateway == -7      # LAN-side label

    def test_lan_ttl_expires_stale_queue_prefix(self):
        from repro.events.bus import EventBus
        from repro.events.types import GatewayDrop

        engine = Engine()
        bus = EventBus()
        lan = DiffservLAN(engine, capacity=1, ttl=0.5, events=bus)
        lan.attach_host(LanHost(50))
        drops = []
        bus.subscribe(GatewayDrop, drops.append)
        lan.start()
        for _ in range(4):
            lan.send(LanPacket(src=9, dst=50,
                               service=ServiceClass.BEST_EFFORT,
                               created=0.0))
        engine.run(until=3.0)
        # the t=0 slot serves one packet; by the t=1 slot the other three
        # have aged past the TTL and are expired as a queue prefix
        assert len(lan.hosts[50].received) == 1
        assert lan.dropped == 3
        assert {ev.reason for ev in drops} == {"ttl"}

    def test_lan_policy_validation(self):
        engine = Engine()
        with pytest.raises(ValueError):
            DiffservLAN(engine, queue_limit=0)
        with pytest.raises(ValueError):
            DiffservLAN(engine, ttl=0.0)


class TestGatewayConservation:
    def test_oracle_clean_after_mixed_traffic(self):
        from repro.fuzz import PacketLedger, check_gateway_conservation

        engine, net, lan, gw = bridge_setup()
        ledger = PacketLedger(net)
        engine.run(until=10)
        t0 = engine.now
        for i in range(5):
            gw.lan_ingress(LanPacket(src=50, dst=0,
                                     service=ServiceClass.PREMIUM,
                                     created=t0), ring_dst=2 + (i % 3))
        gw.send_to_lan(src_station=3, lan_dst=51,
                       service=ServiceClass.PREMIUM)
        # no such LAN host: the relay must be destroyed *and counted*
        gw.send_to_lan(src_station=2, lan_dst=99,
                       service=ServiceClass.BEST_EFFORT)
        engine.run(until=400)
        assert gw.relay_drops == 1
        assert check_gateway_conservation([gw], ledger) == []

    def test_oracle_counts_bounded_buffer_drops(self):
        from repro.fuzz import PacketLedger, check_gateway_conservation

        engine = Engine()
        cfg = WRTRingConfig.homogeneous(range(5), l=2, k=2,
                                        rap_enabled=False)
        net = WRTRingNetwork(engine, list(range(5)), cfg)
        lan = DiffservLAN(engine, capacity=4)
        lan.attach_host(LanHost(50))
        gw = Gateway(net, sid=0, lan=lan, buffer_limit=1)
        ledger = PacketLedger(net)
        net.start()
        lan.start()
        for _ in range(4):
            gw.lan_ingress(LanPacket(src=50, dst=0,
                                     service=ServiceClass.PREMIUM,
                                     created=0.0), ring_dst=2)
        engine.run(until=100)
        assert gw.ingress_drops == 3
        assert len(ledger.gateway_dropped) == 3
        assert check_gateway_conservation([gw], ledger) == []

    def test_obs_counters_mirror_bridge_traffic(self):
        from repro.obs.integrate import attach_network_metrics
        from repro.obs.registry import MetricsRegistry

        engine, net, lan, gw = bridge_setup()
        registry = MetricsRegistry(enabled=True)
        attach_network_metrics(net, registry)
        engine.run(until=10)
        t0 = engine.now
        gw.lan_ingress(LanPacket(src=50, dst=0,
                                 service=ServiceClass.PREMIUM,
                                 created=t0), ring_dst=3)
        gw.send_to_lan(src_station=3, lan_dst=51,
                       service=ServiceClass.PREMIUM)
        engine.run(until=300)
        snapshot = registry.snapshot()
        assert snapshot["gw.forwards"]["direction=lan_to_ring"] == 1
        assert snapshot["gw.forwards"]["direction=ring_to_lan"] == 1
