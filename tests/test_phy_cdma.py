"""Unit + property tests for the CDMA code space and assignment."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy import (
    BROADCAST_CODE,
    CodeSpace,
    ConnectivityGraph,
    assign_codes_distributed,
    assign_codes_sequential,
)


class TestCodeSpace:
    def test_assign_and_lookup(self):
        cs = CodeSpace()
        cs.assign(5, 0)
        cs.assign(7, 3)
        assert cs.code_of(5) == 0
        assert cs.code_of(7) == 3
        assert cs.has(5) and not cs.has(6)
        assert len(cs) == 2

    def test_broadcast_code_reserved(self):
        cs = CodeSpace()
        with pytest.raises(ValueError):
            cs.assign(0, BROADCAST_CODE)

    def test_negative_code_rejected(self):
        cs = CodeSpace()
        with pytest.raises(ValueError):
            cs.assign(0, -2)

    def test_unknown_station_raises(self):
        cs = CodeSpace()
        with pytest.raises(KeyError):
            cs.code_of(42)

    def test_release(self):
        cs = CodeSpace()
        cs.assign(1, 0)
        cs.release(1)
        assert not cs.has(1)
        cs.release(1)  # idempotent

    def test_next_free_code(self):
        cs = CodeSpace()
        cs.assign(0, 0)
        cs.assign(1, 1)
        cs.assign(2, 3)
        assert cs.next_free_code() == 2

    def test_stations_listing(self):
        cs = CodeSpace()
        cs.assign(9, 0)
        cs.assign(4, 1)
        assert sorted(cs.stations()) == [4, 9]


class TestSequentialAssignment:
    def test_unique_codes(self):
        cs = assign_codes_sequential([10, 20, 30])
        codes = [cs.code_of(s) for s in (10, 20, 30)]
        assert len(set(codes)) == 3

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            assign_codes_sequential([1, 1])

    def test_sequential_is_conflict_free_on_any_graph(self):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 20, size=(10, 2))
        g = ConnectivityGraph(pos, 50.0)
        cs = assign_codes_sequential(list(range(10)))
        assert cs.conflicts(g) == []


class TestDistributedAssignment:
    def test_no_receiver_confusion(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 100, size=(25, 2))
        g = ConnectivityGraph(pos, 25.0)
        cs = assign_codes_distributed(g)
        assert cs.conflicts(g) == []

    def test_reuses_codes_in_sparse_graph(self):
        # two far-apart pairs can share codes
        pos = np.array([[0.0, 0], [1, 0], [1000, 0], [1001, 0]])
        g = ConnectivityGraph(pos, 2.0)
        cs = assign_codes_distributed(g)
        codes = {s: cs.code_of(s) for s in range(4)}
        assert len(set(codes.values())) < 4
        assert cs.conflicts(g) == []

    def test_clique_needs_n_codes(self):
        pos = np.zeros((5, 2))
        g = ConnectivityGraph(pos, 1.0)
        # all at same point: clique; codes must all differ... but distance 0
        # means everyone in range of everyone
        cs = assign_codes_distributed(g)
        codes = [cs.code_of(s) for s in range(5)]
        assert len(set(codes)) == 5
        assert cs.conflicts(g) == []

    def test_bad_order_rejected(self):
        g = ConnectivityGraph(np.zeros((2, 2)), 1.0)
        with pytest.raises(ValueError):
            assign_codes_distributed(g, order=[0])

    def test_conflicts_detects_bad_assignment(self):
        # three stations in a row, all in range; ends share a code ->
        # the middle station cannot disambiguate.
        pos = np.array([[0.0, 0], [1, 0], [2, 0]])
        g = ConnectivityGraph(pos, 3.0)
        cs = CodeSpace()
        cs.assign(0, 0)
        cs.assign(1, 1)
        cs.assign(2, 0)
        bad = cs.conflicts(g)
        assert bad and bad[0][:2] == (0, 2)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=100))
    def test_distributed_assignment_always_safe(self, n, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 60, size=(n, 2))
        g = ConnectivityGraph(pos, 20.0)
        cs = assign_codes_distributed(g)
        assert len(cs) == n
        assert cs.conflicts(g) == []
