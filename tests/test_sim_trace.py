"""Unit tests for the trace recorder."""

from repro.sim import TraceRecorder, NullTraceRecorder


class TestRecording:
    def test_record_and_select(self):
        tr = TraceRecorder()
        tr.record(1.0, "tx", src=0, dst=1)
        tr.record(2.0, "rx", src=0, dst=1)
        tr.record(3.0, "tx", src=2, dst=3)
        assert tr.count("tx") == 2
        assert tr.count("rx") == 1
        assert [e.time for e in tr.select("tx")] == [1.0, 3.0]

    def test_fields_access(self):
        tr = TraceRecorder()
        tr.record(1.0, "tx", src=5)
        ev = tr.events[0]
        assert ev["src"] == 5
        assert ev.get("missing", -1) == -1

    def test_select_time_window(self):
        tr = TraceRecorder()
        for t in range(10):
            tr.record(float(t), "tick", n=t)
        sel = tr.select("tick", since=3.0, until=6.0)
        assert [e["n"] for e in sel] == [3, 4, 5, 6]

    def test_select_predicate(self):
        tr = TraceRecorder()
        for t in range(6):
            tr.record(float(t), "tick", n=t)
        sel = tr.select("tick", predicate=lambda e: e["n"] % 2 == 0)
        assert [e["n"] for e in sel] == [0, 2, 4]

    def test_times_and_last(self):
        tr = TraceRecorder()
        tr.record(1.0, "a")
        tr.record(5.0, "b")
        tr.record(9.0, "a", final=True)
        assert tr.times("a") == [1.0, 9.0]
        assert tr.last("a")["final"] is True
        assert tr.last("zzz") is None

    def test_len_and_iter(self):
        tr = TraceRecorder()
        tr.record(1.0, "x")
        tr.record(2.0, "y")
        assert len(tr) == 2
        assert [e.category for e in tr] == ["x", "y"]

    def test_clear(self):
        tr = TraceRecorder()
        tr.record(1.0, "x")
        tr.clear()
        assert len(tr) == 0
        assert tr.count("x") == 0


class TestFiltering:
    def test_enable_only(self):
        tr = TraceRecorder()
        tr.enable_only(["keep"])
        tr.record(1.0, "keep")
        tr.record(1.0, "drop")
        assert tr.count("keep") == 1
        assert tr.count("drop") == 0

    def test_disable_specific(self):
        tr = TraceRecorder()
        tr.disable("noisy")
        tr.record(1.0, "noisy")
        tr.record(1.0, "quiet")
        assert len(tr) == 1

    def test_reenable(self):
        tr = TraceRecorder()
        tr.disable("c")
        tr.enable("c")
        tr.record(1.0, "c")
        assert tr.count("c") == 1

    def test_globally_disabled(self):
        tr = TraceRecorder(enabled=False)
        tr.record(1.0, "x")
        assert len(tr) == 0


class TestCategoryIndex:
    """select/times/last answer from the per-category index — it must stay
    consistent with the flat event list through every mutation."""

    def test_index_matches_linear_scan(self):
        tr = TraceRecorder()
        for t in range(50):
            tr.record(float(t), f"cat.{t % 5}", n=t)
        for c in range(5):
            indexed = tr.select(f"cat.{c}")
            scanned = [e for e in tr.events if e.category == f"cat.{c}"]
            assert indexed == scanned

    def test_index_survives_clear(self):
        tr = TraceRecorder()
        tr.record(1.0, "a")
        tr.clear()
        tr.record(2.0, "a")
        assert tr.times("a") == [2.0]
        assert len(tr.select("a")) == 1

    def test_unknown_category_is_empty(self):
        tr = TraceRecorder()
        tr.record(1.0, "a")
        assert tr.select("zzz") == []
        assert tr.times("zzz") == []
        assert tr.last("zzz") is None

    def test_select_without_category_scans_everything(self):
        tr = TraceRecorder()
        tr.record(1.0, "a")
        tr.record(2.0, "b")
        assert len(tr.select()) == 2
        assert len(tr.select(since=1.5)) == 1


class TestOptInCategories:
    def test_opt_in_disabled_by_default(self):
        tr = TraceRecorder()
        for category in TraceRecorder.OPT_IN:
            assert not tr.is_enabled(category)
            tr.record(1.0, category)
        assert len(tr) == 0

    def test_opt_in_enabled_explicitly(self):
        tr = TraceRecorder()
        tr.enable(*TraceRecorder.OPT_IN)
        for category in TraceRecorder.OPT_IN:
            tr.record(1.0, category)
        assert len(tr) == len(TraceRecorder.OPT_IN)

    def test_non_opt_in_categories_unaffected(self):
        tr = TraceRecorder()
        tr.record(1.0, "sat.release", station=0)
        assert tr.count("sat.release") == 1

    def test_enable_only_overrides_opt_in_default(self):
        tr = TraceRecorder()
        tr.enable_only(["slot.occupancy"])
        tr.record(1.0, "slot.occupancy", busy=1)
        tr.record(1.0, "sat.release")
        assert tr.count("slot.occupancy") == 1
        assert tr.count("sat.release") == 0


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        tr = TraceRecorder()
        tr.record(1.0, "tx", src=0, dst=1)
        tr.record(2.5, "sat.rotation", station=3, rotation=7.0)
        path = tmp_path / "trace.jsonl"
        assert tr.to_jsonl(path) == 2
        back = TraceRecorder.from_jsonl(path)
        assert len(back) == 2
        assert back.events[0].category == "tx"
        assert back.events[0]["src"] == 0
        assert back.events[1].time == 2.5
        assert back.events[1]["rotation"] == 7.0

    def test_round_trip_with_colliding_field_names(self, tmp_path):
        """Fields named ``time``/``category`` must survive export intact —
        they used to collide with the event header keys."""
        tr = TraceRecorder()
        tr.record(1.0, "timer", time=99.0, category="shadow", value=7)
        tr.record(2.0, "plain", other=1)
        path = tmp_path / "trace.jsonl"
        assert tr.to_jsonl(path) == 2
        back = TraceRecorder.from_jsonl(path)
        ev = back.events[0]
        assert ev.time == 1.0 and ev.category == "timer"
        assert ev["time"] == 99.0 and ev["category"] == "shadow"
        assert ev["value"] == 7
        assert back.events[1].fields == {"other": 1}

    def test_legacy_flat_format_still_loads(self, tmp_path):
        path = tmp_path / "legacy.jsonl"
        path.write_text('{"time": 1.0, "category": "tx", "src": 3}\n')
        back = TraceRecorder.from_jsonl(path)
        assert back.events[0].category == "tx"
        assert back.events[0]["src"] == 3

    def test_non_serializable_fields_stringified(self, tmp_path):
        tr = TraceRecorder()
        tr.record(1.0, "weird", payload=object())
        path = tmp_path / "trace.jsonl"
        tr.to_jsonl(path)
        back = TraceRecorder.from_jsonl(path)
        assert isinstance(back.events[0]["payload"], str)

    def test_live_network_trace_exports(self, tmp_path):
        from repro.core import WRTRingConfig, WRTRingNetwork
        from repro.sim import Engine
        engine = Engine()
        trace = TraceRecorder()
        trace.enable_only(["sat.release", "sat.rotation"])
        cfg = WRTRingConfig.homogeneous(range(4), l=1, k=1,
                                        rap_enabled=False)
        net = WRTRingNetwork(engine, list(range(4)), cfg, trace=trace)
        net.start()
        engine.run(until=50)
        path = tmp_path / "net.jsonl"
        count = trace.to_jsonl(path)
        assert count > 20
        back = TraceRecorder.from_jsonl(path)
        rotations = back.select("sat.rotation")
        assert rotations and all(ev["rotation"] == 4.0 for ev in rotations)


class TestNullRecorder:
    def test_drops_everything(self):
        tr = NullTraceRecorder()
        tr.record(1.0, "x", a=1)
        assert len(tr) == 0
        assert tr.count("x") == 0
        assert not tr.is_enabled("x")
        assert tr.select("x") == []
