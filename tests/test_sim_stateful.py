"""Hypothesis stateful testing of the kernel.

A rule-based machine drives the engine, timers and signals through random
operation sequences and checks the global ordering invariants after each
step — the strongest evidence we have that the kernel's semantics (on which
every bound measurement rests) cannot be wedged by any call order.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant, precondition,
                                 rule)

from repro.sim import Engine, Signal, Timer


class EngineMachine(RuleBasedStateMachine):
    """Random scheduling/cancelling/running against a live engine."""

    def __init__(self):
        super().__init__()
        self.engine = Engine()
        self.fired = []          # (time, tag)
        self.expected = {}       # tag -> time (pending, not cancelled)
        self.cancelled = set()
        self.handles = {}
        self._tag = 0

    # ------------------------------------------------------------------
    @rule(delay=st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
    def schedule(self, delay):
        tag = self._tag
        self._tag += 1
        handle = self.engine.schedule(delay, self.fired.append,
                                      (self.engine.now + delay, tag))
        self.handles[tag] = handle
        self.expected[tag] = self.engine.now + delay

    @precondition(lambda self: self.expected)
    @rule(data=st.data())
    def cancel_one(self, data):
        tag = data.draw(st.sampled_from(sorted(self.expected)))
        self.handles[tag].cancel()
        del self.expected[tag]
        self.cancelled.add(tag)

    @rule(advance=st.floats(min_value=0.0, max_value=50.0, allow_nan=False))
    def run_until(self, advance):
        target = self.engine.now + advance
        self.engine.run(until=target)
        assert self.engine.now == target
        # everything due has fired
        due = {tag for tag, t in self.expected.items() if t <= target}
        fired_tags = {tag for _, tag in self.fired}
        assert due <= fired_tags
        for tag in due:
            del self.expected[tag]

    @rule()
    def run_all(self):
        self.engine.run()
        fired_tags = {tag for _, tag in self.fired}
        assert set(self.expected) <= fired_tags
        self.expected.clear()

    # ------------------------------------------------------------------
    @invariant()
    def fired_in_time_order(self):
        times = [t for t, _ in self.fired]
        assert times == sorted(times)

    @invariant()
    def cancelled_never_fire(self):
        fired_tags = {tag for _, tag in self.fired}
        assert not (fired_tags & self.cancelled)

    @invariant()
    def clock_monotone(self):
        if self.fired:
            assert self.fired[-1][0] <= self.engine.now + 1e-9


TestEngineStateful = EngineMachine.TestCase
TestEngineStateful.settings = settings(max_examples=40,
                                       stateful_step_count=30,
                                       deadline=None)


class TimerSignalMachine(RuleBasedStateMachine):
    """Watchdog timers + signals under random kicks and time advances."""

    def __init__(self):
        super().__init__()
        self.engine = Engine()
        self.expirations = []
        self.timer = Timer(self.engine, 10.0,
                           lambda: self.expirations.append(self.engine.now))
        self.last_arm_time = None
        self.signals = []

    @rule()
    def start_timer(self):
        armed = self.timer.running
        self.timer.start()
        if not armed:
            self.last_arm_time = self.engine.now

    @rule()
    def kick_timer(self):
        self.timer.restart()
        self.last_arm_time = self.engine.now

    @rule()
    def stop_timer(self):
        self.timer.stop()
        self.last_arm_time = None

    @rule(advance=st.floats(min_value=0.1, max_value=30.0, allow_nan=False))
    def advance(self, advance):
        self.engine.run(until=self.engine.now + advance)

    @rule()
    def make_signal(self):
        sig = Signal(self.engine)
        self.signals.append(sig)

    @precondition(lambda self: any(not s.triggered for s in self.signals))
    @rule(data=st.data())
    def trigger_signal(self, data):
        pending = [s for s in self.signals if not s.triggered]
        sig = data.draw(st.sampled_from(pending))
        sig.succeed(self.engine.now)

    @invariant()
    def expirations_respect_arming(self):
        # a timer can only expire exactly duration after its last (re)arm
        for t in self.expirations:
            assert t >= 10.0 - 1e-9

    @invariant()
    def running_timer_has_future_deadline(self):
        if self.timer.running:
            assert self.timer.deadline >= self.engine.now - 1e-9


TestTimerSignalStateful = TimerSignalMachine.TestCase
TestTimerSignalStateful.settings = settings(max_examples=30,
                                            stateful_step_count=25,
                                            deadline=None)
