"""Tests for the Chrome-trace timeline exporter (repro.obs.timeline)."""

import json

import pytest

from repro.obs import (Profiler, build_timeline, enable_timeline_categories,
                       export_timeline)
from repro.obs.timeline import US_PER_SLOT
from repro.sim import TraceRecorder

VALID_PH = {"X", "i", "C", "M"}


def validate_chrome_trace(events):
    """Assert the minimal Chrome trace-event contract on every event."""
    for ev in events:
        assert ev.get("ph") in VALID_PH, ev
        assert isinstance(ev.get("pid"), int), ev
        if ev["ph"] == "M":
            assert ev["name"] in ("process_name", "thread_name"), ev
            assert "name" in ev.get("args", {}), ev
            continue
        assert isinstance(ev.get("ts"), (int, float)), ev
        assert isinstance(ev.get("name"), str) and ev["name"], ev
        assert isinstance(ev.get("cat"), str) and ev["cat"], ev
        if ev["ph"] == "X":
            assert isinstance(ev.get("dur"), (int, float)), ev
            assert ev["dur"] >= 0.0, ev
            assert isinstance(ev.get("tid"), int), ev
        elif ev["ph"] == "i":
            assert ev.get("s") in ("g", "p", "t"), ev
        elif ev["ph"] == "C":
            args = ev.get("args", {})
            assert args and all(isinstance(v, (int, float))
                                for v in args.values()), ev


def _sat_trace():
    trace = TraceRecorder()
    enable_timeline_categories(trace)
    trace.record(4.0, "sat.arrive", station=0, kind="SAT")
    trace.record(6.0, "sat.release", station=0, to=1)
    trace.record(10.0, "sat.arrive", station=1, kind="SAT")
    trace.record(15.0, "sat.release", station=1, to=2)
    return trace


class TestBuildTimeline:
    def test_sat_holds_become_complete_events(self):
        events = build_timeline(_sat_trace())
        validate_chrome_trace(events)
        sat = [e for e in events if e.get("cat") == "sat" and e["ph"] == "X"]
        assert len(sat) == 2
        assert sat[0]["ts"] == 4.0 * US_PER_SLOT
        assert sat[0]["dur"] == 2.0 * US_PER_SLOT
        # one row (tid) per station
        assert sat[0]["tid"] != sat[1]["tid"]

    def test_unclosed_sat_hold_truncated_at_end(self):
        trace = TraceRecorder()
        enable_timeline_categories(trace)
        trace.record(3.0, "sat.arrive", station=2, kind="SAT")
        trace.record(9.0, "tick.end", t=9)   # establishes the trace horizon
        events = build_timeline(trace)
        validate_chrome_trace(events)
        sat = [e for e in events if e.get("cat") == "sat"]
        assert len(sat) == 1
        assert sat[0]["dur"] == 6.0 * US_PER_SLOT
        assert sat[0]["args"]["truncated"] is True

    def test_rap_window_and_requests(self):
        trace = TraceRecorder()
        trace.record(10.0, "rap.open", ingress=0)
        trace.record(12.0, "rap.request", station=9)
        trace.record(19.0, "rap.close", joined=1)
        events = build_timeline(trace)
        validate_chrome_trace(events)
        rap = [e for e in events if e.get("cat") == "rap" and e["ph"] == "X"]
        assert len(rap) == 1
        assert rap[0]["name"] == "RAP"
        assert rap[0]["ts"] == 10.0 * US_PER_SLOT
        assert rap[0]["dur"] == 9.0 * US_PER_SLOT
        assert rap[0]["args"]["joined"] == 1
        instants = [e for e in events if e["ph"] == "i"
                    and e["name"] == "join request"]
        assert len(instants) == 1

    def test_slot_occupancy_becomes_counter_series(self):
        trace = TraceRecorder()
        enable_timeline_categories(trace)
        trace.record(1.0, "slot.occupancy", busy=3, capacity=8)
        trace.record(2.0, "slot.occupancy", busy=0, capacity=8)
        events = build_timeline(trace)
        validate_chrome_trace(events)
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 2
        assert counters[0]["args"] == {"busy": 3, "idle": 5}
        assert counters[1]["args"] == {"busy": 0, "idle": 8}

    def test_rebuild_window(self):
        trace = TraceRecorder()
        trace.record(50.0, "ring.rebuild_start", members=5)
        trace.record(80.0, "ring.rebuild_done", members=5)
        events = build_timeline(trace)
        rebuild = [e for e in events if e["ph"] == "X"
                   and e["name"] == "rebuild"]
        assert len(rebuild) == 1
        assert rebuild[0]["dur"] == 30.0 * US_PER_SLOT

    def test_other_categories_become_instants(self):
        trace = TraceRecorder()
        trace.record(7.0, "station.kill", station=3)
        events = build_timeline(trace)
        validate_chrome_trace(events)
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "station.kill"
        assert instants[0]["args"]["station"] == 3

    def test_profiler_spans_on_wall_clock_track(self):
        profiler = Profiler()
        profiler.record_span("engine.run", 100.0, 0.25, events=1234)
        profiler.record_span("engine.run", 100.5, 0.10, events=456)
        events = build_timeline(TraceRecorder(), profiler)
        validate_chrome_trace(events)
        spans = [e for e in events if e.get("cat") == "profile"]
        assert len(spans) == 2
        assert spans[0]["ts"] == 0.0          # normalized to earliest span
        assert spans[0]["dur"] == pytest.approx(0.25e6)
        assert spans[1]["ts"] == pytest.approx(0.5e6)
        pids = {e["pid"] for e in spans}
        assert len(pids) == 1                  # own process track

    def test_track_metadata_present(self):
        events = build_timeline(_sat_trace())
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta
                 if e["name"] == "thread_name"}
        assert {"ring", "RAP", "station 0", "station 1"} <= names


class TestExportTimeline:
    def test_export_is_valid_json_with_expected_shape(self, tmp_path):
        path = tmp_path / "timeline.json"
        count = export_timeline(path, _sat_trace(), extra={"scenario": {"n": 2}})
        document = json.loads(path.read_text())
        assert set(document) == {"traceEvents", "displayTimeUnit",
                                 "otherData"}
        assert document["displayTimeUnit"] == "ms"
        assert document["otherData"]["scenario"] == {"n": 2}
        assert document["otherData"]["slot_us"] == US_PER_SLOT
        validate_chrome_trace(document["traceEvents"])
        non_meta = [e for e in document["traceEvents"]
                    if e.get("ph") != "M"]
        assert count == len(non_meta) == 2

    def test_full_scenario_export_covers_sat_rap_and_slots(self, tmp_path):
        """End-to-end acceptance: a run with RAP and a fault exports SAT
        holds, RAP windows and the slot-occupancy counter series."""
        from repro.faults import FaultSchedule
        from repro.scenarios import Scenario, TrafficMix, build_scenario

        schedule = FaultSchedule.builder().kill(2, at=400).build()
        built = build_scenario(Scenario(
            n=6, horizon=2000.0, seed=3, rap_enabled=True,
            traffic=TrafficMix(kind="poisson", rate=0.05),
            faults=schedule))
        enable_timeline_categories(built.trace, built.network)
        built.engine.run(until=2000.0)

        path = tmp_path / "run.json"
        count = export_timeline(path, built.trace)
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        validate_chrome_trace(events)
        assert count > 100
        cats = {e.get("cat") for e in events}
        assert "sat" in cats       # SAT hold spans
        assert "rap" in cats       # RAP windows
        assert "slots" in cats     # occupancy counters
        kills = [e for e in events if e["ph"] == "i"
                 and e["name"] == "ring.kill"]
        assert len(kills) == 1

    def test_empty_trace_exports_cleanly(self, tmp_path):
        path = tmp_path / "empty.json"
        count = export_timeline(path, TraceRecorder())
        assert count == 0
        document = json.loads(path.read_text())
        validate_chrome_trace(document["traceEvents"])


class TestOptInCategories:
    def test_timeline_categories_off_by_default(self):
        trace = TraceRecorder()
        trace.record(1.0, "slot.occupancy", busy=1, capacity=4)
        trace.record(1.0, "sat.arrive", station=0)
        assert len(trace) == 0

    def test_enable_timeline_categories_switches_them_on(self):
        trace = TraceRecorder()
        enable_timeline_categories(trace)
        trace.record(1.0, "slot.occupancy", busy=1, capacity=4)
        trace.record(1.0, "sat.arrive", station=0)
        assert len(trace) == 2
