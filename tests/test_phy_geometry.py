"""Unit + property tests for arena geometry and placements."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.phy import (
    Arena,
    distance_matrix,
    ring_placement,
    uniform_placement,
    grid_placement,
    clustered_placement,
)
from repro.phy.geometry import pairwise_in_range


class TestArena:
    def test_contains_and_clip(self):
        arena = Arena(10.0, 20.0)
        pts = np.array([[5.0, 5.0], [-1.0, 5.0], [5.0, 25.0]])
        assert arena.contains(pts).tolist() == [True, False, False]
        clipped = arena.clip(pts)
        assert arena.contains(clipped).all()
        assert np.allclose(clipped[0], [5.0, 5.0])

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Arena(0.0, 10.0)
        with pytest.raises(ValueError):
            Arena(10.0, -1.0)

    def test_center_and_diagonal(self):
        arena = Arena(30.0, 40.0)
        assert np.allclose(arena.center, [15.0, 20.0])
        assert arena.diagonal == pytest.approx(50.0)


class TestDistanceMatrix:
    def test_known_distances(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0], [0.0, 1.0]])
        d = distance_matrix(pts)
        assert d[0, 1] == pytest.approx(5.0)
        assert d[0, 2] == pytest.approx(1.0)
        assert np.allclose(np.diag(d), 0.0)
        assert np.allclose(d, d.T)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            distance_matrix(np.zeros((3, 3)))

    def test_pairwise_in_range(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        adj = pairwise_in_range(pts, 2.0)
        assert adj[0, 1] and adj[1, 0]
        assert not adj[0, 2]
        assert not adj.diagonal().any()

    def test_in_range_rejects_bad_range(self):
        with pytest.raises(ValueError):
            pairwise_in_range(np.zeros((2, 2)), 0.0)

    @given(st.integers(min_value=2, max_value=20), st.integers(min_value=0, max_value=1000))
    def test_distance_matrix_symmetry_property(self, n, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 100, size=(n, 2))
        d = distance_matrix(pts)
        assert np.allclose(d, d.T)
        assert (d >= 0).all()
        # triangle inequality on a sample of triples
        for _ in range(10):
            i, j, k = rng.integers(0, n, size=3)
            assert d[i, k] <= d[i, j] + d[j, k] + 1e-9


class TestPlacements:
    def test_ring_placement_even_spacing(self):
        pos = ring_placement(8, radius=10.0)
        d = distance_matrix(pos)
        # consecutive chord lengths equal
        chord = 2 * 10.0 * math.sin(math.pi / 8)
        for i in range(8):
            assert d[i, (i + 1) % 8] == pytest.approx(chord)

    def test_ring_placement_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            ring_placement(5, jitter=1.0)

    def test_ring_placement_jitter_bounded(self):
        rng = np.random.default_rng(0)
        base = ring_placement(12, radius=20.0)
        jit = ring_placement(12, radius=20.0, jitter=2.0, rng=rng)
        assert np.abs(jit - base).max() <= 2.0 + 1e-9

    def test_ring_placement_validates(self):
        with pytest.raises(ValueError):
            ring_placement(0)
        with pytest.raises(ValueError):
            ring_placement(5, radius=-1.0)

    def test_uniform_placement_inside_arena(self):
        arena = Arena(50.0, 30.0)
        rng = np.random.default_rng(1)
        pos = uniform_placement(200, arena, rng)
        assert pos.shape == (200, 2)
        assert arena.contains(pos).all()

    def test_grid_placement_count_and_bounds(self):
        arena = Arena(100.0, 100.0)
        for n in (1, 5, 9, 17):
            pos = grid_placement(n, arena)
            assert pos.shape == (n, 2)
            assert arena.contains(pos).all()

    def test_grid_placement_distinct_points(self):
        pos = grid_placement(16, Arena(100, 100))
        assert len({tuple(p) for p in pos.round(9)}) == 16

    def test_clustered_placement(self):
        arena = Arena(100.0, 100.0)
        rng = np.random.default_rng(2)
        pos = clustered_placement(50, arena, clusters=3, spread=2.0, rng=rng)
        assert pos.shape == (50, 2)
        assert arena.contains(pos).all()

    def test_clustered_placement_validates(self):
        arena = Arena(10, 10)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            clustered_placement(5, arena, clusters=0, spread=1.0, rng=rng)
        with pytest.raises(ValueError):
            clustered_placement(5, arena, clusters=2, spread=0.0, rng=rng)

    @given(st.integers(min_value=3, max_value=40))
    def test_ring_placement_neighbours_closest(self, n):
        """On an even circle, your ring neighbours are your nearest stations."""
        pos = ring_placement(n, radius=30.0)
        d = distance_matrix(pos)
        np.fill_diagonal(d, np.inf)
        for i in range(n):
            nearest = int(np.argmin(d[i]))
            assert nearest in ((i + 1) % n, (i - 1) % n)
