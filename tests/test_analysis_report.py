"""Tests for the markdown report generator."""

import pytest

from repro.analysis.report import (ExperimentReport, combine_reports,
                                   markdown_table)
from repro.analysis.validation import check_rotation_samples


class TestMarkdownTable:
    def test_basic_shape(self):
        table = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
        assert len(lines) == 4

    def test_float_formatting(self):
        table = markdown_table(["x"], [[1.23456]])
        assert "1.235" in table

    def test_validation(self):
        with pytest.raises(ValueError):
            markdown_table([], [])
        with pytest.raises(ValueError):
            markdown_table(["a", "b"], [[1]])


class TestExperimentReport:
    def make(self, samples=(5.0, 6.0), bound=10.0):
        report = ExperimentReport(
            exp_id="E99", title="demo", paper_claim="rotation bounded")
        report.add_table("measurements", ["n", "value"], [[1, 5.0], [2, 6.0]])
        report.add_check(check_rotation_samples(list(samples), bound))
        report.add_note("seeded, reproducible")
        return report

    def test_reproduced_verdict(self):
        report = self.make()
        md = report.to_markdown()
        assert report.verdict == "REPRODUCED"
        assert "## E99 — demo" in md
        assert "**Paper claim.** rotation bounded" in md
        assert "| n | value |" in md
        assert "OK" in md
        assert "Verdict: REPRODUCED" in md

    def test_failed_verdict(self):
        report = self.make(samples=(15.0,), bound=10.0)
        assert report.verdict == "FAILED"
        assert "VIOLATED" in report.to_markdown()

    def test_measured_verdict_without_checks(self):
        report = ExperimentReport(exp_id="E98", title="x", paper_claim="y")
        assert report.verdict == "MEASURED"

    def test_combine(self):
        a = self.make()
        b = ExperimentReport(exp_id="E98", title="other", paper_claim="z")
        combined = combine_reports([a, b], header="# All experiments")
        assert combined.startswith("# All experiments")
        assert "| E99 | demo | REPRODUCED |" in combined
        assert "| E98 | other | MEASURED |" in combined
        assert combined.count("## ") == 2
