"""Unit + property tests for the closed-form bounds (Sec. 2.6, Eq. 7)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    access_delay_bound,
    mean_sat_rotation_bound,
    recovery_detection_bounds,
    sat_multi_round_bound,
    sat_multi_round_bound_homogeneous,
    sat_rotation_bound,
    sat_rotation_bound_homogeneous,
    sat_walk_time,
    tpt_allocation_feasible,
    tpt_max_token_rotation,
    tpt_token_walk_time,
)
from repro.core import QuotaConfig


class TestTheorem1Form:
    def test_formula(self):
        # S + T_rap + 2*sum(l+k)
        assert sat_rotation_bound(5, 9, [(2, 1)] * 5) == 5 + 9 + 2 * 15

    def test_accepts_quota_objects(self):
        quotas = [QuotaConfig.two_class(2, 1)] * 4
        assert sat_rotation_bound(4, 0, quotas) == 4 + 2 * 12

    def test_homogeneous_matches_general(self):
        assert (sat_rotation_bound_homogeneous(6, 2, 3)
                == sat_rotation_bound(6, 0, [(2, 3)] * 6))

    def test_homogeneous_default_S_is_N(self):
        assert sat_rotation_bound_homogeneous(7, 1, 1) == 7 + 2 * 7 * 2

    def test_validation(self):
        with pytest.raises(ValueError):
            sat_rotation_bound(-1, 0, [(1, 1)])
        with pytest.raises(ValueError):
            sat_rotation_bound(1, -1, [(1, 1)])
        with pytest.raises(ValueError):
            sat_rotation_bound_homogeneous(0, 1, 1)


class TestTheorem2Form:
    def test_formula(self):
        # n*S + n*T_rap + (n+1)*sum
        assert sat_multi_round_bound(3, 5, 2, [(1, 1)] * 5) == 15 + 6 + 4 * 10

    def test_n1_relation_to_theorem1(self):
        """For n=1 Theorem 2 gives S + T_rap + 2Σ — the Theorem-1 value."""
        t1 = sat_rotation_bound(6, 9, [(2, 2)] * 6)
        t2 = sat_multi_round_bound(1, 6, 9, [(2, 2)] * 6)
        assert t1 == t2

    def test_homogeneous(self):
        assert (sat_multi_round_bound_homogeneous(4, 5, 2, 1)
                == 4 * 5 + 5 * 5 * 3)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            sat_multi_round_bound(0, 5, 0, [(1, 1)])

    @given(st.integers(min_value=1, max_value=50),
           st.integers(min_value=1, max_value=20),
           st.integers(min_value=0, max_value=5),
           st.integers(min_value=0, max_value=5))
    def test_superadditive_in_n(self, n, N, l, k):
        """bound(n) + bound(m) >= bound(n+m) - the windows overlap by one
        quota term, so the bound family is consistent."""
        quotas = [(l + 1, k)] * N
        b1 = sat_multi_round_bound(n, N, 0, quotas)
        b2 = sat_multi_round_bound(n + 1, N, 0, quotas)
        assert b2 > b1  # strictly increasing in n

    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=2, max_value=15))
    def test_per_round_average_approaches_prop3(self, n, N):
        """bound(n)/n decreases toward S + T_rap + Σ as n grows (the Prop. 3
        limit argument)."""
        quotas = [(2, 1)] * N
        per_round = sat_multi_round_bound(n, N, 3, quotas) / n
        limit = mean_sat_rotation_bound(N, 3, quotas)
        assert per_round >= limit
        assert per_round - limit == pytest.approx(sum(q[0] + q[1] for q in quotas) / n)


class TestProposition3Form:
    def test_formula(self):
        assert mean_sat_rotation_bound(5, 9, [(2, 1)] * 5) == 5 + 9 + 15

    def test_below_theorem1(self):
        quotas = [(3, 2)] * 8
        assert (mean_sat_rotation_bound(8, 0, quotas)
                < sat_rotation_bound(8, 0, quotas))


class TestTheorem3Form:
    def test_round_count(self):
        # x=0, l=2 -> ceil(1/2)+1 = 2 rounds
        quotas = [(2, 1)] * 4
        expected = sat_multi_round_bound(2, 4, 0, quotas)
        assert access_delay_bound(0, 2, 4, 0, quotas) == expected

    def test_backlog_steps(self):
        quotas = [(2, 0)] * 3
        # x=3, l=2 -> ceil(4/2)+1 = 3 rounds
        assert (access_delay_bound(3, 2, 3, 0, quotas)
                == sat_multi_round_bound(3, 3, 0, quotas))

    def test_validation(self):
        with pytest.raises(ValueError):
            access_delay_bound(-1, 1, 3, 0, [(1, 0)])
        with pytest.raises(ValueError):
            access_delay_bound(0, 0, 3, 0, [(1, 0)])

    @given(st.integers(min_value=0, max_value=100),
           st.integers(min_value=1, max_value=10))
    def test_monotone_in_backlog(self, x, l):
        quotas = [(l, 1)] * 5
        assert (access_delay_bound(x, l, 5, 0, quotas)
                <= access_delay_bound(x + 1, l, 5, 0, quotas))

    @given(st.integers(min_value=0, max_value=50),
           st.integers(min_value=1, max_value=9))
    def test_larger_own_quota_never_hurts_round_count(self, x, l):
        r_small = math.ceil((x + 1) / l) + 1
        r_large = math.ceil((x + 1) / (l + 1)) + 1
        assert r_large <= r_small


class TestWalkTimes:
    def test_sat_walk(self):
        assert sat_walk_time(10) == 10
        assert sat_walk_time(10, T_proc_prop=2.0, T_rap=5) == 25

    def test_token_walk(self):
        assert tpt_token_walk_time(10) == 18
        assert tpt_token_walk_time(10, T_proc_prop=2.0, T_rap=5) == 41

    @given(st.integers(min_value=3, max_value=500),
           st.floats(min_value=0.1, max_value=10, allow_nan=False))
    def test_sat_always_faster_for_n_ge_3(self, n, hop):
        """The Sec. 3.3 claim: N < 2(N-1) whenever N >= 3 (equality at N=2)."""
        assert sat_walk_time(n, hop) < tpt_token_walk_time(n, hop)

    def test_equal_at_n2(self):
        assert sat_walk_time(2) == tpt_token_walk_time(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            sat_walk_time(0)
        with pytest.raises(ValueError):
            tpt_token_walk_time(3, T_proc_prop=0)


class TestEq7:
    def test_feasible_case(self):
        # sum H = 10, walk = 2*(5-1) = 8, T_rap = 2 -> lhs 20 <= D/2
        assert tpt_allocation_feasible([2] * 5, 5, D=40, T_rap=2)
        assert not tpt_allocation_feasible([2] * 5, 5, D=39.9, T_rap=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            tpt_allocation_feasible([1, 2], 3, D=10)
        with pytest.raises(ValueError):
            tpt_allocation_feasible([-1, 2, 3], 3, D=10)
        with pytest.raises(ValueError):
            tpt_allocation_feasible([1, 2, 3], 3, D=0)

    def test_max_rotation(self):
        assert tpt_max_token_rotation(25.0) == 50.0
        with pytest.raises(ValueError):
            tpt_max_token_rotation(0.0)


class TestRecoveryComparison:
    def test_wrt_detects_faster_in_like_scenario(self):
        """Sec. 3.3: equal reserved bandwidth -> SAT_TIME < 2·TTRT."""
        N, l, k = 8, 2, 1
        quotas = [(l, k)] * N
        # same scenario: Σ H == Σ(l+k), TTRT feasible per Eq. 7 with D = 2·TTRT
        sum_H = sum(l + k for l, k in quotas)
        walk = tpt_token_walk_time(N)
        ttrt = sum_H + walk  # minimum feasible TTRT
        wrt, tpt = recovery_detection_bounds(N, 0, quotas, ttrt)
        assert wrt < tpt

    @given(st.integers(min_value=3, max_value=40),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=5))
    def test_wrt_faster_for_all_sizes(self, N, l, k):
        quotas = [(l, k)] * N
        sum_H = N * (l + k)
        ttrt = sum_H + tpt_token_walk_time(N)
        wrt, tpt = recovery_detection_bounds(N, 0, quotas, ttrt)
        assert wrt < tpt
