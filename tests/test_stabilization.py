"""Self-stabilization from worst-case initial states.

A self-stabilizing protocol converges to legitimate operation from *any*
starting configuration within a bounded number of steps and stays there.
These batteries place the ring in three adversarial states the normal
schedule never produces — every SAT_TIMER forced to the brink of expiry,
a verbatim stale-SAT replay, and half the membership dead at one instant
— and assert convergence within a bound *computed from the protocol's own
constants* (never an eyeballed sleep), followed by a long quiet window
with zero further recovery activity.  The strict
:class:`~repro.core.invariants.RingInvariantChecker` rides along
throughout: even mid-convergence, the structural invariants must hold on
every tick.

Each battery runs with fixed Theorem-1 timers and with the adaptive
RFC 6298 estimator (``adaptive_timers=True``) — stabilization is a
property of the recovery machinery, not of any one timer policy.
"""

import pytest

from repro.core import WRTRingConfig, WRTRingNetwork
from repro.core.invariants import RingInvariantChecker
from repro.sim import Engine


def make_net(n=6, adaptive=False, **cfg_kwargs):
    engine = Engine()
    cfg_kwargs.setdefault("rap_enabled", False)
    cfg = WRTRingConfig.homogeneous(range(n), l=2, k=1, **cfg_kwargs)
    net = WRTRingNetwork(engine, list(range(n)), cfg,
                         adaptive_timers=adaptive)
    checker = RingInvariantChecker(net, strict=True).attach(net.events)
    return engine, net, checker


def settle(engine, net, until):
    """Run to `until`; convergence means every episode closed, the ring up."""
    engine.run(until=until)
    assert not net.network_down
    assert net.recovery.active is None
    for rec in net.recovery.records:
        assert rec.t_completed is not None, rec
        assert rec.outcome in ("cutout", "rebuild"), rec


def assert_quiet(engine, net, window):
    """A converged ring stays converged: no new episodes in `window`."""
    episodes = len(net.recovery.records)
    rebuilds = net.recovery.ring_rebuilds
    engine.run(until=engine.now + window)
    assert len(net.recovery.records) == episodes, \
        "new recovery episodes after convergence"
    assert net.recovery.ring_rebuilds == rebuilds
    assert not net.network_down


@pytest.mark.parametrize("adaptive", [False, True],
                         ids=["fixed", "adaptive"])
class TestTimersNearExpiry:
    """Worst case 1: every SAT_TIMER about to fire on a healthy ring.

    The first expiry launches a SAT_REC against a live predecessor — a
    false trigger that cuts an innocent station out.  Every other timer
    must stand down (an episode is active), the episode must complete
    within SAT_TIME, and afterwards the ring runs quietly with n-1
    members.  Destructive, bounded, and then stable — exactly the
    stabilization contract.
    """

    def test_converges_within_computed_bound(self, adaptive):
        engine, net, checker = make_net(n=6, adaptive=adaptive)
        net.start()
        engine.run(until=200)
        t0 = engine.now
        rec = net.recovery
        assert not rec.records

        # adversarial state: all timers a few slots from expiry, staggered
        # so exactly one fires first
        eps_max = 0.0
        for i, sid in enumerate(net.order):
            eps = 2.0 + 3.0 * i
            eps_max = max(eps_max, eps)
            rec.timers[sid].restart(eps)

        # bound: last forced expiry + one full SAT_REC walk (the Sec. 2.5
        # guarantee: the walk returns within SAT_TIME) + one ring latency
        # for the ring to re-close, with a one-rotation slack
        bound = t0 + eps_max + net.sat_time_bound() + 2 * net.ring_latency()
        settle(engine, net, until=bound)

        assert len(rec.records) == 1
        episode = rec.records[0]
        assert episode.extra.get("false_trigger")
        assert rec.false_triggers == 1
        # the innocent predecessor of the first detector was cut out
        assert len(net.members) == 5
        assert episode.failed_station not in net.members

        assert_quiet(engine, net, window=3 * net.sat_time_bound())
        assert rec.false_triggers == 1
        assert checker.checks_run > 0 and not checker.violations

    def test_single_timer_near_expiry_no_cascade(self, adaptive):
        """One rogue timer costs exactly one station — the other timers'
        stand-down must prevent a cascade of mutual accusations."""
        engine, net, checker = make_net(n=8, adaptive=adaptive)
        net.start()
        engine.run(until=300)
        rec = net.recovery
        rec.timers[net.order[2]].restart(1.0)
        bound = engine.now + 1.0 + net.sat_time_bound() \
            + 2 * net.ring_latency()
        settle(engine, net, until=bound)
        assert len(rec.records) == 1
        assert len(net.members) == 7
        assert_quiet(engine, net, window=3 * net.sat_time_bound())
        assert not checker.violations


@pytest.mark.parametrize("adaptive", [False, True],
                         ids=["fixed", "adaptive"])
class TestStaleSatReplay:
    """Worst case 2: a verbatim replay of the last accepted SAT appears.

    The monotone sequence-number guard must discard it on the spot — no
    quota renewal, no recovery episode, no rebuild, and the ring's
    rotation continues as if nothing happened.
    """

    def test_replay_discarded_without_recovery(self, adaptive):
        engine, net, checker = make_net(n=6, adaptive=adaptive)
        net.start()
        engine.run(until=150)
        seq_before = net.sat.seq

        assert net.inject_stale_sat() is True        # detected + discarded
        assert net.inject_stale_sat(at_station=net.order[3]) is True

        settle(engine, net, until=engine.now + 3 * net.sat_time_bound())
        assert not net.recovery.records
        assert net.recovery.false_triggers == 0
        assert net.sat.seq > seq_before              # rotation never stalled
        assert len(net.members) == 6
        assert not checker.violations


@pytest.mark.parametrize("adaptive", [False, True],
                         ids=["fixed", "adaptive"])
class TestHalfRingDead:
    """Worst case 3: half the membership dies at a single instant.

    Whatever mix of cut-outs and full rebuilds the recovery machinery
    chooses, the survivors must converge to a working |alive|-ring within
    a bound assembled from the protocol's own constants, and then run
    quietly."""

    def test_converges_and_stays_stable(self, adaptive):
        engine, net, checker = make_net(n=8, adaptive=adaptive)
        net.start()
        engine.run(until=300)
        t0 = engine.now
        dead = [1, 3, 5, 7]
        for sid in dead:
            net.kill_station(sid)

        rec = net.recovery
        cfg = net.config
        # worst path, assembled from protocol constants: detect each death
        # at the fixed ceiling, walk a full SAT_REC per death, and allow
        # every cut-out to escalate into a full (retried) rebuild
        per_episode = net.sat_time_bound() + net.sat_time_bound()
        rebuild_budget = (rec.REBUILD_SLOTS_PER_STATION * len(net.order)
                          * cfg.rebuild_retry_limit)
        bound = t0 + len(dead) * (per_episode + rebuild_budget) \
            + 2 * net.ring_latency()

        settle(engine, net, until=bound)
        assert set(net.members) == {0, 2, 4, 6}
        assert rec.false_triggers == 0               # every trigger was real
        assert rec.records                           # something was detected

        # stability: the 4-ring rotates and stays episode-free
        seq_mark = net.sat.seq
        assert_quiet(engine, net, window=3 * net.sat_time_bound())
        assert net.sat.seq > seq_mark
        assert not checker.violations

    def test_contiguous_block_death(self, adaptive):
        """Killing a contiguous half leaves the survivors adjacent on one
        arc — the hardest shape for cut-out chaining."""
        engine, net, checker = make_net(n=8, adaptive=adaptive)
        net.start()
        engine.run(until=300)
        t0 = engine.now
        for sid in (2, 3, 4, 5):
            net.kill_station(sid)

        rec = net.recovery
        per_episode = 2 * net.sat_time_bound()
        rebuild_budget = (rec.REBUILD_SLOTS_PER_STATION * len(net.order)
                          * net.config.rebuild_retry_limit)
        bound = t0 + 4 * (per_episode + rebuild_budget) \
            + 2 * net.ring_latency()
        settle(engine, net, until=bound)
        assert set(net.members) == {0, 1, 6, 7}
        assert rec.false_triggers == 0

        assert_quiet(engine, net, window=3 * net.sat_time_bound())
        assert not checker.violations
