"""Tests for fault schedules."""

import pytest

from repro.core import WRTRingConfig, WRTRingNetwork
from repro.faults import FaultEvent, FaultSchedule
from repro.sim import Engine


def make_net(n=6):
    engine = Engine()
    cfg = WRTRingConfig.homogeneous(range(n), l=2, k=1, rap_enabled=False)
    return engine, WRTRingNetwork(engine, list(range(n)), cfg)


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(time=-1.0, kind="kill", station=0)
        with pytest.raises(ValueError):
            FaultEvent(time=1.0, kind="explode", station=0)
        with pytest.raises(ValueError):
            FaultEvent(time=1.0, kind="kill")   # station required
        FaultEvent(time=1.0, kind="drop_signal")   # no station needed


class TestSchedule:
    def test_events_sorted(self):
        sched = FaultSchedule([
            FaultEvent(time=50.0, kind="kill", station=1),
            FaultEvent(time=10.0, kind="drop_signal"),
        ])
        assert [e.time for e in sched.events] == [10.0, 50.0]

    def test_builder_fluent(self):
        sched = (FaultSchedule.builder()
                 .kill(3, at=100)
                 .leave(4, at=200)
                 .drop_signal(at=300)
                 .join(99, at=400, parent=0)
                 .build())
        assert [e.kind for e in sched.events] == ["kill", "leave",
                                                  "drop_signal", "join"]

    def test_kill_applied(self):
        engine, net = make_net()
        sched = FaultSchedule.builder().kill(2, at=100).build()
        sched.attach(net)
        net.start()
        engine.run(until=800)
        assert 2 not in net.members
        assert len(sched.applied) == 1

    def test_leave_applied(self):
        engine, net = make_net()
        sched = FaultSchedule.builder().leave(3, at=60).build()
        sched.attach(net)
        net.start()
        engine.run(until=500)
        assert 3 not in net.members
        assert net.recovery.records[0].kind == "graceful"

    def test_drop_signal_applied(self):
        engine, net = make_net()
        sched = FaultSchedule.builder().drop_signal(at=42).build()
        sched.attach(net)
        net.start()
        engine.run(until=800)
        assert len(net.recovery.records) == 1
        assert net.recovery.records[0].kind == "sat_loss"

    def test_impossible_event_skipped_not_fatal(self):
        engine, net = make_net()
        sched = (FaultSchedule.builder()
                 .kill(2, at=100)
                 .kill(2, at=200)        # already dead: cut out by then
                 .build())
        sched.attach(net)
        net.start()
        engine.run(until=1000)
        # the second kill either applied to a dead station or was skipped —
        # the simulation must survive either way
        assert not net.network_down or len(net.members) < 6
        assert len(sched.applied) + len(sched.skipped) == 2

    def test_leave_on_departed_station_skipped(self):
        engine, net = make_net()
        sched = (FaultSchedule.builder()
                 .kill(2, at=50)
                 .leave(2, at=500)       # long gone
                 .build())
        sched.attach(net)
        net.start()
        engine.run(until=1500)
        assert len(sched.skipped) == 1
        assert "unknown station" in sched.skipped[0][1] or \
            sched.skipped[0][0].kind == "leave"

    def test_tpt_drop_signal(self):
        from repro.baselines import TPTConfig, TPTNetwork, choose_ttrt
        engine = Engine()
        children = {0: [1, 2], 1: [], 2: []}
        ttrt = choose_ttrt([1] * 3, 4, margin=2.0)
        net = TPTNetwork(engine, children, root=0,
                         config=TPTConfig(H={i: 1 for i in range(3)},
                                          ttrt=ttrt))
        sched = FaultSchedule.builder().drop_signal(at=30).build()
        sched.attach(net)
        net.start()
        engine.run(until=1000)
        assert len(net.records) == 1


class TestJoinEvents:
    def test_wrt_join_event_creates_requester(self):
        import random

        import numpy as np

        from repro.core import QuotaConfig
        from repro.phy import ConnectivityGraph, SlottedChannel, ring_placement

        n = 6
        pos = ring_placement(n, radius=30.0)
        spot = (pos[0] + pos[1]) / 2 * 1.02
        graph = ConnectivityGraph(np.vstack([pos, spot.reshape(1, 2)]),
                                  2 * 30.0 * np.sin(np.pi / n) * 1.4,
                                  node_ids=list(range(n)) + [99])
        engine = Engine()
        cfg = WRTRingConfig.homogeneous(range(n), l=2, k=1, rap_enabled=True,
                                        t_ear=6, t_update=3)
        net = WRTRingNetwork(engine, list(range(n)), cfg, graph=graph,
                             channel=SlottedChannel(graph))
        sched = (FaultSchedule.builder()
                 .join(99, at=100, quota=QuotaConfig.two_class(1, 1),
                       rng=random.Random(5))
                 .build())
        sched.attach(net)
        net.start()
        engine.run(until=5000)
        assert 99 in net.members
        assert len(sched.requesters) == 1

    def test_tpt_join_event(self):
        from repro.baselines import TPTConfig, TPTNetwork, choose_ttrt
        engine = Engine()
        children = {0: [1, 2], 1: [], 2: []}
        ttrt = choose_ttrt([1] * 4, 8, margin=3.0)
        net = TPTNetwork(engine, children, root=0,
                         config=TPTConfig(H={i: 1 for i in range(3)},
                                          ttrt=ttrt, rap_enabled=True,
                                          t_rap=6))
        sched = (FaultSchedule.builder()
                 .join(99, at=50, parent=0, H=1)
                 .build())
        sched.attach(net)
        net.start()
        engine.run(until=2000)
        assert 99 in net.members
