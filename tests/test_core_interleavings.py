"""Edge-case interleavings of joins, leaves, failures and recoveries.

The paper describes each dynamic in isolation; a real network overlaps
them.  These tests pin the behaviour when the procedures collide.
"""

import random

import numpy as np
import pytest

from repro.core import (Packet, QuotaConfig, ServiceClass, WRTRingConfig,
                        WRTRingNetwork)
from repro.core.invariants import RingInvariantChecker
from repro.core.join import JoinOutcome, JoinRequester
from repro.phy import ConnectivityGraph, SlottedChannel, ring_placement
from repro.sim import Engine


def channel_ring(n=6, margin=2.5, extra=None, **cfg_kwargs):
    pos = ring_placement(n, radius=30.0)
    ids = list(range(n))
    extra = extra or {}
    for sid, p in extra.items():
        pos = np.vstack([pos, np.asarray(p, dtype=float).reshape(1, 2)])
        ids.append(sid)
    graph = ConnectivityGraph(pos, 2 * 30.0 * np.sin(np.pi / n) * margin,
                              node_ids=ids)
    engine = Engine()
    cfg_kwargs.setdefault("rap_enabled", True)
    cfg_kwargs.setdefault("t_ear", 6)
    cfg_kwargs.setdefault("t_update", 3)
    cfg = WRTRingConfig.homogeneous(range(n), l=2, k=1, **cfg_kwargs)
    net = WRTRingNetwork(engine, list(range(n)), cfg, graph=graph,
                         channel=SlottedChannel(graph))
    return engine, net, pos


def plain_ring(n=6, **cfg_kwargs):
    engine = Engine()
    cfg_kwargs.setdefault("rap_enabled", False)
    cfg = WRTRingConfig.homogeneous(range(n), l=2, k=1, **cfg_kwargs)
    return engine, WRTRingNetwork(engine, list(range(n)), cfg)


class TestFailureDuringRap:
    def test_station_dies_while_holding_rap(self):
        """The RAP owner dies mid-pause: the network must recover and the
        mutex must not stay stuck forever."""
        engine, net, _ = channel_ring()
        checker = RingInvariantChecker(net, strict=True).attach(net.events)
        net.start()

        killed = {}

        def kill_rap_owner(t):
            if killed or net.sat.rap_owner is None:
                return
            if t < net.pause_until:   # a RAP is in progress
                owner = net.sat.rap_owner
                net.kill_station(owner)
                killed["owner"] = owner
                killed["t"] = t
        net.add_tick_hook(kill_rap_owner)
        engine.run(until=5000)
        assert killed, "no RAP was ever opened"
        assert killed["owner"] not in net.members
        assert not net.network_down
        assert checker.clean
        # the ring keeps rotating and later RAPs happen again
        assert net.join_manager.raps_opened > 1
        assert not net.sat.rap_mutex or net.sat.rap_owner in net.members

    def test_rap_owner_killed_then_join_still_possible(self):
        base = ring_placement(6, radius=30.0)
        spot = (base[2] + base[3]) / 2 * 1.02
        engine, net, _ = channel_ring(extra={99: spot})
        req = JoinRequester(net, 99, QuotaConfig.two_class(1, 1),
                            rng=random.Random(2))
        net.start()
        engine.run(until=30)
        net.kill_station(0)
        engine.run(until=8000)
        assert req.state is JoinOutcome.JOINED
        assert 0 not in net.members


class TestOverlappingDepartures:
    def test_two_adjacent_graceful_leaves(self):
        engine, net = plain_ring(7)
        net.start()
        engine.run(until=30)
        net.leave_gracefully(3)
        net.leave_gracefully(4)
        engine.run(until=2000)
        assert 3 not in net.members and 4 not in net.members
        assert len(net.members) == 5
        assert not net.network_down
        # ring rotates again at the reduced size
        assert net.rotation_log.samples(0)[-1] == 5.0

    def test_leave_then_immediate_death_of_successor(self):
        engine, net = plain_ring(7)
        net.start()
        engine.run(until=30)
        net.leave_gracefully(2)
        net.kill_station(3)   # the station that must run the cut-out
        engine.run(until=5000)
        assert 2 not in net.members
        assert 3 not in net.members
        assert not net.network_down

    def test_death_during_active_recovery_of_another(self):
        engine, net = plain_ring(8)
        net.start()
        engine.run(until=30)
        net.kill_station(2)
        # let detection begin, then kill another station far away
        engine.run(until=90)
        net.kill_station(6)
        engine.run(until=8000)
        assert 2 not in net.members and 6 not in net.members
        assert not net.network_down
        assert len(net.members) == 6

    def test_simultaneous_kills(self):
        engine, net = plain_ring(8)
        net.start()
        engine.run(until=25)
        net.kill_station(1)
        net.kill_station(5)
        engine.run(until=10_000)
        assert 1 not in net.members and 5 not in net.members
        assert not net.network_down

    def test_sat_drop_during_recovery_escalates_cleanly(self):
        engine, net = plain_ring(6)
        net.start()
        engine.run(until=30)
        net.kill_station(2)
        engine.run(until=60)   # recovery likely started or pending
        if not net._sat_lost:
            net.drop_sat()
        engine.run(until=10_000)
        assert not net.network_down
        assert 2 not in net.members


class TestJoinLeaveChurn:
    def test_join_then_immediate_leave_of_ingress(self):
        base = ring_placement(6, radius=30.0)
        spot = (base[4] + base[5]) / 2 * 1.02
        engine, net, _ = channel_ring(extra={99: spot})
        req = JoinRequester(net, 99, QuotaConfig.two_class(1, 1),
                            rng=random.Random(3))
        net.start()
        engine.run(until=4000)
        assert req.state is JoinOutcome.JOINED
        ingress = net.predecessor(99)
        net.leave_gracefully(ingress)
        engine.run(until=6000)
        assert ingress not in net.members
        assert 99 in net.members
        assert not net.network_down

    def test_churn_soak_with_invariants(self):
        """Joins + leaves + deaths interleaved for a long run, invariants
        strict throughout."""
        base = ring_placement(8, radius=30.0)
        spots = {200: (base[0] + base[1]) / 2 * 1.02,
                 201: (base[4] + base[5]) / 2 * 1.02}
        engine, net, _ = channel_ring(n=8, extra=spots)
        checker = RingInvariantChecker(net, strict=True).attach(net.events)
        reqs = [JoinRequester(net, sid, QuotaConfig.two_class(1, 1),
                              rng=random.Random(sid))
                for sid in (200, 201)]
        net.start()
        engine.run(until=1500)
        leaver = next(s for s in net.members if s not in (200, 201))
        net.leave_gracefully(leaver)
        engine.run(until=3000)
        victim = next(s for s in net.members if s not in (200, 201))
        net.kill_station(victim)
        engine.run(until=12_000)
        assert checker.clean, checker.violations[:3]
        assert not net.network_down
        joined = [r for r in reqs if r.state is JoinOutcome.JOINED]
        assert joined, "no requester managed to join during churn"
        # everything that joined still works
        t0 = engine.now
        src = joined[0].sid
        dst = next(m for m in net.members if m != src)
        p = Packet(src=src, dst=dst, service=ServiceClass.PREMIUM, created=t0)
        net.enqueue(p)
        engine.run(until=t0 + 300)
        assert p.delivered


class TestBoundsUnderChurn:
    def test_rotation_bound_respected_through_membership_changes(self):
        """Every rotation sample obeys the *superset* Theorem-1 bound even
        while stations come and go."""
        from repro.analysis import sat_rotation_bound
        engine, net = plain_ring(8)
        rng = random.Random(11)

        def top(t):
            for sid in net.members:
                st = net.stations[sid]
                if not st.alive or st.leaving:
                    continue
                while len(st.rt_queue) < 8:
                    dst = rng.choice([d for d in net.members if d != sid])
                    st.enqueue(Packet(src=sid, dst=dst,
                                      service=ServiceClass.PREMIUM,
                                      created=t), t)
        net.add_tick_hook(top)
        net.start()
        engine.run(until=2000)
        net.leave_gracefully(3)
        engine.run(until=4000)
        net.kill_station(6)
        engine.run(until=9000)
        superset_bound = sat_rotation_bound(
            8, 0, [QuotaConfig.two_class(2, 1)] * 8)
        assert net.rotation_log.worst() < superset_bound
        assert not net.network_down
