"""Unit tests for packets, service classes and quota configs."""

import pytest

from repro.core import Packet, QuotaConfig, ServiceClass


class TestServiceClass:
    def test_priority_ordering(self):
        assert ServiceClass.PREMIUM < ServiceClass.ASSURED < ServiceClass.BEST_EFFORT

    def test_real_time_flag(self):
        assert ServiceClass.PREMIUM.is_real_time
        assert not ServiceClass.ASSURED.is_real_time
        assert not ServiceClass.BEST_EFFORT.is_real_time

    def test_short_names(self):
        assert ServiceClass.PREMIUM.short == "RT"
        assert ServiceClass.ASSURED.short == "AS"
        assert ServiceClass.BEST_EFFORT.short == "BE"


class TestPacket:
    def test_lifecycle_timestamps(self):
        p = Packet(src=1, dst=2, service=ServiceClass.PREMIUM, created=10.0,
                   deadline=50.0)
        assert p.access_delay is None
        assert p.end_to_end_delay is None
        assert not p.delivered
        p.t_enqueue = 10.0
        p.t_send = 14.0
        p.t_deliver = 18.0
        assert p.access_delay == 4.0
        assert p.end_to_end_delay == 8.0
        assert p.delivered

    def test_unique_ids(self):
        a = Packet(src=0, dst=1, service=ServiceClass.BEST_EFFORT, created=0.0)
        b = Packet(src=0, dst=1, service=ServiceClass.BEST_EFFORT, created=0.0)
        assert a.pid != b.pid

    def test_self_addressed_rejected(self):
        with pytest.raises(ValueError):
            Packet(src=3, dst=3, service=ServiceClass.PREMIUM, created=0.0)

    def test_deadline_before_creation_rejected(self):
        with pytest.raises(ValueError):
            Packet(src=0, dst=1, service=ServiceClass.PREMIUM,
                   created=10.0, deadline=5.0)

    def test_missed_deadline_logic(self):
        p = Packet(src=0, dst=1, service=ServiceClass.PREMIUM,
                   created=0.0, deadline=10.0)
        assert not p.missed_deadline          # still pending
        p.t_deliver = 9.0
        assert not p.missed_deadline
        q = Packet(src=0, dst=1, service=ServiceClass.PREMIUM,
                   created=0.0, deadline=10.0)
        q.t_deliver = 11.0
        assert q.missed_deadline

    def test_dropped_packet_with_deadline_counts_missed(self):
        p = Packet(src=0, dst=1, service=ServiceClass.PREMIUM,
                   created=0.0, deadline=10.0)
        p.dropped = True
        assert p.missed_deadline

    def test_no_deadline_never_missed(self):
        p = Packet(src=0, dst=1, service=ServiceClass.BEST_EFFORT, created=0.0)
        p.dropped = True
        assert not p.missed_deadline


class TestQuotaConfig:
    def test_two_class(self):
        q = QuotaConfig.two_class(l=3, k=2)
        assert q.l == 3 and q.k == 2 and q.k1 == 0 and q.k2 == 2
        assert q.total == 5

    def test_three_class(self):
        q = QuotaConfig.three_class(l=2, k1=3, k2=1)
        assert q.k == 4
        assert q.total == 6

    def test_k_is_k1_plus_k2(self):
        q = QuotaConfig(l=1, k1=2, k2=3)
        assert q.k == q.k1 + q.k2 == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            QuotaConfig(l=-1, k1=0, k2=1)
        with pytest.raises(ValueError):
            QuotaConfig(l=1, k1=-1, k2=0)

    def test_non_int_rejected(self):
        with pytest.raises(TypeError):
            QuotaConfig(l=1.5, k1=0, k2=0)

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            QuotaConfig(l=0, k1=0, k2=0)

    def test_with_l(self):
        q = QuotaConfig.three_class(l=1, k1=2, k2=3)
        q2 = q.with_l(7)
        assert q2.l == 7 and q2.k1 == 2 and q2.k2 == 3
        assert q.l == 1  # frozen original untouched

    def test_frozen(self):
        q = QuotaConfig.two_class(1, 1)
        with pytest.raises(Exception):
            q.l = 5
