"""Tests for the scenario fuzzer — generator determinism, oracles, shrinker,
repro bundles, the checked-in corpus, and regression tests for the
packet-accounting and engine-time bugs the fuzzer caught.

Each regression test here fails on the pre-fix code:

* ``TestRemoveStationAccounting`` — ``remove_station`` used to count only
  ``transit`` packets as lost, so class-queue packets vanished from the
  metrics (and the conservation checker summed over departed stations too).
* ``TestRebuildAccounting`` — the ring-rebuild path had the same leak:
  stations dropped by ``finish_rebuild`` kept their class queues unaccounted.
  This one was found *by the fuzzer* (campaign seed=1, runs 66/93/99/...).
* ``TestOrphanTTL`` — a data packet whose source and destination both left
  the ring circulated forever; the hop-count TTL now reclaims it.
* The engine ``max_events`` time-warp regression lives in
  ``tests/test_sim_engine.py`` (``test_max_events_with_until_does_not_warp_clock``).
"""

import copy
import json
from pathlib import Path

import pytest

from repro.campaign.store import ResultStore
from repro.core import Packet, ServiceClass, WRTRingConfig, WRTRingNetwork
from repro.core.invariants import RingInvariantChecker
from repro.fuzz import (FuzzCase, generate_case, hash_trace, run_case,
                        run_fuzz_campaign, shrink_case, verify_bundle,
                        write_bundle)
from repro.fuzz.bundle import load_bundle
from repro.sim import Engine

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))


def checked_net(n=8, l=2, k=2):
    engine = Engine()
    cfg = WRTRingConfig.homogeneous(range(n), l=l, k=k, rap_enabled=False)
    net = WRTRingNetwork(engine, list(range(n)), cfg)
    checker = RingInvariantChecker(net, strict=True).attach(net.events)
    return engine, net, checker


def be_pkt(src, dst, created=0.0):
    return Packet(src=src, dst=dst, service=ServiceClass.BEST_EFFORT,
                  created=created)


# ----------------------------------------------------------------------
# generator
# ----------------------------------------------------------------------
class TestGenerator:
    def test_same_seed_and_index_is_deterministic(self):
        a = generate_case(7, 3)
        b = generate_case(7, 3)
        assert a.to_dict() == b.to_dict()

    def test_indices_produce_distinct_cases(self):
        cases = [generate_case(7, i).to_dict() for i in range(10)]
        assert len({json.dumps(c, sort_keys=True) for c in cases}) == 10

    def test_round_trip_through_dict(self):
        case = generate_case(42, 5)
        again = FuzzCase.from_dict(json.loads(json.dumps(case.to_dict())))
        assert again.to_dict() == case.to_dict()

    def test_drive_plan_ends_at_horizon(self):
        for i in range(25):
            case = generate_case(11, i)
            assert case.drive[-1]["until"] == case.scenario["horizon"]


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
class TestRunner:
    def test_replay_is_byte_identical(self):
        case = generate_case(1, 0)
        first = run_case(case)
        second = run_case(FuzzCase.from_dict(case.to_dict()))
        assert first.trace_hash == second.trace_hash
        assert first.events_executed == second.events_executed

    def test_clean_case_has_no_failures(self):
        result = run_case(generate_case(1, 0))
        assert result.ok, [f.to_dict() for f in result.failures]
        assert result.stats["enqueued"] >= 0

    def test_record_is_json_serializable(self):
        record = run_case(generate_case(1, 2)).to_record()
        json.dumps(record)
        assert record["ok"] in (True, False)
        assert isinstance(record["trace_hash"], str)


# ----------------------------------------------------------------------
# regression: remove_station loses class-queue packets (pre-fix)
# ----------------------------------------------------------------------
class TestRemoveStationAccounting:
    def test_class_queue_packets_counted_as_lost(self):
        engine, net, checker = checked_net()
        net.start()
        engine.run(until=5)
        st = net.stations[3]
        packets = [be_pkt(3, 6, created=5.0) for _ in range(4)]
        for pkt in packets:
            st.enqueue(pkt, 5.0)
        lost_before = net.metrics.lost
        net.remove_station(3)
        assert net.metrics.lost == lost_before + 4
        assert all(pkt.dropped for pkt in packets)
        assert not st.be_queue and not st.transit

    def test_conservation_holds_after_removal(self):
        # pre-fix the strict checker raised here: the removed station's
        # queued packets were neither lost nor buffered at a member
        engine, net, checker = checked_net()
        net.start()
        engine.run(until=5)
        for i in range(3):
            net.stations[2].enqueue(be_pkt(2, 5, created=5.0), 5.0)
        net.remove_station(2)
        engine.run(until=100)
        assert checker.clean


# ----------------------------------------------------------------------
# regression: rebuild path loses class-queue packets (found by the fuzzer)
# ----------------------------------------------------------------------
class TestRebuildAccounting:
    def test_rebuild_drains_dropped_stations_queues(self):
        engine, net, checker = checked_net()
        net.start()
        engine.run(until=20)
        for sid in (4, 5):
            for i in range(6):
                net.stations[sid].enqueue(be_pkt(sid, (sid + 2) % 8, 20.0),
                                          20.0)
        # two adjacent silent deaths defeat the single-station cut-out and
        # force a full ring re-formation
        net.kill_station(4)
        net.kill_station(5)
        engine.run(until=500)
        assert net.recovery.ring_rebuilds >= 1
        assert net.order == [0, 1, 2, 3, 6, 7]
        # pre-fix: the 12 queued packets vanished (strict checker raised)
        assert checker.clean
        assert net.metrics.lost >= 12


# ----------------------------------------------------------------------
# regression: orphaned packet circulates forever (pre-fix)
# ----------------------------------------------------------------------
class TestOrphanTTL:
    def test_packet_with_both_endpoints_gone_is_reclaimed(self):
        engine, net, checker = checked_net()
        net.start()
        engine.run(until=10)
        pkt = be_pkt(0, 4, created=10.0)
        net.stations[0].enqueue(pkt, 10.0)
        # step until the packet is on the ring (sent, not yet delivered)
        for _ in range(40):
            engine.run(until=engine.now + 1)
            if pkt.t_send is not None:
                break
        assert pkt.t_send is not None and pkt.t_deliver is None
        net.remove_station(4)   # destination gone
        net.remove_station(0)   # then the source too
        engine.run(until=engine.now + 4 * len(net.order))
        assert pkt.dropped
        assert net.metrics.orphaned >= 1
        assert all(not net.stations[sid].transit for sid in net.order)
        assert checker.clean

    def test_orphan_ttl_traced(self):
        from repro.sim.trace import TraceRecorder
        engine = Engine()
        cfg = WRTRingConfig.homogeneous(range(8), l=2, k=2, rap_enabled=False)
        net = WRTRingNetwork(engine, list(range(8)), cfg,
                             trace=TraceRecorder())
        net.start()
        engine.run(until=10)
        pkt = be_pkt(0, 4, created=10.0)
        net.stations[0].enqueue(pkt, 10.0)
        for _ in range(40):
            engine.run(until=engine.now + 1)
            if pkt.t_send is not None:
                break
        net.remove_station(4)
        net.remove_station(0)
        engine.run(until=engine.now + 4 * len(net.order))
        assert net.trace.count("ring.orphan_ttl") >= 1


# ----------------------------------------------------------------------
# shrinker
# ----------------------------------------------------------------------
class TestShrinker:
    def test_passing_case_returned_unchanged(self):
        case = generate_case(1, 0)
        shrunk, runs = shrink_case(case)
        assert runs == 1
        assert shrunk.to_dict() == case.to_dict()

    def test_shrinks_to_the_culprit_fault(self, monkeypatch):
        # a synthetic failure that triggers iff the kill(5) fault is present:
        # the shrinker must strip everything else and keep exactly that fault
        class FakeResult:
            def __init__(self, fails):
                self.ok = not fails

            def failure_kinds(self):
                return ["invariant"] if not self.ok else []

        def fake_run(case):
            faults = case.scenario.get("faults") or []
            bad = any(f["kind"] == "kill" and f["station"] == 5
                      for f in faults)
            return FakeResult(bad)

        import repro.fuzz.shrink as shrink_mod
        monkeypatch.setattr(shrink_mod, "run_case", fake_run)

        case = generate_case(1, 0)
        scenario = copy.deepcopy(case.scenario)
        scenario["faults"] = [
            {"kind": "drop_signal", "station": None, "time": 40.0},
            {"kind": "kill", "station": 5, "time": 50.0},
            {"kind": "leave", "station": 2, "time": 60.0},
        ]
        case = FuzzCase(seed=case.seed, index=case.index, scenario=scenario,
                        drive=[{"until": 100.0, "max_events": 500},
                               {"until": scenario["horizon"]}])
        shrunk, runs = shrink_case(case)
        assert shrunk.scenario["faults"] == [
            {"kind": "kill", "station": 5, "time": 50.0}]
        assert shrunk.scenario["traffic"] == {"kind": "none"}
        assert all("max_events" not in chunk for chunk in shrunk.drive)
        assert runs > 1


# ----------------------------------------------------------------------
# bundles + corpus
# ----------------------------------------------------------------------
class TestBundles:
    def test_round_trip(self, tmp_path):
        case = generate_case(1, 0)
        result = run_case(case)
        path = write_bundle(tmp_path / "b.json", case, result, note="test")
        data = load_bundle(path)
        assert data["case"] == case.to_dict()
        assert data["result"]["trace_hash"] == result.trace_hash
        ok, fresh, mismatches = verify_bundle(path)
        assert ok, mismatches
        assert fresh.trace_hash == result.trace_hash

    def test_non_bundle_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"kind": "other"}))
        with pytest.raises(ValueError):
            load_bundle(path)


class TestCorpus:
    def test_corpus_is_not_empty(self):
        assert len(CORPUS) >= 4

    @pytest.mark.parametrize("path", CORPUS, ids=[p.stem for p in CORPUS])
    def test_corpus_bundle_replays_byte_identically(self, path):
        ok, result, mismatches = verify_bundle(path)
        assert ok, mismatches
        assert result.ok, [f.to_dict() for f in result.failures]


# ----------------------------------------------------------------------
# campaign smoke (the seeded end-to-end fuzz gate)
# ----------------------------------------------------------------------
class TestCampaign:
    def test_seeded_200_run_smoke_is_clean(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        campaign = run_fuzz_campaign(20260806, 200, store,
                                     tmp_path / "bundles",
                                     max_slots=350, shrink=False)
        assert campaign.ok, campaign.failed[:2]
        assert campaign.ran == 200

    def test_campaign_resumes_from_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        first = run_fuzz_campaign(3, 5, store, tmp_path / "b", max_slots=300)
        again = run_fuzz_campaign(3, 5, store, tmp_path / "b", max_slots=300)
        assert first.ran == 5 and first.cached == 0
        assert again.ran == 0 and again.cached == 5
        assert again.ok
