"""The event spine: bus mechanics, trace-adapter parity, schema docs.

The compatibility contract under test: the typed event layer plus the
trace adapter must reproduce the pre-spine trace stream *byte for byte*,
so the checked-in fuzz corpus bundles (whose ``trace_hash`` fields were
recorded against the old inline ``trace.record`` calls) replay with
identical hashes.
"""

import json
from pathlib import Path

import pytest

from repro.core import Packet, ServiceClass, WRTRingConfig, WRTRingNetwork
from repro.events import (EVENT_TYPES, EventBus, NULL_EMITTER, TraceAdapter,
                          render_markdown, schema, traced_category)
from repro.events import types as ev
from repro.events.types import ProtocolEvent
from repro.fuzz import load_bundle, verify_bundle
from repro.sim import Engine
from repro.sim.trace import NullTraceRecorder, TraceRecorder

CORPUS = sorted((Path(__file__).parent / "corpus").glob("*.json"))
EVENTS_DOC = Path(__file__).parent.parent / "docs" / "EVENTS.md"

#: trace categories written directly by non-spine layers (the channel's
#: physical-layer records are not protocol events)
NON_SPINE_CATEGORIES = {"phy.collision"}


def ring_net(n=6, trace=None, events=None, **cfg_kwargs):
    engine = Engine()
    cfg_kwargs.setdefault("rap_enabled", False)
    cfg = WRTRingConfig.homogeneous(range(n), l=2, k=2, **cfg_kwargs)
    return engine, WRTRingNetwork(engine, list(range(n)), cfg,
                                  trace=trace, events=events)


class TestEventBus:
    def test_no_subscriber_emitter_is_null_and_falsy(self):
        bus = EventBus()
        emit = bus.emitter(ev.RingTick)
        assert emit is NULL_EMITTER
        assert not emit
        assert emit(1.0) is None   # calling the null emitter is a no-op

    def test_single_subscriber_receives_typed_event(self):
        bus = EventBus()
        seen = []
        bus.subscribe(ev.SatRelease, seen.append)
        emit = bus.emitter(ev.SatRelease)
        assert emit    # truthy: the emit site should construct the event
        emit(5.0, 1, 2)
        assert len(seen) == 1
        e = seen[0]
        assert isinstance(e, ev.SatRelease)
        assert (e.t, e.station, e.to) == (5.0, 1, 2)
        assert e.fields() == {"t": 5.0, "station": 1, "to": 2}

    def test_fanout_preserves_subscription_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(ev.RingTick, lambda e: order.append("a"))
        bus.subscribe(ev.RingTick, lambda e: order.append("b"))
        bus.emitter(ev.RingTick)(0.0)
        assert order == ["a", "b"]

    def test_unsubscribe_restores_null_emitter(self):
        bus = EventBus()
        unsub = bus.subscribe(ev.RingTick, lambda e: None)
        assert bus.subscriber_count(ev.RingTick) == 1
        unsub()
        assert bus.subscriber_count(ev.RingTick) == 0
        assert bus.emitter(ev.RingTick) is NULL_EMITTER

    def test_binder_called_immediately_and_on_every_change(self):
        bus = EventBus()
        calls = []
        bus.add_binder(lambda: calls.append(len(calls)))
        assert len(calls) == 1                      # immediate
        unsub = bus.subscribe(ev.RingTick, lambda e: None)
        assert len(calls) == 2                      # on subscribe
        unsub()
        assert len(calls) == 3                      # on unsubscribe

    def test_subscribe_rejects_non_event_types(self):
        bus = EventBus()
        with pytest.raises(TypeError):
            bus.subscribe(dict, lambda e: None)


class TestTraceAdapter:
    def _pkt(self, src=0, dst=1):
        return Packet(src=src, dst=dst, service=ServiceClass.PREMIUM,
                      created=0.0)

    def attached(self):
        trace = TraceRecorder()
        bus = EventBus()
        TraceAdapter(trace).attach(bus)
        return trace, bus

    def test_direct_event_renders_legacy_record(self):
        trace, bus = self.attached()
        bus.emitter(ev.SatRelease)(7.0, 3, 4)
        assert len(trace) == 1
        rec = trace.events[0]
        assert (rec.time, rec.category) == (7.0, "sat.release")
        assert rec.fields == {"station": 3, "to": 4}

    def test_packet_lost_traced_only_for_link_reason(self):
        trace, bus = self.attached()
        emit = bus.emitter(ev.PacketLost)
        emit(1.0, self._pkt(), "link", 0, 1)
        emit(2.0, self._pkt(), "removed", 2, None)
        emit(3.0, self._pkt(), "rebuild", 3, None)
        assert [e.category for e in trace.events] == ["ring.link_loss"]
        assert trace.events[0].fields == {"src": 0, "dst": 1}

    def test_packet_orphaned_traced_only_for_ttl_reason(self):
        trace, bus = self.attached()
        pkt = self._pkt(src=2, dst=5)
        pkt.hops = 9
        emit = bus.emitter(ev.PacketOrphaned)
        emit(1.0, pkt, "ttl")
        emit(2.0, self._pkt(), "full_circle")
        assert [e.category for e in trace.events] == ["ring.orphan_ttl"]
        assert trace.events[0].fields == {"src": 2, "dst": 5, "hops": 9}

    def test_rap_close_duplicate_field_elided_when_none(self):
        trace, bus = self.attached()
        emit = bus.emitter(ev.RapClose)
        emit(1.0, 0, 7, None)
        emit(2.0, 0, None, 7)
        assert trace.events[0].fields == {"ingress": 0, "joined": 7}
        assert trace.events[1].fields == {"ingress": 0, "joined": None,
                                          "duplicate": 7}

    def test_occupancy_subscription_follows_trace_enablement(self):
        trace = TraceRecorder()       # slot.occupancy is opt-in: disabled
        bus = EventBus()
        adapter = TraceAdapter(trace).attach(bus)
        assert bus.emitter(ev.SlotOccupancy) is NULL_EMITTER
        trace.enable("slot.occupancy")
        adapter.refresh(bus)
        emit = bus.emitter(ev.SlotOccupancy)
        assert emit
        emit(4.0, 3, 8)
        assert trace.count("slot.occupancy") == 1

    def test_untraced_events_write_nothing(self):
        trace, bus = self.attached()
        bus.emitter(ev.RingTick)(1.0)
        bus.emitter(ev.SlotTransmit)(1.0, 0, self._pkt())
        bus.emitter(ev.SlotDeliver)(1.0, 1, self._pkt())
        bus.emitter(ev.RecoveryEpisode)(1.0, "silent", "recovered", 2, 10.0)
        assert len(trace) == 0


class TestNetworkWiring:
    def test_network_owns_bus_and_adapter_by_default(self):
        _, net = ring_net(trace=TraceRecorder())
        assert isinstance(net.events, EventBus)
        assert net._trace_adapter is not None

    def test_null_trace_skips_adapter(self):
        _, net = ring_net()      # defaults to NullTraceRecorder
        assert isinstance(net.trace, NullTraceRecorder)
        assert net._trace_adapter is None

    def test_external_bus_is_used_and_not_adapted(self):
        bus = EventBus()
        delivered = []
        bus.subscribe(ev.SlotDeliver, delivered.append)
        engine, net = ring_net(trace=TraceRecorder(), events=bus)
        assert net.events is bus
        # caller-owned bus: the caller decides what subscribes, the
        # network must not silently attach its trace adapter
        assert net._trace_adapter is None
        net.enqueue(Packet(src=0, dst=1, service=ServiceClass.PREMIUM,
                           created=0.0))
        net.start()
        engine.run(until=200)
        assert len(delivered) >= 1
        assert delivered[0].station == 1

    def test_metrics_fed_solely_by_bus(self):
        engine, net = ring_net()
        for sid in range(3):
            net.enqueue(Packet(src=sid, dst=(sid + 1) % 6,
                               service=ServiceClass.PREMIUM, created=0.0))
        net.start()
        engine.run(until=300)
        assert net.metrics.total_delivered == 3
        assert net.metrics.transmitted[ServiceClass.PREMIUM] == 3
        assert net.metrics.access_delay[ServiceClass.PREMIUM].count == 3


class TestCorpusParity:
    """The satellite acceptance test: every checked-in repro bundle —
    recorded before the event spine existed — must replay through the
    adapter to a byte-identical trace hash."""

    def test_corpus_present(self):
        assert len(CORPUS) >= 4

    @pytest.mark.parametrize("path", CORPUS, ids=[p.stem for p in CORPUS])
    def test_bundle_trace_hash_byte_identical(self, path):
        expected = load_bundle(path)["result"]["trace_hash"]
        ok, result, mismatches = verify_bundle(path)
        assert ok, mismatches
        assert mismatches == []
        assert result.trace_hash == expected


class TestSchemaAndDocs:
    def test_categories_are_unique_and_dotted(self):
        cats = [cls.category for cls in EVENT_TYPES]
        assert len(cats) == len(set(cats))
        assert all("." in c for c in cats)

    def test_every_event_is_timestamped_first(self):
        for cls in EVENT_TYPES:
            assert cls.payload[0] == "t", cls.__name__

    def test_events_doc_contains_generated_schema(self):
        """docs/EVENTS.md embeds ``render_markdown()`` verbatim — regenerate
        the doc when event types change (see the doc's header)."""
        assert render_markdown() in EVENTS_DOC.read_text()

    def test_schema_trace_column_matches_adapter(self):
        for rec, cls in zip(schema(), EVENT_TYPES):
            assert rec["trace"] == traced_category(cls)

    @pytest.mark.parametrize("path", CORPUS, ids=[p.stem for p in CORPUS])
    def test_replayed_trace_categories_covered_by_schema(self, path):
        """Every category a real run records is either declared by an event
        type's trace mapping or written by a non-spine layer."""
        traced = set()
        for cls in EVENT_TYPES:
            cat = traced_category(cls)
            if cat is not None:
                traced.add(cat.split(" ")[0])
        _, result, _ = verify_bundle(path)
        emitted = {e.category for e in result.built.trace.events}
        assert emitted - traced - NON_SPINE_CATEGORIES == set()

    def test_event_classes_are_slotted(self):
        for cls in EVENT_TYPES:
            e = cls(*range(len(cls.payload)))
            with pytest.raises(AttributeError):
                e.not_a_field = 1
            assert issubclass(cls, ProtocolEvent)
