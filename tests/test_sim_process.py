"""Unit tests for generator processes and signals."""

import pytest

from repro.sim import Engine, Process, Signal, Timeout, Interrupt, SimulationError


def run(eng, until=None):
    eng.run(until=until)


class TestTimeoutWaits:
    def test_simple_timeouts(self):
        eng = Engine()
        trail = []

        def proc():
            trail.append(("start", eng.now))
            yield Timeout(5.0)
            trail.append(("mid", eng.now))
            yield Timeout(2.5)
            trail.append(("end", eng.now))

        Process(eng, proc())
        eng.run()
        assert trail == [("start", 0.0), ("mid", 5.0), ("end", 7.5)]

    def test_zero_timeout_yields_control(self):
        eng = Engine()
        order = []

        def a():
            order.append("a1")
            yield Timeout(0.0)
            order.append("a2")

        def b():
            order.append("b1")
            yield Timeout(0.0)
            order.append("b2")

        Process(eng, a())
        Process(eng, b())
        eng.run()
        assert order == ["a1", "b1", "a2", "b2"]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_process_result(self):
        eng = Engine()

        def proc():
            yield Timeout(1.0)
            return 42

        p = Process(eng, proc())
        eng.run()
        assert p.result == 42
        assert not p.alive


class TestSignals:
    def test_wait_for_signal_value(self):
        eng = Engine()
        sig = Signal(eng, "data")
        got = []

        def waiter():
            value = yield sig
            got.append((value, eng.now))

        Process(eng, waiter())
        eng.schedule(7.0, sig.succeed, "payload")
        eng.run()
        assert got == [("payload", 7.0)]

    def test_multiple_waiters_all_resume(self):
        eng = Engine()
        sig = Signal(eng)
        got = []

        def waiter(i):
            v = yield sig
            got.append((i, v))

        for i in range(3):
            Process(eng, waiter(i))
        eng.schedule(1.0, sig.succeed, "x")
        eng.run()
        assert sorted(got) == [(0, "x"), (1, "x"), (2, "x")]

    def test_yield_already_triggered_signal(self):
        eng = Engine()
        sig = Signal(eng)
        sig.succeed(99)
        got = []

        def waiter():
            v = yield sig
            got.append(v)

        Process(eng, waiter())
        eng.run()
        assert got == [99]

    def test_failed_signal_raises_in_waiter(self):
        eng = Engine()
        sig = Signal(eng)
        caught = []

        def waiter():
            try:
                yield sig
            except ValueError as exc:
                caught.append(str(exc))

        Process(eng, waiter())
        eng.schedule(1.0, sig.fail, ValueError("boom"))
        eng.run()
        assert caught == ["boom"]

    def test_double_succeed_rejected(self):
        eng = Engine()
        sig = Signal(eng)
        sig.succeed(1)
        with pytest.raises(SimulationError):
            sig.succeed(2)

    def test_value_before_trigger_rejected(self):
        eng = Engine()
        sig = Signal(eng)
        with pytest.raises(SimulationError):
            _ = sig.value

    def test_fail_requires_exception(self):
        eng = Engine()
        sig = Signal(eng)
        with pytest.raises(TypeError):
            sig.fail("not an exception")

    def test_add_callback(self):
        eng = Engine()
        sig = Signal(eng)
        got = []
        sig.add_callback(lambda s: got.append(s.value))
        eng.schedule(3.0, sig.succeed, "cb")
        eng.run()
        assert got == ["cb"]

    def test_add_callback_after_trigger(self):
        eng = Engine()
        sig = Signal(eng)
        sig.succeed("late")
        got = []
        sig.add_callback(lambda s: got.append(s.value))
        eng.run()
        assert got == ["late"]

    def test_ok_property(self):
        eng = Engine()
        sig = Signal(eng)
        assert not sig.ok
        sig.succeed()
        assert sig.ok
        bad = Signal(eng)
        bad.fail(RuntimeError("x"))
        assert bad.triggered and not bad.ok


class TestProcessComposition:
    def test_join_child_process(self):
        eng = Engine()
        trail = []

        def child():
            yield Timeout(4.0)
            return "child-result"

        def parent():
            result = yield Process(eng, child())
            trail.append((result, eng.now))

        Process(eng, parent())
        eng.run()
        assert trail == [("child-result", 4.0)]

    def test_child_exception_propagates_to_parent(self):
        eng = Engine()
        caught = []

        def child():
            yield Timeout(1.0)
            raise KeyError("inner")

        def parent():
            try:
                yield Process(eng, child())
            except KeyError as exc:
                caught.append(exc.args[0])

        Process(eng, parent())
        eng.run()
        assert caught == ["inner"]

    def test_unhandled_exception_fails_done_signal(self):
        eng = Engine()

        def bad():
            yield Timeout(1.0)
            raise RuntimeError("unhandled")

        p = Process(eng, bad())
        eng.run()
        assert p.done.triggered
        with pytest.raises(RuntimeError):
            _ = p.result

    def test_yield_garbage_fails_process(self):
        eng = Engine()

        def bad():
            yield "not a waitable"

        p = Process(eng, bad())
        eng.run()
        with pytest.raises(SimulationError):
            _ = p.result

    def test_non_generator_rejected(self):
        eng = Engine()
        with pytest.raises(TypeError):
            Process(eng, lambda: None)


class TestInterrupt:
    def test_interrupt_during_timeout(self):
        eng = Engine()
        trail = []

        def sleeper():
            try:
                yield Timeout(100.0)
                trail.append("never")
            except Interrupt as exc:
                trail.append(("interrupted", exc.cause, eng.now))

        p = Process(eng, sleeper())
        eng.schedule(5.0, p.interrupt, "wake")
        eng.run()
        assert trail == [("interrupted", "wake", 5.0)]
        # the original timeout must not fire afterwards
        assert eng.now == 5.0

    def test_interrupt_during_signal_wait_detaches(self):
        eng = Engine()
        sig = Signal(eng)
        trail = []

        def waiter():
            try:
                yield sig
            except Interrupt:
                trail.append("interrupted")
            yield Timeout(1.0)
            trail.append("after")

        p = Process(eng, waiter())
        eng.schedule(2.0, p.interrupt)
        eng.schedule(10.0, sig.succeed, "late")  # should not resume p twice
        eng.run()
        assert trail == ["interrupted", "after"]

    def test_unhandled_interrupt_terminates_quietly(self):
        eng = Engine()

        def sleeper():
            yield Timeout(100.0)

        p = Process(eng, sleeper())
        eng.schedule(1.0, p.interrupt, "cause")
        eng.run()
        assert not p.alive
        assert p.result == "cause"

    def test_interrupt_dead_process_is_noop(self):
        eng = Engine()

        def quick():
            yield Timeout(1.0)

        p = Process(eng, quick())
        eng.run()
        p.interrupt()  # no error
        eng.run()
        assert not p.alive

    def test_interrupted_process_can_continue(self):
        eng = Engine()
        trail = []

        def resilient():
            while True:
                try:
                    yield Timeout(10.0)
                    trail.append(("slept", eng.now))
                    return
                except Interrupt:
                    trail.append(("retry", eng.now))

        p = Process(eng, resilient())
        eng.schedule(3.0, p.interrupt)
        eng.run()
        assert trail == [("retry", 3.0), ("slept", 13.0)]
