"""Tests for the quota-allocation schemes (the footnote-1 FDDI adaptation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import access_delay_bound
from repro.bandwidth import (AllocationProblem, StationDemand, allocate,
                             equal_allocation, local_allocation,
                             normalized_proportional_allocation,
                             proportional_allocation, validate_allocation)


def demands(rates, deadlines=None, k=1, backlogs=None):
    deadlines = deadlines or [None] * len(rates)
    backlogs = backlogs or [0] * len(rates)
    return [StationDemand(sid=i, rt_rate=r, deadline=d, max_backlog=b, k=k)
            for i, (r, d, b) in enumerate(zip(rates, deadlines, backlogs))]


class TestProblemValidation:
    def test_demand_validation(self):
        with pytest.raises(ValueError):
            StationDemand(sid=0, rt_rate=-0.1)
        with pytest.raises(ValueError):
            StationDemand(sid=0, rt_rate=0.1, deadline=0.0)
        with pytest.raises(ValueError):
            StationDemand(sid=0, rt_rate=0.1, max_backlog=-1)
        with pytest.raises(ValueError):
            StationDemand(sid=0, rt_rate=0.1, k=-1)

    def test_problem_validation(self):
        with pytest.raises(ValueError):
            AllocationProblem(demands=[])
        with pytest.raises(ValueError):
            AllocationProblem(demands=[StationDemand(0, 0.1),
                                       StationDemand(0, 0.1)])
        with pytest.raises(ValueError):
            AllocationProblem(demands=[StationDemand(0, 0.1)], t_rap=-1)

    def test_validate_missing_station(self):
        problem = AllocationProblem(demands=demands([0.01, 0.01]))
        with pytest.raises(ValueError):
            validate_allocation(problem, {0: 1})


class TestEqual:
    def test_generous_equal_is_feasible_for_light_load(self):
        problem = AllocationProblem(demands=demands([0.01] * 5))
        result = equal_allocation(problem, l=2)
        assert result.feasible

    def test_equal_fails_tight_deadline(self):
        # heavy backlog at one station: l=1 cannot drain it in time
        problem = AllocationProblem(demands=demands(
            [0.01] * 5, deadlines=[60.0] + [None] * 4,
            backlogs=[8] + [0] * 4))
        result = equal_allocation(problem, l=1)
        assert not result.feasible
        assert any("deadline" in v for v in result.violations)

    def test_rate_with_zero_l_flagged(self):
        problem = AllocationProblem(demands=demands([0.1, 0.0]))
        result = equal_allocation(problem, l=0)
        assert not result.feasible


class TestProportional:
    def test_rates_sustained(self):
        problem = AllocationProblem(demands=demands([0.05, 0.1, 0.02]))
        result = proportional_allocation(problem)
        assert result.feasible, result.violations
        # higher-rate stations get at least as much quota
        assert result.l[1] >= result.l[0] >= result.l[2]

    def test_zero_rate_station_gets_zero(self):
        problem = AllocationProblem(demands=demands([0.05, 0.0]))
        result = proportional_allocation(problem)
        assert result.l[1] == 0

    def test_overload_reported_infeasible(self):
        problem = AllocationProblem(demands=demands([0.5, 0.4, 0.3]))
        result = proportional_allocation(problem)
        assert not result.feasible
        assert "demand" in result.violations[0]


class TestNormalizedProportional:
    def test_meets_deadlines_when_pool_sufficient(self):
        problem = AllocationProblem(demands=demands(
            [0.02, 0.03, 0.02], deadlines=[800.0, 800.0, 800.0]))
        result = normalized_proportional_allocation(problem)
        assert result.feasible, result.violations

    def test_falls_back_to_proportional_without_deadlines(self):
        problem = AllocationProblem(demands=demands([0.05, 0.05]))
        assert (normalized_proportional_allocation(problem).l
                == proportional_allocation(problem).l)


class TestLocal:
    def test_meets_every_deadline(self):
        problem = AllocationProblem(demands=demands(
            [0.02, 0.05, 0.01],
            deadlines=[900.0, 700.0, 1200.0],
            backlogs=[3, 5, 1]))
        result = local_allocation(problem)
        assert result.feasible, result.violations
        quotas = [(result.l[d.sid], d.k) for d in problem.demands]
        for d in problem.demands:
            worst = access_delay_bound(d.max_backlog, result.l[d.sid],
                                       problem.S, problem.t_rap, quotas)
            assert worst <= d.deadline

    def test_infeasible_deadline_reported(self):
        problem = AllocationProblem(demands=demands(
            [0.01] * 3, deadlines=[5.0, None, None]))
        result = local_allocation(problem)
        assert not result.feasible

    def test_local_admits_sets_equal_rejects(self):
        """The headline E15 shape: deadline-aware local allocation finds a
        feasible quota map where the naive equal split does not."""
        problem = AllocationProblem(demands=demands(
            [0.08, 0.01, 0.01, 0.01],
            deadlines=[110.0, None, None, None],
            backlogs=[12, 0, 0, 0]))
        local = local_allocation(problem)
        assert local.feasible, local.violations
        # giving everyone the backlog-draining quota inflates Σ(l+k) past
        # the deadline; no uniform l works
        assert all(not equal_allocation(problem, l=l).feasible
                   for l in range(1, 9))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=0.05), min_size=2,
                    max_size=10),
           st.integers(min_value=200, max_value=5000))
    def test_property_feasible_results_validate(self, rates, d):
        deadlines = [float(d) if r > 0 else None for r in rates]
        problem = AllocationProblem(demands=demands(rates, deadlines=deadlines))
        result = local_allocation(problem)
        if result.feasible:
            check = validate_allocation(problem, result.l)
            assert check.feasible


class TestDispatch:
    def test_allocate_by_name(self):
        problem = AllocationProblem(demands=demands([0.01, 0.01]))
        for scheme in ("equal", "proportional", "normalized_proportional",
                       "local"):
            result = allocate(problem, scheme=scheme)
            assert result.scheme == scheme

    def test_unknown_scheme(self):
        problem = AllocationProblem(demands=demands([0.01]))
        with pytest.raises(ValueError):
            allocate(problem, scheme="magic")
