"""Integration tests for the WRT-Ring dataplane and SAT circulation."""

import pytest

from repro.core import (Packet, QuotaConfig, ServiceClass, WRTRingConfig,
                        WRTRingNetwork)
from repro.sim import Engine


def make_net(n=5, l=2, k=2, **cfg_kwargs):
    engine = Engine()
    cfg_kwargs.setdefault("rap_enabled", False)
    cfg = WRTRingConfig.homogeneous(range(n), l=l, k=k, **cfg_kwargs)
    net = WRTRingNetwork(engine, list(range(n)), cfg)
    return engine, net


def pkt(src, dst, service=ServiceClass.PREMIUM, created=0.0, deadline=None):
    return Packet(src=src, dst=dst, service=service, created=created,
                  deadline=deadline)


class TestConstruction:
    def test_too_small_ring_rejected(self):
        engine = Engine()
        cfg = WRTRingConfig.homogeneous([0], l=1, k=1)
        with pytest.raises(ValueError):
            WRTRingNetwork(engine, [0], cfg)

    def test_duplicate_ids_rejected(self):
        engine = Engine()
        cfg = WRTRingConfig.homogeneous([0, 1], l=1, k=1)
        with pytest.raises(ValueError):
            WRTRingNetwork(engine, [0, 1, 0], cfg)

    def test_missing_quota_rejected(self):
        engine = Engine()
        cfg = WRTRingConfig(quotas={0: QuotaConfig.two_class(1, 1)})
        with pytest.raises(ValueError):
            WRTRingNetwork(engine, [0, 1], cfg)

    def test_successor_predecessor(self):
        _, net = make_net(4)
        assert net.successor(0) == 1
        assert net.successor(3) == 0
        assert net.predecessor(0) == 3

    def test_double_start_rejected(self):
        engine, net = make_net(3)
        net.start()
        with pytest.raises(RuntimeError):
            net.start()

    def test_reachable_without_graph_is_true(self):
        _, net = make_net(3)
        assert net.reachable(0, 2)


class TestIdleCirculation:
    def test_idle_rotation_equals_ring_latency(self):
        engine, net = make_net(7)
        net.start()
        engine.run(until=100)
        samples = net.rotation_log.all_samples()
        assert samples and all(s == 7.0 for s in samples)

    def test_sat_hop_slots_scales_rotation(self):
        engine, net = make_net(5, sat_hop_slots=3)
        net.start()
        engine.run(until=200)
        samples = net.rotation_log.all_samples()
        assert samples and all(s == 15.0 for s in samples)
        assert net.ring_latency() == 15.0

    def test_hops_per_round_is_n(self):
        """Sec. 3.2.1 / Fig. 4b: the SAT crosses exactly N links per round."""
        for n in (3, 6, 11):
            engine, net = make_net(n)
            net.start()
            engine.run(until=20 * n)
            hops = net.rotation_log.hops_per_round()[1:]  # first is warm-up
            assert hops and all(h == n for h in hops)

    def test_rounds_counted(self):
        engine, net = make_net(4)
        net.start()
        engine.run(until=41)
        assert net.sat.rounds == 10


class TestDelivery:
    def test_packet_travels_hop_by_hop(self):
        engine, net = make_net(6)
        net.start()
        engine.run(until=10)
        p = pkt(src=1, dst=4, created=engine.now)
        net.enqueue(p)
        engine.run(until=30)
        assert p.delivered
        # 3 hops: sent at t0, arrives dst at t0 + 3
        assert p.t_deliver - p.t_send == 3.0

    def test_neighbour_delivery_one_slot(self):
        engine, net = make_net(4)
        net.start()
        engine.run(until=5)
        p = pkt(src=2, dst=3, created=engine.now)
        net.enqueue(p)
        engine.run(until=15)
        assert p.t_deliver - p.t_send == 1.0

    def test_wraparound_path(self):
        engine, net = make_net(4)
        net.start()
        engine.run(until=5)
        p = pkt(src=3, dst=1, created=engine.now)
        net.enqueue(p)
        engine.run(until=20)
        assert p.delivered
        assert p.t_deliver - p.t_send == 2.0  # 3->0->1

    def test_unknown_source_rejected(self):
        engine, net = make_net(3)
        with pytest.raises(KeyError):
            net.enqueue(pkt(src=9, dst=1))

    def test_metrics_account_delivery(self):
        engine, net = make_net(4)
        net.start()
        engine.run(until=5)
        net.enqueue(pkt(src=0, dst=2, service=ServiceClass.PREMIUM,
                        created=engine.now))
        net.enqueue(pkt(src=1, dst=3, service=ServiceClass.BEST_EFFORT,
                        created=engine.now))
        engine.run(until=30)
        assert net.metrics.delivered[ServiceClass.PREMIUM] == 1
        assert net.metrics.delivered[ServiceClass.BEST_EFFORT] == 1
        assert net.metrics.total_delivered == 2
        assert net.metrics.e2e_delay[ServiceClass.PREMIUM].count == 1

    def test_deadline_met_tracked(self):
        engine, net = make_net(4)
        net.start()
        engine.run(until=5)
        p = pkt(src=0, dst=1, created=engine.now, deadline=engine.now + 50)
        net.enqueue(p)
        engine.run(until=60)
        assert net.metrics.deadlines.met == 1
        assert net.metrics.deadlines.missed == 0

    def test_concurrent_transmissions_same_slot(self):
        """CDMA concurrency: all stations can transmit in the same slot."""
        engine, net = make_net(6, l=1, k=0)
        net.start()
        engine.run(until=10)
        t0 = engine.now
        packets = [pkt(src=i, dst=(i + 1) % 6, created=t0) for i in range(6)]
        for p in packets:
            net.enqueue(p)
        engine.run(until=t0 + 3)
        # every station had RT quota: all six went out in the same slot
        assert all(p.t_send == packets[0].t_send for p in packets)
        assert all(p.delivered for p in packets)

    def test_transit_priority_over_own_traffic(self):
        """Buffer insertion: transit forwards before own insertions."""
        engine, net = make_net(5, l=5, k=0)
        net.start()
        engine.run(until=10)
        t0 = engine.now
        # station 0 sends through 1; 1 also wants to send its own
        through = pkt(src=0, dst=2, created=t0)
        own = pkt(src=1, dst=2, created=t0)
        net.enqueue(through)
        net.enqueue(own)
        engine.run(until=t0 + 10)
        assert through.delivered and own.delivered
        # both go out in the same slot (CDMA concurrency); 'through' then
        # needs one transit forwarding at station 1
        assert through.t_send == own.t_send
        assert own.t_deliver == own.t_send + 1
        assert through.t_deliver == through.t_send + 2


class TestQuotaEnforcement:
    def test_station_sends_at_most_l_plus_k_between_releases(self):
        engine, net = make_net(4, l=2, k=1)
        net.start()
        # big backlog at station 0 only
        engine.run(until=4)

        def top(t):
            st = net.stations[0]
            while len(st.rt_queue) < 30:
                st.enqueue(pkt(src=0, dst=2, created=t), t)
            while len(st.be_queue) < 30:
                st.enqueue(pkt(src=0, dst=2,
                               service=ServiceClass.BEST_EFFORT, created=t), t)
        net.add_tick_hook(top)
        engine.run(until=400)
        st = net.stations[0]
        rounds = st.sat_visits
        total_sent = sum(st.sent.values())
        # at most (l + k) per release interval, +1 interval slack
        assert total_sent <= (rounds + 1) * 3

    def test_be_starved_by_rt_priority_within_quota(self):
        engine, net = make_net(3, l=1, k=1)
        net.start()
        engine.run(until=3)
        t0 = engine.now
        st = net.stations[0]
        st.enqueue(pkt(src=0, dst=1, service=ServiceClass.BEST_EFFORT,
                       created=t0), t0)
        st.enqueue(pkt(src=0, dst=1, created=t0), t0)  # premium second
        engine.run(until=t0 + 1)
        # premium transmitted first despite arriving later
        assert st.sent[ServiceClass.PREMIUM] == 1
        assert st.sent[ServiceClass.BEST_EFFORT] == 0


class TestFairness:
    def test_jain_fairness_one_under_rt_saturation(self):
        """The guaranteed (RT) service is perfectly fair: l per round each."""
        from repro.analysis import jain_fairness
        engine, net = make_net(6, l=2, k=2)
        net.start()

        def top(t):
            for sid in net.members:
                st = net.stations[sid]
                while len(st.rt_queue) < 10:
                    st.enqueue(pkt(src=sid, dst=(sid + 2) % 6, created=t), t)
        net.add_tick_hook(top)
        engine.run(until=3000)
        shares = [net.stations[sid].sent[ServiceClass.PREMIUM]
                  for sid in net.members]
        assert jain_fairness(shares) > 0.999

    def test_rt_guarantee_immune_to_be_transit_pressure(self):
        """BE authorizations expire unused under transit pressure (they are
        not guaranteed), but every station still gets its full l per round."""
        engine, net = make_net(6, l=2, k=2)
        net.start()

        def top(t):
            for sid in net.members:
                st = net.stations[sid]
                while len(st.rt_queue) < 10:
                    st.enqueue(pkt(src=sid, dst=(sid + 2) % 6, created=t), t)
                while len(st.be_queue) < 10:
                    st.enqueue(pkt(src=sid, dst=(sid + 3) % 6,
                                   service=ServiceClass.BEST_EFFORT,
                                   created=t), t)
        net.add_tick_hook(top)
        engine.run(until=3000)
        for sid in net.members:
            st = net.stations[sid]
            # at least l RT packets per completed SAT round (minus warm-up)
            assert st.sent[ServiceClass.PREMIUM] >= (st.sat_visits - 2) * 2

    def test_be_fairness_with_asymmetric_rt(self):
        """A station with heavy RT cannot squeeze out others' BE quota."""
        engine, net = make_net(4, l=2, k=2)
        net.start()

        def top(t):
            st0 = net.stations[0]
            while len(st0.rt_queue) < 20:
                st0.enqueue(pkt(src=0, dst=2, created=t), t)
            for sid in (1, 2, 3):
                st = net.stations[sid]
                while len(st.be_queue) < 20:
                    st.enqueue(pkt(src=sid, dst=(sid + 1) % 4,
                                   service=ServiceClass.BEST_EFFORT,
                                   created=t), t)
        net.add_tick_hook(top)
        engine.run(until=2000)
        be_shares = [net.stations[sid].sent[ServiceClass.BEST_EFFORT]
                     for sid in (1, 2, 3)]
        from repro.analysis import jain_fairness
        assert jain_fairness(be_shares) > 0.99
        # and everyone got BE service at all
        assert min(be_shares) > 100


class TestStop:
    def test_stop_halts_ticking(self):
        engine, net = make_net(3)
        net.start()
        engine.run(until=10)
        net.stop()
        rounds = net.sat.rounds
        engine.run(until=50)
        assert net.sat.rounds == rounds
