"""Tests for the perf-trajectory store and regression gate (repro.obs.perf)."""

import json

import pytest

from repro.obs import perf


class TestSuite:
    def test_quick_suite_yields_positive_rates(self):
        results = perf.run_suite(quick=True, repeats=1)
        assert set(results) == set(perf.SUITE)
        assert all(rate > 0 for rate in results.values())

    def test_repeats_keep_best(self, monkeypatch):
        rates = iter([10.0, 30.0, 20.0])
        monkeypatch.setattr(perf, "SUITE",
                            {"fake": lambda quick: next(rates)})
        results = perf.run_suite(quick=True, repeats=3,
                                 progress=lambda line: None)
        assert results["fake"] == 30.0

    def test_bad_repeats_rejected(self):
        with pytest.raises(ValueError):
            perf.run_suite(repeats=0)

    def test_profiler_captures_spans(self, monkeypatch):
        from repro.obs import Profiler
        monkeypatch.setattr(perf, "SUITE", {"fake": lambda quick: 1.0})
        profiler = Profiler()
        perf.run_suite(quick=True, repeats=2, profiler=profiler)
        assert profiler.count("perf.fake") == 2


class TestTrajectoryStore:
    def test_missing_file_is_empty_trajectory(self, tmp_path):
        document = perf.load_trajectory(tmp_path / "nope.json")
        assert document == {"schema": perf.SCHEMA, "records": []}

    def test_append_creates_and_extends(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        record = perf.append_record(path, {"a": 100.0}, quick=True,
                                    note="first")
        assert record["quick"] is True
        assert record["note"] == "first"
        assert record["results"] == {"a": 100.0}
        perf.append_record(path, {"a": 120.0})
        document = perf.load_trajectory(path)
        assert len(document["records"]) == 2
        assert document["schema"] == perf.SCHEMA
        assert "note" not in document["records"][-1]

    def test_bare_list_tolerated(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps([{"results": {"a": 5.0}}]))
        document = perf.load_trajectory(path)
        assert document["records"][0]["results"] == {"a": 5.0}

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"schema": 99, "records": []}))
        with pytest.raises(ValueError):
            perf.load_trajectory(path)

    def test_record_carries_environment(self, tmp_path):
        record = perf.append_record(tmp_path / "t.json", {"a": 1.0})
        assert record["python"] and record["platform"]
        assert "T" in record["timestamp"]


class TestBaselineAndCompare:
    def test_baseline_is_per_bench_median(self):
        document = {"records": [
            {"results": {"a": 100.0, "b": 10.0}},
            {"results": {"a": 300.0, "b": 30.0}},
            {"results": {"a": 200.0}},
        ]}
        baseline = perf.baseline_results(document)
        assert baseline == {"a": 200.0, "b": 20.0}

    def test_exclude_latest(self):
        document = {"records": [{"results": {"a": 100.0}},
                                {"results": {"a": 1.0}}]}
        assert perf.baseline_results(document,
                                     exclude_latest=True) == {"a": 100.0}

    def test_within_threshold_passes(self):
        regressions = perf.compare_results({"a": 100.0}, {"a": 90.0},
                                           threshold=0.15)
        assert regressions == []

    def test_regression_detected(self):
        regressions = perf.compare_results({"a": 100.0}, {"a": 80.0},
                                           threshold=0.15)
        assert len(regressions) == 1
        assert regressions[0].bench == "a"
        assert regressions[0].ratio == pytest.approx(0.8)
        assert "a:" in regressions[0].describe()

    def test_new_and_retired_benches_skipped(self):
        assert perf.compare_results({"old": 100.0}, {"new": 1.0}) == []

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            perf.compare_results({}, {}, threshold=0.0)
        with pytest.raises(ValueError):
            perf.compare_results({}, {}, threshold=1.0)


class TestCheckTrajectory:
    def test_empty_trajectory_is_an_error(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"schema": 1, "records": []}))
        with pytest.raises(ValueError):
            perf.check_trajectory(path)

    def test_single_record_passes_trivially(self, tmp_path):
        path = tmp_path / "t.json"
        perf.append_record(path, {"a": 100.0})
        ok, regressions, info = perf.check_trajectory(path)
        assert ok and regressions == []
        assert info["baseline"] == {}

    def test_steady_rates_pass(self, tmp_path):
        path = tmp_path / "t.json"
        for rate in (100.0, 102.0, 98.0):
            perf.append_record(path, {"a": rate})
        ok, regressions, _ = perf.check_trajectory(path)
        assert ok

    def test_synthetic_2x_slowdown_fails_the_gate(self, tmp_path):
        """Acceptance criterion: a 2x slowdown must trip `perf check`."""
        path = tmp_path / "t.json"
        healthy = {"kernel_step_rate": 1_000_000.0, "ring_tick_rate": 50_000.0}
        for _ in range(3):
            perf.append_record(path, healthy)
        slowed = {k: v / 2.0 for k, v in healthy.items()}
        perf.append_record(path, slowed, note="synthetic 2x slowdown")
        ok, regressions, info = perf.check_trajectory(path)
        assert not ok
        assert {r.bench for r in regressions} == set(healthy)
        assert all(r.ratio == pytest.approx(0.5) for r in regressions)
        assert info["baseline_source"] == "trajectory history"

    def test_explicit_baseline_file(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        perf.append_record(baseline_path, {"a": 100.0})
        path = tmp_path / "t.json"
        perf.append_record(path, {"a": 40.0})
        ok, regressions, info = perf.check_trajectory(
            path, baseline_path=baseline_path)
        assert not ok and regressions[0].baseline == 100.0
        assert info["baseline_source"] == str(baseline_path)


class TestPerfCli:
    def test_run_then_check_round_trip(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        monkeypatch.setattr(perf, "SUITE",
                            {"fake_rate": lambda quick: 500.0})
        path = tmp_path / "BENCH_perf.json"
        rc = main(["perf", "run", "--path", str(path), "--repeats", "1",
                   "--quick", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["results"] == {"fake_rate": 500.0}
        rc = main(["perf", "check", "--path", str(path), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0 and payload["ok"] is True

    def test_check_exits_nonzero_on_regression(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "t.json"
        for _ in range(2):
            perf.append_record(path, {"a": 100.0})
        perf.append_record(path, {"a": 50.0})
        rc = main(["perf", "check", "--path", str(path)])
        captured = capsys.readouterr()
        assert rc == 1
        assert "REGRESSION" in captured.err

    def test_check_threshold_flag(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "t.json"
        perf.append_record(path, {"a": 100.0})
        perf.append_record(path, {"a": 90.0})
        assert main(["perf", "check", "--path", str(path)]) == 0
        capsys.readouterr()
        assert main(["perf", "check", "--path", str(path),
                     "--threshold", "0.05"]) == 1
