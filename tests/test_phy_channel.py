"""Unit tests for the slotted CDMA channel — including the Fig. 1 scenario."""

import numpy as np
import pytest

from repro.phy import BROADCAST_CODE, ConnectivityGraph, Frame, SlottedChannel
from repro.sim import TraceRecorder


def line_graph(coords, radio_range):
    pos = np.array([[x, 0.0] for x in coords])
    return ConnectivityGraph(pos, radio_range)


class TestDelivery:
    def test_unicast_delivery(self):
        g = line_graph([0, 1], 2.0)
        ch = SlottedChannel(g)
        ch.register_listener(1, {7})
        ch.transmit(Frame(src=0, code=7, payload="hello"))
        out = ch.resolve_slot(0.0)
        assert [f.payload for f in out[1]] == ["hello"]
        assert ch.stats.frames_delivered == 1

    def test_out_of_range_not_delivered(self):
        g = line_graph([0, 100], 2.0)
        ch = SlottedChannel(g)
        ch.register_listener(1, {7})
        ch.transmit(Frame(src=0, code=7, payload="x"))
        assert ch.resolve_slot(0.0) == {}

    def test_wrong_code_not_delivered(self):
        g = line_graph([0, 1], 2.0)
        ch = SlottedChannel(g)
        ch.register_listener(1, {7})
        ch.transmit(Frame(src=0, code=8, payload="x"))
        assert ch.resolve_slot(0.0) == {}

    def test_sender_does_not_hear_itself(self):
        g = line_graph([0, 1], 2.0)
        ch = SlottedChannel(g)
        ch.register_listener(0, {5})
        ch.register_listener(1, {5})
        ch.transmit(Frame(src=0, code=5, payload="x"))
        out = ch.resolve_slot(0.0)
        assert 0 not in out and 1 in out

    def test_broadcast_reaches_all_in_range(self):
        g = line_graph([0, 1, 2, 50], 2.5)
        ch = SlottedChannel(g)
        for s in range(4):
            ch.register_listener(s, {BROADCAST_CODE})
        ch.transmit(ch.broadcast_frame(src=1, payload="announce"))
        out = ch.resolve_slot(0.0)
        assert set(out) == {0, 2}  # station 3 out of range, 1 is sender

    def test_slot_clears_after_resolve(self):
        g = line_graph([0, 1], 2.0)
        ch = SlottedChannel(g)
        ch.register_listener(1, {0})
        ch.transmit(Frame(src=0, code=0, payload="a"))
        ch.resolve_slot(0.0)
        assert ch.pending_count() == 0
        assert ch.resolve_slot(1.0) == {}

    def test_non_frame_rejected(self):
        ch = SlottedChannel(line_graph([0, 1], 2.0))
        with pytest.raises(TypeError):
            ch.transmit("not a frame")

    def test_listener_registration_replaces(self):
        g = line_graph([0, 1], 2.0)
        ch = SlottedChannel(g)
        ch.register_listener(1, {1, 2})
        ch.register_listener(1, {3})
        assert ch.listen_codes(1) == {3}
        ch.add_listen_code(1, 4)
        assert ch.listen_codes(1) == {3, 4}
        ch.remove_listener(1)
        assert ch.listen_codes(1) == set()

    def test_unknown_station_in_graph_skipped(self):
        g = line_graph([0, 1], 2.0)
        ch = SlottedChannel(g)
        ch.register_listener(99, {0})   # listener not in graph
        ch.transmit(Frame(src=0, code=0, payload="x"))
        assert ch.resolve_slot(0.0) == {}


class TestFig1Scenario:
    """Fig. 1: A->B and C->D transmit simultaneously.

    With receiver-oriented CDMA (distinct codes) both deliveries succeed;
    with a shared code, B (in range of both A and C) receives nothing.
    """

    def setup_method(self):
        # A=0, B=1, C=2, D=3 in a line, range covers 2 units
        self.g = line_graph([0, 1, 2, 3], 1.5)

    def test_with_cdma_no_collision(self):
        ch = SlottedChannel(self.g)
        ch.register_listener(1, {101})  # B's code
        ch.register_listener(3, {103})  # D's code
        ch.transmit(Frame(src=0, code=101, payload="A->B"))
        ch.transmit(Frame(src=2, code=103, payload="C->D"))
        out = ch.resolve_slot(0.0)
        assert [f.payload for f in out[1]] == ["A->B"]
        assert [f.payload for f in out[3]] == ["C->D"]
        assert ch.stats.collisions == 0

    def test_without_cdma_collision_at_b(self):
        ch = SlottedChannel(self.g)
        shared = 55
        ch.register_listener(1, {shared})
        ch.register_listener(3, {shared})
        ch.transmit(Frame(src=0, code=shared, payload="A->B"))
        ch.transmit(Frame(src=2, code=shared, payload="C->D"))
        out = ch.resolve_slot(0.0)
        # B hears both A and C on the same code -> collision, receives nothing
        assert 1 not in out
        # D hears only C (A out of range) -> still delivered
        assert [f.payload for f in out[3]] == ["C->D"]
        assert ch.stats.collisions == 1
        rec = ch.collisions[0]
        assert rec.receiver == 1 and rec.senders == (0, 2)

    def test_collision_traced(self):
        tr = TraceRecorder()
        ch = SlottedChannel(self.g, trace=tr)
        ch.register_listener(1, {9})
        ch.transmit(Frame(src=0, code=9, payload="p"))
        ch.transmit(Frame(src=2, code=9, payload="q"))
        ch.resolve_slot(4.0)
        assert tr.count("phy.collision") == 1
        assert tr.last("phy.collision")["receiver"] == 1


class TestDynamicGraph:
    def test_graph_provider_called_per_slot(self):
        graphs = [line_graph([0, 1], 2.0), line_graph([0, 100], 2.0)]
        calls = []

        def provider():
            g = graphs[min(len(calls), 1)]
            calls.append(1)
            return g

        ch = SlottedChannel(provider)
        ch.register_listener(1, {0})
        ch.transmit(Frame(src=0, code=0, payload="near"))
        assert 1 in ch.resolve_slot(0.0)
        ch.transmit(Frame(src=0, code=0, payload="far"))
        assert ch.resolve_slot(1.0) == {}  # stations moved apart

    def test_three_senders_same_code_is_one_collision_record(self):
        g = line_graph([0, 1, 2, 3], 10.0)
        ch = SlottedChannel(g)
        ch.register_listener(0, {7})
        for s in (1, 2, 3):
            ch.transmit(Frame(src=s, code=7, payload=s))
        out = ch.resolve_slot(0.0)
        assert 0 not in out
        assert ch.stats.collisions == 1
        assert ch.collisions[0].senders == (1, 2, 3)
