"""Tests for the sharded multi-ring fabric (topology, sync, determinism).

The load-bearing contract: serial, process-per-ring and paused/resumed
executions of the same topology are *byte-identical* — same merged trace
hash, same tables, same summaries — because rings only interact at
gateway buffers drained in canonical order at absolute barrier ticks.
"""

import json

import pytest

from repro.core.packet import ServiceClass
from repro.fabric import (CrossFlow, FabricFrame, FabricRunner, GatewayLink,
                          RingShard, Topology, export_merged_timeline,
                          load_topology, merged_trace_lines, run_fabric_point,
                          save_topology, topology_from_dict, topology_to_dict)


def small_topology(**kwargs) -> Topology:
    defaults = dict(rings=4, ring_size=8, layout="chain", cross_flows=6,
                    flow_period=50.0, flow_deadline=400.0,
                    horizon=600.0, seed=7)
    defaults.update(kwargs)
    return Topology(**defaults)


def run_fabric(topo, mode="serial", segments=None, **kwargs):
    with FabricRunner(topo, mode=mode, **kwargs) as runner:
        for until in (segments or [None]):
            runner.run(until=until)
        return runner.result(include_trace=True)


# ----------------------------------------------------------------------
class TestTopology:
    def test_chain_links(self):
        topo = Topology(rings=4, layout="chain")
        assert [l.key() for l in topo.resolved_links()] == \
            [(0, 1), (1, 2), (2, 3)]

    def test_cycle_links(self):
        topo = Topology(rings=4, layout="cycle")
        assert [l.key() for l in topo.resolved_links()] == \
            [(0, 1), (1, 2), (2, 3), (0, 3)]

    def test_cycle_of_two_collapses_to_chain(self):
        assert len(Topology(rings=2, layout="cycle").resolved_links()) == 1

    def test_star_links(self):
        topo = Topology(rings=5, layout="star")
        assert [l.key() for l in topo.resolved_links()] == \
            [(0, r) for r in range(1, 5)]

    def test_spread_placement_separates_gateways(self):
        topo = Topology(rings=5, ring_size=8, layout="star",
                        gateway_placement="spread")
        hub_stations = [l.endpoint(0) for l in topo.resolved_links()]
        assert len(set(hub_stations)) == len(hub_stations)

    def test_first_placement_uses_station_zero(self):
        topo = Topology(rings=3, gateway_placement="first")
        for link in topo.resolved_links():
            assert link.station_a == 0 and link.station_b == 0

    def test_route_is_shortest_path(self):
        topo = Topology(rings=6, layout="cycle")
        assert topo.route(0, 2) == (0, 1, 2)
        assert topo.route(0, 4) == (0, 5, 4)     # around the back
        assert topo.route(3, 3) == (3,)

    def test_route_unreachable_raises(self):
        topo = Topology(rings=4, links=[GatewayLink(0, 0, 1, 0)],
                        flows=[])
        with pytest.raises(ValueError):
            topo.route(0, 3)

    def test_generated_flows_respect_min_hops(self):
        topo = Topology(rings=6, layout="chain", cross_flows=12,
                        min_ring_hops=3, seed=3)
        for flow in topo.resolved_flows():
            assert len(topo.route(flow.src_ring, flow.dst_ring)) - 1 >= 3

    def test_generated_flows_deterministic(self):
        a = Topology(rings=4, cross_flows=8, seed=9).resolved_flows()
        b = Topology(rings=4, cross_flows=8, seed=9).resolved_flows()
        assert a == b
        c = Topology(rings=4, cross_flows=8, seed=10).resolved_flows()
        assert a != c

    def test_validation(self):
        with pytest.raises(ValueError):
            Topology(rings=1)
        with pytest.raises(ValueError):
            Topology(layout="mesh")
        with pytest.raises(ValueError):
            Topology(gateway_buffer=0)
        with pytest.raises(ValueError):
            GatewayLink(2, 0, 2, 1)
        with pytest.raises(ValueError):
            CrossFlow(src_ring=1, src_station=0, dst_ring=1, dst_station=2)

    def test_dict_round_trip(self):
        topo = small_topology(frame_ttl=300.0, sync_window=64.0,
                              flow_service=ServiceClass.ASSURED)
        data = json.loads(json.dumps(topology_to_dict(topo)))
        assert topology_to_dict(topology_from_dict(data)) == \
            topology_to_dict(topo)

    def test_explicit_links_and_flows_round_trip(self):
        topo = Topology(
            rings=3, ring_size=6,
            links=[GatewayLink(0, 1, 1, 4), GatewayLink(1, 2, 2, 0)],
            flows=[CrossFlow(src_ring=0, src_station=3, dst_ring=2,
                             dst_station=5, deadline=250.0)])
        rebuilt = topology_from_dict(topology_to_dict(topo))
        assert rebuilt.resolved_links() == topo.resolved_links()
        assert rebuilt.resolved_flows() == topo.resolved_flows()

    def test_save_load(self, tmp_path):
        topo = small_topology()
        path = tmp_path / "topo.json"
        save_topology(topo, path)
        assert topology_to_dict(load_topology(path)) == topology_to_dict(topo)

    def test_unknown_topology_key_rejected(self):
        data = topology_to_dict(small_topology())
        data["topology"]["wormholes"] = 3
        with pytest.raises(ValueError):
            topology_from_dict(data)


class TestFabricFrame:
    def test_round_trip(self):
        frame = FabricFrame(flow=2, seq=5, src_ring=0, src_station=1,
                            dst_ring=2, dst_station=3,
                            service=ServiceClass.PREMIUM, created=10.0,
                            deadline=110.0, route=(0, 1, 2), hop=1,
                            hop_log=[[0, 10.0, 14.0]])
        assert FabricFrame.from_dict(frame.to_dict()) == frame

    def test_key_orders_canonically(self):
        frames = [FabricFrame(flow=f, seq=s, src_ring=0, src_station=0,
                              dst_ring=1, dst_station=1,
                              service=ServiceClass.PREMIUM, created=0.0,
                              deadline=None, route=(0, 1))
                  for f, s in [(1, 0), (0, 1), (0, 0)]]
        assert sorted(f.key() for f in frames) == \
            [(0, 0, 0), (0, 1, 0), (1, 0, 0)]


# ----------------------------------------------------------------------
class TestFabricDeterminism:
    """ISSUE acceptance: sharded and serial modes produce byte-identical
    merged traces and tables, and resumed runs replay the same barriers."""

    def test_serial_vs_sharded_byte_identical(self):
        topo = small_topology()
        serial = run_fabric(topo, "serial")
        sharded = run_fabric(topo, "sharded")
        assert serial.trace_hash() == sharded.trace_hash()
        assert merged_trace_lines(serial) == merged_trace_lines(sharded)
        assert serial.ring_table() == sharded.ring_table()
        assert serial.flow_table() == sharded.flow_table()
        assert dict(serial.summary(), mode="") == \
            dict(sharded.summary(), mode="")

    def test_resumed_runs_replay_identical_barriers(self):
        topo = small_topology()
        whole = run_fabric(topo, "serial")
        # split at points that are NOT barrier multiples
        for cuts in ([250.0, 600.0], [100.0, 333.0, 600.0]):
            resumed = run_fabric(topo, "serial", segments=cuts)
            assert resumed.trace_hash() == whole.trace_hash()
            assert resumed.summary() == whole.summary()

    def test_resumed_sharded_matches_serial(self):
        topo = small_topology()
        whole = run_fabric(topo, "serial")
        resumed = run_fabric(topo, "sharded", segments=[313.0, 600.0])
        assert resumed.trace_hash() == whole.trace_hash()
        assert resumed.ring_table() == whole.ring_table()

    def test_trace_records_are_pid_free(self):
        result = run_fabric(small_topology(), "serial")
        for line in merged_trace_lines(result):
            record = json.loads(line)
            assert "pid" not in record["fields"]

    def test_explicit_sync_window_respected(self):
        topo = small_topology(sync_window=32.0)
        serial = run_fabric(topo, "serial")
        sharded = run_fabric(topo, "sharded")
        assert serial.trace_hash() == sharded.trace_hash()

    def test_frame_conservation(self):
        for topo in (small_topology(),
                     small_topology(gateway_buffer=1),
                     small_topology(frame_ttl=10.0)):
            s = run_fabric(topo, "serial").summary()
            assert s["frames_created"] == (s["frames_completed"]
                                           + s["frames_dropped"]
                                           + s["frames_in_flight"])


# ----------------------------------------------------------------------
class TestThreeRingFlow:
    """End-to-end regression: one explicit flow crossing 3 rings, with the
    per-hop latency ledger checked leg by leg."""

    def topo(self) -> Topology:
        return Topology(
            rings=3, ring_size=8, layout="chain",
            gateway_placement="spread",
            flows=[CrossFlow(src_ring=0, src_station=2, dst_ring=2,
                             dst_station=5, kind="cbr", period=100.0,
                             service=ServiceClass.PREMIUM, deadline=500.0)],
            horizon=800.0, seed=1)

    def test_flow_crosses_three_rings(self):
        result = run_fabric(self.topo(), "serial")
        completions = result.completions()
        assert completions, "no frame crossed the 3-ring fabric"
        for flow, seq, t, delay, miss, hop_log in completions:
            assert flow == 0
            # one leg per ring of the route, in route order
            assert [leg[0] for leg in hop_log] == [0, 1, 2]
            for ring, t_enter, t_exit in hop_log:
                assert t_exit >= t_enter
            # legs are causally ordered: each starts at/after the previous
            for prev, nxt in zip(hop_log, hop_log[1:]):
                assert nxt[1] >= prev[2]
            # the ledger ties the ends together: first entry is creation,
            # last exit is the completion instant
            assert hop_log[0][1] == pytest.approx(t - delay)
            assert hop_log[-1][2] == pytest.approx(t)
            # per-hop transit + gateway buffering accounts for the delay
            transit = sum(leg[2] - leg[1] for leg in hop_log)
            assert transit <= delay + 1e-9

    def test_gateway_hops_counted(self):
        result = run_fabric(self.topo(), "serial")
        s = result.summary()
        # every completed frame crossed exactly 2 gateways
        assert s["gw_forwards"] >= 2 * s["frames_completed"]
        assert s["ring_lost"] == 0

    def test_sharded_identical(self):
        topo = self.topo()
        assert run_fabric(topo, "serial").trace_hash() == \
            run_fabric(topo, "sharded").trace_hash()


# ----------------------------------------------------------------------
class TestGatewayPolicies:
    def test_tiny_buffer_overflows(self):
        topo = small_topology(gateway_buffer=1, cross_flows=8,
                              flow_period=10.0)
        s = run_fabric(topo, "serial").summary()
        assert s["gw_drops"]["overflow"] > 0

    def test_ttl_ages_out_buffered_frames(self):
        # TTL far below the sync window: every frame that waits a full
        # window for its barrier is aged out at the exchange
        topo = small_topology(frame_ttl=1.0)
        s = run_fabric(topo, "serial").summary()
        assert s["gw_drops"]["ttl"] > 0

    def test_drops_are_deterministic_across_modes(self):
        topo = small_topology(gateway_buffer=1, cross_flows=8,
                              flow_period=10.0)
        assert run_fabric(topo, "serial").summary() == \
            dict(run_fabric(topo, "sharded").summary(), mode="serial")


# ----------------------------------------------------------------------
class TestObsRollup:
    def test_merged_trace_lines_sorted(self):
        result = run_fabric(small_topology(), "serial")
        lines = merged_trace_lines(result)
        keys = [(json.loads(l)["t"], json.loads(l)["ring"]) for l in lines]
        assert keys == sorted(keys)

    def test_merged_timeline_one_pid_per_ring(self, tmp_path):
        result = run_fabric(small_topology(), "serial")
        path = tmp_path / "timeline.json"
        count = export_merged_timeline(path, result)
        assert count > 0
        doc = json.loads(path.read_text())
        pids = {ev["pid"] for ev in doc["traceEvents"]}
        assert pids == {r + 1 for r in range(result.topology.rings)}

    def test_merged_metrics_aggregate(self):
        result = run_fabric(small_topology(), "serial", observe=True)
        merged = result.merged_metrics()
        per_ring = result.per_ring_metrics()
        assert len(per_ring) == result.topology.rings
        total = sum(sum(snap.get("ring.delivered", {}).values())
                    for snap in per_ring.values())
        assert sum(merged["ring.delivered"].values()) == total

    def test_trace_off_mode_still_parity(self):
        topo = small_topology()
        serial = run_fabric(topo, "serial", trace=False)
        sharded = run_fabric(topo, "sharded", trace=False)
        assert serial.summary() == dict(sharded.summary(), mode="serial")
        for report in serial.reports:
            assert report["trace_len"] == 0


# ----------------------------------------------------------------------
class TestFabricSweep:
    def test_topology_axes(self):
        from repro.campaign import CampaignRunner, Sweep

        topo = small_topology(horizon=200.0, cross_flows=2)
        sweep = Sweep(topology=topo,
                      axes={"topology.rings": [2, 3]}, seed=4)
        points = sweep.expand()
        assert [p.scenario_dict["topology"]["rings"] for p in points] == [2, 3]
        result = CampaignRunner(sweep, store=None, workers=0,
                                progress=lambda *a, **k: None).run()
        assert result.ok
        assert [r["summary"]["rings"] for r in result.records] == [2, 3]

    def test_sweep_round_trip(self):
        from repro.campaign import Sweep, sweep_from_dict, sweep_to_dict

        sweep = Sweep(topology=small_topology(),
                      axes={"topology.cross_flows": [2, 4]}, seed=2)
        rebuilt = sweep_from_dict(json.loads(json.dumps(sweep_to_dict(sweep))))
        assert [p.key for p in rebuilt.expand()] == \
            [p.key for p in sweep.expand()]

    def test_fabric_point_rejects_scenario_accessor(self):
        from repro.campaign import Sweep

        sweep = Sweep(topology=small_topology(),
                      axes={"topology.rings": [2]})
        with pytest.raises(ValueError):
            sweep.expand()[0].scenario()

    def test_run_fabric_point_record_shape(self):
        record = run_fabric_point(
            topology_to_dict(small_topology(horizon=150.0, cross_flows=2)))
        assert set(record) == {"scenario", "summary", "elapsed",
                               "events_executed"}
        assert record["summary"]["rings"] == 4


# ----------------------------------------------------------------------
class TestRunnerLifecycle:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            FabricRunner(small_topology(), mode="quantum")

    def test_close_is_idempotent(self):
        runner = FabricRunner(small_topology(), mode="sharded")
        runner.run(until=50.0)
        runner.close()
        runner.close()

    def test_run_into_the_past_rejected(self):
        with FabricRunner(small_topology(), mode="serial") as runner:
            runner.run(until=100.0)
            with pytest.raises(ValueError):
                runner.run(until=50.0)

    def test_shard_station_count(self):
        shard = RingShard(small_topology(), 1, trace=False)
        assert shard.net.n == 8
        assert set(shard.links) == {0, 2}
