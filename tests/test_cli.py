"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.n == 8 and args.traffic == "poisson"

    def test_bounds_requires_params(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bounds"])


class TestBoundsCommand:
    def test_values_match_library(self, capsys):
        rc = main(["bounds", "--n", "8", "--l", "2", "--k", "1",
                   "--t-rap", "9", "--backlog", "4", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        from repro.analysis import (access_delay_bound,
                                    sat_rotation_bound_homogeneous)
        assert payload["theorem1_sat_time"] == \
            sat_rotation_bound_homogeneous(8, 2, 1, T_rap=9)
        assert payload["theorem3_access_x4"] == \
            access_delay_bound(4, 2, 8, 9, [(2, 1)] * 8)

    def test_plain_output(self, capsys):
        main(["bounds", "--n", "4", "--l", "1", "--k", "1"])
        out = capsys.readouterr().out
        assert "theorem1_sat_time" in out
        assert "proposition3_mean" in out


class TestSimulateCommand:
    def test_basic_simulation(self, capsys):
        rc = main(["simulate", "--n", "6", "--horizon", "2000", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["delivered"] > 0
        assert payload["bound_holds"]

    def test_with_faults(self, capsys):
        rc = main(["simulate", "--n", "6", "--horizon", "3000",
                   "--kill", "2:500", "--leave", "4:1500",
                   "--check-invariants", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert 2 not in payload["members"]
        assert 4 not in payload["members"]
        assert payload["invariants_clean"]

    def test_be_deadline_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--service", "be", "--deadline", "100"])

    def test_bad_fault_entry_rejected(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--kill", "2"])

    def test_mobility_flag(self, capsys):
        rc = main(["simulate", "--n", "6", "--horizon", "1500",
                   "--wander", "1.0", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "delivered" in payload

    def test_json_summary_echoes_resolved_config(self, capsys):
        rc = main(["simulate", "--n", "6", "--l", "2", "--k", "1",
                   "--seed", "9", "--horizon", "1500",
                   "--traffic", "poisson", "--rate", "0.03", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        config = payload["config"]
        assert config["n"] == 6 and config["l"] == 2 and config["k"] == 1
        assert config["seed"] == 9 and config["horizon"] == 1500.0
        assert config["traffic"]["kind"] == "poisson"
        assert config["traffic"]["rate"] == 0.03

    def test_summary_carries_profiling_figures(self, capsys):
        rc = main(["simulate", "--n", "6", "--horizon", "1000", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["elapsed_s"] > 0
        assert payload["events_per_s"] > 0

    def test_timeline_flag_exports_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "timeline.json"
        rc = main(["simulate", "--n", "6", "--horizon", "1000", "--rap",
                   "--timeline", str(out), "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["timeline"]["path"] == str(out)
        document = json.loads(out.read_text())
        events = document["traceEvents"]
        non_meta = [e for e in events if e.get("ph") != "M"]
        assert payload["timeline"]["events"] == len(non_meta) > 0
        cats = {e.get("cat") for e in non_meta}
        assert "sat" in cats and "slots" in cats

    def test_metrics_flag_embeds_registry_snapshot(self, capsys):
        rc = main(["simulate", "--n", "6", "--horizon", "1000",
                   "--metrics", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        delivered = sum(payload["metrics"]["ring.delivered"].values())
        assert delivered == payload["delivered"] > 0

    def test_no_metrics_flag_no_snapshot(self, capsys):
        rc = main(["simulate", "--n", "4", "--horizon", "300", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" not in payload


class TestSweepCommand:
    def _run(self, tmp_path, capsys, extra=()):
        rc = main(["sweep", "--axis", "n=4,6", "--axis", "l=1,2",
                   "--horizon", "400", "--workers", "0",
                   "--store", str(tmp_path / "store"), *extra])
        captured = capsys.readouterr()
        return rc, captured.out, captured.err

    def test_grid_sweep_runs_and_tabulates(self, tmp_path, capsys):
        rc, out, err = self._run(tmp_path, capsys)
        assert rc == 0
        lines = out.splitlines()
        assert lines[0].startswith("=== sweep")
        assert "4 points" in lines[0]
        assert lines[1].split()[:2] == ["n", "l"]
        assert len(lines) == 2 + 4          # title + header + 4 rows
        assert "0 cached, 4 ran" in err

    def test_rerun_hits_cache_and_table_is_identical(self, tmp_path, capsys):
        _, cold, _ = self._run(tmp_path, capsys)
        rc, warm, err = self._run(tmp_path, capsys)
        assert rc == 0
        assert warm == cold                 # byte-identical aggregation
        assert "4 cached, 0 ran" in err
        assert err.count("cached ") == 4    # per-point cache hits logged

    def test_json_records(self, tmp_path, capsys):
        rc, out, _ = self._run(tmp_path, capsys, extra=["--json"])
        assert rc == 0
        records = json.loads(out)
        assert len(records) == 4
        assert all("summary" in r and "scenario" in r for r in records)

    def test_custom_columns(self, tmp_path, capsys):
        rc, out, _ = self._run(tmp_path, capsys,
                               extra=["--columns", "n,delivered,config.seed"])
        assert rc == 0
        header = out.splitlines()[1].split()
        assert header == ["n", "delivered", "config.seed"]

    def test_sweep_config_file(self, tmp_path, capsys):
        spec = {"base": {"horizon": 400.0},
                "mode": "zip",
                "axes": {"n": [4, 6], "l": [1, 2]},
                "name": "filecfg"}
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(spec))
        rc = main(["sweep", "--config", str(path), "--workers", "0",
                   "--store", str(tmp_path / "store")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sweep filecfg: 2 points" in out

    def test_axes_required_without_config(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "--store", str(tmp_path / "s")])

    def test_bad_axis_entry_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "--axis", "n", "--store", str(tmp_path / "s")])

    def test_failed_point_sets_exit_code(self, tmp_path, capsys):
        rc = main(["sweep", "--axis", "n=1,4", "--horizon", "200",
                   "--workers", "0", "--retries", "0",
                   "--store", str(tmp_path / "store")])
        assert rc == 1
        err = capsys.readouterr().err
        assert "FAILED" in err


class TestCompareCommand:
    def test_compare_shapes(self, capsys):
        rc = main(["compare", "--n", "6", "--quota", "2",
                   "--horizon", "3000", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["idle_round_trip_wrt"] < payload["idle_round_trip_tpt"]
        assert (payload["capacity_wrt_pkt_per_slot"]
                > payload["capacity_tpt_pkt_per_slot"])
        assert (payload["failure_repair_wrt_slots"]
                < payload["failure_repair_tpt_slots"])
        # the contention comparator trails both deterministic MACs and
        # reports its collision fraction
        assert (payload["capacity_csma_pkt_per_slot"]
                < payload["capacity_tpt_pkt_per_slot"])
        assert 0 < payload["csma_collision_fraction"] < 1


class TestAllocateCommand:
    def test_feasible_allocation(self, capsys):
        rc = main(["allocate", "--demands", "0.02:500:2,0.05:400:3,0.01:-:0",
                   "--scheme", "local", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["feasible"]
        assert len(payload["l"]) == 3

    def test_infeasible_returns_nonzero(self, capsys):
        rc = main(["allocate", "--demands", "0.9:10:50,0.9:10:50"])
        assert rc == 1

    def test_bad_demand_entry(self):
        with pytest.raises(SystemExit):
            main(["allocate", "--demands", "0.5:100"])
