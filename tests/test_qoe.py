"""QoE subsystem: E-model scoring, call lifecycle, and capacity search."""

import json

import pytest

from repro.events import EventBus
from repro.events.types import PacketLost, SlotDeliver
from repro.faults import FaultEvent, FaultSchedule
from repro.qoe.capacity import (CAPACITY_SPEC, measure_fraction,
                                voice_capacity)
from repro.qoe.score import (G711_BPL, PerceptualScorer, burst_ratio,
                             e_model_r, loss_runs, mos_from_r, score_outcomes)
from repro.qoe.sessions import RAP_CALLER_BASE, CallsSpec
from repro.scenarios import MobilitySpec, Scenario, TrafficMix, run_scenario
from repro.traffic.flows import FlowSpec
from repro.core.packet import ServiceClass


# ----------------------------------------------------------------------
# the pure E-model pipeline
# ----------------------------------------------------------------------
class TestEModelMath:
    def test_loss_runs(self):
        assert loss_runs([]) == []
        assert loss_runs([True, True, True]) == []
        assert loss_runs([True, False, False, True, False]) == [2, 1]
        assert loss_runs([False, False]) == [2]

    def test_burst_ratio_no_loss(self):
        assert burst_ratio([]) == 1.0
        assert burst_ratio([True] * 10) == 1.0

    def test_burst_ratio_all_lost(self):
        assert burst_ratio([False] * 7) == 7.0

    def test_burst_ratio_clustered_exceeds_spread(self):
        spread = ([True] * 4 + [False]) * 4          # 4 isolated losses
        clustered = [True] * 16 + [False] * 4        # one burst of 4
        assert burst_ratio(clustered) > burst_ratio(spread)
        # sparse independent loss clamps at 1: never *rewards* loss
        assert burst_ratio(spread) >= 1.0

    def test_r_factor_clean_line(self):
        assert e_model_r(0.0) == pytest.approx(93.2)

    def test_r_factor_monotone_in_loss(self):
        rs = [e_model_r(pct) for pct in (0.0, 1.0, 5.0, 20.0)]
        assert rs == sorted(rs, reverse=True)

    def test_r_factor_delay_knee(self):
        # below the 177.3 ms knee only the linear term applies
        assert e_model_r(0.0, delay_ms=100.0) == pytest.approx(93.2 - 2.4)
        # above it the second slope kicks in
        above = e_model_r(0.0, delay_ms=200.0)
        assert above == pytest.approx(93.2 - 0.024 * 200
                                      - 0.11 * (200 - 177.3))

    def test_r_factor_validation(self):
        with pytest.raises(ValueError):
            e_model_r(-1.0)
        with pytest.raises(ValueError):
            e_model_r(5.0, burst_r=0.0)

    def test_mos_mapping(self):
        assert mos_from_r(-5.0) == 1.0
        assert mos_from_r(0.0) == 1.0
        assert mos_from_r(100.0) == 4.5
        assert mos_from_r(93.2) == pytest.approx(4.409, abs=1e-3)
        assert mos_from_r(70.0) < mos_from_r(80.0) < mos_from_r(90.0)

    def test_score_outcomes(self):
        loss_pct, r, mos = score_outcomes([True] * 9 + [False])
        assert loss_pct == pytest.approx(10.0)
        assert r < 93.2 and 1.0 <= mos <= 4.5
        assert score_outcomes([])[0] == 0.0


# ----------------------------------------------------------------------
# the streaming scorer (driven through a real bus)
# ----------------------------------------------------------------------
def _scorer_rig():
    bus = EventBus()
    scorer = PerceptualScorer().attach(bus)
    deliver = bus.emitter(SlotDeliver)
    lose = bus.emitter(PacketLost)
    return scorer, deliver, lose


class TestPerceptualScorer:
    def test_classification_and_censoring(self):
        scorer, deliver, lose = _scorer_rig()
        flow = FlowSpec(src=0, dst=1, service=ServiceClass.PREMIUM,
                        deadline=50.0)
        scorer.register_flow(flow.flow_id)
        pkts = [flow.make_packet(t) for t in (0.0, 10.0, 20.0, 30.0, 40.0)]
        deliver(20.0, 1, pkts[0])            # on time (deadline 50)
        deliver(70.0, 1, pkts[1])            # late (deadline 60)
        pkts[1].t_deliver = 70.0
        lose(75.0, pkts[2], "kill", 0, 1)    # destroyed
        # pkts[3] unresolved, deadline 80 < now  -> lost
        # pkts[4] unresolved, deadline 90 >= now -> censored
        score = scorer.finalize_flow(flow.flow_id, pkts, now=85.0)
        assert (score.sent, score.delivered, score.late,
                score.lost, score.censored) == (4, 1, 1, 2, 1)
        assert score.loss_pct == pytest.approx(75.0)
        assert score.mos < 3.5

    def test_unresolved_without_clock_is_censored(self):
        scorer, _deliver, _lose = _scorer_rig()
        flow = FlowSpec(src=0, dst=1, service=ServiceClass.PREMIUM,
                        deadline=50.0)
        scorer.register_flow(flow.flow_id)
        pkts = [flow.make_packet(t) for t in (0.0, 10.0)]
        score = scorer.finalize_flow(flow.flow_id, pkts)
        assert score.sent == 0 and score.censored == 2
        assert score.loss_pct == 0.0

    def test_finalize_is_idempotent(self):
        scorer, deliver, _lose = _scorer_rig()
        flow = FlowSpec(src=0, dst=1, service=ServiceClass.PREMIUM,
                        deadline=50.0)
        scorer.register_flow(flow.flow_id)
        pkt = flow.make_packet(0.0)
        deliver(5.0, 1, pkt)
        first = scorer.finalize_flow(flow.flow_id, [pkt], now=100.0)
        assert scorer.finalize_flow(flow.flow_id, [pkt], now=100.0) is first

    def test_unregistered_flow_raises(self):
        scorer, _deliver, _lose = _scorer_rig()
        with pytest.raises(KeyError):
            scorer.finalize_flow(12345, [])

    def test_mean_delay_counts_ontime_only(self):
        scorer, deliver, _lose = _scorer_rig()
        flow = FlowSpec(src=0, dst=1, service=ServiceClass.PREMIUM,
                        deadline=50.0)
        scorer.register_flow(flow.flow_id)
        pkts = [flow.make_packet(t) for t in (0.0, 10.0)]
        deliver(30.0, 1, pkts[0])     # delay 30, on time
        deliver(90.0, 1, pkts[1])     # late — excluded from mean delay
        pkts[1].t_deliver = 90.0
        score = scorer.finalize_flow(flow.flow_id, pkts, now=100.0)
        assert score.mean_delay_slots == pytest.approx(30.0)


# ----------------------------------------------------------------------
# CallsSpec serialization and validation
# ----------------------------------------------------------------------
class TestCallsSpec:
    def test_to_dict_is_minimal(self):
        assert CallsSpec(count=5).to_dict() == {"count": 5}

    def test_round_trip(self):
        spec = CallsSpec(count=12, arrival_rate=0.02, deadline=300.0,
                         video_fraction=0.25, admission=False,
                         join_via_rap=True)
        assert CallsSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown calls keys"):
            CallsSpec.from_dict({"count": 3, "frobnicate": 1})

    def test_validation(self):
        with pytest.raises(ValueError):
            CallsSpec(count=0)
        with pytest.raises(ValueError):
            CallsSpec(service="carrier_pigeon")
        with pytest.raises(ValueError):
            CallsSpec(video_fraction=1.5)
        with pytest.raises(ValueError):
            CallsSpec(deadline=0.0)

    def test_derived_rates(self):
        spec = CallsSpec(packet_period=20.0, mean_talkspurt=350.0,
                         mean_silence=650.0)
        assert spec.peak_rate == pytest.approx(0.05)
        assert spec.mean_rate == pytest.approx(0.05 * 0.35)


# ----------------------------------------------------------------------
# call lifecycle over a live ring
# ----------------------------------------------------------------------
class TestSessionLifecycle:
    def test_calls_admitted_and_scored(self):
        scn = Scenario(n=8, traffic=TrafficMix(kind="none"),
                       calls=CallsSpec(count=6, arrival_rate=0.01,
                                       mean_holding=600.0),
                       horizon=4000.0, seed=3)
        result = run_scenario(scn)
        summary = result.summary()["calls"]
        assert summary["offered"] == 6
        assert summary["admitted"] + summary["refused"] == 6
        assert summary["admitted"] >= 1
        scored = [c for c in summary["calls"] if "mos" in c]
        assert scored, "no call carried traffic"
        for call in scored:
            assert 1.0 <= call["mos"] <= 4.5
            assert call["directions"]

    def test_summary_is_deterministic(self):
        scn = Scenario(n=8, traffic=TrafficMix(kind="none"),
                       calls=CallsSpec(count=4, arrival_rate=0.01,
                                       mean_holding=500.0),
                       horizon=3000.0, seed=9)
        a = json.dumps(run_scenario(scn).summary(), sort_keys=True)
        b = json.dumps(run_scenario(scn).summary(), sort_keys=True)
        assert a == b

    def test_cac_refuses_unachievable_deadline(self):
        # a 150-slot budget can never be met on a big slow ring, so the
        # Theorem-3 gate refuses every call before any source exists
        scn = Scenario(n=40, l=1, k=1, traffic=TrafficMix(kind="none"),
                       calls=CallsSpec(count=3, arrival_rate=0.01,
                                       deadline=60.0),
                       horizon=2000.0, seed=5)
        result = run_scenario(scn)
        for call in result.sessions.calls:
            assert call.state == "refused"
            assert call.refusal_reason == "deadline_unachievable"
            assert not call.sources
            assert call.flows          # ids exist for the silence oracle

    def test_kill_cuts_active_calls(self):
        scn = Scenario(n=6, traffic=TrafficMix(kind="none"),
                       calls=CallsSpec(count=8, arrival_rate=0.05,
                                       mean_holding=5000.0),
                       faults=FaultSchedule([
                           FaultEvent(time=1000.0, kind="kill", station=1),
                           FaultEvent(time=1200.0, kind="kill", station=4)]),
                       horizon=3000.0, seed=2)
        result = run_scenario(scn)
        counts = result.sessions.counts()
        assert counts["cut"] >= 1
        cut = [c for c in result.sessions.calls if c.state == "cut"]
        for call in cut:
            assert call.cut_station in (1, 4, -1)
            for src in call.sources:
                assert src.stop is not None and src.stop <= 1200.0

    def test_rap_joined_callers_enter_ring(self):
        scn = Scenario(n=6, rap_enabled=True, use_channel=True,
                       traffic=TrafficMix(kind="none"),
                       calls=CallsSpec(count=3, arrival_rate=0.005,
                                       mean_holding=1500.0,
                                       join_via_rap=True),
                       horizon=6000.0, seed=4)
        result = run_scenario(scn)
        counts = result.sessions.counts()
        assert counts["active"] + counts["ended"] >= 1
        assert result.network.join_manager.joins_completed >= 1
        # a caller may only still be a member while its call is active
        active_srcs = {c.src for c in result.sessions.calls
                       if c.state == "active"}
        for sid in result.network.members:
            if sid >= RAP_CALLER_BASE:
                assert sid in active_srcs, \
                    f"caller {sid} lingers on the ring after its call"

    def test_rap_callers_leave_after_call(self):
        # regression: completed callers used to stay on the ring forever,
        # growing it by one station per call (and skewing every rotation
        # bound computed from the membership)
        scn = Scenario(n=6, rap_enabled=True, use_channel=True,
                       traffic=TrafficMix(kind="none"),
                       calls=CallsSpec(count=3, arrival_rate=0.01,
                                       mean_holding=400.0,
                                       join_via_rap=True),
                       horizon=8000.0, seed=4)
        result = run_scenario(scn)
        counts = result.sessions.counts()
        assert counts["ended"] >= 1, "no call completed; test is vacuous"
        assert counts["active"] == 0
        assert result.network.join_manager.joins_completed >= 1
        # every joined caller announced a graceful leave after teardown:
        # the ring is back to its pre-call membership
        assert sorted(result.network.members) == list(range(6))

    def test_join_via_rap_requires_channel_and_rap(self):
        base = dict(n=6, traffic=TrafficMix(kind="none"),
                    calls=CallsSpec(count=2, join_via_rap=True),
                    horizon=500.0, seed=1)
        with pytest.raises(ValueError, match="use_channel"):
            run_scenario(Scenario(rap_enabled=True, **base))
        with pytest.raises(ValueError, match="rap_enabled"):
            run_scenario(Scenario(use_channel=True, **base))

    def test_video_sessions(self):
        scn = Scenario(n=8, traffic=TrafficMix(kind="none"),
                       calls=CallsSpec(count=4, arrival_rate=0.01,
                                       mean_holding=800.0, admission=False,
                                       video_fraction=1.0, deadline=400.0),
                       horizon=4000.0, seed=6)
        result = run_scenario(scn)
        kinds = {c.kind for c in result.sessions.calls}
        assert kinds == {"video"}
        active = [c for c in result.sessions.calls
                  if c.state in ("active", "ended")]
        assert active
        for call in active:
            assert len(call.flows) == 1     # video is unidirectional


# ----------------------------------------------------------------------
# roaming caller: a call rides out ring re-formations
# ----------------------------------------------------------------------
class TestRoamingCaller:
    def test_voice_call_survives_ring_rebuilds(self):
        """A voice call whose endpoints survive two full ring re-formations
        (adjacent double-kills mid-call, wandering stations throughout) must
        stay active — `_on_rebuild_done` only cuts calls that lost an
        endpoint — and the horizon-clipped tail packet must be censored,
        not scored as lost.  Previously this regime was exercised only by
        fuzzing (see docs/QOE.md)."""
        # adjacent double-kills defeat the single-station SAT_REC cut-out
        # and force the Sec. 2.5 re-formation; range_margin=5 keeps the
        # survivor ring radio-feasible after each gap opens up
        faults = FaultSchedule([
            FaultEvent(time=1500.0, kind="kill", station=3),
            FaultEvent(time=1500.0, kind="kill", station=4),
            FaultEvent(time=3200.0, kind="kill", station=6),
            FaultEvent(time=3200.0, kind="kill", station=7),
        ])
        # seed 7 pins the call to 0 <-> 9 (disjoint from every kill) and
        # the 5989.0 horizon lands one slot after the call's last packet
        # enqueue, clipping it mid-flight with its deadline still open
        scn = Scenario(n=10, range_margin=5.0,
                       traffic=TrafficMix(kind="none"),
                       mobility=MobilitySpec(wander_radius=3.0),
                       calls=CallsSpec(count=1, arrival_rate=0.05,
                                       mean_holding=30000.0),
                       faults=faults, horizon=5989.0, seed=7)
        result = run_scenario(scn)
        net = result.network
        call = result.sessions.calls[0]
        assert (call.src, call.dst) == (0, 9)

        # both re-formations happened and the endpoints rode them out
        assert net.recovery.ring_rebuilds == 2
        assert not net.network_down
        for killed in (3, 4, 6, 7):
            assert killed not in net.order
        assert call.src in net.order and call.dst in net.order
        assert call.state == "active"
        assert call.cut_station is None

        # censoring semantics: the clipped tail packet is excluded from
        # the score instead of counted against the loss rate
        result.sessions.finalize()
        fwd, rev = call.scores
        assert fwd.censored == 1
        assert rev.censored == 0
        for score in (fwd, rev):
            assert score.sent == score.delivered + score.late + score.lost
        assert call.mos is not None and 1.0 <= call.mos <= 4.5


# ----------------------------------------------------------------------
# capacity search
# ----------------------------------------------------------------------
class TestCapacity:
    def test_single_call_is_acceptable(self):
        frac = measure_fraction("wrt", calls=1, stations=8, horizon=1500.0,
                                seed=1)
        assert frac == 1.0

    def test_search_self_consistent(self):
        res = voice_capacity("wrt", stations=8, horizon=1500.0, seed=1,
                             max_calls=4)
        assert res.capacity >= 1
        assert res.probes[res.capacity] >= res.target
        above = [m for m in res.probes if m > res.capacity]
        if above:
            assert res.probes[min(above)] < res.target

    def test_baseline_probe_runs(self):
        frac = measure_fraction("csma", calls=1, stations=6, horizon=1200.0,
                                seed=1)
        assert 0.0 <= frac <= 1.0

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            measure_fraction("aloha", calls=1)

    def test_capacity_spec_pins_steady_load(self):
        # the probe spec must hold calls up for the whole run (capacity is
        # a steady-state measurement, not churn) and skip CAC
        assert CAPACITY_SPEC.mean_holding >= 1e5
        assert not CAPACITY_SPEC.admission
