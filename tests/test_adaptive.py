"""Adaptive SAT timers: the RFC 6298 estimator, its safety rails, and the
plumbing that threads it through recovery, joins, config and the CLI."""

import json
import random

import pytest

from repro.config_io import scenario_from_dict, scenario_to_dict
from repro.core import QuotaConfig, WRTRingConfig, WRTRingNetwork
from repro.core.adaptive import RttEstimator
from repro.core.join import JoinOutcome, JoinRequester
from repro.scenarios import Scenario, TrafficMix, run_scenario
from repro.sim import Engine


def make_net(n=6, adaptive=True, **cfg_kwargs):
    engine = Engine()
    cfg_kwargs.setdefault("rap_enabled", False)
    cfg = WRTRingConfig.homogeneous(range(n), l=2, k=1, **cfg_kwargs)
    net = WRTRingNetwork(engine, list(range(n)), cfg,
                         adaptive_timers=adaptive)
    return engine, net


# ----------------------------------------------------------------------
class TestRttEstimator:
    def test_first_sample_seeds_rfc_state(self):
        est = RttEstimator()
        est.observe(10.0)
        assert est.srtt == 10.0
        assert est.rttvar == 5.0
        assert est.samples == 1

    def test_smoothing_uses_rfc_constants(self):
        est = RttEstimator()
        est.observe(10.0)
        est.observe(18.0)
        # RTTVAR = 0.75*5 + 0.25*|10-18|, then SRTT = 0.875*10 + 0.125*18
        assert est.rttvar == pytest.approx(0.75 * 5.0 + 0.25 * 8.0)
        assert est.srtt == pytest.approx(0.875 * 10.0 + 0.125 * 18.0)

    def test_rejects_nonpositive_samples(self):
        est = RttEstimator()
        with pytest.raises(ValueError):
            est.observe(0.0)
        with pytest.raises(ValueError):
            est.observe(-3.0)

    def test_no_samples_returns_ceiling(self):
        est = RttEstimator()
        assert est.rto(123.0) == 123.0
        assert est.rto(123.0, allowance=50.0) == 123.0

    def test_ceiling_never_exceeded(self):
        est = RttEstimator()
        est.observe(100.0)
        for _ in range(5):
            est.on_timeout()
        assert est.rto(40.0) == 40.0
        assert est.rto(40.0, allowance=1000.0) == 40.0

    def test_floor_at_observed_max(self):
        est = RttEstimator()
        # converge on small rotations, then one large sample: the timeout
        # may never fall below a rotation that demonstrably happened
        est.observe(60.0)
        for _ in range(200):
            est.observe(8.0)
        assert est.max_sample == 60.0
        assert est.rto(1000.0) >= 60.0 + est.G

    def test_variance_floor_keeps_burst_headroom(self):
        est = RttEstimator()
        # long convergence on a constant rotation drives RTTVAR to ~0;
        # the deviation floor at SRTT keeps rto >= SAFETY * 2 * SRTT so a
        # legitimate load burst stretching one rotation is not a failure
        for _ in range(500):
            est.observe(10.0)
        assert est.rttvar < 0.1
        assert est.rto(1000.0) >= est.SAFETY * 2.0 * est.srtt

    def test_allowance_is_additive(self):
        est = RttEstimator()
        for _ in range(50):
            est.observe(10.0)
        base = est.rto(1000.0)
        assert est.rto(1000.0, allowance=15.0) == pytest.approx(base + 15.0)

    def test_backoff_doubles_and_caps(self):
        est = RttEstimator()
        est.observe(10.0)
        base = est.rto(1000.0)
        est.on_timeout()
        assert est.rto(1000.0) == pytest.approx(2.0 * base)
        for _ in range(20):
            est.on_timeout()
        assert est.backoff == est.MAX_BACKOFF

    def test_valid_sample_resets_backoff(self):
        est = RttEstimator()
        est.observe(10.0)
        est.on_timeout()
        est.on_timeout()
        assert est.backoff == 4.0
        est.observe(11.0)
        assert est.backoff == 1.0

    def test_exclude_counts_without_touching_estimate(self):
        est = RttEstimator()
        est.observe(10.0)
        srtt, rttvar = est.srtt, est.rttvar
        est.exclude()
        est.exclude()
        assert est.excluded == 2
        assert (est.srtt, est.rttvar) == (srtt, rttvar)


# ----------------------------------------------------------------------
class TestRecoveryIntegration:
    def test_adaptive_arms_below_ceiling_after_convergence(self):
        engine, net = make_net(8)
        net.start()
        engine.run(until=500)
        bound = net.sat_time_bound()
        rec = net.recovery
        assert rec.adaptive
        assert rec.estimators  # rotations were sampled
        armed = {sid: rec._last_armed[sid] for sid in net.order}
        assert all(v <= bound for v in armed.values())
        assert any(v < bound for v in armed.values()), \
            "estimator never tightened any timer below the Theorem-1 bound"

    def test_fixed_mode_untouched(self):
        engine, net = make_net(8, adaptive=False)
        net.start()
        engine.run(until=500)
        assert not net.recovery.adaptive
        assert not net.recovery.estimators

    def test_no_false_triggers_on_clean_ring(self):
        engine, net = make_net(8)
        net.start()
        engine.run(until=5000)
        assert net.recovery.false_triggers == 0
        assert not net.recovery.records

    def test_estimator_state_survives_cutout(self):
        engine, net = make_net(7)
        net.start()
        engine.run(until=200)
        rec = net.recovery
        survivor = 0
        samples_before = rec.estimators[survivor].samples
        assert samples_before > 0
        net.kill_station(3)
        engine.run(until=600)
        assert 3 not in net.members
        assert 3 not in rec.estimators, "dead station's estimator not pruned"
        # the tentpole: surviving estimators are NOT reset to worst case
        assert rec.estimators[survivor].samples > samples_before

    def test_recovery_walk_arms_at_ceiling(self):
        """While an episode is active the fixed bound applies (the SAT_REC
        walk gets the full SAT_TIME the paper grants it)."""
        engine, net = make_net(6)
        net.start()
        engine.run(until=300)
        rec = net.recovery
        assert rec._bound_for(0) < net.sat_time_bound()
        rec.active = rec.records_sentinel = object.__new__(
            __import__("repro.core.recovery", fromlist=["RecoveryRecord"])
            .RecoveryRecord)
        assert rec._bound_for(0) == net.sat_time_bound()
        rec.active = None

    def test_restart_timer_arms_missing_timer(self):
        """Regression: restart_timer on a station with no timer yet (e.g.
        just joined) must arm one, not silently no-op."""
        engine, net = make_net(6, adaptive=False)
        net.start()
        engine.run(until=50)
        rec = net.recovery
        timer = rec.timers.pop(2)
        timer.stop()
        rec.restart_timer(2)
        assert 2 in rec.timers
        assert rec.timers[2].deadline is not None

    def test_adapted_events_traced(self):
        scn = Scenario(n=8, adaptive_timers=True, horizon=600, seed=4,
                       traffic=TrafficMix(kind="poisson", rate=0.05))
        result = run_scenario(scn)
        assert result.trace.count("timer.adapted") > 0
        # and the summary carries the adaptive observables
        summary = result.summary()
        assert summary["false_sat_recs"] == 0
        assert "timer_samples_excluded" in summary

    def test_default_summary_shape_unchanged(self):
        scn = Scenario(n=8, horizon=600, seed=4,
                       traffic=TrafficMix(kind="poisson", rate=0.05))
        summary = run_scenario(scn).summary()
        assert "false_sat_recs" not in summary
        assert "timer_samples_excluded" not in summary


# ----------------------------------------------------------------------
class TestJoinBackoff:
    def test_window_sequence_is_capped_exponential(self):
        est = RttEstimator()
        windows = []
        for _ in range(6):
            est.on_timeout()
            windows.append(min(int(est.backoff) // 2,
                               JoinRequester.BACKOFF_CAP))
        assert windows == [1, 2, 4, 8, 8, 8]

    def _lossy_ack_scenario(self, adaptive, max_attempts):
        import numpy as np

        from repro.core.join import JoinRequest
        from repro.phy import ConnectivityGraph, SlottedChannel, ring_placement

        n = 6
        pos = ring_placement(n, radius=30.0)
        pos = np.vstack([pos, [[0.0, 0.0]]])   # requester at the centre
        ids = list(range(n)) + [100]
        graph = ConnectivityGraph(pos, radio_range=100.0, node_ids=ids)
        engine = Engine()
        cfg = WRTRingConfig.homogeneous(range(n), l=2, k=1, rap_enabled=True,
                                        t_ear=6, t_update=3)
        channel = SlottedChannel(graph)
        net = WRTRingNetwork(engine, list(range(n)), cfg, graph=graph,
                             channel=channel, adaptive_timers=adaptive)
        req = JoinRequester(net, 100, QuotaConfig.two_class(1, 1),
                            max_attempts=max_attempts)
        # swallow every JOIN_REQ on the channel: the ingress never hears
        # it, no ACK ever comes, and every attempt times out
        orig = channel.transmit

        def drop_join_reqs(frame):
            if isinstance(frame.payload, JoinRequest):
                return
            orig(frame)

        channel.transmit = drop_join_reqs
        return engine, net, req

    @pytest.mark.parametrize("adaptive", [False, True])
    def test_gave_up_fires_after_max_attempts(self, adaptive):
        engine, net, req = self._lossy_ack_scenario(adaptive, max_attempts=3)
        net.start()
        engine.run(until=6000)
        assert req.state is JoinOutcome.GAVE_UP
        assert req.attempts == 3

    def test_adaptive_give_up_deadline_bounded(self):
        """The backoff cap bounds the give-up deadline: with rng=None the
        skip windows are exactly min(2**(k-1), CAP), so GAVE_UP must land
        within a computable number of RAP openings (uncapped exponential
        windows would blow well past it)."""
        attempts = 6
        engine, net, req = self._lossy_ack_scenario(True,
                                                    max_attempts=attempts)
        net.start()
        while engine.now < 40_000 and req.state is not JoinOutcome.GAVE_UP:
            engine.run(until=engine.now + 10)
        assert req.state is JoinOutcome.GAVE_UP
        assert req.attempts == attempts
        n = 6
        warmup = n + 2                      # hearing a full NEXT_FREE cycle
        skips = sum(min(2 ** (k - 1), JoinRequester.BACKOFF_CAP)
                    for k in range(1, attempts))
        in_flight_slack = attempts + 6      # raps opened while awaiting acks
        budget = warmup + attempts + skips + in_flight_slack
        assert net.join_manager.raps_opened <= budget, \
            (net.join_manager.raps_opened, budget)

    def test_adaptive_join_still_succeeds_on_clean_channel(self):
        import numpy as np

        from repro.phy import ConnectivityGraph, SlottedChannel, ring_placement

        n = 6
        pos = ring_placement(n, radius=30.0)
        pos = np.vstack([pos, [[0.0, 0.0]]])
        ids = list(range(n)) + [100]
        graph = ConnectivityGraph(pos, radio_range=100.0, node_ids=ids)
        engine = Engine()
        cfg = WRTRingConfig.homogeneous(range(n), l=2, k=1, rap_enabled=True,
                                        t_ear=6, t_update=3)
        net = WRTRingNetwork(engine, list(range(n)), cfg, graph=graph,
                             channel=SlottedChannel(graph),
                             adaptive_timers=True)
        req = JoinRequester(net, 100, QuotaConfig.two_class(1, 1),
                            rng=random.Random(0))
        net.start()
        engine.run(until=4000)
        assert req.state is JoinOutcome.JOINED
        # the new member is watched: its timer was armed on first contact
        assert 100 in net.recovery.timers


# ----------------------------------------------------------------------
class TestConfigAndCli:
    def test_scenario_roundtrip(self):
        scn = Scenario(n=6, adaptive_timers=True, horizon=500, seed=1)
        data = json.loads(json.dumps(scenario_to_dict(scn)))
        assert data["adaptive_timers"] is True
        assert scenario_from_dict(data).adaptive_timers is True

    def test_default_dict_shape_unchanged(self):
        scn = Scenario(n=6, horizon=500, seed=1)
        assert "adaptive_timers" not in scenario_to_dict(scn)
        assert scenario_from_dict(scenario_to_dict(scn)).adaptive_timers \
            is False

    def test_cli_flag(self, tmp_path, capsys):
        from repro.cli import main
        rc = main(["simulate", "--n", "6", "--horizon", "300",
                   "--adaptive-timers", "--json"])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["false_sat_recs"] == 0

    def test_sweep_axis(self):
        from repro.campaign.sweep import Sweep
        sweep = Sweep(base=Scenario(n=6, horizon=400, seed=2),
                      axes={"adaptive_timers": [False, True]}, seed=9)
        points = sweep.expand()
        flags = [pt.scenario().adaptive_timers for pt in points]
        assert flags == [False, True]

    def test_fabric_base_carries_flag(self):
        from dataclasses import replace as dc_replace

        from repro.fabric import (FabricRunner, Topology, topology_from_dict,
                                  topology_to_dict)
        topo = Topology(rings=2, ring_size=6, layout="chain", cross_flows=1,
                        horizon=300.0, seed=3)
        topo = dc_replace(topo, base=dc_replace(topo.base,
                                                adaptive_timers=True))
        data = topology_to_dict(topo)
        assert data["adaptive_timers"] is True
        assert topology_from_dict(data).base.adaptive_timers is True
        # and the shards actually run with adaptive recovery managers
        with FabricRunner(topo, mode="serial", trace=False) as runner:
            runner.run()
            for shard in runner._shards:
                assert shard.net.recovery.adaptive

    def test_fuzz_adaptive_flag_forces_cases(self):
        from repro.fuzz.generate import generate_case
        plain = generate_case(42, 0)
        forced = generate_case(42, 0, adaptive=True)
        assert forced.scenario.get("adaptive_timers") is True
        # forcing the flag changes nothing else about the case
        stripped = dict(forced.scenario)
        stripped.pop("adaptive_timers")
        plain_s = dict(plain.scenario)
        plain_s.pop("adaptive_timers", None)
        assert stripped == plain_s
        assert forced.drive == plain.drive
