"""Unit tests for the batched kernel: columns, hop planning, fast-forward
boundaries, and budget/stop interactions.

The differential suite (test_kernel_parity.py) proves whole-run equivalence;
these tests pin the individual mechanisms — so a parity failure elsewhere can
be localized instead of bisected.
"""

import math

import pytest

from repro.core import (Packet, ServiceClass, WRTRingConfig, WRTRingNetwork)
from repro.kernel import (BatchedKernel, ColumnState, hop_plan,
                          install_batched_kernel)
from repro.sim import Engine


def make_net(n=5, l=2, k=2, **cfg_kwargs):
    engine = Engine()
    cfg_kwargs.setdefault("rap_enabled", False)
    cfg = WRTRingConfig.homogeneous(range(n), l=l, k=k, **cfg_kwargs)
    net = WRTRingNetwork(engine, list(range(n)), cfg)
    return engine, net


def make_pair(n=5, l=2, k=2, **cfg_kwargs):
    """Two identical networks: (scalar engine/net, batched engine/net/kernel)."""
    se, sn = make_net(n, l, k, **cfg_kwargs)
    be, bn = make_net(n, l, k, **cfg_kwargs)
    kern = install_batched_kernel(bn)
    return (se, sn), (be, bn, kern)


def pkt(src, dst, service=ServiceClass.PREMIUM, created=0.0, deadline=None):
    return Packet(src=src, dst=dst, service=service, created=created,
                  deadline=deadline)


def snapshot(net):
    """Every protocol-visible scalar of the network, for exact comparison."""
    sat = net.sat
    state = {
        "now": net.engine.now,
        "sat": (sat.kind, sat.at_station, sat.in_flight_to, sat.arrival_time,
                sat.hops, sat.rounds, sat.seq),
        "net_seq": net._sat_seq,
        "hops_per_round": net.rotation_log.hops_per_round(),
    }
    for sid in sorted(net.stations):
        st = net.stations[sid]
        state[sid] = (st.alive, st.sat_visits, st.sat_holds, st.last_sat_seq,
                      st.last_sat_arrival, st.last_sat_departure,
                      st.rt_pck, st.nrt_pck, st.as_pck, st.be_pck,
                      dict(st.sent), dict(st.received),
                      net.rotation_log.samples(sid))
    return state


def timer_deadlines(net):
    return {sid: t.deadline if t.running else None
            for sid, t in net.recovery.timers.items()}


# ======================================================================
class TestHopPlan:
    """hop_plan's closed-form visit counts vs a brute-force walk."""

    @pytest.mark.parametrize("n,i1,K", [
        (1, 0, 1), (1, 0, 7),
        (3, 0, 1), (3, 2, 2), (3, 1, 9),
        (5, 0, 5), (5, 3, 17), (5, 4, 4),
        (16, 7, 1000), (16, 0, 16), (16, 15, 15),
    ])
    def test_matches_brute_force(self, n, i1, K):
        offsets, counts, last_j = hop_plan(n, i1, K)
        brute_counts = [0] * n
        brute_last = [-1] * n
        for j in range(K):
            d = j % n
            brute_counts[d] += 1
            brute_last[d] = j
        assert list(offsets) == list(range(n))
        assert list(counts) == brute_counts
        assert list(last_j) == brute_last

    def test_total_visits_is_k(self):
        _, counts, _ = hop_plan(7, 3, 123)
        assert int(counts.sum()) == 123


# ======================================================================
class TestColumnState:
    def test_round_trip_after_scalar_run(self):
        engine, net = make_net(6)
        net.start()
        net.enqueue(pkt(0, 3))
        engine.run(until=100.0)
        cols = ColumnState(net)
        cols.sync_from_network()
        assert cols.verify_against(net) == []

    def test_verify_catches_corruption(self):
        engine, net = make_net(4)
        net.start()
        engine.run(until=50.0)
        cols = ColumnState(net)
        cols.sync_from_network()
        cols.sat_visits[2] += 1
        mismatches = cols.verify_against(net)
        assert mismatches and any("sat_visits" in m for m in mismatches)


# ======================================================================
class TestInstallation:
    def test_install_after_start_rejected(self):
        engine, net = make_net(4)
        net.start()
        with pytest.raises(RuntimeError):
            install_batched_kernel(net)

    def test_double_install_rejected(self):
        engine, net = make_net(4)
        install_batched_kernel(net)
        with pytest.raises(RuntimeError):
            install_batched_kernel(net)


# ======================================================================
class TestFastForward:
    def test_idle_ring_fast_forwards(self):
        engine, net = make_net(8)
        kern = install_batched_kernel(net)
        net.start()
        engine.run(until=5000.0)
        assert kern.ff_jumps > 0
        assert kern.ff_slots_skipped > 0
        assert engine.now == 5000.0

    def test_idle_parity_with_scalar(self):
        (se, sn), (be, bn, kern) = make_pair(8)
        sn.start(); bn.start()
        se.run(until=5000.0); be.run(until=5000.0)
        assert snapshot(bn) == snapshot(sn)
        assert timer_deadlines(bn) == timer_deadlines(sn)

    def test_multi_slot_hop_parity(self):
        # SAT hop latency > 1 slot: hop times stride the slot grid
        (se, sn), (be, bn, kern) = make_pair(6, sat_hop_slots=3)
        sn.start(); bn.start()
        se.run(until=4000.0); be.run(until=4000.0)
        assert kern.ff_jumps > 0
        assert snapshot(bn) == snapshot(sn)
        assert timer_deadlines(bn) == timer_deadlines(sn)

    def test_jump_never_crosses_pending_event(self):
        # an agenda event mid-gap (a traffic arrival) bounds every jump:
        # the skipped range must end strictly before it
        engine, net = make_net(6)
        kern = install_batched_kernel(net)
        seen = []
        net.start()

        def arrival():
            seen.append(engine.now)
            net.enqueue(pkt(2, 4, created=engine.now))

        engine.schedule_at(777.25, arrival)
        engine.run(until=2000.0)
        assert seen == [777.25]
        delivered = net.stations[4].received[ServiceClass.PREMIUM]
        assert delivered == 1
        assert kern.buffered == 0
        assert engine.now == 2000.0

    def test_mid_gap_enqueue_parity(self):
        (se, sn), (be, bn, kern) = make_pair(6)
        for eng, net in ((se, sn), (be, bn)):
            net.start()
            eng.schedule_at(
                777.25,
                lambda n=net, e=eng: n.enqueue(pkt(2, 4, created=e.now)))
            eng.run(until=2000.0)
        assert snapshot(bn) == snapshot(sn)

    def test_fractional_until_clamps_identically(self):
        (se, sn), (be, bn, kern) = make_pair(8)
        sn.start(); bn.start()
        se.run(until=1234.5); be.run(until=1234.5)
        assert se.now == be.now == 1234.5
        assert snapshot(bn) == snapshot(sn)

    def test_resume_across_run_chunks(self):
        # state must survive run() returning and being called again —
        # the pending tick left behind by a jump is where scalar would be
        (se, sn), (be, bn, kern) = make_pair(6)
        sn.start(); bn.start()
        for upto in (300.0, 301.0, 950.5, 2000.0):
            se.run(until=upto); be.run(until=upto)
            assert snapshot(bn) == snapshot(sn), f"diverged at until={upto}"

    def test_saturated_ring_never_fast_forwards(self):
        engine, net = make_net(4, l=1, k=1)
        kern = install_batched_kernel(net)
        net.start()
        for sid in range(4):
            for _ in range(3):
                net.enqueue(pkt(sid, (sid + 1) % 4,
                                service=ServiceClass.BEST_EFFORT))
        engine.run(until=5.0)
        assert kern.ff_jumps == 0


# ======================================================================
def metrics_state(net):
    """Sample-order-exact view of the delay/deadline metrics."""
    mt = net.metrics
    from repro.core.diffserv import COLUMN_CLASSES
    return {
        "transmitted": dict(mt.transmitted),
        "delivered": dict(mt.delivered),
        "access": [list(mt.access_delay[c].samples) for c in COLUMN_CLASSES],
        "e2e": [list(mt.e2e_delay[c].samples) for c in COLUMN_CLASSES],
        "deadlines": (mt.deadlines.met, mt.deadlines.missed,
                      list(mt.deadlines.miss_lateness)),
    }


def prefill_successor(net, rt=0, be=0, deadline=None):
    for sid in net.members:
        dst = net.successor(sid)
        for _ in range(rt):
            net.enqueue(pkt(sid, dst, deadline=deadline))
        for _ in range(be):
            net.enqueue(pkt(sid, dst, service=ServiceClass.BEST_EFFORT))


class TestSaturatedWindow:
    """The vectorized saturated path in trace-off bulk mode: whole SAT
    windows advanced analytically, byte-identical to the scalar kernel.
    (Replay mode — every tracing run — is pinned by the parity grid's
    saturated scenarios, seeds 23-25.)"""

    def test_bulk_window_matches_scalar(self):
        (se, sn), (be, bn, kern) = make_pair(6, l=2, k=1)
        sn.start(); bn.start()
        prefill_successor(sn, rt=40, be=20)
        prefill_successor(bn, rt=40, be=20)
        se.run(until=600.0); be.run(until=600.0)
        assert kern.sat_windows > 0
        assert kern.sat_slots > 100
        assert snapshot(bn) == snapshot(sn)
        assert metrics_state(bn) == metrics_state(sn)

    def test_deadline_classification_matches_scalar(self):
        # tight deadlines so the analytic window classifies misses
        (se, sn), (be, bn, kern) = make_pair(6, l=1, k=1)
        sn.start(); bn.start()
        prefill_successor(sn, rt=30, deadline=40.0)
        prefill_successor(bn, rt=30, deadline=40.0)
        se.run(until=400.0); be.run(until=400.0)
        assert kern.sat_windows > 0
        assert snapshot(bn) == snapshot(sn)
        state = metrics_state(bn)
        assert state == metrics_state(sn)
        assert state["deadlines"][1] > 0, "no misses; test is vacuous"

    def test_nonsuccessor_traffic_keeps_gate_closed(self):
        engine, net = make_net(6, l=2, k=1)
        kern = install_batched_kernel(net)
        net.start()
        prefill_successor(net, rt=10)
        # one two-hop packet: transit forwarding breaks the all-successor
        # precondition, so the analytic window must never engage
        net.enqueue(pkt(0, 2))
        engine.run(until=300.0)
        assert kern.sat_windows == 0

    def test_drained_ring_hands_back_to_fast_forward(self):
        # after the backlog drains, the quiescent fast-forward takes over
        engine, net = make_net(6, l=2, k=1)
        kern = install_batched_kernel(net)
        net.start()
        prefill_successor(net, rt=5, be=3)
        engine.run(until=2000.0)
        assert kern.sat_windows > 0
        assert kern.ff_jumps > 0
        assert net.metrics.total_delivered == 6 * 8


# ======================================================================
class TestBudgetAndStop:
    def test_max_events_budget_matches_scalar_clock(self):
        # budgeted runs must fall back to slot-at-a-time so chunk
        # boundaries land exactly where the scalar driver puts them
        (se, sn), (be, bn, kern) = make_pair(5)
        sn.start(); bn.start()
        for _ in range(40):
            se.run(until=10_000.0, max_events=7)
            be.run(until=10_000.0, max_events=7)
            assert be.now == se.now
        assert snapshot(bn) == snapshot(sn)

    def test_budget_then_unbudgeted_resume(self):
        (se, sn), (be, bn, kern) = make_pair(5)
        sn.start(); bn.start()
        se.run(until=10_000.0, max_events=13)
        be.run(until=10_000.0, max_events=13)
        se.run(until=800.0); be.run(until=800.0)
        assert be.now == se.now == 800.0
        assert snapshot(bn) == snapshot(sn)

    def test_stop_mid_run_leaves_consistent_clock(self):
        (se, sn), (be, bn, kern) = make_pair(5)
        sn.start(); bn.start()
        se.schedule_at(97.5, se.stop)
        be.schedule_at(97.5, be.stop)
        se.run(until=5000.0); be.run(until=5000.0)
        assert be.now == se.now
        assert snapshot(bn) == snapshot(sn)
        # and both resume cleanly after the stop
        se.run(until=500.0); be.run(until=500.0)
        assert snapshot(bn) == snapshot(sn)

    def test_jump_clock_is_exact_after_ff(self):
        engine, net = make_net(8)
        kern = install_batched_kernel(net)
        net.start()
        engine.run(until=3000.0)
        assert kern.ff_jumps > 0
        assert float(engine.now).is_integer() or engine.now == 3000.0
        assert engine.now == 3000.0
        # the SAT's bookkeeping is still on the hop lattice
        assert net.sat.arrival_time == math.floor(net.sat.arrival_time)
