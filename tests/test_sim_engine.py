"""Unit tests for the event-loop engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Engine, SchedulingError, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        hits = []
        eng.schedule(5.0, hits.append, "late")
        eng.schedule(2.0, hits.append, "early")
        eng.schedule(3.5, hits.append, "mid")
        eng.run()
        assert hits == ["early", "mid", "late"]

    def test_same_time_fires_in_schedule_order(self):
        eng = Engine()
        hits = []
        for i in range(10):
            eng.schedule(1.0, hits.append, i)
        eng.run()
        assert hits == list(range(10))

    def test_priority_breaks_simultaneous_ties(self):
        eng = Engine()
        hits = []
        eng.schedule(1.0, hits.append, "normal", priority=0)
        eng.schedule(1.0, hits.append, "urgent", priority=-1)
        eng.run()
        assert hits == ["urgent", "normal"]

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SchedulingError):
            eng.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        eng = Engine()
        eng.schedule(5.0, lambda: None)
        eng.run()
        assert eng.now == 5.0
        with pytest.raises(SchedulingError):
            eng.schedule_at(4.0, lambda: None)

    def test_non_callable_rejected(self):
        eng = Engine()
        with pytest.raises(SchedulingError):
            eng.schedule(1.0, "not callable")

    def test_zero_delay_fires_at_current_time(self):
        eng = Engine()
        times = []
        eng.schedule(3.0, lambda: eng.schedule(0.0, lambda: times.append(eng.now)))
        eng.run()
        assert times == [3.0]

    def test_callback_args_passed_through(self):
        eng = Engine()
        got = []
        eng.schedule(1.0, lambda a, b, c: got.append((a, b, c)), 1, "x", None)
        eng.run()
        assert got == [(1, "x", None)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        hits = []
        h = eng.schedule(1.0, hits.append, "no")
        eng.schedule(2.0, hits.append, "yes")
        h.cancel()
        eng.run()
        assert hits == ["yes"]

    def test_cancel_is_idempotent(self):
        eng = Engine()
        h = eng.schedule(1.0, lambda: None)
        h.cancel()
        h.cancel()
        eng.run()

    def test_cancel_from_within_earlier_event(self):
        eng = Engine()
        hits = []
        victim = eng.schedule(2.0, hits.append, "victim")
        eng.schedule(1.0, victim.cancel)
        eng.run()
        assert hits == []

    def test_peek_skips_cancelled(self):
        eng = Engine()
        h = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        h.cancel()
        assert eng.peek() == 2.0


class TestRun:
    def test_run_until_advances_clock_even_without_events(self):
        eng = Engine()
        eng.run(until=100.0)
        assert eng.now == 100.0

    def test_run_until_leaves_future_events_pending(self):
        eng = Engine()
        hits = []
        eng.schedule(5.0, hits.append, "in")
        eng.schedule(15.0, hits.append, "out")
        eng.run(until=10.0)
        assert hits == ["in"]
        assert eng.now == 10.0
        eng.run()
        assert hits == ["in", "out"]

    def test_run_until_boundary_event_fires(self):
        eng = Engine()
        hits = []
        eng.schedule(10.0, hits.append, "edge")
        eng.run(until=10.0)
        assert hits == ["edge"]

    def test_run_until_past_rejected(self):
        eng = Engine()
        eng.schedule(5.0, lambda: None)
        eng.run()
        with pytest.raises(SchedulingError):
            eng.run(until=1.0)

    def test_max_events(self):
        eng = Engine()
        hits = []
        for i in range(10):
            eng.schedule(float(i + 1), hits.append, i)
        eng.run(max_events=3)
        assert hits == [0, 1, 2]

    def test_max_events_with_until_does_not_warp_clock(self):
        # regression: run(until=..., max_events=...) used to advance `now`
        # to `until` even when the event cap broke the loop early, stranding
        # the remaining agenda events in the past
        eng = Engine()
        hits = []
        for i in range(5):
            eng.schedule(float(i + 1), hits.append, i)
        eng.run(until=100.0, max_events=2)
        assert hits == [0, 1]
        assert eng.now == 2.0
        assert eng.peek() == 3.0

    def test_resume_after_max_events_break_reaches_until(self):
        eng = Engine()
        hits = []
        for i in range(5):
            eng.schedule(float(i + 1), hits.append, i)
        eng.run(until=100.0, max_events=2)
        eng.run(until=100.0)
        assert hits == [0, 1, 2, 3, 4]
        assert eng.now == 100.0

    def test_stop_with_until_does_not_warp_clock(self):
        eng = Engine()
        hits = []
        eng.schedule(1.0, hits.append, "a")
        eng.schedule(2.0, eng.stop)
        eng.schedule(3.0, hits.append, "b")
        eng.run(until=100.0)
        assert hits == ["a"]
        assert eng.now == 2.0

    def test_until_still_advances_clock_when_agenda_drains(self):
        eng = Engine()
        eng.schedule(5.0, lambda: None)
        eng.run(until=10.0, max_events=50)
        assert eng.now == 10.0

    def test_stop_halts_run(self):
        eng = Engine()
        hits = []
        eng.schedule(1.0, hits.append, "a")
        eng.schedule(2.0, eng.stop)
        eng.schedule(3.0, hits.append, "b")
        eng.run()
        assert hits == ["a"]
        eng.run()
        assert hits == ["a", "b"]

    def test_reentrant_run_rejected(self):
        eng = Engine()

        def reenter():
            with pytest.raises(SimulationError):
                eng.run()

        eng.schedule(1.0, reenter)
        eng.run()

    def test_step_returns_false_when_empty(self):
        eng = Engine()
        assert eng.step() is False

    def test_step_executes_exactly_one(self):
        eng = Engine()
        hits = []
        eng.schedule(1.0, hits.append, 1)
        eng.schedule(2.0, hits.append, 2)
        assert eng.step() is True
        assert hits == [1]

    def test_events_executed_counter(self):
        eng = Engine()
        for i in range(7):
            eng.schedule(float(i), lambda: None)
        eng.run()
        assert eng.events_executed == 7

    def test_events_scheduled_during_run_fire(self):
        eng = Engine()
        hits = []

        def cascade(depth):
            hits.append(depth)
            if depth < 5:
                eng.schedule(1.0, cascade, depth + 1)

        eng.schedule(0.0, cascade, 0)
        eng.run()
        assert hits == list(range(6))
        assert eng.now == 5.0

    def test_pending_count(self):
        eng = Engine()
        h = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        assert eng.pending_count() == 2
        h.cancel()
        assert eng.pending_count() == 1


class TestAgendaHygiene:
    """Cancelled tombstones must not distort introspection or linger."""

    def test_mass_cancellation_compacts_the_heap(self):
        # regression: cancelled EventHandles lingered in the heap forever —
        # 10k dead entries still occupied the agenda after cancellation
        eng = Engine()
        handles = [eng.schedule(float(i + 1), lambda: None)
                   for i in range(10_000)]
        keep = eng.schedule(20_000.0, lambda: None)
        for h in handles:
            h.cancel()
        assert eng.pending_count() == 1
        assert len(eng._agenda) < 5_000
        assert eng.peek() == keep.time

    def test_pending_count_is_constant_time(self):
        # pending_count() used to scan the whole agenda per call
        eng = Engine()
        for i in range(100):
            eng.schedule(float(i + 1), lambda: None)
        h = eng.schedule(500.0, lambda: None)
        assert eng.pending_count() == 101
        h.cancel()
        assert eng.pending_count() == 100
        h.cancel()  # idempotent: must not decrement twice
        assert eng.pending_count() == 100

    def test_pending_count_tracks_mixed_fire_and_cancel(self):
        import random

        eng = Engine()
        rng = random.Random(42)
        handles = []
        for i in range(400):
            handles.append(eng.schedule(rng.uniform(1.0, 50.0), lambda: None))
        for h in rng.sample(handles, 150):
            h.cancel()
        while eng.step():
            naive = sum(1 for x in eng._agenda if not x.cancelled)
            assert eng.pending_count() == naive
        assert eng.pending_count() == 0

    def test_cancel_own_handle_from_callback_is_noop(self):
        eng = Engine()
        box = {}

        def fire():
            box["h"].cancel()   # cancelling the in-flight event: no effect

        box["h"] = eng.schedule(1.0, fire)
        eng.schedule(2.0, lambda: None)
        eng.run()
        assert eng.pending_count() == 0

    def test_compaction_during_run_keeps_order(self):
        eng = Engine()
        fired = []
        handles = [eng.schedule(float(i + 100), fired.append, i)
                   for i in range(500)]

        def cancel_most():
            for h in handles[50:]:
                h.cancel()

        eng.schedule(1.0, cancel_most)
        eng.run()
        assert fired == list(range(50))


class TestSlotGridSnapping:
    """Opt-in slot-grid snapping: chained fractional delays must not drift
    off the integer slot grid (the ring sets ``slot_quantum`` on its engine;
    a bare engine keeps exact float semantics)."""

    def test_bare_engine_does_not_snap(self):
        eng = Engine()
        eng.schedule(0.9999999999, lambda: None)
        eng.run()
        assert eng.now == 0.9999999999

    def test_snap_helper_10e6_slot_drift(self):
        # 1/3 + 1/3 + 1/3 chained drifts off-grid from slot 2 without
        # snapping (final error ~3e-6 over 1e6 slots); snapped it is exact
        third = 1.0 / 3.0
        snap = Engine.snap_to_grid
        t = 0.0
        for _ in range(1_000_000):
            t = snap(snap(snap(t + third) + third) + third)
        assert t == 1_000_000.0

    def test_chained_fractional_schedules_stay_on_grid(self):
        eng = Engine()
        eng.slot_quantum = 1.0
        third = 1.0 / 3.0
        on_grid = []

        def tick(step):
            if step % 3 == 0:
                on_grid.append(eng.now == float(step // 3))
            if step < 30_000:
                eng.schedule(third, tick, step + 1)

        eng.schedule(0.0, tick, 0)
        eng.run()
        assert all(on_grid)
        assert eng.now == 10_000.0

    def test_off_grid_times_pass_through(self):
        eng = Engine()
        eng.slot_quantum = 1.0
        times = []
        eng.schedule(0.5, lambda: times.append(eng.now))
        eng.schedule(1.25, lambda: times.append(eng.now))
        eng.run()
        assert times == [0.5, 1.25]


class TestAdvanceTo:
    def test_advance_to_moves_clock(self):
        eng = Engine()
        eng.schedule(10.0, lambda: None)
        eng.advance_to(7.0)
        assert eng.now == 7.0

    def test_advance_to_past_rejected(self):
        eng = Engine()
        eng.schedule(5.0, lambda: None)
        eng.run()
        with pytest.raises(SchedulingError):
            eng.advance_to(4.0)

    def test_advance_past_pending_event_rejected(self):
        eng = Engine()
        eng.schedule(3.0, lambda: None)
        with pytest.raises(SimulationError):
            eng.advance_to(5.0)

    def test_advance_to_skips_cancelled_obstacle(self):
        eng = Engine()
        h = eng.schedule(3.0, lambda: None)
        eng.schedule(9.0, lambda: None)
        h.cancel()
        eng.advance_to(5.0)
        assert eng.now == 5.0


class TestPropertyBased:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=50))
    def test_execution_order_is_sorted_by_time(self, delays):
        eng = Engine()
        order = []
        for d in delays:
            eng.schedule(d, lambda d=d: order.append(d))
        eng.run()
        assert order == sorted(delays)
        assert eng.now == max(delays)

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=40),
           st.integers(min_value=0, max_value=100))
    def test_run_until_partitions_events(self, delays, cut):
        eng = Engine()
        fired = []
        for d in delays:
            eng.schedule(float(d), fired.append, d)
        eng.run(until=float(cut))
        assert sorted(fired) == sorted(d for d in delays if d <= cut)
        eng.run()
        assert sorted(fired) == sorted(delays)

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=1000,
                                        allow_nan=False),
                              st.booleans()),
                    min_size=1, max_size=40))
    def test_cancelled_subset_never_fires(self, items):
        eng = Engine()
        fired = []
        handles = []
        for i, (d, cancel) in enumerate(items):
            handles.append((eng.schedule(d, fired.append, i), cancel))
        for h, cancel in handles:
            if cancel:
                h.cancel()
        eng.run()
        expected = {i for i, (_, cancel) in enumerate(items) if not cancel}
        assert set(fired) == expected
