"""Unit tests for the event-loop engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import Engine, SchedulingError, SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        hits = []
        eng.schedule(5.0, hits.append, "late")
        eng.schedule(2.0, hits.append, "early")
        eng.schedule(3.5, hits.append, "mid")
        eng.run()
        assert hits == ["early", "mid", "late"]

    def test_same_time_fires_in_schedule_order(self):
        eng = Engine()
        hits = []
        for i in range(10):
            eng.schedule(1.0, hits.append, i)
        eng.run()
        assert hits == list(range(10))

    def test_priority_breaks_simultaneous_ties(self):
        eng = Engine()
        hits = []
        eng.schedule(1.0, hits.append, "normal", priority=0)
        eng.schedule(1.0, hits.append, "urgent", priority=-1)
        eng.run()
        assert hits == ["urgent", "normal"]

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SchedulingError):
            eng.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        eng = Engine()
        eng.schedule(5.0, lambda: None)
        eng.run()
        assert eng.now == 5.0
        with pytest.raises(SchedulingError):
            eng.schedule_at(4.0, lambda: None)

    def test_non_callable_rejected(self):
        eng = Engine()
        with pytest.raises(SchedulingError):
            eng.schedule(1.0, "not callable")

    def test_zero_delay_fires_at_current_time(self):
        eng = Engine()
        times = []
        eng.schedule(3.0, lambda: eng.schedule(0.0, lambda: times.append(eng.now)))
        eng.run()
        assert times == [3.0]

    def test_callback_args_passed_through(self):
        eng = Engine()
        got = []
        eng.schedule(1.0, lambda a, b, c: got.append((a, b, c)), 1, "x", None)
        eng.run()
        assert got == [(1, "x", None)]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        hits = []
        h = eng.schedule(1.0, hits.append, "no")
        eng.schedule(2.0, hits.append, "yes")
        h.cancel()
        eng.run()
        assert hits == ["yes"]

    def test_cancel_is_idempotent(self):
        eng = Engine()
        h = eng.schedule(1.0, lambda: None)
        h.cancel()
        h.cancel()
        eng.run()

    def test_cancel_from_within_earlier_event(self):
        eng = Engine()
        hits = []
        victim = eng.schedule(2.0, hits.append, "victim")
        eng.schedule(1.0, victim.cancel)
        eng.run()
        assert hits == []

    def test_peek_skips_cancelled(self):
        eng = Engine()
        h = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        h.cancel()
        assert eng.peek() == 2.0


class TestRun:
    def test_run_until_advances_clock_even_without_events(self):
        eng = Engine()
        eng.run(until=100.0)
        assert eng.now == 100.0

    def test_run_until_leaves_future_events_pending(self):
        eng = Engine()
        hits = []
        eng.schedule(5.0, hits.append, "in")
        eng.schedule(15.0, hits.append, "out")
        eng.run(until=10.0)
        assert hits == ["in"]
        assert eng.now == 10.0
        eng.run()
        assert hits == ["in", "out"]

    def test_run_until_boundary_event_fires(self):
        eng = Engine()
        hits = []
        eng.schedule(10.0, hits.append, "edge")
        eng.run(until=10.0)
        assert hits == ["edge"]

    def test_run_until_past_rejected(self):
        eng = Engine()
        eng.schedule(5.0, lambda: None)
        eng.run()
        with pytest.raises(SchedulingError):
            eng.run(until=1.0)

    def test_max_events(self):
        eng = Engine()
        hits = []
        for i in range(10):
            eng.schedule(float(i + 1), hits.append, i)
        eng.run(max_events=3)
        assert hits == [0, 1, 2]

    def test_max_events_with_until_does_not_warp_clock(self):
        # regression: run(until=..., max_events=...) used to advance `now`
        # to `until` even when the event cap broke the loop early, stranding
        # the remaining agenda events in the past
        eng = Engine()
        hits = []
        for i in range(5):
            eng.schedule(float(i + 1), hits.append, i)
        eng.run(until=100.0, max_events=2)
        assert hits == [0, 1]
        assert eng.now == 2.0
        assert eng.peek() == 3.0

    def test_resume_after_max_events_break_reaches_until(self):
        eng = Engine()
        hits = []
        for i in range(5):
            eng.schedule(float(i + 1), hits.append, i)
        eng.run(until=100.0, max_events=2)
        eng.run(until=100.0)
        assert hits == [0, 1, 2, 3, 4]
        assert eng.now == 100.0

    def test_stop_with_until_does_not_warp_clock(self):
        eng = Engine()
        hits = []
        eng.schedule(1.0, hits.append, "a")
        eng.schedule(2.0, eng.stop)
        eng.schedule(3.0, hits.append, "b")
        eng.run(until=100.0)
        assert hits == ["a"]
        assert eng.now == 2.0

    def test_until_still_advances_clock_when_agenda_drains(self):
        eng = Engine()
        eng.schedule(5.0, lambda: None)
        eng.run(until=10.0, max_events=50)
        assert eng.now == 10.0

    def test_stop_halts_run(self):
        eng = Engine()
        hits = []
        eng.schedule(1.0, hits.append, "a")
        eng.schedule(2.0, eng.stop)
        eng.schedule(3.0, hits.append, "b")
        eng.run()
        assert hits == ["a"]
        eng.run()
        assert hits == ["a", "b"]

    def test_reentrant_run_rejected(self):
        eng = Engine()

        def reenter():
            with pytest.raises(SimulationError):
                eng.run()

        eng.schedule(1.0, reenter)
        eng.run()

    def test_step_returns_false_when_empty(self):
        eng = Engine()
        assert eng.step() is False

    def test_step_executes_exactly_one(self):
        eng = Engine()
        hits = []
        eng.schedule(1.0, hits.append, 1)
        eng.schedule(2.0, hits.append, 2)
        assert eng.step() is True
        assert hits == [1]

    def test_events_executed_counter(self):
        eng = Engine()
        for i in range(7):
            eng.schedule(float(i), lambda: None)
        eng.run()
        assert eng.events_executed == 7

    def test_events_scheduled_during_run_fire(self):
        eng = Engine()
        hits = []

        def cascade(depth):
            hits.append(depth)
            if depth < 5:
                eng.schedule(1.0, cascade, depth + 1)

        eng.schedule(0.0, cascade, 0)
        eng.run()
        assert hits == list(range(6))
        assert eng.now == 5.0

    def test_pending_count(self):
        eng = Engine()
        h = eng.schedule(1.0, lambda: None)
        eng.schedule(2.0, lambda: None)
        assert eng.pending_count() == 2
        h.cancel()
        assert eng.pending_count() == 1


class TestPropertyBased:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=50))
    def test_execution_order_is_sorted_by_time(self, delays):
        eng = Engine()
        order = []
        for d in delays:
            eng.schedule(d, lambda d=d: order.append(d))
        eng.run()
        assert order == sorted(delays)
        assert eng.now == max(delays)

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=40),
           st.integers(min_value=0, max_value=100))
    def test_run_until_partitions_events(self, delays, cut):
        eng = Engine()
        fired = []
        for d in delays:
            eng.schedule(float(d), fired.append, d)
        eng.run(until=float(cut))
        assert sorted(fired) == sorted(d for d in delays if d <= cut)
        eng.run()
        assert sorted(fired) == sorted(delays)

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=1000,
                                        allow_nan=False),
                              st.booleans()),
                    min_size=1, max_size=40))
    def test_cancelled_subset_never_fires(self, items):
        eng = Engine()
        fired = []
        handles = []
        for i, (d, cancel) in enumerate(items):
            handles.append((eng.schedule(d, fired.append, i), cancel))
        for h, cancel in handles:
            if cancel:
                h.cancel()
        eng.run()
        expected = {i for i, (_, cancel) in enumerate(items) if not cancel}
        assert set(fired) == expected
