"""Smoke tests: every example script must run clean and print its OK line.

The examples are the repo's user-facing walkthroughs; each ends with an
assertion-backed "OK:" summary, so running them is a meaningful end-to-end
check, not just an import test.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    assert len(SCRIPTS) >= 3, "the repo promises at least three examples"
    assert "quickstart.py" in SCRIPTS


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, (
        f"{script} failed:\nstdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}")
    assert "OK" in proc.stdout, f"{script} did not reach its OK line"
