"""Unit tests for flows, generators and workload composition."""

import random

import pytest

from repro.core import Packet, ServiceClass, WRTRingConfig, WRTRingNetwork
from repro.sim import Engine, RandomStreams
from repro.traffic import (BacklogSource, CBRSource, FlowSpec, OnOffSource,
                           PoissonSource, VideoSource, Workload)


def collecting_sink():
    packets = []
    return packets, packets.append


class _ScriptedRandom(random.Random):
    """Random stub whose ``expovariate`` replays a scripted sequence, for
    pinning a generator's ON/OFF phases exactly."""

    def __init__(self, draws):
        super().__init__(0)
        self._draws = list(draws)

    def expovariate(self, lambd):
        return self._draws.pop(0)


class TestFlowSpec:
    def test_packet_stamping(self):
        flow = FlowSpec(src=0, dst=3, service=ServiceClass.PREMIUM, deadline=20.0)
        p = flow.make_packet(100.0)
        assert p.src == 0 and p.dst == 3
        assert p.deadline == 120.0
        assert p.flow_id == flow.flow_id

    def test_no_deadline(self):
        flow = FlowSpec(src=0, dst=1)
        assert flow.make_packet(5.0).deadline is None

    def test_unique_flow_ids(self):
        a = FlowSpec(src=0, dst=1)
        b = FlowSpec(src=0, dst=1)
        assert a.flow_id != b.flow_id

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowSpec(src=1, dst=1)
        with pytest.raises(ValueError):
            FlowSpec(src=0, dst=1, service=ServiceClass.PREMIUM, deadline=0.0)
        with pytest.raises(ValueError):
            FlowSpec(src=0, dst=1, service=ServiceClass.BEST_EFFORT,
                     deadline=10.0)


class TestCBR:
    def test_exact_period(self):
        eng = Engine()
        got, sink = collecting_sink()
        flow = FlowSpec(src=0, dst=1, service=ServiceClass.PREMIUM, deadline=50)
        CBRSource(eng, flow, sink, period=10.0, start=5.0)
        eng.run(until=100.0)
        assert [p.created for p in got] == [5.0, 15.0, 25.0, 35.0, 45.0,
                                            55.0, 65.0, 75.0, 85.0, 95.0]

    def test_stop_time(self):
        eng = Engine()
        got, sink = collecting_sink()
        src = CBRSource(eng, FlowSpec(src=0, dst=1), sink, period=10.0,
                        stop=35.0)
        eng.run(until=100.0)
        assert src.generated == 4  # t = 0, 10, 20, 30

    def test_rate(self):
        eng = Engine()
        src = CBRSource(eng, FlowSpec(src=0, dst=1), lambda p: None, period=4.0)
        assert src.rate == 0.25

    def test_jitter_preserves_long_run_rate(self):
        eng = Engine()
        got, sink = collecting_sink()
        CBRSource(eng, FlowSpec(src=0, dst=1), sink, period=10.0, jitter=5.0,
                  rng=random.Random(0))
        eng.run(until=10_000.0)
        assert abs(len(got) - 1000) <= 2

    def test_validation(self):
        eng = Engine()
        flow = FlowSpec(src=0, dst=1)
        with pytest.raises(ValueError):
            CBRSource(eng, flow, lambda p: None, period=0.0)
        with pytest.raises(ValueError):
            CBRSource(eng, flow, lambda p: None, period=5.0, jitter=5.0,
                      rng=random.Random(0))
        with pytest.raises(ValueError):
            CBRSource(eng, flow, lambda p: None, period=5.0, jitter=1.0)
        with pytest.raises(ValueError):
            CBRSource(eng, flow, lambda p: None, period=5.0, start=-1.0)
        with pytest.raises(ValueError):
            CBRSource(eng, flow, lambda p: None, period=5.0, start=10.0,
                      stop=5.0)


class TestPoisson:
    def test_long_run_rate(self):
        eng = Engine()
        got, sink = collecting_sink()
        PoissonSource(eng, FlowSpec(src=0, dst=1), sink, rate=0.2,
                      rng=random.Random(1))
        eng.run(until=50_000.0)
        measured = len(got) / 50_000.0
        assert measured == pytest.approx(0.2, rel=0.05)

    def test_reproducible(self):
        def run(seed):
            eng = Engine()
            got, sink = collecting_sink()
            PoissonSource(eng, FlowSpec(src=0, dst=1), sink, rate=0.5,
                          rng=random.Random(seed))
            eng.run(until=100.0)
            return [p.created for p in got]
        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonSource(Engine(), FlowSpec(src=0, dst=1), lambda p: None,
                          rate=0.0, rng=random.Random(0))


class TestOnOff:
    def test_long_run_rate(self):
        eng = Engine()
        got, sink = collecting_sink()
        src = OnOffSource(eng, FlowSpec(src=0, dst=1), sink, peak_rate=1.0,
                          mean_on=50.0, mean_off=150.0, rng=random.Random(2))
        eng.run(until=100_000.0)
        assert src.rate == pytest.approx(0.25)
        assert len(got) / 100_000.0 == pytest.approx(0.25, rel=0.1)

    def test_burstiness(self):
        """On-off arrivals are burstier than Poisson at the same rate."""
        import numpy as np
        eng = Engine()
        got_oo, sink_oo = collecting_sink()
        OnOffSource(eng, FlowSpec(src=0, dst=1), sink_oo, peak_rate=1.0,
                    mean_on=100.0, mean_off=100.0, rng=random.Random(3))
        got_p, sink_p = collecting_sink()
        PoissonSource(eng, FlowSpec(src=0, dst=1), sink_p, rate=0.5,
                      rng=random.Random(4))
        eng.run(until=50_000.0)

        def window_var(packets):
            counts = np.zeros(500)
            for p in packets:
                idx = int(p.created // 100.0)
                if idx < 500:
                    counts[idx] += 1
            return counts.var()

        assert window_var(got_oo) > 2 * window_var(got_p)

    def test_validation(self):
        eng = Engine()
        flow = FlowSpec(src=0, dst=1)
        with pytest.raises(ValueError):
            OnOffSource(eng, flow, lambda p: None, peak_rate=0.0, mean_on=1,
                        mean_off=1, rng=random.Random(0))
        with pytest.raises(ValueError):
            OnOffSource(eng, flow, lambda p: None, peak_rate=1.0, mean_on=0,
                        mean_off=1, rng=random.Random(0))

    def test_stop_mid_burst(self):
        # scripted draws: ON lasts 100 slots with a packet every 10; the
        # stop lands inside the burst, and the generator must not emit
        # past it
        eng = Engine()
        got, sink = collecting_sink()
        src = OnOffSource(eng, FlowSpec(src=0, dst=1), sink, peak_rate=0.1,
                          mean_on=100.0, mean_off=100.0,
                          rng=_ScriptedRandom([100.0] + [10.0] * 20),
                          stop=45.0)
        eng.run(until=1000.0)
        assert [p.created for p in got] == [10.0, 20.0, 30.0, 40.0]
        assert src.generated == 4

    def test_stop_mid_silence(self):
        # ON burst of 10 slots (packets at 4 and 8), then a 100-slot
        # silence the stop lands in: nothing more may be emitted
        eng = Engine()
        got, sink = collecting_sink()
        src = OnOffSource(eng, FlowSpec(src=0, dst=1), sink, peak_rate=0.25,
                          mean_on=10.0, mean_off=100.0,
                          rng=_ScriptedRandom([10.0, 4.0, 4.0, 4.0, 100.0,
                                               100.0] + [4.0] * 20),
                          stop=50.0)
        eng.run(until=1000.0)
        assert [p.created for p in got] == [4.0, 8.0]
        assert src.generated == 2


class TestVideo:
    def test_gop_pattern_packet_counts(self):
        eng = Engine()
        got, sink = collecting_sink()
        VideoSource(eng, FlowSpec(src=0, dst=1, service=ServiceClass.PREMIUM,
                                  deadline=100.0),
                    sink, frame_interval=10.0,
                    packets_per_frame={"I": 5, "P": 3, "B": 1}, gop="IBBP")
        eng.run(until=39.0)   # 4 frames: I B B P
        assert len(got) == 5 + 1 + 1 + 3
        # frame bursts are back-to-back at frame boundaries
        assert [p.created for p in got[:5]] == [0.0] * 5

    def test_rate(self):
        eng = Engine()
        src = VideoSource(eng, FlowSpec(src=0, dst=1), lambda p: None,
                          frame_interval=10.0,
                          packets_per_frame={"I": 6, "P": 4, "B": 2},
                          gop="IBBPBBPBB")
        per_gop = 6 + 4 * 2 + 2 * 6
        assert src.rate == pytest.approx(per_gop / 90.0)

    def test_rate_matches_emitted_long_run(self):
        # the advertised long-run rate must agree with what the generator
        # actually emits over whole GoPs (the load-calibration contract)
        eng = Engine()
        got, sink = collecting_sink()
        src = VideoSource(eng, FlowSpec(src=0, dst=1), sink,
                          frame_interval=10.0)
        eng.run(until=899.0)    # 90 frames = 10 whole default GoPs
        assert src.generated == len(got)
        assert src.generated / 900.0 == pytest.approx(src.rate, rel=0.01)

    def test_validation(self):
        eng = Engine()
        flow = FlowSpec(src=0, dst=1)
        with pytest.raises(ValueError):
            VideoSource(eng, flow, lambda p: None, frame_interval=0.0)
        with pytest.raises(ValueError):
            VideoSource(eng, flow, lambda p: None, frame_interval=1.0, gop="XYZ")
        with pytest.raises(ValueError):
            VideoSource(eng, flow, lambda p: None, frame_interval=1.0,
                        gop="I", packets_per_frame={"I": 0})


class TestBacklogSource:
    def test_keeps_queue_topped(self):
        eng = Engine()
        cfg = WRTRingConfig.homogeneous(range(4), l=2, k=0, rap_enabled=False)
        net = WRTRingNetwork(eng, list(range(4)), cfg)
        flow = FlowSpec(src=0, dst=1, service=ServiceClass.PREMIUM)
        src = BacklogSource(net, flow, target=7, rng=random.Random(0))
        net.add_tick_hook(src.on_tick)
        net.start()
        eng.run(until=200)
        # the queue is refilled every tick, so it always holds target minus
        # at most what was sent this round
        assert len(net.stations[0].rt_queue) >= 5
        assert src.generated > 50

    def test_stops_for_dead_station(self):
        eng = Engine()
        cfg = WRTRingConfig.homogeneous(range(4), l=1, k=0, rap_enabled=False)
        net = WRTRingNetwork(eng, list(range(4)), cfg)
        flow = FlowSpec(src=0, dst=1, service=ServiceClass.PREMIUM)
        src = BacklogSource(net, flow, target=5, rng=random.Random(0))
        net.add_tick_hook(src.on_tick)
        net.start()
        eng.run(until=20)
        net.stations[0].alive = False
        before = src.generated
        eng.run(until=40)
        assert src.generated == before

    def test_validation(self):
        eng = Engine()
        cfg = WRTRingConfig.homogeneous(range(3), l=1, k=0, rap_enabled=False)
        net = WRTRingNetwork(eng, list(range(3)), cfg)
        with pytest.raises(ValueError):
            BacklogSource(net, FlowSpec(src=0, dst=1), target=0)


class TestWorkload:
    def make_net(self, n=5):
        eng = Engine()
        cfg = WRTRingConfig.homogeneous(range(n), l=2, k=2, rap_enabled=False)
        net = WRTRingNetwork(eng, list(range(n)), cfg)
        return eng, net

    def test_offered_load_accounting(self):
        eng, net = self.make_net()
        wl = Workload(net, RandomStreams(0))
        wl.add_cbr(FlowSpec(src=0, dst=1), period=10.0)
        wl.add_poisson(FlowSpec(src=1, dst=2), rate=0.05)
        wl.add_backlog(FlowSpec(src=2, dst=3,
                                service=ServiceClass.PREMIUM))
        assert wl.offered_load() == pytest.approx(0.15)

    def test_uniform_poisson_attaches_all_stations(self):
        eng, net = self.make_net()
        wl = Workload(net, RandomStreams(1))
        sources = wl.uniform_poisson(0.02)
        assert len(sources) == 5
        srcs = {s.flow.src for s in sources}
        assert srcs == set(range(5))

    def test_neighbours_only_destinations(self):
        eng, net = self.make_net()
        wl = Workload(net, RandomStreams(2))
        sources = wl.uniform_poisson(0.02, neighbours_only=True)
        for s in sources:
            assert s.flow.dst == net.successor(s.flow.src)

    def test_saturate_all_and_deliver(self):
        eng, net = self.make_net()
        wl = Workload(net, RandomStreams(3))
        wl.saturate_all(target=10)
        net.start()
        eng.run(until=500)
        assert net.metrics.total_delivered > 100
        assert wl.generated() > 100

    def test_end_to_end_delivery_via_workload(self):
        eng, net = self.make_net()
        wl = Workload(net, RandomStreams(4))
        wl.uniform_poisson(0.02, service=ServiceClass.PREMIUM, deadline=200.0)
        net.start()
        eng.run(until=3000)
        assert net.metrics.deadlines.met > 0
        assert net.metrics.deadlines.missed == 0
