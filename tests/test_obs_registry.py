"""Unit tests for the metrics registry (repro.obs.registry)."""

import pytest

from repro.obs import (NULL_INSTRUMENT, NULL_REGISTRY, MetricsError,
                       MetricsRegistry)


class TestCounter:
    def test_inc_default_and_n(self):
        reg = MetricsRegistry()
        c = reg.counter("pkts")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("pkts") is reg.counter("pkts")

    def test_labels_create_separate_series(self):
        reg = MetricsRegistry()
        a = reg.counter("delivered", service="premium")
        b = reg.counter("delivered", service="be")
        assert a is not b
        a.inc(3)
        assert b.value == 0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("x", station=1, queue="rt")
        b = reg.counter("x", queue="rt", station=1)
        assert a is b

    def test_label_values_stringified(self):
        reg = MetricsRegistry()
        assert reg.counter("x", sid=1) is reg.counter("x", sid="1")


class TestGauge:
    def test_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(7.0)
        g.add(-2.0)
        assert g.value == 5.0
        assert g.updates == 2


class TestHistogram:
    def test_lifetime_aggregates(self):
        reg = MetricsRegistry()
        h = reg.histogram("rot")
        for v in [4.0, 8.0, 6.0]:
            h.observe(v)
        assert h.count == 3
        assert h.total == 18.0
        assert h.vmin == 4.0 and h.vmax == 8.0
        assert h.mean == 6.0

    def test_window_bounds_percentile_samples_not_aggregates(self):
        reg = MetricsRegistry()
        h = reg.histogram("rot", window=4)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100          # lifetime count is exact
        assert h.vmin == 0.0           # lifetime min survives eviction
        assert h.recent() == [96.0, 97.0, 98.0, 99.0]
        assert h.percentile(0) == 96.0

    def test_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("d")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert h.percentile(95) == pytest.approx(95.0, abs=1.0)
        assert h.percentile(100) == 100.0

    def test_percentile_empty_is_none(self):
        h = MetricsRegistry().histogram("d")
        assert h.percentile(50) is None

    def test_percentile_out_of_range_raises(self):
        h = MetricsRegistry().histogram("d")
        h.observe(1.0)
        with pytest.raises(MetricsError):
            h.percentile(101)

    def test_bad_window_raises(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().histogram("d", window=0)

    def test_summary_shape(self):
        h = MetricsRegistry().histogram("d")
        h.observe(2.0)
        s = h.summary()
        assert s["count"] == 1 and s["sum"] == 2.0
        assert set(s) == {"count", "sum", "min", "max", "mean",
                          "p50", "p95", "window"}


class TestKindCollisions:
    def test_counter_then_gauge_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricsError):
            reg.gauge("x")

    def test_gauge_then_histogram_raises(self):
        reg = MetricsRegistry()
        reg.gauge("x")
        with pytest.raises(MetricsError):
            reg.histogram("x")

    def test_collision_even_with_different_labels(self):
        reg = MetricsRegistry()
        reg.counter("x", a=1)
        with pytest.raises(MetricsError):
            reg.gauge("x", b=2)

    def test_empty_name_raises(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().counter("")


class TestDisabledRegistry:
    def test_factories_return_null_instrument(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("a") is NULL_INSTRUMENT
        assert reg.gauge("b") is NULL_INSTRUMENT
        assert reg.histogram("c") is NULL_INSTRUMENT

    def test_null_instrument_is_inert(self):
        NULL_INSTRUMENT.inc()
        NULL_INSTRUMENT.inc(10)
        NULL_INSTRUMENT.set(5.0)
        NULL_INSTRUMENT.add(1.0)
        NULL_INSTRUMENT.observe(3.0)
        assert NULL_INSTRUMENT.value == 0
        assert NULL_INSTRUMENT.summary() == {}

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("a").inc()
        assert len(reg) == 0
        assert reg.snapshot() == {}

    def test_no_collision_checks_when_disabled(self):
        # the disabled path must stay branch-free: no name validation
        reg = MetricsRegistry(enabled=False)
        reg.counter("x")
        assert reg.gauge("x") is NULL_INSTRUMENT

    def test_shared_null_registry(self):
        assert not NULL_REGISTRY.enabled
        assert NULL_REGISTRY.counter("whatever") is NULL_INSTRUMENT

    def test_disabled_overhead_comparable_to_bare_call(self):
        """The whole point of the null-object pattern: updating a disabled
        instrument must cost about as much as calling an empty method —
        bounded here at a generous multiple to stay robust under CI noise."""
        import timeit

        class Empty:
            def inc(self, n=1):
                pass

        null = MetricsRegistry(enabled=False).counter("x")
        bare = Empty()
        n = 20_000
        t_null = min(timeit.repeat(null.inc, number=n, repeat=5))
        t_bare = min(timeit.repeat(bare.inc, number=n, repeat=5))
        assert t_null < t_bare * 5 + 1e-3


class TestIntrospection:
    def test_series_sorted_by_labels(self):
        reg = MetricsRegistry()
        reg.counter("d", s=2).inc(2)
        reg.counter("d", s=1).inc(1)
        values = [c.value for c in reg.series("d")]
        assert values == [1, 2]

    def test_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]
        assert "a" in reg and "zzz" not in reg

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("delivered", service="premium").inc(3)
        reg.gauge("members").set(8)
        reg.histogram("rot").observe(4.0)
        snap = reg.snapshot()
        assert snap["delivered"] == {"service=premium": 3}
        assert snap["members"] == {"": 8}
        assert snap["rot"][""]["count"] == 1

    def test_snapshot_is_json_ready(self):
        import json
        reg = MetricsRegistry()
        reg.counter("a", x=1).inc()
        reg.histogram("h").observe(1.0)
        json.dumps(reg.snapshot())


class TestNetworkIntegration:
    def _run(self, registry, horizon=200, seed=1):
        from repro.obs import attach_network_metrics
        from repro.scenarios import Scenario, build_scenario

        built = build_scenario(Scenario(n=6, horizon=float(horizon),
                                        seed=seed))
        attach_network_metrics(built.network, registry)
        built.engine.run(until=float(horizon))
        return built

    def test_ring_publishes_deliveries_and_rotations(self):
        reg = MetricsRegistry()
        built = self._run(reg)
        snap = reg.snapshot()
        delivered = sum(snap.get("ring.delivered", {}).values())
        assert delivered == built.network.metrics.total_delivered > 0
        assert snap["sat.rotation_slots"][""]["count"] > 0
        assert snap["ring.members"][""] == 6

    def test_kill_publishes_recovery_metrics(self):
        from repro.faults import FaultSchedule
        from repro.scenarios import Scenario, build_scenario
        from repro.obs import attach_network_metrics

        schedule = FaultSchedule.builder().kill(2, at=100).build()
        built = build_scenario(Scenario(n=6, horizon=3000.0, seed=1,
                                        faults=schedule))
        reg = MetricsRegistry()
        attach_network_metrics(built.network, reg)
        built.engine.run(until=3000.0)
        snap = reg.snapshot()
        assert snap["ring.kills"][""] == 1
        assert snap["recovery.episodes"][""] >= 1

    def test_disabled_registry_attaches_without_hooks(self):
        reg = MetricsRegistry(enabled=False)
        built = self._run(reg)
        assert reg.snapshot() == {}
        # the run itself must be unaffected
        assert built.network.metrics.total_delivered > 0

    def test_observed_run_matches_unobserved_run(self):
        """Attaching metrics must not perturb the simulation outcome."""
        from repro.scenarios import Scenario, run_scenario

        plain = run_scenario(Scenario(n=6, horizon=400.0, seed=5)).summary()
        reg = MetricsRegistry()
        observed = self._run(reg, horizon=400, seed=5)
        assert observed.summary() == plain
