"""Integration tests for the RAP join procedure (Sec. 2.4.1, Fig. 3)."""

import random

import numpy as np
import pytest

from repro.core import (Packet, QuotaConfig, ServiceClass, WRTRingConfig,
                        WRTRingNetwork)
from repro.core.join import JoinOutcome, JoinRequester
from repro.phy import ConnectivityGraph, SlottedChannel, ring_placement
from repro.sim import Engine


RADIUS = 30.0
RING_POS = {n: ring_placement(n, radius=RADIUS) for n in (6,)}


def between(pos, i, j, scale=1.02):
    """A point just outside the ring between stations i and j."""
    return (pos[i] + pos[j]) / 2 * scale


def ring_scenario(n=6, extra=None, range_margin=1.4,
                  l=2, k=1, t_ear=6, t_update=3, max_network_delay=None):
    """A circle ring plus out-of-ring stations at ``extra: {sid: (x, y)}``."""
    pos = ring_placement(n, radius=RADIUS)
    ids = list(range(n))
    extra = extra or {}
    for sid, p in extra.items():
        pos = np.vstack([pos, np.asarray(p, dtype=float).reshape(1, 2)])
        ids.append(sid)
    radio_range = 2 * RADIUS * np.sin(np.pi / n) * range_margin
    graph = ConnectivityGraph(pos, radio_range, node_ids=ids)
    engine = Engine()
    cfg = WRTRingConfig.homogeneous(range(n), l=l, k=k, rap_enabled=True,
                                    t_ear=t_ear, t_update=t_update,
                                    max_network_delay=max_network_delay)
    channel = SlottedChannel(graph)
    net = WRTRingNetwork(engine, list(range(n)), cfg, graph=graph,
                         channel=channel)
    return engine, net, graph, pos


class TestSuccessfulJoin:
    def test_requester_between_two_consecutive_stations_joins(self):
        base = ring_placement(6, radius=RADIUS)
        engine, net, graph, pos = ring_scenario(extra={100: between(base, 2, 3)})
        req = JoinRequester(net, 100, QuotaConfig.two_class(1, 1),
                            rng=random.Random(0))
        net.start()
        engine.run(until=4000)
        assert req.state is JoinOutcome.JOINED
        members = net.members
        # inserted between two stations that were consecutive in the
        # original ring, both within the requester's radio range
        idx = members.index(100)
        before = members[idx - 1]
        after = members[(idx + 1) % len(members)]
        assert (before + 1) % 6 == after
        assert graph.in_range(100, before) and graph.in_range(100, after)

    def test_join_latency_reported(self):
        base = ring_placement(6, radius=RADIUS)
        engine, net, graph, pos = ring_scenario(extra={100: between(base, 0, 1)})
        req = JoinRequester(net, 100, QuotaConfig.two_class(1, 1),
                            rng=random.Random(1))
        net.start()
        engine.run(until=4000)
        assert req.join_latency is not None and req.join_latency > 0
        assert req.t_joined > req.t_requested > req.t_started

    def test_new_station_carries_traffic_after_join(self):
        base = ring_placement(6, radius=RADIUS)
        engine, net, graph, pos = ring_scenario(extra={100: between(base, 4, 5)})
        req = JoinRequester(net, 100, QuotaConfig.two_class(2, 1),
                            rng=random.Random(2))
        net.start()
        engine.run(until=4000)
        assert req.state is JoinOutcome.JOINED
        t0 = engine.now
        p = Packet(src=100, dst=1, service=ServiceClass.PREMIUM, created=t0)
        net.enqueue(p)
        engine.run(until=t0 + 200)
        assert p.delivered

    def test_quotas_and_timers_updated_after_join(self):
        base = ring_placement(6, radius=RADIUS)
        engine, net, graph, pos = ring_scenario(extra={100: between(base, 1, 2)})
        bound_before = net.sat_time_bound()
        req = JoinRequester(net, 100, QuotaConfig.two_class(3, 2),
                            rng=random.Random(3))
        net.start()
        engine.run(until=4000)
        assert req.state is JoinOutcome.JOINED
        assert net.sat_time_bound() == bound_before + 1 + 2 * 5  # S+1, +2(l+k)
        assert 100 in net.recovery.timers

    def test_existing_guarantees_hold_during_join(self):
        """Fig. 3's implicit promise: joining never breaks the bound for
        stations already in the ring."""
        base = ring_placement(6, radius=RADIUS)
        engine, net, graph, pos = ring_scenario(extra={100: between(base, 3, 4)})
        rng = random.Random(9)

        def top(t):
            for sid in list(net.members):
                st = net.stations[sid]
                while len(st.rt_queue) < 10:
                    dst = rng.choice([d for d in net.members if d != sid])
                    st.enqueue(Packet(src=sid, dst=dst,
                                      service=ServiceClass.PREMIUM,
                                      created=t), t)
        net.add_tick_hook(top)
        req = JoinRequester(net, 100, QuotaConfig.two_class(2, 1),
                            rng=random.Random(4))
        net.start()
        engine.run(until=6000)
        assert req.state is JoinOutcome.JOINED
        # the *post-join* bound covers every measured rotation (the post-join
        # bound is the larger one, so it is the binding check across the run)
        assert net.rotation_log.worst() < net.sat_time_bound()


class TestRejectedJoin:
    def test_out_of_range_requester_never_joins(self):
        engine, net, graph, pos = ring_scenario(extra={100: (500.0, 500.0)})
        req = JoinRequester(net, 100, QuotaConfig.two_class(1, 1),
                            rng=random.Random(5))
        net.start()
        engine.run(until=3000)
        assert req.state is JoinOutcome.LISTENING
        assert req.heard == {}
        assert 100 not in net.members

    def test_requester_hearing_one_station_cannot_join(self):
        """Sec. 2.4.1: reaching a single station is not enough."""
        base = ring_placement(6, radius=RADIUS)
        centre = base.mean(axis=0)
        outward = base[0] - centre
        outward = outward / np.linalg.norm(outward)
        radio_range = 2 * RADIUS * np.sin(np.pi / 6) * 1.4
        spot = base[0] + outward * radio_range * 0.9
        engine, net, graph, pos = ring_scenario(extra={100: spot})
        # verify the placement gives exactly one audible ring station
        assert [s for s in range(6) if graph.in_range(100, s)] == [0]
        req = JoinRequester(net, 100, QuotaConfig.two_class(1, 1),
                            rng=random.Random(6))
        net.start()
        engine.run(until=4000)
        assert req.state is JoinOutcome.LISTENING
        assert 100 not in net.members
        assert 0 in req.heard and len(req.heard) == 1

    def test_admission_rejects_over_budget(self):
        """With a tight network budget the NEXT_FREE advertises zero free
        resources, so a greedy requester never even sends (and a direct
        admission evaluation rejects the request)."""
        base = ring_placement(6, radius=RADIUS)
        engine, net, graph, pos = ring_scenario(
            extra={100: between(base, 0, 1)})
        net.config.max_network_delay = net.sat_time_bound() + 3
        req = JoinRequester(net, 100, QuotaConfig.two_class(5, 5),
                            rng=random.Random(7))
        net.start()
        engine.run(until=4000)
        assert req.state is JoinOutcome.LISTENING
        assert 100 not in net.members
        # the admission controller itself rejects such a request outright
        from repro.core.join import JoinRequest
        decision = net.join_manager.admission.evaluate(JoinRequest(
            requester=100, code_new=7, quota=QuotaConfig.two_class(5, 5)))
        assert not decision.accepted
        assert "budget" in decision.reason

    def test_requirement_protection(self):
        """A registered station guarantee blocks harmful joins."""
        base = ring_placement(6, radius=RADIUS)
        engine, net, graph, pos = ring_scenario(extra={100: between(base, 2, 3)})
        worst_now = net.sat_time_bound()
        # register a requirement the current ring barely meets
        from repro.analysis import access_delay_bound
        quotas = [(2, 1)] * 6
        now_bound = access_delay_bound(0, 2, 6, 9, quotas)
        net.join_manager.admission.register_requirement(0, deadline=now_bound)
        req = JoinRequester(net, 100, QuotaConfig.two_class(1, 1),
                            rng=random.Random(8))
        net.start()
        engine.run(until=4000)
        assert req.state is JoinOutcome.REJECTED
        assert 100 not in net.members


class TestContention:
    def test_two_requesters_eventually_both_join(self):
        """Simultaneous JOIN_REQs collide on the ingress code; random reply
        slots resolve the contention across RAPs."""
        base = ring_placement(6, radius=RADIUS)
        spot = between(base, 2, 3)
        engine, net, graph, pos = ring_scenario(
            extra={100: spot, 101: spot + 0.5}, t_ear=8)
        a = JoinRequester(net, 100, QuotaConfig.two_class(1, 1),
                          rng=random.Random(10))
        b = JoinRequester(net, 101, QuotaConfig.two_class(1, 1),
                          rng=random.Random(11))
        net.start()
        engine.run(until=30_000)
        assert a.state is JoinOutcome.JOINED
        assert b.state is JoinOutcome.JOINED
        assert set(net.members) >= {100, 101}

    def test_one_admission_per_rap(self):
        engine, net, graph, pos = ring_scenario()
        assert net.join_manager.session is None
        # the per-RAP accept slot is exercised implicitly above; here check
        # the RAP counters are sane on a quiet network
        net.start()
        engine.run(until=2000)
        assert net.join_manager.raps_opened > 0
        assert net.join_manager.joins_completed == 0


class TestRapMechanics:
    def test_rap_pauses_transmissions(self):
        engine, net, graph, pos = ring_scenario()
        net.start()
        sent_during_rap = []

        def watch(t):
            if t < net.pause_until:
                before = sum(sum(net.stations[s].sent.values())
                             for s in net.members)
                sent_during_rap.append((t, before))
        net.add_tick_hook(watch)

        def top(t):
            for sid in net.members:
                st = net.stations[sid]
                while len(st.be_queue) < 5:
                    st.enqueue(Packet(src=sid, dst=net.successor(sid),
                                      service=ServiceClass.BEST_EFFORT,
                                      created=t), t)
        net.add_tick_hook(top)
        engine.run(until=500)
        assert sent_during_rap, "no RAP observed"
        # counts must be flat across each RAP window
        by_window = {}
        for t, count in sent_during_rap:
            by_window.setdefault(net.pause_until, []).append(count)
        # simpler: consecutive paused ticks with growing totals would differ
        deltas = [b[1] - a[1] for a, b in zip(sent_during_rap,
                                              sent_during_rap[1:])
                  if b[0] == a[0] + 1]
        assert all(d == 0 for d in deltas)

    def test_rap_mutex_limits_to_one_per_round(self):
        engine, net, graph, pos = ring_scenario()
        net.start()
        engine.run(until=3000)
        rounds = net.sat.rounds
        assert net.join_manager.raps_opened <= rounds + 1

    def test_rap_disabled_never_opens(self):
        engine = Engine()
        cfg = WRTRingConfig.homogeneous(range(4), l=1, k=1, rap_enabled=False)
        net = WRTRingNetwork(engine, list(range(4)), cfg)
        net.start()
        engine.run(until=1000)
        assert net.join_manager.raps_opened == 0

    def test_requester_without_channel_rejected(self):
        engine = Engine()
        cfg = WRTRingConfig.homogeneous(range(4), l=1, k=1)
        net = WRTRingNetwork(engine, list(range(4)), cfg)
        with pytest.raises(ValueError):
            JoinRequester(net, 100, QuotaConfig.two_class(1, 1))

    def test_member_cannot_request_join(self):
        engine, net, graph, pos = ring_scenario()
        with pytest.raises(ValueError):
            JoinRequester(net, 0, QuotaConfig.two_class(1, 1))
