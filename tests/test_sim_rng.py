"""Unit tests for reproducible random streams."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import RandomStreams


class TestDeterminism:
    def test_same_seed_same_name_reproduces(self):
        a = RandomStreams(7).stream("x")
        b = RandomStreams(7).stream("x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_are_memoized(self):
        s = RandomStreams(1)
        assert s.stream("a") is s.stream("a")
        assert s.numpy_stream("a") is s.numpy_stream("a")

    def test_different_names_give_different_sequences(self):
        s = RandomStreams(3)
        seq_a = [s.stream("a").random() for _ in range(5)]
        seq_b = [s.stream("b").random() for _ in range(5)]
        assert seq_a != seq_b

    def test_different_seeds_give_different_sequences(self):
        a = RandomStreams(1).stream("x")
        b = RandomStreams(2).stream("x")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_numpy_stream_reproduces(self):
        a = RandomStreams(9).numpy_stream("n")
        b = RandomStreams(9).numpy_stream("n")
        assert (a.random(8) == b.random(8)).all()

    def test_python_and_numpy_namespaces_disjoint(self):
        s = RandomStreams(5)
        # both usable under the same logical name without interference
        py = s.stream("shared")
        np_ = s.numpy_stream("shared")
        v1 = py.random()
        _ = np_.random(100)
        # drawing from numpy stream must not perturb the python stream
        t = RandomStreams(5)
        t_py = t.stream("shared")
        assert t_py.random() == v1

    def test_adding_stream_does_not_perturb_existing(self):
        """The paper-grade property: a new traffic source must not change the
        sample path of existing ones."""
        s1 = RandomStreams(11)
        base = [s1.stream("station0").random() for _ in range(5)]
        s2 = RandomStreams(11)
        _ = s2.stream("station99")  # create an extra stream first
        other = [s2.stream("station0").random() for _ in range(5)]
        assert base == other

    def test_fork_independence(self):
        parent = RandomStreams(4)
        child = parent.fork("replica-0")
        assert child.master_seed != parent.master_seed
        assert parent.fork("replica-0").master_seed == child.master_seed
        assert parent.fork("replica-1").master_seed != child.master_seed

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomStreams("seed")


class TestPropertyBased:
    @given(st.integers(min_value=0, max_value=2**31), st.text(min_size=0, max_size=30))
    def test_any_seed_name_pair_is_stable(self, seed, name):
        a = RandomStreams(seed).stream(name).random()
        b = RandomStreams(seed).stream(name).random()
        assert a == b

    @given(st.integers(min_value=0, max_value=10_000))
    def test_stream_values_in_unit_interval(self, seed):
        r = RandomStreams(seed).stream("u")
        for _ in range(20):
            assert 0.0 <= r.random() < 1.0
