"""Tests for the CSMA/CA contention baseline."""

import random

import pytest

from repro.baselines import CSMAConfig, CSMANetwork
from repro.core import Packet, ServiceClass
from repro.sim import Engine


def make_net(n=6, seed=0, **cfg_kwargs):
    engine = Engine()
    cfg = CSMAConfig(**cfg_kwargs)
    net = CSMANetwork(engine, list(range(n)), config=cfg,
                      rng=random.Random(seed))
    return engine, net


def saturate(net, rng_seed=0, rt=5, be=5):
    rng = random.Random(rng_seed)

    def top(t):
        for sid, st in net.stations.items():
            while len(st.rt_queue) < rt:
                dst = rng.choice([d for d in net.members if d != sid])
                st.enqueue(Packet(src=sid, dst=dst,
                                  service=ServiceClass.PREMIUM, created=t), t)
            while len(st.be_queue) < be:
                dst = rng.choice([d for d in net.members if d != sid])
                st.enqueue(Packet(src=sid, dst=dst,
                                  service=ServiceClass.BEST_EFFORT,
                                  created=t), t)
    net.add_tick_hook(top)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CSMAConfig(cw_min_rt=0)
        with pytest.raises(ValueError):
            CSMAConfig(cw_max=4, cw_min_be=16)
        with pytest.raises(ValueError):
            CSMAConfig(retry_limit=0)

    def test_network_validation(self):
        engine = Engine()
        with pytest.raises(ValueError):
            CSMANetwork(engine, [0])
        with pytest.raises(ValueError):
            CSMANetwork(engine, [0, 0])


class TestSingleStationBehaviour:
    def test_lone_sender_delivers_without_collisions(self):
        engine, net = make_net(2)
        net.start()
        engine.run(until=5)
        t0 = engine.now
        p = Packet(src=0, dst=1, service=ServiceClass.PREMIUM, created=t0)
        net.enqueue(p)
        engine.run(until=t0 + 50)
        assert p.delivered
        assert net.collision_slots == 0

    def test_backoff_delays_transmission(self):
        engine, net = make_net(2, cw_min_rt=8)
        net.start()
        engine.run(until=5)
        t0 = engine.now
        p = Packet(src=0, dst=1, service=ServiceClass.PREMIUM, created=t0)
        net.enqueue(p)
        engine.run(until=t0 + 50)
        # initial backoff in [0, 8): at most 8 slots of access delay
        assert 0 <= p.access_delay < 9

    def test_rt_priority_statistical(self):
        """Smaller window: RT wins the channel more often than BE."""
        engine, net = make_net(6, cw_min_rt=4, cw_min_be=64)
        saturate(net)
        net.start()
        engine.run(until=5000)
        rt = sum(st.sent[ServiceClass.PREMIUM]
                 for st in net.stations.values())
        be = sum(st.sent[ServiceClass.BEST_EFFORT]
                 for st in net.stations.values())
        assert rt > 2 * be

    def test_unknown_station_rejected(self):
        engine, net = make_net(3)
        with pytest.raises(KeyError):
            net.enqueue(Packet(src=9, dst=0, service=ServiceClass.PREMIUM,
                               created=0.0))


class TestContention:
    def test_collisions_happen_under_contention(self):
        engine, net = make_net(8)
        saturate(net)
        net.start()
        engine.run(until=4000)
        assert net.collision_slots > 0
        assert net.metrics.total_delivered > 0
        assert 0 < net.collision_fraction < 1

    def test_collision_fraction_grows_with_n(self):
        """The paper's intro claim against [3], measured."""
        fractions = []
        for n in (4, 8, 16, 32):
            engine, net = make_net(n, seed=n)
            saturate(net, rng_seed=n)
            net.start()
            engine.run(until=6000)
            fractions.append(net.collision_fraction)
        assert fractions[-1] > fractions[0]
        assert fractions[-1] > 0.1

    def test_retry_limit_drops(self):
        engine, net = make_net(16, retry_limit=1, cw_min_rt=4,
                               cw_min_be=8, cw_max=8)
        saturate(net)
        net.start()
        engine.run(until=4000)
        assert net.dropped_retry > 0
        assert net.metrics.lost >= net.dropped_retry

    def test_no_delay_guarantee_under_load(self):
        """Unlike WRT-Ring, deadline misses appear under contention."""
        engine, net = make_net(12, seed=3)
        rng = random.Random(3)

        def top(t):
            for sid, st in net.stations.items():
                while len(st.rt_queue) < 5:
                    dst = rng.choice([d for d in net.members if d != sid])
                    st.enqueue(Packet(src=sid, dst=dst,
                                      service=ServiceClass.PREMIUM,
                                      created=t, deadline=t + 60), t)
        net.add_tick_hook(top)
        net.start()
        engine.run(until=6000)
        assert net.metrics.deadlines.missed > 0

    def test_throughput_capped_by_single_channel(self):
        engine, net = make_net(8)
        saturate(net)
        net.start()
        engine.run(until=5000)
        assert net.metrics.total_delivered <= 5000

    def test_slot_accounting_consistent(self):
        engine, net = make_net(6)
        saturate(net)
        net.start()
        engine.run(until=1000)
        total = net.idle_slots + net.busy_slots
        assert total >= 1000  # one classification per tick
