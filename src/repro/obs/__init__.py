"""Observability: metrics registry, profiling spans, timeline export, and
the perf-trajectory store.

Four layers (see docs/OBSERVABILITY.md):

* :mod:`repro.obs.registry` — counters / gauges / windowed histograms with
  labeled series; near-zero overhead when disabled (the protocol holds
  no-op instruments);
* :mod:`repro.obs.profile` — wall-clock spans around the engine hot loop,
  campaign workers and fuzz cases, aggregated into a per-run perf report;
* :mod:`repro.obs.timeline` — renders protocol traces (SAT holds, RAP
  windows, slot occupancy, membership churn) plus profiling spans to
  Chrome-trace / Perfetto JSON (``python -m repro simulate --timeline``);
* :mod:`repro.obs.perf` — the pinned benchmark suite and ``BENCH_perf.json``
  trajectory with regression gating (``python -m repro perf run|check``).
  Imported lazily (``from repro.obs import perf``): it pulls in the
  campaign and fuzz stacks, which the core layers must not.

Everything is off by default: unobserved runs pay one ``None`` check per
``Engine.run`` call and no-op instrument calls on the ring's event paths.
"""

from repro.obs.integrate import attach_network_metrics, attach_run_profiling
from repro.obs.profile import NullProfiler, Profiler, Span
from repro.obs.registry import (NULL_INSTRUMENT, NULL_REGISTRY, Counter,
                                Gauge, Histogram, MetricsError,
                                MetricsRegistry)
from repro.obs.timeline import (TIMELINE_CATEGORIES, build_timeline,
                                enable_timeline_categories, export_timeline)

__all__ = [
    "MetricsRegistry",
    "MetricsError",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "Profiler",
    "NullProfiler",
    "Span",
    "TIMELINE_CATEGORIES",
    "enable_timeline_categories",
    "build_timeline",
    "export_timeline",
    "attach_network_metrics",
    "attach_run_profiling",
]
