"""Wiring helpers: attach observability to a built protocol stack.

The protocol layers accept observability objects but never construct them —
a run is unobserved unless the caller (CLI, tests, campaign harness) opts
in.  This module is that opt-in surface, and since the event-spine refactor
it is purely a *subscriber* of the protocol's event bus: the core never
imports ``repro.obs``.

* :func:`attach_network_metrics` subscribes a
  :class:`~repro.obs.registry.MetricsRegistry` to a
  :class:`~repro.core.ring.WRTRingNetwork`'s bus (delivery/loss counters,
  SAT-rotation and recovery histograms) and samples per-station queue-depth
  gauges on the per-tick event;
* :func:`attach_run_profiling` subscribes a
  :class:`~repro.obs.profile.Profiler` to the engine's bus so every
  ``Engine.run`` window lands as a wall-clock span ("engine.run", with its
  executed-event count).
"""

from __future__ import annotations

from typing import Optional

from repro.events import types as _ev

__all__ = ["attach_network_metrics", "attach_run_profiling",
           "NetworkMetricsSubscriber"]


class NetworkMetricsSubscriber:
    """Publishes a network's event streams into a metrics registry.

    Counters: ``ring.delivered`` (labeled per service class), ``ring.lost``,
    ``ring.orphaned``, ``ring.kills``, ``ring.inserts``, ``ring.removes``,
    ``sat.releases``, ``sat.holds``, ``recovery.episodes``,
    ``recovery.rebuilds``, plus the impairment/robustness family:
    ``phy.drops`` (labeled kind/reason), ``phy.link_drops`` (labeled per
    link), ``sat.hop_lost``, ``sat.stale_discarded``, ``timer.adapted``,
    ``sat.false_recs`` and ``fault.skipped``,
    plus the bridge family: ``gw.forwards`` (labeled direction) and
    ``gw.drops`` (labeled reason).
    Histograms: ``sat.rotation_slots``, ``recovery.delay_slots``.  Gauges
    (sampled every ``sample_every`` slots): ``ring.members`` and
    per-station/per-queue ``station.queue_depth``.

    When the network owns a broadcast channel, its
    :class:`~repro.phy.channel.ChannelStats` totals are mirrored into
    ``phy.frames_sent``, ``phy.collisions`` and per-kind
    ``phy.frames_delivered`` counters — synced on the sampled tick and by
    :meth:`flush` at end of run (counters appear only once nonzero, so
    channel-less snapshots are unchanged).
    """

    def __init__(self, net, registry, sample_every: int = 100):
        self.net = net
        self.registry = registry
        self.sample_every = sample_every
        self._delivered = {}
        self._lost = registry.counter("ring.lost")
        self._orphaned = registry.counter("ring.orphaned")
        self._rotation = registry.histogram("sat.rotation_slots")
        self._sat_releases = registry.counter("sat.releases")
        self._sat_holds = registry.counter("sat.holds")
        self._kills = registry.counter("ring.kills")
        self._inserts = registry.counter("ring.inserts")
        self._removes = registry.counter("ring.removes")
        self._recoveries = registry.counter("recovery.episodes")
        self._rebuilds = registry.counter("recovery.rebuilds")
        self._recovery_delay = registry.histogram("recovery.delay_slots")
        self._members = registry.gauge("ring.members")
        # lazily created, like the per-service delivery counters: these
        # families only exist in a snapshot once their event fires
        self._phy_drops = {}
        self._link_drops = {}
        self._sat_hop_lost = {}
        self._sat_stale = None
        self._timer_adapted = None
        self._false_rec = None
        self._fault_skipped = {}
        self._gw_forwards = {}
        self._gw_drops = {}
        # last ChannelStats totals already mirrored into counters
        self._phy_seen = {}

    def attach(self, bus) -> "NetworkMetricsSubscriber":
        sub = bus.subscribe
        sub(_ev.SlotDeliver, self._on_deliver)
        sub(_ev.PacketLost, lambda ev: self._lost.inc())
        sub(_ev.PacketOrphaned, lambda ev: self._orphaned.inc())
        sub(_ev.SatRotation, lambda ev: self._rotation.observe(ev.rotation))
        sub(_ev.SatRelease, lambda ev: self._sat_releases.inc())
        sub(_ev.SatHold, lambda ev: self._sat_holds.inc())
        sub(_ev.StationKilled, lambda ev: self._kills.inc())
        sub(_ev.StationInserted, lambda ev: self._inserts.inc())
        sub(_ev.StationRemoved, lambda ev: self._removes.inc())
        sub(_ev.RecoveryEpisode, self._on_episode)
        sub(_ev.RebuildDone, lambda ev: self._rebuilds.inc())
        sub(_ev.FrameDropped, self._on_frame_dropped)
        sub(_ev.SatHopLost, self._on_sat_hop_lost)
        sub(_ev.SatStaleDiscarded, self._on_sat_stale)
        sub(_ev.TimerAdapted, self._on_timer_adapted)
        sub(_ev.FalseSatRec, self._on_false_rec)
        sub(_ev.FaultSkipped, self._on_fault_skipped)
        sub(_ev.GatewayForward, self._on_gw_forward)
        sub(_ev.GatewayDrop, self._on_gw_drop)
        sub(_ev.RingTick, self._on_tick)
        return self

    def _on_deliver(self, ev) -> None:
        service = ev.packet.service
        counter = self._delivered.get(service)
        if counter is None:
            counter = self._delivered[service] = self.registry.counter(
                "ring.delivered", service=service.short)
        counter.inc()

    def _on_episode(self, ev) -> None:
        self._recoveries.inc()
        if ev.total_delay is not None:
            self._recovery_delay.observe(ev.total_delay)

    def _on_frame_dropped(self, ev) -> None:
        key = (ev.kind, ev.reason)
        counter = self._phy_drops.get(key)
        if counter is None:
            counter = self._phy_drops[key] = self.registry.counter(
                "phy.drops", kind=ev.kind, reason=ev.reason)
        counter.inc()
        link = f"{ev.src}->{ev.dst}"
        link_counter = self._link_drops.get(link)
        if link_counter is None:
            link_counter = self._link_drops[link] = self.registry.counter(
                "phy.link_drops", link=link)
        link_counter.inc()

    def _on_sat_hop_lost(self, ev) -> None:
        counter = self._sat_hop_lost.get(ev.reason)
        if counter is None:
            counter = self._sat_hop_lost[ev.reason] = self.registry.counter(
                "sat.hop_lost", reason=ev.reason)
        counter.inc()

    def _on_sat_stale(self, ev) -> None:
        if self._sat_stale is None:
            self._sat_stale = self.registry.counter("sat.stale_discarded")
        self._sat_stale.inc()

    def _on_timer_adapted(self, ev) -> None:
        if self._timer_adapted is None:
            self._timer_adapted = self.registry.counter("timer.adapted")
        self._timer_adapted.inc()

    def _on_false_rec(self, ev) -> None:
        if self._false_rec is None:
            self._false_rec = self.registry.counter("sat.false_recs")
        self._false_rec.inc()

    def _on_fault_skipped(self, ev) -> None:
        counter = self._fault_skipped.get(ev.kind)
        if counter is None:
            counter = self._fault_skipped[ev.kind] = self.registry.counter(
                "fault.skipped", kind=ev.kind)
        counter.inc()

    def _on_gw_forward(self, ev) -> None:
        counter = self._gw_forwards.get(ev.direction)
        if counter is None:
            counter = self._gw_forwards[ev.direction] = self.registry.counter(
                "gw.forwards", direction=ev.direction)
        counter.inc()

    def _on_gw_drop(self, ev) -> None:
        counter = self._gw_drops.get(ev.reason)
        if counter is None:
            counter = self._gw_drops[ev.reason] = self.registry.counter(
                "gw.drops", reason=ev.reason)
        counter.inc()

    def _sync_channel_stats(self) -> None:
        stats = getattr(getattr(self.net, "channel", None), "stats", None)
        if stats is None:
            return
        totals = {("phy.frames_sent", ()): stats.frames_sent,
                  ("phy.collisions", ()): stats.collisions}
        for kind, count in stats.deliveries_by_kind.items():
            totals[("phy.frames_delivered", (("kind", kind),))] = count
        seen = self._phy_seen
        for key, total in totals.items():
            delta = total - seen.get(key, 0)
            if delta <= 0:
                continue
            name, labels = key
            self.registry.counter(name, **dict(labels)).inc(delta)
            seen[key] = total

    def flush(self) -> None:
        """Mirror any counts not yet published (call before a snapshot)."""
        self._sync_channel_stats()

    def _on_tick(self, ev) -> None:
        if int(ev.t) % self.sample_every:
            return
        net = self.net
        self._members.set(net.n)
        self._sync_channel_stats()
        registry = self.registry
        for sid in net.members:
            for queue, depth in net.stations[sid].queue_depths().items():
                registry.gauge("station.queue_depth",
                               station=sid, queue=queue).set(depth)


def attach_network_metrics(net, registry,
                           sample_every: int = 100) -> Optional[NetworkMetricsSubscriber]:
    """Subscribe ``registry`` to ``net.events``.

    ``sample_every`` is the sampling period in slots for the per-station
    gauges (queue depths, membership); the event-driven instruments
    (deliveries, losses, rotations, recoveries) are exact regardless.
    A disabled registry subscribes nothing — the network's emit sites keep
    their no-op emitters, so an unobserved run pays nothing.
    """
    if sample_every < 1:
        raise ValueError(f"sample_every must be >= 1, got {sample_every}")
    if not registry.enabled:
        return None
    return NetworkMetricsSubscriber(net, registry, sample_every).attach(net.events)


def attach_run_profiling(engine, profiler: Optional[object]) -> None:
    """Subscribe ``profiler`` to ``engine.events`` (``None`` detaches)."""
    unsub = getattr(engine, "_profiler_unsub", None)
    if unsub is not None:
        unsub()
        engine._profiler_unsub = None
    if profiler is None:
        return

    def on_run(ev) -> None:
        profiler.record_span("engine.run", ev.wall_start, ev.wall_elapsed,
                             events=ev.events, sim_from=ev.sim_from,
                             sim_to=ev.t)

    engine._profiler_unsub = engine.events.subscribe(
        _ev.EngineRunWindow, on_run)
