"""Wiring helpers: attach observability to a built protocol stack.

The protocol layers accept observability objects but never construct them —
a run is unobserved unless the caller (CLI, tests, campaign harness) opts
in.  This module is that opt-in surface:

* :func:`attach_network_metrics` binds a :class:`~repro.obs.registry.MetricsRegistry`
  to a :class:`~repro.core.ring.WRTRingNetwork` (delivery/loss counters,
  SAT-rotation and recovery histograms — see ``WRTRingNetwork.bind_observability``)
  and adds a periodic tick hook publishing per-station queue-depth gauges
  (labeled series, one per station and class queue);
* :func:`attach_run_profiling` points the engine at a
  :class:`~repro.obs.profile.Profiler` so every ``Engine.run`` window lands
  as a wall-clock span ("engine.run", with its executed-event count).
"""

from __future__ import annotations

from typing import Optional

__all__ = ["attach_network_metrics", "attach_run_profiling"]


def attach_network_metrics(net, registry, sample_every: int = 100) -> None:
    """Bind ``registry`` to ``net`` and sample station state periodically.

    ``sample_every`` is the sampling period in slots for the per-station
    gauges (queue depths, membership); the event-driven instruments
    (deliveries, losses, rotations, recoveries) are exact regardless.
    """
    if sample_every < 1:
        raise ValueError(f"sample_every must be >= 1, got {sample_every}")
    net.bind_observability(registry)
    if not registry.enabled:
        return
    members_gauge = registry.gauge("ring.members")

    def sample(t: float) -> None:
        if int(t) % sample_every:
            return
        members_gauge.set(net.n)
        for sid in net.members:
            for queue, depth in net.stations[sid].queue_depths().items():
                registry.gauge("station.queue_depth",
                               station=sid, queue=queue).set(depth)

    net.add_tick_hook(sample)


def attach_run_profiling(engine, profiler: Optional[object]) -> None:
    """Attach ``profiler`` to ``engine`` (``None`` detaches)."""
    engine.profiler = profiler
