"""Metrics registry: counters, gauges and windowed histograms.

The registry is the publishing surface of the observability subsystem
(docs/OBSERVABILITY.md).  Protocol layers bind *instruments* once — a
:class:`Counter`, :class:`Gauge` or :class:`Histogram`, optionally with
labels — and update them from hot paths.  Three properties drive the design:

* **near-zero overhead when disabled** — a disabled registry hands out the
  shared :data:`NULL_INSTRUMENT`, whose update methods are empty; callers
  keep unconditional ``instrument.inc()`` calls instead of sprinkling
  ``if registry`` checks through the protocol code;
* **labeled series** — ``registry.counter("ring.delivered",
  service="premium")`` creates one time series per label combination under a
  common family name, so per-class / per-station breakdowns aggregate
  naturally (:meth:`MetricsRegistry.series`);
* **stable snapshots** — :meth:`MetricsRegistry.snapshot` renders everything
  to plain JSON-ready dicts with deterministically ordered keys, the shape
  embedded in perf reports and run summaries.

Instrument *kinds* are namespaced by name: asking for ``counter("x")`` after
``gauge("x")`` raises :class:`MetricsError` (label collisions across kinds
are bugs, not series).  The same ``(name, labels)`` pair always returns the
same instrument object.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["MetricsError", "Counter", "Gauge", "Histogram",
           "MetricsRegistry", "NULL_INSTRUMENT", "NULL_REGISTRY"]


class MetricsError(ValueError):
    """Raised on instrument name/kind collisions or bad arguments."""


LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(key: LabelKey) -> str:
    if not key:
        return ""
    return ",".join(f"{k}={v}" for k, v in key)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def summary(self) -> Dict[str, Any]:
        return {"value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}{{{_label_str(self.labels)}}}={self.value}>"


class Gauge:
    """A value that goes up and down (queue depth, occupancy, membership)."""

    __slots__ = ("name", "labels", "value", "updates")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1

    def add(self, delta: float) -> None:
        self.value += delta
        self.updates += 1

    def summary(self) -> Dict[str, Any]:
        return {"value": self.value, "updates": self.updates}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}{{{_label_str(self.labels)}}}={self.value}>"


class Histogram:
    """Windowed distribution: lifetime count/sum/min/max plus a bounded
    window of recent samples for percentiles.

    The window (default 1024 samples) bounds memory on long runs; lifetime
    aggregates are exact regardless of window size.
    """

    __slots__ = ("name", "labels", "window", "_recent",
                 "count", "total", "vmin", "vmax")
    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey = (), window: int = 1024):
        if window < 1:
            raise MetricsError(f"histogram window must be >= 1, got {window}")
        self.name = name
        self.labels = labels
        self.window = window
        self._recent: deque = deque(maxlen=window)
        self.count = 0
        self.total = 0.0
        self.vmin: Optional[float] = None
        self.vmax: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value
        self._recent.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """q-th percentile (0..100) over the retained window."""
        if not self._recent:
            return None
        if not 0.0 <= q <= 100.0:
            raise MetricsError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self._recent)
        idx = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[idx]

    def recent(self) -> List[float]:
        return list(self._recent)

    def summary(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "window": self.window,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Histogram {self.name}{{{_label_str(self.labels)}}} "
                f"n={self.count} mean={self.mean:.3g}>")


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind.

    Hot paths hold a reference and call ``inc``/``set``/``add``/``observe``
    unconditionally; when observability is off the call is an empty method —
    the cheapest "disabled" that does not require branching at every site.
    """

    __slots__ = ()
    kind = "null"
    name = ""
    labels: LabelKey = ()
    value = 0
    count = 0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def summary(self) -> Dict[str, Any]:
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullInstrument>"


#: the singleton no-op instrument handed out by disabled registries
NULL_INSTRUMENT = _NullInstrument()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Instrument factory and store.

    ``enabled`` is fixed at construction: a disabled registry returns
    :data:`NULL_INSTRUMENT` from every factory method and records nothing
    (so instruments bound early stay no-ops for the registry's lifetime —
    enable-after-bind is deliberately not supported, it would force a
    branch back into every hot path).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: Dict[Tuple[str, LabelKey], Any] = {}
        self._kinds: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, labels: Dict[str, Any],
             **kwargs: Any):
        if not self.enabled:
            return NULL_INSTRUMENT
        if not name:
            raise MetricsError("instrument name must be non-empty")
        known = self._kinds.get(name)
        if known is not None and known != kind:
            raise MetricsError(
                f"instrument {name!r} already registered as a {known}, "
                f"cannot re-register as a {kind}")
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = _KINDS[kind](name, key[1], **kwargs)
            self._instruments[key] = instrument
            self._kinds[name] = kind
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, window: int = 1024,
                  **labels: Any) -> Histogram:
        return self._get("histogram", name, labels, window=window)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def series(self, name: str) -> List[Any]:
        """Every instrument of the named family, label-sorted."""
        out = [(key[1], inst) for key, inst in self._instruments.items()
               if key[0] == name]
        return [inst for _, inst in sorted(out, key=lambda kv: kv[0])]

    def names(self) -> List[str]:
        return sorted({key[0] for key in self._instruments})

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready view: ``{family: {label_str: summary}}``.

        Counters and gauges render their value directly; histograms render
        their summary dict.  Keys are sorted so snapshots diff cleanly.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for (name, labels), inst in sorted(self._instruments.items()):
            family = out.setdefault(name, {})
            if inst.kind == "histogram":
                family[_label_str(labels)] = inst.summary()
            else:
                family[_label_str(labels)] = inst.value
        return out

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._kinds


#: shared disabled registry — the default wired into protocol objects
NULL_REGISTRY = MetricsRegistry(enabled=False)
