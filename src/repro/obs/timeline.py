"""Chrome-trace / Perfetto timeline export.

Renders a run's structured trace (:class:`repro.sim.trace.TraceRecorder`)
and optional wall-clock profiling spans (:class:`repro.obs.profile.Profiler`)
to the Chrome trace-event JSON format, loadable in ``chrome://tracing`` and
https://ui.perfetto.dev — the convergence/occupancy-timeline view the
self-stabilizing TDMA literature uses to argue correctness and cost, for our
protocol events.

Mapping (simulated time: 1 slot = 1 ms):

========================  =====================================================
trace categories          timeline rendering
========================  =====================================================
``sat.arrive`` →          "SAT hold" duration events, one row (tid) per
``sat.release``           station, on the *protocol* process track
``rap.open`` →            "RAP" duration events on a dedicated RAP row
``rap.close``
``ring.rebuild_start`` →  "rebuild" duration events on the ring row
``ring.rebuild_done``
``slot.occupancy``        a "slot occupancy" counter series (busy slots per
                          tick; opt-in trace category, see TraceRecorder)
everything else           instant events on the ring row (kills, joins,
                          leaves, SAT loss/timeouts/recovery, link losses)
========================  =====================================================

Profiler spans land on a second *wall-clock* process track with one row per
span name, normalized so the earliest span starts at ts 0.

``sat.arrive`` and ``slot.occupancy`` are opt-in trace categories (disabled
by default so steady-state runs and fuzz trace hashes are unaffected);
:func:`enable_timeline_categories` switches them on before a run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["TIMELINE_CATEGORIES", "enable_timeline_categories",
           "build_timeline", "export_timeline"]

#: trace categories that only the timeline needs (opt-in, off by default)
TIMELINE_CATEGORIES = ("sat.arrive", "slot.occupancy")

#: µs of timeline time per simulated slot (1 slot = 1 ms)
US_PER_SLOT = 1000.0

_PID_PROTOCOL = 1
_PID_WALLCLOCK = 2

#: tids on the protocol track below any station row
_TID_RING = 0
_TID_RAP = 1
_TID_STATION_BASE = 10   # station s renders on tid 10 + s


def enable_timeline_categories(trace, net=None) -> None:
    """Enable the opt-in categories the timeline needs on ``trace``.

    Pass the network as well so its trace adapter re-checks which event
    subscriptions the now-enabled categories need (``slot.occupancy`` is
    only emitted — and its per-tick busy count only computed — while the
    adapter subscribes to it).
    """
    trace.enable(*TIMELINE_CATEGORIES)
    if net is not None and getattr(net, "_trace_adapter", None) is not None:
        net._trace_adapter.refresh(net.events)


def _meta(pid: int, name: str, tid: Optional[int] = None,
          tname: Optional[str] = None) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = [{
        "ph": "M", "pid": pid, "name": "process_name",
        "args": {"name": name}}]
    if tid is not None:
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_name", "args": {"name": tname}})
    return events


def _complete(name: str, cat: str, ts: float, dur: float, tid: int,
              args: Optional[Dict[str, Any]] = None,
              pid: int = _PID_PROTOCOL) -> Dict[str, Any]:
    event = {"name": name, "cat": cat, "ph": "X",
             "ts": ts, "dur": max(dur, 0.0), "pid": pid, "tid": tid}
    if args:
        event["args"] = args
    return event


def _instant(name: str, cat: str, ts: float, tid: int,
             args: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    event = {"name": name, "cat": cat, "ph": "i", "s": "g",
             "ts": ts, "pid": _PID_PROTOCOL, "tid": tid}
    if args:
        event["args"] = args
    return event


def build_timeline(trace, profiler=None) -> List[Dict[str, Any]]:
    """Render trace events (+ profiler spans) to Chrome trace events."""
    events: List[Dict[str, Any]] = []
    end_ts = max((ev.time for ev in trace.events), default=0.0) * US_PER_SLOT

    stations: List[int] = []
    sat_open: Dict[int, float] = {}      # station -> hold start ts
    sat_kind: Dict[int, str] = {}
    rap_open: Optional[Dict[str, Any]] = None
    rebuild_open: Optional[Dict[str, Any]] = None

    def note_station(sid: Any) -> None:
        if isinstance(sid, int) and sid not in stations:
            stations.append(sid)

    for ev in trace.events:
        ts = ev.time * US_PER_SLOT
        cat = ev.category
        if cat == "sat.arrive":
            sid = ev["station"]
            note_station(sid)
            sat_open[sid] = ts
            sat_kind[sid] = ev.get("kind", "SAT")
        elif cat == "sat.release":
            sid = ev["station"]
            note_station(sid)
            start = sat_open.pop(sid, ts)
            events.append(_complete(
                sat_kind.pop(sid, "SAT"), "sat", start, ts - start,
                _TID_STATION_BASE + sid, {"to": ev.get("to")}))
        elif cat == "rap.open":
            if rap_open is not None:   # previous RAP never closed (truncated)
                events.append(_complete("RAP", "rap", rap_open["ts"],
                                        ts - rap_open["ts"], _TID_RAP,
                                        rap_open["args"]))
            rap_open = {"ts": ts, "args": {"ingress": ev.get("ingress")}}
        elif cat == "rap.close":
            start = rap_open["ts"] if rap_open is not None else ts
            args = dict(rap_open["args"]) if rap_open is not None else {}
            args["joined"] = ev.get("joined")
            events.append(_complete("RAP", "rap", start, ts - start,
                                    _TID_RAP, args))
            rap_open = None
        elif cat == "rap.request":
            events.append(_instant("join request", "rap", ts, _TID_RAP,
                                   dict(ev.fields)))
        elif cat == "slot.occupancy":
            events.append({
                "name": "slot occupancy", "cat": "slots", "ph": "C",
                "ts": ts, "pid": _PID_PROTOCOL,
                "args": {"busy": ev.get("busy", 0),
                         "idle": max(ev.get("capacity", 0)
                                     - ev.get("busy", 0), 0)}})
        elif cat == "ring.rebuild_start":
            rebuild_open = {"ts": ts, "args": dict(ev.fields)}
        elif cat == "ring.rebuild_done":
            start = rebuild_open["ts"] if rebuild_open is not None else ts
            args = dict(rebuild_open["args"]) if rebuild_open else {}
            args.update(ev.fields)
            events.append(_complete("rebuild", "ring", start, ts - start,
                                    _TID_RING, args))
            rebuild_open = None
        else:
            # every other category: an instant marker on the ring row
            events.append(_instant(cat, cat.split(".", 1)[0], ts, _TID_RING,
                                   dict(ev.fields)))

    # close anything still open when the run ended
    for sid, start in sorted(sat_open.items()):
        events.append(_complete(sat_kind.get(sid, "SAT"), "sat", start,
                                end_ts - start, _TID_STATION_BASE + sid,
                                {"truncated": True}))
    if rap_open is not None:
        events.append(_complete("RAP", "rap", rap_open["ts"],
                                end_ts - rap_open["ts"], _TID_RAP,
                                dict(rap_open["args"], truncated=True)))
    if rebuild_open is not None:
        events.append(_complete("rebuild", "ring", rebuild_open["ts"],
                                end_ts - rebuild_open["ts"], _TID_RING,
                                dict(rebuild_open["args"], truncated=True)))

    # track naming
    events.extend(_meta(_PID_PROTOCOL, "protocol (simulated time)"))
    events.extend(_meta(_PID_PROTOCOL, "protocol (simulated time)",
                        _TID_RING, "ring")[1:])
    events.extend(_meta(_PID_PROTOCOL, "protocol (simulated time)",
                        _TID_RAP, "RAP")[1:])
    for sid in sorted(stations):
        events.extend(_meta(_PID_PROTOCOL, "protocol (simulated time)",
                            _TID_STATION_BASE + sid, f"station {sid}")[1:])

    # wall-clock profiling spans on their own process track
    if profiler is not None and profiler.spans:
        t0 = min(s.start for s in profiler.spans)
        names: Dict[str, int] = {}
        for span in profiler.spans:
            tid = names.setdefault(span.name, len(names))
            events.append(_complete(
                span.name, "profile", (span.start - t0) * 1e6,
                span.duration * 1e6, tid,
                {k: v for k, v in span.meta.items()}, pid=_PID_WALLCLOCK))
        events.extend(_meta(_PID_WALLCLOCK, "profiling (wall clock)"))
        for name, tid in names.items():
            events.extend(_meta(_PID_WALLCLOCK, "profiling (wall clock)",
                                tid, name)[1:])
    return events


def export_timeline(path, trace, profiler=None,
                    extra: Optional[Dict[str, Any]] = None) -> int:
    """Write Chrome-trace JSON for ``trace`` to ``path``; returns the
    number of trace events emitted (metadata records excluded)."""
    events = build_timeline(trace, profiler)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(extra or {}, exporter="repro.obs.timeline",
                          slot_us=US_PER_SLOT),
    }
    with Path(path).open("w") as fh:
        json.dump(document, fh, default=str)
    return sum(1 for e in events if e.get("ph") != "M")
