"""Perf-trajectory store and regression gating.

``python -m repro perf run`` executes a pinned benchmark suite — kernel
event-stepping rate, saturated-ring tick rate, sweep throughput, fuzz
cases/sec, multi-ring fabric tick rate — and appends a machine-readable
record to a ``BENCH_perf.json``
trajectory file.  ``python -m repro perf check`` compares the latest record
against a baseline (an explicit baseline file, or the median of the earlier
records in the same trajectory) and fails when any benchmark regressed by
more than the threshold (default 15%).

All benchmarks report *rates* (higher is better), each the best of
``repeats`` runs to damp scheduler noise.  The trajectory document::

    {"schema": 1,
     "records": [{"timestamp": ..., "python": ..., "platform": ...,
                  "quick": bool, "note": ..., "results": {bench: rate}},
                 ...]}

is what every future perf PR is measured through: CI appends a record per
push and uploads the file as an artifact, so the bench trajectory is never
empty again.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["SCHEMA", "DEFAULT_THRESHOLD", "SUITE", "Regression",
           "run_suite", "load_trajectory", "append_record",
           "baseline_results", "compare_results", "check_trajectory"]

SCHEMA = 1
DEFAULT_THRESHOLD = 0.15


# ----------------------------------------------------------------------
# the pinned suite
# ----------------------------------------------------------------------
def bench_kernel_step_rate(quick: bool = False) -> float:
    """Engine events/sec over a chained-event hot loop (pure kernel)."""
    from repro.sim.engine import Engine

    count = 20_000 if quick else 100_000
    engine = Engine()

    def chain(i: int) -> None:
        if i < count:
            engine.schedule(1.0, chain, i + 1)

    engine.schedule(0.0, chain, 0)
    start = time.perf_counter()
    engine.run()
    return engine.events_executed / (time.perf_counter() - start)


def bench_ring_tick_rate(quick: bool = False) -> float:
    """Slot-ticks/sec of a fully saturated 16-station WRT-Ring."""
    import random

    from repro.core import (Packet, ServiceClass, WRTRingConfig,
                            WRTRingNetwork)
    from repro.sim.engine import Engine

    horizon = 500 if quick else 2000
    engine = Engine()
    cfg = WRTRingConfig.homogeneous(range(16), l=2, k=2, rap_enabled=False)
    net = WRTRingNetwork(engine, list(range(16)), cfg)
    rng = random.Random(1)

    def top(t: float) -> None:
        for sid in net.members:
            st = net.stations[sid]
            while len(st.rt_queue) < 5:
                dst = rng.choice([d for d in net.members if d != sid])
                st.enqueue(Packet(src=sid, dst=dst,
                                  service=ServiceClass.PREMIUM, created=t), t)

    net.add_tick_hook(top)
    net.start()
    start = time.perf_counter()
    engine.run(until=horizon)
    return horizon / (time.perf_counter() - start)


def bench_batched_tick_rate(quick: bool = False) -> float:
    """Slot-ticks/sec of a 16-station WRT-Ring under the batched kernel.

    The ring idles (SAT circulation only), no trace attached — the regime
    the analytic fast-forward was built for, and the configuration where
    its closed-form bulk path carries every skipped slot.  The acceptance
    target is >= 10x ``ring_tick_rate``.
    """
    from repro.core import WRTRingConfig, WRTRingNetwork
    from repro.kernel import install_batched_kernel
    from repro.sim.engine import Engine

    horizon = 50_000 if quick else 400_000
    engine = Engine()
    cfg = WRTRingConfig.homogeneous(range(16), l=2, k=2, rap_enabled=False)
    net = WRTRingNetwork(engine, list(range(16)), cfg)
    install_batched_kernel(net)
    net.start()
    start = time.perf_counter()
    engine.run(until=horizon)
    return horizon / (time.perf_counter() - start)


def bench_saturated_slot_rate(quick: bool = False) -> float:
    """Slot-ticks/sec of a fully backlogged 32-station ring under the
    batched kernel's vectorized saturated path.

    Every station holds a successor-addressed backlog (the regime the
    paper's Theorems 1-3 bound), trace off, RAP off — so the kernel
    advances whole SAT windows analytically instead of stepping slots.
    The acceptance target is >= 5x ``ring_tick_rate`` (the scalar
    saturated-slot figure).
    """
    from repro.core import (Packet, ServiceClass, WRTRingConfig,
                            WRTRingNetwork)
    from repro.sim.engine import Engine
    from repro.kernel import install_batched_kernel

    n = 32
    horizon = 20_000 if quick else 100_000
    engine = Engine()
    cfg = WRTRingConfig.homogeneous(range(n), l=2, k=1, rap_enabled=False)
    net = WRTRingNetwork(engine, list(range(n)), cfg)
    install_batched_kernel(net)
    net.start()
    # backlog sized to outlast the horizon: <= l+k sends per rotation and
    # a rotation is at least n slots, so this never drains mid-run
    rotations = horizon // n + 2
    for sid in net.members:
        st = net.stations[sid]
        dst = net.successor(sid)
        for _ in range(2 * rotations):
            st.enqueue(Packet(src=sid, dst=dst,
                              service=ServiceClass.PREMIUM, created=0.0), 0.0)
        for _ in range(rotations):
            st.enqueue(Packet(src=sid, dst=dst,
                              service=ServiceClass.BEST_EFFORT, created=0.0),
                       0.0)
    start = time.perf_counter()
    engine.run(until=horizon)
    return horizon / (time.perf_counter() - start)


def bench_sweep_throughput(quick: bool = False) -> float:
    """Campaign points/sec: a small serial sweep, no store, quiet."""
    from repro.campaign import CampaignRunner, Sweep
    from repro.scenarios import Scenario, TrafficMix

    horizon = 300.0 if quick else 1000.0
    base = Scenario(n=6, horizon=horizon, seed=0,
                    traffic=TrafficMix(kind="poisson", rate=0.05))
    sweep = Sweep(base=base, axes={"n": [4, 5, 6, 7]}, seed=0)
    runner = CampaignRunner(sweep, store=None, workers=0,
                            progress=lambda *a, **k: None)
    start = time.perf_counter()
    result = runner.run()
    elapsed = time.perf_counter() - start
    if not result.ok:  # pragma: no cover - the pinned sweep never fails
        raise RuntimeError(f"perf sweep failed: {result.failures[0].error}")
    return len(result.records) / elapsed


def bench_fuzz_case_rate(quick: bool = False) -> float:
    """Fuzz cases/sec: generate+run pinned cases, no shrinking, no store."""
    from repro.fuzz.generate import generate_case
    from repro.fuzz.runner import run_case

    cases = 3 if quick else 8
    max_slots = 400 if quick else 800
    start = time.perf_counter()
    for index in range(cases):
        run_case(generate_case(7, index, max_slots=max_slots))
    return cases / (time.perf_counter() - start)


def bench_qoe_score_rate(quick: bool = False) -> float:
    """Perceptual scoring throughput: packet outcomes/sec through the full
    loss-run -> burst-ratio -> E-model -> MOS pipeline."""
    import random

    from repro.qoe.score import score_outcomes

    flows = 40 if quick else 200
    per_flow = 500
    rng = random.Random(5)
    streams = [[rng.random() > 0.03 for _ in range(per_flow)]
               for _ in range(flows)]
    start = time.perf_counter()
    for outcomes in streams:
        score_outcomes(outcomes, delay_ms=rng.uniform(5.0, 250.0))
    return flows * per_flow / (time.perf_counter() - start)


def bench_fabric_tick_rate(quick: bool = False) -> float:
    """Fabric slot-ticks/sec: a 4-ring chain co-simulated serially with
    cross-ring CBR flows (trace off — measures the sync+exchange path)."""
    from repro.fabric import FabricRunner, Topology

    horizon = 300.0 if quick else 1200.0
    topo = Topology(rings=4, ring_size=8, layout="chain", cross_flows=6,
                    flow_period=40.0, horizon=horizon, seed=1)
    start = time.perf_counter()
    with FabricRunner(topo, mode="serial", trace=False) as runner:
        runner.run()
    return horizon / (time.perf_counter() - start)


def bench_adaptive_recovery_rate(quick: bool = False) -> float:
    """Slots/sec with adaptive timers active on a lossy channel: the
    recovery hot path (per-rotation estimator updates, adaptive re-arms,
    expiry-driven SAT_REC walks) that the fixed-timer benches never touch."""
    from repro.phy.impairments import ImpairmentSpec
    from repro.scenarios import Scenario, TrafficMix, build_scenario

    horizon = 1500.0 if quick else 6000.0
    scenario = Scenario(n=8, adaptive_timers=True, horizon=horizon, seed=2,
                        traffic=TrafficMix(kind="poisson", rate=0.05),
                        impairments=ImpairmentSpec(loss_prob=0.01))
    built = build_scenario(scenario)
    engine = built.engine
    start = time.perf_counter()
    engine.run(until=horizon)
    return horizon / (time.perf_counter() - start)


SUITE: Dict[str, Callable[[bool], float]] = {
    "kernel_step_rate": bench_kernel_step_rate,
    "ring_tick_rate": bench_ring_tick_rate,
    "batched_tick_rate": bench_batched_tick_rate,
    "saturated_slot_rate": bench_saturated_slot_rate,
    "sweep_throughput": bench_sweep_throughput,
    "fuzz_case_rate": bench_fuzz_case_rate,
    "fabric_tick_rate": bench_fabric_tick_rate,
    "qoe_score_rate": bench_qoe_score_rate,
    "adaptive_recovery_rate": bench_adaptive_recovery_rate,
}


def run_suite(quick: bool = False, repeats: int = 2,
              progress: Optional[Callable[[str], None]] = None,
              profiler=None) -> Dict[str, float]:
    """Run every pinned benchmark; rate = best of ``repeats`` runs."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    emit = progress if progress is not None else (lambda line: None)
    results: Dict[str, float] = {}
    for name, bench in SUITE.items():
        best = 0.0
        for attempt in range(repeats):
            if profiler is not None:
                with profiler.span(f"perf.{name}", attempt=attempt):
                    rate = bench(quick)
            else:
                rate = bench(quick)
            best = max(best, rate)
        results[name] = best
        emit(f"  {name:24s} {best:12,.1f} /s")
    return results


# ----------------------------------------------------------------------
# trajectory store
# ----------------------------------------------------------------------
def load_trajectory(path) -> Dict[str, Any]:
    """Load a trajectory document; a missing file is an empty trajectory."""
    path = Path(path)
    if not path.exists():
        return {"schema": SCHEMA, "records": []}
    document = json.loads(path.read_text())
    if isinstance(document, list):   # tolerate a bare record list
        document = {"schema": SCHEMA, "records": document}
    if document.get("schema") != SCHEMA:
        raise ValueError(f"unsupported perf trajectory schema "
                         f"{document.get('schema')!r} in {path}")
    document.setdefault("records", [])
    return document


def append_record(path, results: Dict[str, float], quick: bool = False,
                  note: Optional[str] = None) -> Dict[str, Any]:
    """Append one record to the trajectory at ``path`` (created if absent)."""
    path = Path(path)
    document = load_trajectory(path)
    record: Dict[str, Any] = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": f"{platform.system()}-{platform.machine()}",
        "argv": " ".join(sys.argv[:1]),
        "quick": quick,
        "results": {k: round(v, 3) for k, v in sorted(results.items())},
    }
    if note:
        record["note"] = note
    document["records"].append(record)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2) + "\n")
    return record


# ----------------------------------------------------------------------
# regression gating
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Regression:
    """One benchmark that fell below the gate."""

    bench: str
    baseline: float
    current: float
    threshold: float

    @property
    def ratio(self) -> float:
        return self.current / self.baseline if self.baseline else 0.0

    def describe(self) -> str:
        return (f"{self.bench}: {self.current:,.1f}/s vs baseline "
                f"{self.baseline:,.1f}/s ({self.ratio:.2%}, gate "
                f"{1.0 - self.threshold:.0%})")


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def baseline_results(document: Dict[str, Any],
                     exclude_latest: bool = False) -> Dict[str, float]:
    """Per-bench medians over a trajectory's records.

    With ``exclude_latest`` the newest record is left out — the shape used
    when gating that record against its own trajectory's history.
    """
    records = document.get("records", [])
    if exclude_latest:
        records = records[:-1]
    series: Dict[str, List[float]] = {}
    for record in records:
        for bench, rate in record.get("results", {}).items():
            series.setdefault(bench, []).append(float(rate))
    return {bench: _median(rates) for bench, rates in sorted(series.items())}


def compare_results(baseline: Dict[str, float], current: Dict[str, float],
                    threshold: float = DEFAULT_THRESHOLD) -> List[Regression]:
    """Regressions: benches whose rate fell below baseline*(1-threshold).

    Benches present on only one side are skipped (new or retired
    benchmarks must not wedge the gate).
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    out: List[Regression] = []
    for bench, base_rate in sorted(baseline.items()):
        rate = current.get(bench)
        if rate is None or base_rate <= 0:
            continue
        if rate < base_rate * (1.0 - threshold):
            out.append(Regression(bench, base_rate, rate, threshold))
    return out


def check_trajectory(path, baseline_path=None,
                     threshold: float = DEFAULT_THRESHOLD
                     ) -> Tuple[bool, List[Regression], Dict[str, Any]]:
    """Gate the latest record at ``path``.

    Baseline: the (median of the) records in ``baseline_path`` when given,
    else the median of the *earlier* records in the same trajectory.  A
    trajectory whose history is empty passes trivially (there is nothing to
    regress against yet).

    Returns ``(ok, regressions, info)`` where ``info`` carries the resolved
    baseline/current results for reporting.
    """
    document = load_trajectory(path)
    records = document["records"]
    if not records:
        raise ValueError(f"no perf records in {path}; run `perf run` first")
    current = {k: float(v) for k, v in records[-1]["results"].items()}

    if baseline_path is not None:
        baseline = baseline_results(load_trajectory(baseline_path))
    else:
        baseline = baseline_results(document, exclude_latest=True)

    regressions = compare_results(baseline, current, threshold)
    info = {
        "baseline": baseline,
        "current": current,
        "threshold": threshold,
        "records": len(records),
        "baseline_source": (str(baseline_path) if baseline_path is not None
                            else "trajectory history"),
    }
    return (not regressions, regressions, info)
