"""Wall-clock profiling spans.

A :class:`Profiler` collects named wall-clock spans — the engine hot loop,
campaign workers, fuzz cases — and aggregates them into a per-run perf
report.  Spans also feed the Chrome-trace exporter
(:mod:`repro.obs.timeline`), which renders them on a dedicated wall-clock
track next to the simulated-time protocol events.

Two recording styles:

* ``with profiler.span("engine.run", events=123):`` — context manager, for
  code that brackets a region;
* ``profiler.record_span(name, start, duration, **meta)`` — for hot paths
  that already measured their own ``time.perf_counter()`` window (the engine
  does this so the profiling cost is two clock reads per ``run()`` call,
  nothing per event).

:class:`NullProfiler` is the disabled stand-in: same API, records nothing.
Pass ``profiler=None`` to integration points for true zero cost — they keep
a ``None`` check on the cold side of the hot loop.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Profiler", "NullProfiler"]


@dataclass
class Span:
    """One measured wall-clock region.

    ``start`` is a ``time.perf_counter()`` value — meaningful only relative
    to other spans of the same profiler (the timeline exporter normalizes
    against the earliest span).
    """

    name: str
    start: float
    duration: float
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        return self.start + self.duration


class Profiler:
    """Collects :class:`Span` records and aggregates them."""

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **meta: Any) -> Iterator[Dict[str, Any]]:
        """Record the wrapped region; yields the (mutable) meta dict so the
        body can attach results (e.g. event counts) before the span closes."""
        start = time.perf_counter()
        try:
            yield meta
        finally:
            self.spans.append(Span(name, start,
                                   time.perf_counter() - start, meta))

    def record_span(self, name: str, start: float, duration: float,
                    **meta: Any) -> Span:
        """Record a region timed by the caller (perf_counter timestamps)."""
        span = Span(name, start, duration, meta)
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def total(self, name: str) -> float:
        return sum(s.duration for s in self.spans if s.name == name)

    def count(self, name: str) -> int:
        return sum(1 for s in self.spans if s.name == name)

    def report(self) -> Dict[str, Dict[str, Any]]:
        """Aggregate per span name: count, total/mean/max seconds, plus any
        summable numeric meta (e.g. ``events``) and derived rates."""
        groups: Dict[str, List[Span]] = {}
        for span in self.spans:
            groups.setdefault(span.name, []).append(span)
        out: Dict[str, Dict[str, Any]] = {}
        for name in sorted(groups):
            spans = groups[name]
            total = sum(s.duration for s in spans)
            entry: Dict[str, Any] = {
                "count": len(spans),
                "total_s": total,
                "mean_s": total / len(spans),
                "max_s": max(s.duration for s in spans),
            }
            sums: Dict[str, float] = {}
            for span in spans:
                for key, value in span.meta.items():
                    if isinstance(value, (int, float)) and not isinstance(value, bool):
                        sums[key] = sums.get(key, 0) + value
            for key, value in sorted(sums.items()):
                entry[key] = value
                if total > 0:
                    entry[f"{key}_per_s"] = value / total
            out[name] = entry
        return out

    def clear(self) -> None:
        self.spans.clear()

    def __len__(self) -> int:
        return len(self.spans)


class NullProfiler(Profiler):
    """Profiler that drops everything (the API-compatible "off" switch)."""

    enabled = False

    @contextmanager
    def span(self, name: str, **meta: Any) -> Iterator[Dict[str, Any]]:
        yield meta

    def record_span(self, name: str, start: float, duration: float,
                    **meta: Any) -> Optional[Span]:  # type: ignore[override]
        return None
