"""WRT-Ring: a delay-bounded MAC protocol for wireless ad hoc networks.

A from-scratch reproduction of

    L. Donatiello and M. Furini,
    "Ad Hoc Networks: A Protocol for Supporting QoS Applications",
    Technical Report TR-INF-2003-01-01-UNIPMN (IPPS/WPDRTS 2003).

Layout:

- :mod:`repro.sim`       -- discrete-event kernel (engine, processes, timers);
- :mod:`repro.phy`       -- wireless substrate (geometry, mobility, CDMA,
  slotted collision channel, ring/tree construction);
- :mod:`repro.core`      -- WRT-Ring itself (SAT, quotas, Diffserv classes,
  join/leave, SAT-loss recovery, admission control);
- :mod:`repro.baselines` -- TPT (timed token over a tree) and wired RT-Ring;
- :mod:`repro.traffic`   -- flows and arrival-process generators;
- :mod:`repro.analysis`  -- the paper's closed-form bounds, metrics and
  measured-vs-bound validation;
- :mod:`repro.bandwidth` -- FDDI-style quota (l_i) allocation schemes;
- :mod:`repro.gateway`   -- Diffserv LAN interconnection (Fig. 2).

Quickstart::

    from repro.sim import Engine
    from repro.core import WRTRingNetwork, WRTRingConfig

    engine = Engine()
    config = WRTRingConfig.homogeneous(range(8), l=2, k=1, rap_enabled=False)
    net = WRTRingNetwork(engine, list(range(8)), config)
    net.start()
    engine.run(until=10_000)
    assert net.rotation_log.worst() < net.sat_time_bound()   # Theorem 1
"""

from repro.core import (
    Packet,
    ServiceClass,
    QuotaConfig,
    WRTRingConfig,
    WRTRingNetwork,
)
from repro.sim import Engine

__version__ = "1.0.0"

__all__ = [
    "Engine",
    "Packet",
    "ServiceClass",
    "QuotaConfig",
    "WRTRingConfig",
    "WRTRingNetwork",
    "__version__",
]
