"""The TPT network: token circulation over the tree's Euler tour.

Model (mirrors Sec. 3.1 and the like-for-like assumptions of Sec. 3.3):

* the token follows the depth-first tour — ``2(N-1)`` link crossings per
  round, each costing ``hop_slots`` (= ``T_proc + T_prop``);
* **only the token holder transmits**, one packet per slot, and a
  transmission reaches its destination directly (single shared channel, no
  multi-hop forwarding — a simplification *generous to TPT*, documented in
  DESIGN.md, since it removes TPT's routing cost from the comparison);
* a station transmits only on its *first* visit of each round, which is what
  makes the Eq. 7 accounting (one ``H_i`` per station per round) exact;
* join: the paper's TPT "periodically stops the transmissions using a flag
  in the token" — with ``rap_enabled`` the root pauses the network for
  ``t_rap`` slots once per round; pending join requests are admitted against
  the Eq. 7 feasibility test and attach as a child of their chosen parent
  (the message-level handshake is abstracted; the WRT-Ring side keeps the
  full handshake because its latency is what E03 measures);
* token loss: per-station ``2·TTRT`` watchdog; on expiry the station sends a
  probe token around the tour.  Probe returns -> tree valid, re-issue the
  token.  Probe lost (dead station) -> tree lost, broadcast, full rebuild
  (``REBUILD_SLOTS_PER_STATION`` slots per alive station, the same
  substitution cost model as WRT-Ring's ring re-formation, after which a new
  BFS tree is built over the survivors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.baselines.timed_token import TimedTokenRules
from repro.baselines.tpt.station import TPTStation
from repro.core.packet import Packet
from repro.analysis.netmetrics import NetworkMetrics
from repro.core.recovery import RecoveryRecord
from repro.core.sat import RotationLog
from repro.events import EventBus, TraceAdapter
from repro.events import types as _ev
from repro.phy.topology import TopologyError, build_bfs_tree, dfs_token_tour
from repro.sim.engine import Engine
from repro.sim.timers import Timer
from repro.sim.trace import NullTraceRecorder, TraceRecorder

__all__ = ["TPTConfig", "TPTNetwork"]


@dataclass
class TPTConfig:
    """TPT parameters (times in slots)."""

    H: Dict[int, int] = field(default_factory=dict)
    ttrt: float = 0.0
    hop_slots: int = 1
    t_rap: int = 0
    rap_enabled: bool = False
    rebuild_slots_per_station: int = 2

    def __post_init__(self) -> None:
        if self.ttrt <= 0:
            raise ValueError(f"ttrt must be positive, got {self.ttrt!r}")
        if self.hop_slots < 1:
            raise ValueError(f"hop_slots must be >= 1, got {self.hop_slots}")
        if self.t_rap < 0:
            raise ValueError(f"t_rap must be >= 0, got {self.t_rap}")
        if self.rap_enabled and self.t_rap < 2:
            raise ValueError("rap_enabled requires t_rap >= 2")

    def effective_t_rap(self) -> int:
        return self.t_rap if self.rap_enabled else 0


@dataclass
class _JoinRequest:
    new_sid: int
    H_new: int
    parent: int
    t_requested: float
    t_joined: Optional[float] = None
    accepted: Optional[bool] = None
    reason: str = ""


class TPTNetwork:
    """A running Token Passing Tree."""

    def __init__(self, engine: Engine, children: Dict[int, List[int]],
                 root: int, config: TPTConfig, graph=None,
                 trace: Optional[TraceRecorder] = None):
        if root not in children:
            raise ValueError(f"root {root} not in tree")
        missing = [sid for sid in children if sid not in config.H]
        if missing:
            raise ValueError(f"no synchronous allocation for stations {missing}")
        self.engine = engine
        self.config = config
        self.rules = TimedTokenRules(config.ttrt)
        self.trace = trace if trace is not None else NullTraceRecorder()
        self._graph_provider = (graph if callable(graph) or graph is None
                                else (lambda: graph))
        self.children: Dict[int, List[int]] = {u: list(cs) for u, cs in children.items()}
        self.root = root
        self.stations: Dict[int, TPTStation] = {
            sid: TPTStation(sid, config.H[sid]) for sid in children}
        self._rebuild_tour()

        self.rotation_log = RotationLog()
        self.events = EventBus()
        self.metrics = NetworkMetrics().attach(self.events)
        self._trace_adapter = None
        if not isinstance(self.trace, NullTraceRecorder):
            self._trace_adapter = TraceAdapter(self.trace).attach(self.events)
        self.events.add_binder(self._bind_emitters)
        self.records: List[RecoveryRecord] = []
        self.token_hops = 0
        self.rounds = 0
        self.network_down = False
        self.rebuilding_until: Optional[float] = None
        self.pause_until: float = float("-inf")
        self.raps_opened = 0

        # token state
        self._tour_idx = 0
        self._holding = False
        self._arrival_time: Optional[float] = None
        self._token_lost = False
        self._round_mark: Dict[int, int] = {}
        self._probe: Optional[dict] = None
        self._active_recovery: Optional[RecoveryRecord] = None
        self._pending_event: Optional[tuple] = None
        self._rebuild_initiator: Optional[int] = None
        self._pending_joins: List[_JoinRequest] = []
        self.join_log: List[_JoinRequest] = []

        self.timers: Dict[int, Timer] = {}
        self.started = False
        self._tick_handle = None
        self._tick_hooks: List[Callable[[float], None]] = []

    def _bind_emitters(self) -> None:
        em = self.events.emitter
        self._ev_transmit = em(_ev.SlotTransmit)
        self._ev_deliver = em(_ev.SlotDeliver)
        self._ev_lost = em(_ev.PacketLost)
        self._ev_kill = em(_ev.TptKill)
        self._ev_token_lost = em(_ev.TptTokenLost)
        self._ev_join = em(_ev.TptJoin)
        self._ev_timeout = em(_ev.TptTimeout)
        self._ev_reissued = em(_ev.TptTokenReissued)
        self._ev_probe_lost = em(_ev.TptProbeLost)
        self._ev_rebuild_start = em(_ev.TptRebuildStart)
        self._ev_down = em(_ev.TptDown)
        self._ev_rebuild_done = em(_ev.TptRebuildDone)
        self._ev_rotation = em(_ev.TokenRotation)
        self._ev_rap = em(_ev.TptRap)
        self._ev_enqueued = em(_ev.PacketEnqueued)
        for st in self.stations.values():
            st._ev_enqueued = self._ev_enqueued

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def _rebuild_tour(self) -> None:
        tour = dfs_token_tour(self.children, self.root)
        # drop the duplicate final root so the tour is a clean cycle
        self.tour: List[int] = tour[:-1] if len(tour) > 1 else tour

    @property
    def n(self) -> int:
        return len(self.children)

    @property
    def members(self) -> List[int]:
        return sorted(self.children)

    def graph(self):
        return self._graph_provider() if self._graph_provider is not None else None

    def walk_time(self) -> float:
        """Traffic-free token round trip: ``2(N-1)·hop`` (Sec. 3.2.1)."""
        return 2 * (self.n - 1) * self.config.hop_slots

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.started:
            raise RuntimeError("network already started")
        self.started = True
        self._holding = True
        self._tour_idx = 0
        holder = self.tour[0]
        self._on_token_arrival(holder, self.engine.now)
        for sid in self.children:
            self._arm_timer(sid)
        self._tick_handle = self.engine.schedule(0.0, self._tick, priority=5)

    def stop(self) -> None:
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None
        for t in self.timers.values():
            t.stop()

    def add_tick_hook(self, hook: Callable[[float], None]) -> None:
        self._tick_hooks.append(hook)

    def enqueue(self, packet: Packet) -> None:
        st = self.stations.get(packet.src)
        if st is None or packet.src not in self.children:
            raise KeyError(f"source station {packet.src} is not a tree member")
        st.enqueue(packet, self.engine.now)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def kill_station(self, sid: int) -> None:
        st = self.stations.get(sid)
        if st is None:
            raise KeyError(f"unknown station {sid}")
        st.alive = False
        self._pending_event = ("silent", sid, self.engine.now)
        timer = self.timers.pop(sid, None)
        if timer is not None:
            timer.stop()
        self._ev_kill(self.engine.now, sid)
        current = self.tour[self._tour_idx]
        if self._holding and current == sid:
            self.drop_token()
        elif not self._holding and current == sid:
            self.drop_token()

    def drop_token(self) -> None:
        self._token_lost = True
        self._holding = False
        self._arrival_time = None
        if self._pending_event is None:
            self._pending_event = ("token_loss", None, self.engine.now)
        self._ev_token_lost(self.engine.now)

    # ------------------------------------------------------------------
    # join (abstracted handshake; admitted at the root's RAP)
    # ------------------------------------------------------------------
    def request_join(self, new_sid: int, H_new: int, parent: int) -> _JoinRequest:
        if new_sid in self.children:
            raise ValueError(f"station {new_sid} already in the tree")
        if parent not in self.children:
            raise KeyError(f"parent {parent} is not a tree member")
        req = _JoinRequest(new_sid=new_sid, H_new=H_new, parent=parent,
                           t_requested=self.engine.now)
        self._pending_joins.append(req)
        self.join_log.append(req)
        return req

    def _process_joins(self, t: float) -> None:
        pending, self._pending_joins = self._pending_joins, []
        for req in pending:
            g = self.graph()
            if g is not None and (not g.has_node(req.new_sid)
                                  or not g.in_range(req.new_sid, req.parent)):
                req.accepted = False
                req.reason = "parent out of radio range"
                continue
            total_H = sum(st.H for st in self.stations.values()) + req.H_new
            new_walk = 2 * self.n * self.config.hop_slots  # N+1 stations
            if total_H + new_walk + self.config.effective_t_rap() > self.config.ttrt:
                req.accepted = False
                req.reason = "Eq.7 infeasible: allocation would break TTRT"
                continue
            req.accepted = True
            req.t_joined = t
            self.children[req.parent].append(req.new_sid)
            self.children[req.new_sid] = []
            self.config.H[req.new_sid] = req.H_new
            st = TPTStation(req.new_sid, req.H_new)
            st._ev_enqueued = self._ev_enqueued
            self.stations[req.new_sid] = st
            self._rebuild_tour()
            self._arm_timer(req.new_sid)
            self._ev_join(t, req.new_sid, req.parent)

    # ------------------------------------------------------------------
    # timers / recovery
    # ------------------------------------------------------------------
    def _arm_timer(self, sid: int) -> None:
        timer = self.timers.get(sid)
        if timer is None:
            timer = Timer(self.engine, self.rules.max_rotation,
                          lambda s=sid: self._on_timer_expired(s),
                          name=f"TOKEN_TIMER_{sid}")
            self.timers[sid] = timer
        timer.restart(self.rules.max_rotation)

    def _on_timer_expired(self, sid: int) -> None:
        t = self.engine.now
        if self.network_down or self.rebuilding_until is not None:
            return
        if sid not in self.children or not self.stations[sid].alive:
            return
        if self._active_recovery is not None:
            if sid == self._active_recovery.extra.get("originator"):
                self._start_rebuild(sid, t)
            else:
                self._arm_timer(sid)
            return
        kind, event_sid, t_event = self._pending_event or ("token_loss", None, None)
        self._pending_event = None
        record = RecoveryRecord(kind=kind, failed_station=event_sid,
                                t_event=t_event, t_detected=t,
                                extra={"originator": sid,
                                       "injected_station": event_sid})
        self.records.append(record)
        self._active_recovery = record
        self._ev_timeout(t, sid)
        # launch a probe token from this station's first tour occurrence
        start_idx = self.tour.index(sid)
        self._probe = {"idx": start_idx, "origin_idx": start_idx,
                       "arrival": t, "hops": 0}
        self._arm_timer(sid)

    def _step_probe(self, t: float) -> None:
        probe = self._probe
        if probe is None or t < probe["arrival"]:
            return
        if probe["hops"] > 0 and probe["idx"] == probe["origin_idx"]:
            # probe came back: tree is still valid; re-issue the token here
            self._probe = None
            rec = self._active_recovery
            if rec is not None:
                rec.t_completed = t
                rec.outcome = "token_reissued"
                self._active_recovery = None
            self._token_lost = False
            self._holding = True
            self._tour_idx = probe["origin_idx"]
            for sid in self.children:
                self.stations[sid].last_token_arrival = None
            self._round_mark.clear()
            self._on_token_arrival(self.tour[self._tour_idx], t)
            for sid in self.children:
                self._arm_timer(sid)
            self._ev_reissued(t, self.tour[self._tour_idx])
            return
        nxt_idx = (probe["idx"] + 1) % len(self.tour)
        nxt_sid = self.tour[nxt_idx]
        if not self.stations[nxt_sid].alive:
            # probe dies at the dead hop; originator's watchdog will fire
            # again and declare the tree lost
            self._probe = None
            self._ev_probe_lost(t, nxt_sid)
            return
        probe["idx"] = nxt_idx
        probe["hops"] += 1
        probe["arrival"] = t + self.config.hop_slots

    def _start_rebuild(self, initiator: int, t: float) -> None:
        rec = self._active_recovery
        if rec is None:
            rec = RecoveryRecord(kind="token_loss", failed_station=None,
                                 t_event=None, t_detected=t,
                                 extra={"originator": initiator})
            self.records.append(rec)
            self._active_recovery = rec
        rec.extra["rebuild_started"] = t
        self._token_lost = True
        self._holding = False
        self._probe = None
        for timer in self.timers.values():
            timer.stop()
        alive = [sid for sid in self.children if self.stations[sid].alive]
        duration = self.config.rebuild_slots_per_station * max(len(alive), 1)
        self.rebuilding_until = t + duration
        self._rebuild_initiator = initiator
        self._ev_rebuild_start(t, initiator, duration)

    def _finish_rebuild(self, t: float) -> None:
        self.rebuilding_until = None
        alive = [sid for sid in self.children if self.stations[sid].alive]
        graph = self.graph()
        try:
            if len(alive) < 2:
                raise TopologyError("fewer than 2 alive stations")
            if graph is not None:
                sub = graph.subgraph(alive)
                new_children = build_bfs_tree(sub, root=self._rebuild_initiator)
            else:
                new_children = {sid: [] for sid in alive}
                new_children[self._rebuild_initiator] = [
                    sid for sid in alive if sid != self._rebuild_initiator]
        except TopologyError as exc:
            self.network_down = True
            rec = self._active_recovery
            if rec is not None:
                rec.outcome = "down"
                rec.t_completed = t
                rec.extra["error"] = str(exc)
                self._active_recovery = None
            self._ev_down(t, str(exc))
            return
        dead = [sid for sid in self.children if sid not in new_children]
        for sid in dead:
            self.config.H.pop(sid, None)
            self.stations.pop(sid, None)
            timer = self.timers.pop(sid, None)
            if timer is not None:
                timer.stop()
        self.children = new_children
        self.root = self._rebuild_initiator
        self._rebuild_tour()
        self._round_mark.clear()
        for st in self.stations.values():
            st.last_token_arrival = None
        self._token_lost = False
        self._holding = True
        self._tour_idx = 0
        self._on_token_arrival(self.tour[0], t)
        for sid in self.children:
            self._arm_timer(sid)
        rec = self._active_recovery
        if rec is not None:
            rec.outcome = "rebuild"
            rec.t_completed = t
            self._active_recovery = None
        self._ev_rebuild_done(t, self.root)

    # ------------------------------------------------------------------
    # the tick
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        t = self.engine.now
        for hook in self._tick_hooks:
            hook(t)
        if self.network_down:
            return
        if self.rebuilding_until is not None:
            if t >= self.rebuilding_until:
                self._finish_rebuild(t)
        elif t < self.pause_until:
            if t + 1 >= self.pause_until:
                self._process_joins(t)
        else:
            self._step_probe(t)
            self._token_step(t)
        self._tick_handle = self.engine.schedule(1.0, self._tick, priority=5)

    def _token_step(self, t: float) -> None:
        if self._token_lost:
            return
        if not self._holding:
            if self._arrival_time is None or t < self._arrival_time:
                return
            self._holding = True
            self._arrival_time = None
            holder = self.tour[self._tour_idx]
            if not self.stations[holder].alive:
                self.drop_token()
                return
            self._on_token_arrival(holder, t)
            if t < self.pause_until:
                return

        holder = self.tour[self._tour_idx]
        station = self.stations[holder]
        if station.wants_to_transmit:
            pkt = station.select_packet()
            if pkt is not None:
                self._transmit(pkt, t)
                return  # one packet per slot; keep holding
        self._depart(holder, t)

    def _on_token_arrival(self, holder: int, t: float) -> None:
        station = self.stations[holder]
        if self._tour_idx == 0:
            self.rounds += 1
            self.rotation_log.mark_round(self.token_hops)
        first_of_round = self._round_mark.get(holder) != self.rounds
        if first_of_round:
            self._round_mark[holder] = self.rounds
            trt = station.grant_budgets(t, self.config.ttrt)
            if trt is not None:
                self.rotation_log.add(holder, trt)
                self._ev_rotation(t, holder, trt)
            if (self.config.rap_enabled and holder == self.root):
                self.pause_until = t + self.config.t_rap
                self.raps_opened += 1
                self._ev_rap(t, self.pause_until)
        else:
            station.sync_budget = 0
            station.async_budget = 0

    def _depart(self, holder: int, t: float) -> None:
        station = self.stations[holder]
        station.sync_budget = 0
        station.async_budget = 0
        self._arm_timer(holder)
        self._holding = False
        self._tour_idx = (self._tour_idx + 1) % len(self.tour)
        self._arrival_time = t + self.config.hop_slots
        self.token_hops += 1

    def _transmit(self, pkt: Packet, t: float) -> None:
        pkt.t_send = t
        self._ev_transmit(t, pkt.src, pkt)
        dst = self.stations.get(pkt.dst)
        if dst is None or not dst.alive:
            pkt.dropped = True
            reason = "dead_station" if dst is not None else "unreachable"
            self._ev_lost(t, pkt, reason, pkt.src, pkt.dst)
            return
        pkt.t_deliver = t + 1.0
        dst.on_deliver(pkt)
        self._ev_deliver(pkt.t_deliver, pkt.dst, pkt)
