"""Token Passing Tree (TPT) — the paper's comparator protocol [11].

A timed-token MAC over a spanning tree of the ad hoc network: the token
follows the depth-first Euler tour (``2(N-1)`` link crossings per round),
only the token holder transmits, synchronous (real-time) traffic gets a
per-round allocation ``H_i`` and asynchronous traffic the early-token credit
of the timed-token rules.  Token loss is detected with a per-station
``2·TTRT`` watchdog; a lost tree triggers a full rebuild.
"""

from repro.baselines.tpt.station import TPTStation
from repro.baselines.tpt.protocol import TPTNetwork, TPTConfig

__all__ = ["TPTStation", "TPTNetwork", "TPTConfig"]
