"""A TPT station: synchronous allocation plus two FIFO queues.

TPT distinguishes real-time (synchronous, budgeted by ``H_i``) and
best-effort (asynchronous, budgeted by the early-token credit) traffic.
Premium packets map to synchronous transmission; Assured and best-effort
both ride the async budget (TPT has no third class — one of the reasons the
paper positions WRT-Ring as Diffserv-ready and TPT not).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.core.packet import Packet, ServiceClass
from repro.events.bus import NULL_EMITTER

__all__ = ["TPTStation"]


class TPTStation:
    """Protocol state of one tree member."""

    #: :class:`~repro.events.types.PacketEnqueued` emitter, pushed in by the
    #: owning network's binder
    _ev_enqueued = NULL_EMITTER

    def __init__(self, sid: int, H: int):
        if H < 0:
            raise ValueError(f"synchronous allocation must be >= 0, got {H}")
        self.sid = sid
        self.H = H
        self.rt_queue: Deque[Packet] = deque()
        self.be_queue: Deque[Packet] = deque()
        self.sent: Dict[ServiceClass, int] = {c: 0 for c in ServiceClass}
        self.received: Dict[ServiceClass, int] = {c: 0 for c in ServiceClass}
        self.enqueued: Dict[ServiceClass, int] = {c: 0 for c in ServiceClass}
        self.last_token_arrival: Optional[float] = None
        self.token_visits = 0   # first-of-round visits
        # per-visit transmission budgets (packets)
        self.sync_budget = 0
        self.async_budget = 0
        self.alive = True

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, now: float) -> None:
        if not self.alive:
            raise RuntimeError(f"station {self.sid} is not alive")
        if packet.src != self.sid:
            raise ValueError(
                f"packet src {packet.src} enqueued at station {self.sid}")
        packet.t_enqueue = now
        if packet.service is ServiceClass.PREMIUM:
            self.rt_queue.append(packet)
        else:
            self.be_queue.append(packet)
        self.enqueued[packet.service] += 1
        self._ev_enqueued(now, self.sid, packet)

    def queue_length(self, service: Optional[ServiceClass] = None) -> int:
        if service is None:
            return len(self.rt_queue) + len(self.be_queue)
        if service is ServiceClass.PREMIUM:
            return len(self.rt_queue)
        return len(self.be_queue)

    # ------------------------------------------------------------------
    def grant_budgets(self, now: float, ttrt: float) -> Optional[float]:
        """Timed-token rules on a first-of-round token arrival.

        Returns the measured rotation time (None on the very first visit).
        """
        trt = None
        if self.last_token_arrival is not None:
            trt = now - self.last_token_arrival
        self.last_token_arrival = now
        self.token_visits += 1
        self.sync_budget = self.H
        self.async_budget = int(max(0.0, ttrt - trt)) if trt is not None else 0
        return trt

    def select_packet(self) -> Optional[Packet]:
        """One packet per slot while the station holds the token."""
        if self.sync_budget > 0 and self.rt_queue:
            self.sync_budget -= 1
            pkt = self.rt_queue.popleft()
        elif self.async_budget > 0 and self.be_queue and (
                self.sync_budget == 0 or not self.rt_queue):
            self.async_budget -= 1
            pkt = self.be_queue.popleft()
        else:
            return None
        self.sent[pkt.service] += 1
        return pkt

    @property
    def wants_to_transmit(self) -> bool:
        return ((self.sync_budget > 0 and bool(self.rt_queue))
                or (self.async_budget > 0 and bool(self.be_queue)))

    def on_deliver(self, packet: Packet) -> None:
        self.received[packet.service] += 1

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<TPTStation {self.sid} H={self.H} "
                f"q=({len(self.rt_queue)},{len(self.be_queue)})>")
