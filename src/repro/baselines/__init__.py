"""Baseline protocols the paper compares against.

- :mod:`repro.baselines.tpt` — the Token Passing Tree protocol [11]: a
  timed-token MAC over a spanning tree, the paper's direct comparator
  (Sec. 3);
- :mod:`repro.baselines.timed_token` — the timed-token rules (TTRT,
  synchronous allocations, early-token async credit) TPT inherits from [12];
- :mod:`repro.baselines.rtring` — wired RT-Ring [13], the protocol WRT-Ring
  is derived from, as the no-wireless-overhead reference;
- :mod:`repro.baselines.csma` — a class-of-service CSMA/CA (the [3]-style
  contention MAC the introduction dismisses), for measuring the
  "collisions occur frequently as stations increase" claim.
"""

from repro.baselines.timed_token import TimedTokenRules, choose_ttrt
from repro.baselines.tpt import TPTNetwork, TPTConfig, TPTStation
from repro.baselines.rtring import RTRingNetwork
from repro.baselines.csma import CSMANetwork, CSMAConfig, CSMAStation

__all__ = [
    "TimedTokenRules",
    "choose_ttrt",
    "TPTNetwork",
    "TPTConfig",
    "TPTStation",
    "RTRingNetwork",
    "CSMANetwork",
    "CSMAConfig",
    "CSMAStation",
]
