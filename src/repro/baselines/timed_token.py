"""The timed-token medium-access rules (Malcolm & Zhao [12]).

TPT "is based on the timed token MAC protocol and its network access bound
is straightly derived from the bound of the timed-token protocol"
(Sec. 3.1).  These are the classic rules:

* at start-up the stations agree on a **Target Token Rotation Time**
  (``TTRT``); the protocol guarantees the *average* rotation equals ``TTRT``
  and any single rotation is below ``2·TTRT``;
* station ``i`` holds a **synchronous allocation** ``H_i``: on every token
  visit it may transmit real-time traffic for up to ``H_i`` slots,
  unconditionally;
* asynchronous (best-effort) traffic may be sent only when the token arrives
  *early*: the station measures the time ``TRT`` since the token's previous
  arrival and gets ``max(0, TTRT - TRT)`` slots of async credit;
* feasibility (the protocol constraint): ``Σ H_i + walk_time <= TTRT``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["TimedTokenRules", "choose_ttrt"]


@dataclass(frozen=True)
class TimedTokenRules:
    """TTRT plus per-visit budget computation."""

    ttrt: float

    def __post_init__(self) -> None:
        if self.ttrt <= 0:
            raise ValueError(f"TTRT must be positive, got {self.ttrt!r}")

    def sync_budget(self, H_i: float) -> float:
        """Synchronous budget: always the full allocation."""
        if H_i < 0:
            raise ValueError(f"H_i must be >= 0, got {H_i!r}")
        return H_i

    def async_budget(self, trt: float) -> float:
        """Async credit for a token that arrives with measured rotation
        ``trt``: positive only when the token is early."""
        if trt < 0:
            raise ValueError(f"TRT must be >= 0, got {trt!r}")
        return max(0.0, self.ttrt - trt)

    def feasible(self, H: Sequence[float], walk_time: float) -> bool:
        """Protocol constraint: ``Σ H_i + walk <= TTRT``."""
        if walk_time < 0:
            raise ValueError(f"walk_time must be >= 0, got {walk_time!r}")
        return sum(H) + walk_time <= self.ttrt

    @property
    def max_rotation(self) -> float:
        """The classic 2·TTRT single-rotation bound (also TPT's token-loss
        timer value, Sec. 3.1.3)."""
        return 2.0 * self.ttrt


def choose_ttrt(H: Sequence[float], walk_time: float,
                margin: float = 1.0) -> float:
    """Smallest feasible TTRT for the given allocations, scaled by
    ``margin >= 1`` (headroom for async traffic)."""
    if margin < 1.0:
        raise ValueError(f"margin must be >= 1, got {margin!r}")
    if walk_time <= 0:
        raise ValueError(f"walk_time must be positive, got {walk_time!r}")
    if any(h < 0 for h in H):
        raise ValueError("allocations must be >= 0")
    return (sum(H) + walk_time) * margin
