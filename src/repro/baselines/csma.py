"""A class-of-service CSMA/CA baseline (the paper's [3] strawman).

The introduction motivates WRT-Ring by dismissing contention MACs: the
handshake "does not provide timing guarantees, as it suffers of collisions"
and for the CoS-enhanced 802.11 of [3], "packet collision may occur
frequently by increasing the number of mobile stations".  This module
implements that comparator so the claim can be measured (experiment E21):

a slotted p-persistent CSMA/CA with binary exponential backoff and two
EDCA-style access categories — real-time traffic contends with a smaller
contention window than best-effort, giving it *statistical* priority but no
guarantee:

* a station with a head-of-line packet draws a backoff uniform in
  ``[0, cw)`` and counts down only during idle slots (carrier sense);
* when the counter reaches zero it transmits in the next slot; if two or
  more stations fire together every involved frame is lost, each station
  doubles its contention window (up to ``cw_max``) and redraws;
* a success delivers the frame in one slot (single cell — everyone hears
  everyone; the paper's lounge), resets the window to ``cw_min`` and moves
  to the next queued packet; after ``retry_limit`` collisions the frame is
  dropped.

Everything is slot-synchronous on the same engine/metrics substrate as the
other protocols, so delay distributions are directly comparable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.analysis.netmetrics import NetworkMetrics
from repro.core.packet import Packet, ServiceClass
from repro.events import EventBus, TraceAdapter
from repro.events.bus import NULL_EMITTER
from repro.events import types as _ev
from repro.sim.engine import Engine
from repro.sim.trace import NullTraceRecorder, TraceRecorder

__all__ = ["CSMAConfig", "CSMANetwork", "CSMAStation"]


@dataclass
class CSMAConfig:
    """Access-category parameters (slots)."""

    cw_min_rt: int = 8
    cw_min_be: int = 16
    cw_max: int = 1024
    retry_limit: int = 7

    def __post_init__(self) -> None:
        for name in ("cw_min_rt", "cw_min_be"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.cw_max < max(self.cw_min_rt, self.cw_min_be):
            raise ValueError("cw_max must be >= both cw_min values")
        if self.retry_limit < 1:
            raise ValueError("retry_limit must be >= 1")

    def cw_min(self, service: ServiceClass) -> int:
        return (self.cw_min_rt if service is ServiceClass.PREMIUM
                else self.cw_min_be)


class CSMAStation:
    """One contender: a queue per access category plus its backoff state."""

    #: :class:`~repro.events.types.PacketEnqueued` emitter, pushed in by the
    #: owning network's binder
    _ev_enqueued = NULL_EMITTER

    def __init__(self, sid: int, config: CSMAConfig, rng: random.Random):
        self.sid = sid
        self.config = config
        self.rng = rng
        self.rt_queue: List[Packet] = []
        self.be_queue: List[Packet] = []
        self.sent: Dict[ServiceClass, int] = {c: 0 for c in ServiceClass}
        self.received: Dict[ServiceClass, int] = {c: 0 for c in ServiceClass}
        self.enqueued: Dict[ServiceClass, int] = {c: 0 for c in ServiceClass}
        self.collisions = 0
        # head-of-line state
        self._hol: Optional[Packet] = None
        self._backoff: Optional[int] = None
        self._cw: int = 0
        self._retries: int = 0
        self.alive = True

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, now: float) -> None:
        if not self.alive:
            raise RuntimeError(f"station {self.sid} is not alive")
        if packet.src != self.sid:
            raise ValueError(f"packet src {packet.src} at station {self.sid}")
        packet.t_enqueue = now
        if packet.service is ServiceClass.PREMIUM:
            self.rt_queue.append(packet)
        else:
            self.be_queue.append(packet)
        self.enqueued[packet.service] += 1
        self._ev_enqueued(now, self.sid, packet)

    def queue_length(self, service: Optional[ServiceClass] = None) -> int:
        if service is ServiceClass.PREMIUM:
            return len(self.rt_queue)
        if service is None:
            return len(self.rt_queue) + len(self.be_queue)
        return len(self.be_queue)

    # ------------------------------------------------------------------
    def _take_head_of_line(self) -> None:
        if self._hol is not None:
            return
        if self.rt_queue:
            self._hol = self.rt_queue.pop(0)
        elif self.be_queue:
            self._hol = self.be_queue.pop(0)
        else:
            return
        self._cw = self.config.cw_min(self._hol.service)
        self._retries = 0
        self._backoff = self.rng.randrange(self._cw)

    def wants_slot(self, channel_idle: bool) -> bool:
        """Advance backoff; True when this station fires this slot."""
        self._take_head_of_line()
        if self._hol is None:
            return False
        if self._backoff == 0:
            return True
        if channel_idle:
            self._backoff -= 1
        return self._backoff == 0

    def on_success(self) -> Packet:
        pkt = self._hol
        self._hol = None
        self._backoff = None
        self.sent[pkt.service] += 1
        return pkt

    def on_collision(self) -> Optional[Packet]:
        """Double the window and redraw; returns the packet if dropped."""
        self.collisions += 1
        self._retries += 1
        if self._retries > self.config.retry_limit:
            dropped = self._hol
            self._hol = None
            self._backoff = None
            return dropped
        self._cw = min(self._cw * 2, self.config.cw_max)
        self._backoff = self.rng.randrange(self._cw)
        return None


class CSMANetwork:
    """A contention network.

    Without a ``graph`` it is a single cell — everyone hears everyone, the
    lounge the paper pictures.  With a connectivity ``graph`` the model adds
    the hidden-terminal pathology the paper highlights: carrier sense only
    covers *in-range* transmitters, so two senders that cannot hear each
    other can both fire at a common receiver and destroy each other's frames
    there (experiment E22).
    """

    def __init__(self, engine: Engine, station_ids: List[int],
                 config: Optional[CSMAConfig] = None,
                 rng: Optional[random.Random] = None,
                 graph=None,
                 trace: Optional[TraceRecorder] = None):
        if len(set(station_ids)) != len(station_ids):
            raise ValueError("duplicate station ids")
        if len(station_ids) < 2:
            raise ValueError("need at least 2 stations")
        self.engine = engine
        self.config = config if config is not None else CSMAConfig()
        self.trace = trace if trace is not None else NullTraceRecorder()
        self._graph_provider = (graph if callable(graph) or graph is None
                                else (lambda: graph))
        rng = rng if rng is not None else random.Random(0)
        self.stations: Dict[int, CSMAStation] = {
            sid: CSMAStation(sid, self.config,
                             random.Random(rng.getrandbits(64)))
            for sid in station_ids}
        self.events = EventBus()
        self.metrics = NetworkMetrics().attach(self.events)
        self._trace_adapter = None
        if not isinstance(self.trace, NullTraceRecorder):
            self._trace_adapter = TraceAdapter(self.trace).attach(self.events)
        self.events.add_binder(self._bind_emitters)
        self.collision_slots = 0
        self.busy_slots = 0
        self.idle_slots = 0
        self.dropped_retry = 0
        self.hidden_terminal_collisions = 0
        self.started = False
        self._tick_handle = None
        self._tick_hooks: List[Callable[[float], None]] = []
        self._last_transmitters: List[int] = []

    def _bind_emitters(self) -> None:
        em = self.events.emitter
        self._ev_transmit = em(_ev.SlotTransmit)
        self._ev_deliver = em(_ev.SlotDeliver)
        self._ev_lost = em(_ev.PacketLost)
        self._ev_collision = em(_ev.CsmaCollision)
        ev_enq = em(_ev.PacketEnqueued)
        for st in self.stations.values():
            st._ev_enqueued = ev_enq

    # ------------------------------------------------------------------
    def _in_range(self, a: int, b: int) -> bool:
        if self._graph_provider is None:
            return True
        g = self._graph_provider()
        return g.has_node(a) and g.has_node(b) and g.in_range(a, b)

    # ------------------------------------------------------------------
    @property
    def members(self) -> List[int]:
        return sorted(self.stations)

    @property
    def n(self) -> int:
        return len(self.stations)

    def add_tick_hook(self, hook: Callable[[float], None]) -> None:
        self._tick_hooks.append(hook)

    def enqueue(self, packet: Packet) -> None:
        st = self.stations.get(packet.src)
        if st is None:
            raise KeyError(f"unknown station {packet.src}")
        st.enqueue(packet, self.engine.now)

    def start(self) -> None:
        if self.started:
            raise RuntimeError("network already started")
        self.started = True
        self._tick_handle = self.engine.schedule(0.0, self._tick, priority=5)

    def stop(self) -> None:
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        t = self.engine.now
        for hook in self._tick_hooks:
            hook(t)

        # per-station carrier sense: idle iff no *audible* transmission in
        # the previous slot (with a graph, far transmitters are inaudible —
        # the hidden-terminal blind spot)
        last = self._last_transmitters
        contenders = []
        for st in self.stations.values():
            if not st.alive:
                continue
            idle = not any(self._in_range(st.sid, other) for other in last)
            if st.wants_slot(idle):
                contenders.append(st)

        self._last_transmitters = [st.sid for st in contenders]
        if not contenders:
            self.idle_slots += 1
            self._tick_handle = self.engine.schedule(1.0, self._tick,
                                                     priority=5)
            return

        self.busy_slots += 1
        transmitters = {st.sid for st in contenders}
        slot_had_collision = False
        for st in contenders:
            pkt = st._hol
            # the frame survives iff no OTHER transmitter is audible at the
            # receiver this slot (single cell: any second transmitter kills it)
            interferers = [o for o in transmitters
                           if o != st.sid and o != pkt.dst
                           and self._in_range(pkt.dst, o)]
            if not interferers and pkt.dst not in transmitters:
                # half-duplex: a transmitting destination cannot receive
                self._deliver(st, t)
                continue
            if not interferers:
                interferers = [pkt.dst]
            slot_had_collision = True
            if any(not self._in_range(st.sid, o) for o in interferers):
                self.hidden_terminal_collisions += 1
            dropped = st.on_collision()
            if dropped is not None:
                dropped.dropped = True
                self.dropped_retry += 1
                self._ev_lost(t, dropped, "retry_limit",
                              dropped.src, dropped.dst)
        if slot_had_collision:
            self.collision_slots += 1
            self._ev_collision(t, sorted(transmitters))
        self._tick_handle = self.engine.schedule(1.0, self._tick, priority=5)

    def _deliver(self, station: CSMAStation, t: float) -> None:
        pkt = station.on_success()
        pkt.t_send = t
        self._ev_transmit(t, station.sid, pkt)
        receiver = self.stations.get(pkt.dst)
        if receiver is not None and not self._in_range(pkt.src, pkt.dst):
            # no routing in a plain contention MAC: an out-of-range
            # destination simply never hears the frame
            receiver = None
        if receiver is None or not receiver.alive:
            pkt.dropped = True
            reason = "dead_station" if receiver is not None else "unreachable"
            self._ev_lost(t, pkt, reason, pkt.src, pkt.dst)
            return
        pkt.t_deliver = t + 1.0
        receiver.received[pkt.service] += 1
        self._ev_deliver(pkt.t_deliver, pkt.dst, pkt)

    # ------------------------------------------------------------------
    @property
    def collision_fraction(self) -> float:
        """Fraction of busy slots wasted on collisions."""
        if self.busy_slots == 0:
            raise ValueError("no transmission attempts observed")
        return self.collision_slots / self.busy_slots
