"""Wired RT-Ring [13] — the protocol WRT-Ring is derived from.

The wired original differs from WRT-Ring only in what the wireless
environment forces on the latter: no Random Access Period (wired stations
don't wander in), no radio-range constraints (the ring is a cable — the
``SAT_REC`` cut-out hop always succeeds) and no CDMA (a wire per hop gives
the same collision-free concurrency).

:class:`RTRingNetwork` therefore reuses the WRT-Ring engine with those
features pinned off; it exists so experiments can isolate the wireless
deltas (T_rap in the bounds, join/recovery dynamics) from the shared
SAT/quota machinery.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import WRTRingConfig
from repro.core.quotas import QuotaConfig
from repro.core.ring import WRTRingNetwork
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder

__all__ = ["RTRingNetwork"]


class RTRingNetwork(WRTRingNetwork):
    """RT-Ring: WRT-Ring with every wireless mechanism disabled."""

    def __init__(self, engine: Engine, ring_order: List[int],
                 quotas: Dict[int, QuotaConfig],
                 sat_hop_slots: int = 1,
                 trace: Optional[TraceRecorder] = None):
        config = WRTRingConfig(
            quotas=dict(quotas),
            rap_enabled=False,          # no stations ever join a wired ring
            sat_hop_slots=sat_hop_slots,
            validate_phy=False,
        )
        super().__init__(engine, ring_order, config,
                         graph=None,            # a wire: everyone "reachable"
                         channel=None,
                         trace=trace)

    # wired networks cannot gain members
    def insert_station(self, *args, **kwargs):  # noqa: D102
        raise NotImplementedError("RT-Ring is wired: membership is fixed at "
                                  "installation time (use WRTRingNetwork)")
