"""Campaign-style fuzzing loop: generate → run → shrink → bundle → store.

Reuses the campaign :class:`~repro.campaign.store.ResultStore` for results:
each case's record is keyed by the content hash of its full serialized form
(plus package version / schema, via :func:`~repro.campaign.store.point_hash`),
so re-running the same campaign skips completed cases, an interrupted
campaign resumes where it stopped, and results cached by older code are
never silently reused.

Failing cases are delta-shrunk to a minimal reproducer and written as JSON
repro bundles under ``out_dir`` — ready to be replayed with
``python -m repro fuzz --replay`` or promoted into the checked-in corpus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.campaign.store import ResultStore, point_hash
from repro.fuzz.bundle import write_bundle
from repro.fuzz.generate import FuzzCase, generate_case
from repro.fuzz.runner import run_case
from repro.fuzz.shrink import shrink_case

__all__ = ["FuzzCampaignResult", "run_fuzz_campaign"]

Progress = Callable[[str], None]


@dataclass
class FuzzCampaignResult:
    """Aggregate outcome of one fuzzing campaign."""

    records: List[Dict[str, Any]] = field(default_factory=list)
    ran: int = 0
    cached: int = 0
    failed: List[Dict[str, Any]] = field(default_factory=list)
    #: wall-clock duration of the campaign; reporting only — never stored
    #: with the records, which must stay deterministic
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failed

    @property
    def cases_per_s(self) -> float:
        """Freshly executed (non-cached) cases per wall-clock second."""
        return self.ran / self.elapsed_s if self.elapsed_s else 0.0


def _case_key(case: FuzzCase) -> str:
    return point_hash({"fuzz_case": case.to_dict()})


def run_fuzz_campaign(master_seed: int, runs: int,
                      store: ResultStore,
                      out_dir,
                      max_slots: int = 1200,
                      shrink: bool = True,
                      chaos: bool = False,
                      adaptive: bool = False,
                      progress: Optional[Progress] = None) -> FuzzCampaignResult:
    """Run ``runs`` fuzz cases derived from ``master_seed``.

    Completed cases already present in ``store`` are skipped (their recorded
    verdict is reused); every fresh failure is shrunk (when ``shrink``) and
    written as a repro bundle under ``out_dir``.  ``chaos`` forces channel
    impairments into every generated case (soak mode); ``adaptive`` forces
    RFC 6298 SAT timers into every case.
    """
    import time

    out_dir = Path(out_dir)
    emit = progress if progress is not None else (lambda line: None)
    campaign = FuzzCampaignResult()
    campaign_start = time.perf_counter()

    for index in range(runs):
        case = generate_case(master_seed, index, max_slots=max_slots,
                             chaos=chaos, adaptive=adaptive)
        key = _case_key(case)
        cached = store.get(key)
        if cached is not None:
            campaign.cached += 1
            campaign.records.append(cached)
            if not cached.get("ok", False):
                campaign.failed.append(cached)
            emit(f"[{index + 1}/{runs}] {case.label()}: "
                 f"{'ok' if cached.get('ok') else 'FAIL'} (cached)")
            continue

        result = run_case(case)
        campaign.ran += 1
        record: Dict[str, Any] = {
            "hash": key,
            "label": case.label(),
            "case": case.to_dict(),
            **result.to_record(),
        }

        if result.ok:
            emit(f"[{index + 1}/{runs}] {case.label()}: ok "
                 f"({result.events_executed} events, "
                 f"{result.stats['enqueued']} pkts)")
        else:
            kinds = ",".join(result.failure_kinds())
            emit(f"[{index + 1}/{runs}] {case.label()}: FAIL [{kinds}] "
                 f"{result.failures[0].message}")
            bundle_case, bundle_result = case, result
            if shrink:
                shrunk, attempts = shrink_case(case)
                shrunk_result = run_case(shrunk)
                if not shrunk_result.ok:
                    bundle_case, bundle_result = shrunk, shrunk_result
                    emit(f"    shrunk in {attempts} runs: "
                         f"{len(shrunk.scenario.get('faults') or [])} faults, "
                         f"horizon {shrunk.scenario['horizon']}")
            bundle_path = write_bundle(
                out_dir / f"repro-{index:04d}-{result.failure_kinds()[0]}.json",
                bundle_case, bundle_result,
                note=f"found by fuzz campaign seed={master_seed} run={index}",
                shrunk_from={"seed": master_seed, "index": index}
                if shrink else None)
            record["bundle"] = str(bundle_path)
            emit(f"    repro bundle: {bundle_path}")

        store.put(record)
        campaign.records.append(record)
        if not result.ok:
            campaign.failed.append(record)

    store.write_index()
    campaign.elapsed_s = time.perf_counter() - campaign_start
    return campaign
