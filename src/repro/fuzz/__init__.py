"""Randomized scenario fuzzing for WRT-Ring (see docs/FUZZING.md).

The paper's value is its worst-case guarantees; the fuzzer's job is to make
sure no reachable interleaving of joins, leaves, silent deaths, SAT losses
and traffic mixes silently breaks the accounting those guarantees are
measured with.  Pipeline: :func:`generate_case` → :func:`run_case` (strict
per-tick invariants + end-of-run oracles) → :func:`shrink_case` →
:func:`write_bundle` (a byte-identically replayable JSON reproducer).

Entry points: ``python -m repro fuzz`` (campaign CLI) and the checked-in
corpus replayed by ``tests/test_fuzz.py``.
"""

from repro.fuzz.bundle import (bundle_dict, load_bundle, replay_bundle,
                               verify_bundle, write_bundle)
from repro.fuzz.campaign import FuzzCampaignResult, run_fuzz_campaign
from repro.fuzz.generate import FuzzCase, generate_case
from repro.fuzz.oracles import (ClockProbe, FuzzFailure, PacketLedger,
                                check_conservation,
                                check_gateway_conservation,
                                check_no_undeliverable,
                                check_rotation_bound)
from repro.fuzz.runner import FuzzResult, hash_trace, run_case
from repro.fuzz.shrink import shrink_case

__all__ = [
    "FuzzCase", "generate_case",
    "FuzzResult", "run_case", "hash_trace",
    "FuzzFailure", "ClockProbe", "PacketLedger",
    "check_conservation", "check_gateway_conservation",
    "check_no_undeliverable", "check_rotation_bound",
    "shrink_case",
    "bundle_dict", "write_bundle", "load_bundle", "replay_bundle",
    "verify_bundle",
    "FuzzCampaignResult", "run_fuzz_campaign",
]
