"""Randomized WRT-Ring fuzz-case generation.

A :class:`FuzzCase` is a fully serialized experiment: a scenario dict (the
:func:`repro.config_io.scenario_to_dict` shape — ring size, quotas, traffic
mix, timed fault schedule) plus an engine *drive plan* — the sequence of
``engine.run(until=..., max_events=...)`` segments the runner executes.
Splitting the run into irregular, sometimes event-bounded segments is
deliberate: it exercises the engine's pause/resume edges (where the
``max_events`` time-warp bug lived), not just one uninterrupted run.

Cases derive deterministically from ``(master_seed, index)`` via
:meth:`repro.sim.rng.RandomStreams.derive`, so a whole fuzzing campaign is
reproducible from one seed and any single case can be regenerated — or
replayed byte-identically from its JSON repro bundle — in isolation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.sim.rng import RandomStreams

__all__ = ["FuzzCase", "generate_case"]

#: bump when the generated-case shape changes incompatibly
CASE_SCHEMA = 2

#: traffic kinds with generation weights; "saturate" and "backlog" keep the
#: queues full (bound-stressing), "none" leaves the control plane alone,
#: "onoff"/"voice" drive the bursty talkspurt generators
_TRAFFIC_KINDS = (("poisson", 25), ("cbr", 15), ("backlog", 15),
                  ("saturate", 10), ("video", 10), ("onoff", 10),
                  ("voice", 10), ("none", 15))
_SERVICES = ("premium", "assured", "be")
_FAULT_KINDS = ("kill", "leave", "drop_signal")


@dataclass
class FuzzCase:
    """One generated (or shrunk) fuzz input."""

    seed: int                      # derived case seed (also the scenario seed)
    index: int                     # position in its campaign, for labelling
    scenario: Dict[str, Any]       # config_io.scenario_to_dict shape
    drive: List[Dict[str, Any]] = field(default_factory=list)

    def label(self) -> str:
        return f"fuzz[{self.index}] seed={self.seed}"

    def to_dict(self) -> Dict[str, Any]:
        return {"schema": CASE_SCHEMA, "seed": self.seed,
                "index": self.index, "scenario": self.scenario,
                "drive": self.drive}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzCase":
        return cls(seed=data["seed"], index=data.get("index", 0),
                   scenario=data["scenario"], drive=list(data.get("drive", [])))


# ----------------------------------------------------------------------
def generate_case(master_seed: int, index: int,
                  max_slots: int = 1200, chaos: bool = False,
                  adaptive: bool = False) -> FuzzCase:
    """Generate case ``index`` of the campaign seeded by ``master_seed``.

    ``max_slots`` caps the simulated horizon (and thus the per-case cost).
    ``chaos`` forces channel impairments on every case (they are otherwise
    drawn ~35% of the time), for soak runs that must exercise recovery
    continuously.  ``adaptive`` forces RFC 6298 SAT timers on every case
    (otherwise drawn on ~20% of cases, ~50% under chaos), for the soak
    seed dedicated to the adaptive-timer machinery.
    """
    case_seed = RandomStreams(master_seed).derive(f"fuzz.{index}")
    rng = random.Random(case_seed)

    n = rng.randint(4, 12)
    horizon = float(rng.randint(max(200, max_slots // 3), max(201, max_slots)))

    scenario: Dict[str, Any] = {
        "n": n,
        "placement": "circle",
        "l": rng.randint(1, 3),
        "k": rng.randint(1, 3),
        "horizon": horizon,
        "seed": case_seed,
        "check_invariants": True,
    }

    # heterogeneous three-class quotas ~30% of the time
    if rng.random() < 0.3:
        scenario["quotas"] = {
            str(sid): [rng.randint(1, 3), rng.randint(0, 2), rng.randint(1, 2)]
            for sid in range(n)}

    scenario["traffic"] = _random_traffic(rng)

    faults: List[Dict[str, Any]] = []
    # station joins need the broadcast channel and the RAP machinery
    rap_drawn = rng.random() < 0.25
    if rap_drawn:
        scenario["rap_enabled"] = True
        scenario["use_channel"] = True
        for j in range(rng.randint(1, 2)):
            faults.append({"time": round(rng.uniform(20.0, horizon * 0.7), 1),
                           "kind": "join", "station": 100 + j})

    # call churn: the QoE session layer rides on top of whatever traffic
    # the case already has — arrivals, CAC refusals, mid-call cuts from the
    # fault schedule, RAP joins when the RAP block was drawn
    if rng.random() < 0.15:
        calls: Dict[str, Any] = {
            "count": rng.randint(2, 8),
            "arrival_rate": round(rng.uniform(0.002, 0.05), 4),
            "mean_holding": float(rng.randint(200, 1500)),
            "deadline": float(rng.randint(80, 400)),
            # best_effort would reject the deadline at FlowSpec level
            "service": rng.choice(("premium", "assured")),
        }
        if rng.random() < 0.3:
            calls["video_fraction"] = round(rng.uniform(0.1, 0.9), 2)
        if rng.random() < 0.3:
            calls["admission"] = False
        if rap_drawn and rng.random() < 0.5:
            calls["join_via_rap"] = True
        scenario["calls"] = calls
    # destructive dynamics, capped so most runs keep a viable ring
    for _ in range(rng.randint(0, min(4, n - 3))):
        kind = rng.choice(_FAULT_KINDS)
        faults.append({
            "time": round(rng.uniform(10.0, horizon * 0.8), 1),
            "kind": kind,
            "station": None if kind == "drop_signal" else rng.randrange(n)})
    # a replayed (stale) control signal; harmless when detected, which the
    # default-seq injection always is — it checks the guard stays quiet
    if rng.random() < 0.15:
        faults.append({"time": round(rng.uniform(10.0, horizon * 0.8), 1),
                       "kind": "stale_sat",
                       "station": rng.randrange(n)})
    if faults:
        scenario["faults"] = sorted(faults, key=lambda e: e["time"])

    if rng.random() < 0.15:
        scenario["mobility"] = {
            "wander_radius": round(rng.uniform(0.5, 5.0), 2),
            "speed": 0.5,
            "update_every": rng.choice([5, 10, 20])}

    if chaos or rng.random() < 0.35:
        scenario["impairments"] = _random_impairments(rng)

    drive = _random_drive(rng, horizon)
    # adaptive SAT timers, drawn *after* every other draw so each
    # pre-existing (master_seed, index) case keeps its exact historical
    # scenario and drive plan — an adaptive case differs from its
    # non-adaptive twin only by this one flag.  The draw is unconditional
    # (one value consumed either way) to keep the stream aligned.
    if rng.random() < (0.5 if chaos else 0.2) or adaptive:
        scenario["adaptive_timers"] = True

    return FuzzCase(seed=case_seed, index=index, scenario=scenario,
                    drive=drive)


def _random_impairments(rng: random.Random) -> Dict[str, Any]:
    """Draw a channel-impairment config: always some independent loss,
    sometimes a Gilbert-Elliott burst process, sometimes a noise window."""
    spec: Dict[str, Any] = {
        "loss_prob": round(rng.uniform(0.002, 0.06), 4)}
    if rng.random() < 0.5:
        spec["ge_p_gb"] = round(rng.uniform(0.001, 0.02), 4)
        spec["ge_p_bg"] = round(rng.uniform(0.05, 0.4), 3)
        spec["ge_loss_bad"] = round(rng.uniform(0.3, 1.0), 2)
    if rng.random() < 0.3:
        start = round(rng.uniform(10.0, 600.0), 1)
        spec["bursts"] = [{"start": start,
                           "end": round(start + rng.uniform(5.0, 60.0), 1)}]
    return spec


def _random_traffic(rng: random.Random) -> Dict[str, Any]:
    kinds, weights = zip(*_TRAFFIC_KINDS)
    kind = rng.choices(kinds, weights=weights)[0]
    service = rng.choice(_SERVICES)
    deadline = None
    if service != "be" and rng.random() < 0.4:
        deadline = float(rng.randint(50, 400))
    traffic = {"kind": kind,
               "rate": round(rng.uniform(0.01, 0.25), 3),
               "period": float(rng.randint(5, 40)),
               "service": {"premium": "premium", "assured": "assured",
                           "be": "best_effort"}[service],
               "deadline": deadline,
               "neighbours_only": rng.random() < 0.2}
    if kind in ("onoff", "voice"):
        traffic["peak_rate"] = round(rng.uniform(0.02, 0.2), 3)
        traffic["mean_on"] = float(rng.randint(50, 500))
        traffic["mean_off"] = float(rng.randint(100, 900))
    return traffic


def _random_drive(rng: random.Random, horizon: float) -> List[Dict[str, Any]]:
    """Split ``[0, horizon]`` into 1–4 run segments; ~30% of the segments
    are additionally bounded by ``max_events``."""
    cuts = sorted(round(rng.uniform(horizon * 0.1, horizon * 0.95), 1)
                  for _ in range(rng.randint(0, 3)))
    drive: List[Dict[str, Any]] = []
    for until in [*cuts, horizon]:
        chunk: Dict[str, Any] = {"until": until}
        if rng.random() < 0.3:
            chunk["max_events"] = rng.randint(50, 5000)
        drive.append(chunk)
    return drive
