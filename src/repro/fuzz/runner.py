"""Execute one fuzz case under full instrumentation.

The runner rebuilds the scenario stack from the case's serialized form (so a
case is guaranteed replayable from JSON alone), attaches the strict
per-tick :class:`~repro.core.invariants.RingInvariantChecker` (via the
scenario's ``check_invariants`` flag), a :class:`~repro.fuzz.oracles.ClockProbe`
and a :class:`~repro.fuzz.oracles.PacketLedger`, drives the engine through
the case's run segments, and finishes with the end-of-run oracles.

Every run also produces a SHA-256 *trace hash* over the full structured
event trace.  Two runs of the same case must produce the same hash — that is
the repro-bundle replay contract, and any nondeterminism (hidden global
state, dict-order dependence) shows up as a hash mismatch long before it
corrupts an experiment.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.config_io import scenario_from_dict
from repro.core.invariants import InvariantViolation
from repro.fuzz.generate import FuzzCase
from repro.fuzz.oracles import (ClockProbe, FuzzFailure, PacketLedger,
                                check_conservation, check_no_false_triggers,
                                check_no_undeliverable,
                                check_refused_calls_silent,
                                check_rotation_bound,
                                false_trigger_oracle_applies,
                                rotation_bound_applies)
from repro.scenarios import ScenarioResult, build_scenario

__all__ = ["FuzzResult", "run_case", "hash_trace"]


def hash_trace(trace) -> str:
    """Canonical SHA-256 over the structured event trace."""
    h = hashlib.sha256()
    for ev in trace.events:
        h.update(json.dumps([ev.time, ev.category, ev.fields],
                            sort_keys=True, default=str).encode())
        h.update(b"\n")
    return h.hexdigest()


@dataclass
class FuzzResult:
    """Outcome of one fuzz-case execution."""

    case: FuzzCase
    failures: List[FuzzFailure] = field(default_factory=list)
    trace_hash: str = ""
    events_executed: int = 0
    end_time: float = 0.0
    stats: Dict[str, Any] = field(default_factory=dict)
    built: Optional[ScenarioResult] = None   # kept for post-mortem poking

    @property
    def ok(self) -> bool:
        return not self.failures

    def failure_kinds(self) -> List[str]:
        return sorted({f.kind for f in self.failures})

    def to_record(self) -> Dict[str, Any]:
        """JSON-ready summary (the shape stored in the campaign store and
        embedded in repro bundles)."""
        return {
            "ok": self.ok,
            "failures": [f.to_dict() for f in self.failures],
            "trace_hash": self.trace_hash,
            "events_executed": self.events_executed,
            "end_time": self.end_time,
            "stats": self.stats,
        }


def run_case(case: FuzzCase) -> FuzzResult:
    """Build, drive, and judge one fuzz case."""
    scenario = scenario_from_dict(case.scenario)
    built = build_scenario(scenario)
    engine, net = built.engine, built.network

    probe = ClockProbe(engine).attach(net.events)
    ledger = PacketLedger(net)

    failures: List[FuzzFailure] = []
    aborted = False
    try:
        for chunk in case.drive:
            until = min(float(chunk["until"]), scenario.horizon)
            if until < engine.now:
                continue
            engine.run(until=until, max_events=chunk.get("max_events"))
            probe.checkpoint()
        if engine.now < scenario.horizon:
            engine.run(until=scenario.horizon)
        probe.checkpoint()
    except InvariantViolation as exc:
        aborted = True
        failures.append(FuzzFailure("invariant", str(exc)))
    except Exception as exc:  # noqa: BLE001 — any crash is a finding
        aborted = True
        failures.append(
            FuzzFailure("crash", f"{type(exc).__name__}: {exc}"))

    failures.extend(probe.failures)
    if not aborted:
        # end-of-run oracles assume the run reached its horizon
        failures.extend(check_conservation(net, ledger))
        failures.extend(check_no_undeliverable(net, ledger))
        if built.sessions is not None:
            failures.extend(check_refused_calls_silent(built.sessions,
                                                       ledger))
        if rotation_bound_applies(net, case.scenario):
            failures.extend(check_rotation_bound(built))
        if false_trigger_oracle_applies(case.scenario):
            failures.extend(check_no_false_triggers(net))

    metrics = net.metrics
    stats = {
        "n_final": net.n,
        "delivered": metrics.total_delivered,
        "lost": metrics.lost,
        "orphaned": metrics.orphaned,
        "enqueued": len(ledger.packets),
        "recoveries": len(net.recovery.records),
        "rebuilds": net.recovery.ring_rebuilds,
        "joins": net.join_manager.joins_completed,
        "network_down": net.network_down,
    }
    if net.impairments is not None:
        stats["impairment_drops"] = net.impairments.drops
    if case.scenario.get("adaptive_timers"):
        # emitted only for adaptive cases so every pre-existing corpus
        # bundle's pinned record keeps its exact historical shape
        stats["false_sat_recs"] = net.recovery.false_triggers
        stats["timer_samples_excluded"] = net.recovery.samples_excluded
    if built.sessions is not None:
        counts = built.sessions.counts()
        stats["calls_admitted"] = (counts["active"] + counts["ended"]
                                   + counts["cut"])
        stats["calls_refused"] = counts["refused"]
        stats["calls_cut"] = counts["cut"]
    return FuzzResult(case=case, failures=failures,
                      trace_hash=hash_trace(built.trace),
                      events_executed=engine.events_executed,
                      end_time=engine.now, stats=stats, built=built)
