"""Runtime probes and end-of-run oracles for fuzzed scenario runs.

The per-tick :class:`~repro.core.invariants.RingInvariantChecker` catches
structural corruption as it happens; the probes and oracles here catch the
bugs that slip *between* ticks or only show at the end of a run:

* :class:`ClockProbe` — the engine clock must never move backwards, and no
  pending event may be stranded behind it (the failure mode of the old
  ``Engine.run(until=..., max_events=...)`` interaction);
* :class:`PacketLedger` — remembers every packet that entered any station's
  MAC queues (including stations inserted mid-run), giving per-flow ground
  truth that is independent of the network's own counters;
* :func:`check_conservation` — ledger vs. metrics vs. live buffers: every
  packet is delivered, dropped, or buffered at a *current ring member*, and
  the per-flow ledger agrees with each station's lifetime counters;
* :func:`check_no_undeliverable` — no packet keeps circulating after a full
  circuit once both its source and destination have left the ring;
* :func:`check_rotation_bound` — on runs where Theorem 1 applies (no kills,
  SAT losses or rebuilds), every measured SAT rotation respects the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.events.types import GatewayDrop, PacketEnqueued, RingTick

__all__ = ["FuzzFailure", "ClockProbe", "PacketLedger",
           "check_conservation", "check_gateway_conservation",
           "check_no_undeliverable", "check_no_false_triggers",
           "check_refused_calls_silent", "check_rotation_bound",
           "false_trigger_oracle_applies", "rotation_bound_applies"]

_EPS = 1e-9


@dataclass(frozen=True)
class FuzzFailure:
    """One oracle/invariant/crash finding; ``kind`` is a stable category
    used by the shrinker to decide whether a reduced case still fails the
    same way."""

    kind: str
    message: str

    def to_dict(self) -> Dict[str, str]:
        return {"kind": self.kind, "message": self.message}


class ClockProbe:
    """Watches simulated time for backwards movement and stranded events.

    :meth:`attach` subscribes the probe to the network's per-tick
    :class:`~repro.events.types.RingTick` event; call :meth:`checkpoint`
    after every ``engine.run(...)`` segment.  ``failures`` accumulates (and
    is capped — one broken clock produces thousands of identical findings).
    """

    MAX_FAILURES = 5

    def __init__(self, engine):
        self.engine = engine
        self.high = engine.now
        self.failures: List[FuzzFailure] = []

    def attach(self, bus) -> "ClockProbe":
        bus.subscribe(RingTick, self._on_tick_event)
        return self

    def _on_tick_event(self, ev) -> None:
        self.on_tick(ev.t)

    def _fail(self, message: str) -> None:
        if len(self.failures) < self.MAX_FAILURES:
            self.failures.append(FuzzFailure("engine_time", message))

    def on_tick(self, t: float) -> None:
        if t < self.high - _EPS:
            self._fail(f"tick at t={t} after the clock already reached "
                       f"{self.high}: engine time moved backwards")
        self.high = max(self.high, t)

    def checkpoint(self) -> None:
        """Validate the clock after a run segment returned control."""
        now = self.engine.now
        if now < self.high - _EPS:
            self._fail(f"engine.now={now} below the high-water mark "
                       f"{self.high} after run() returned")
        self.high = max(self.high, now)
        nxt = self.engine.peek()
        if nxt is not None and nxt < now - _EPS:
            self._fail(f"pending event at t={nxt} stranded behind "
                       f"engine.now={now}")


class PacketLedger:
    """Ground-truth record of every packet accepted into any MAC queue.

    Subscribes to :class:`~repro.events.types.PacketEnqueued` on the
    network's bus — the station emits it only after an enqueue succeeded,
    and stations inserted mid-run get the same live emitter, so the ledger
    sees every accepted packet (direct ``st.enqueue`` calls included)
    without trusting the aggregate counters under test.
    """

    def __init__(self, net):
        self.net = net
        self.packets: List[Any] = []
        self.gateway_dropped: List[Any] = []   # destroyed at a bridge
        net.events.subscribe(PacketEnqueued, self._on_enqueued)
        net.events.subscribe(GatewayDrop, self._on_gateway_drop)

    def _on_enqueued(self, ev) -> None:
        self.packets.append(ev.packet)

    def _on_gateway_drop(self, ev) -> None:
        # bridges destroy packets *outside* the MAC (before enqueue, or
        # after delivery to the gateway) — ring conservation never sees
        # them, so the ledger records the loss from the typed event
        self.gateway_dropped.append(ev)

    # ------------------------------------------------------------------
    def classify(self) -> Tuple[List[Any], List[Any], List[Any]]:
        """Split the ledger into (delivered, dropped, pending)."""
        delivered, dropped, pending = [], [], []
        for p in self.packets:
            if p.t_deliver is not None:
                delivered.append(p)
            elif p.dropped:
                dropped.append(p)
            else:
                pending.append(p)
        return delivered, dropped, pending

    def per_flow(self) -> Dict[Tuple[int, int, Any], int]:
        """Enqueued packet count per ``(src, dst, service)`` flow."""
        flows: Dict[Tuple[int, int, Any], int] = {}
        for p in self.packets:
            key = (p.src, p.dst, p.service)
            flows[key] = flows.get(key, 0) + 1
        return flows


# ----------------------------------------------------------------------
# end-of-run oracles
# ----------------------------------------------------------------------
def check_conservation(net, ledger: PacketLedger) -> List[FuzzFailure]:
    """Every ledger packet is in exactly one terminal/buffered state and the
    network's aggregate metrics agree with the per-packet ground truth."""
    failures: List[FuzzFailure] = []
    delivered, dropped, pending = ledger.classify()

    members = [net.stations[sid] for sid in net.order]
    buffered = sum(st.queue_length() + len(st.transit) for st in members)
    if len(pending) != buffered:
        failures.append(FuzzFailure(
            "conservation",
            f"{len(pending)} ledger packets pending but {buffered} buffered "
            f"at ring members — packets are parked outside the ring"))

    if len(delivered) != net.metrics.total_delivered:
        failures.append(FuzzFailure(
            "conservation",
            f"metrics claim {net.metrics.total_delivered} delivered, ledger "
            f"saw {len(delivered)}"))

    gone = net.metrics.lost + net.metrics.orphaned
    if len(dropped) != gone:
        failures.append(FuzzFailure(
            "conservation",
            f"metrics claim {gone} lost+orphaned, ledger saw "
            f"{len(dropped)} dropped packets"))

    # per-flow ledger vs. per-station lifetime counters
    per_src: Dict[Tuple[int, Any], int] = {}
    for (src, _dst, service), count in ledger.per_flow().items():
        key = (src, service)
        per_src[key] = per_src.get(key, 0) + count
    for sid, st in net.stations.items():
        for service, count in st.enqueued.items():
            seen = per_src.get((sid, service), 0)
            if seen != count:
                failures.append(FuzzFailure(
                    "conservation",
                    f"station {sid} counts {count} enqueued "
                    f"{service.short} packets, ledger saw {seen}"))
    return failures


def check_gateway_conservation(gateways,
                               ledger: PacketLedger = None) -> List[FuzzFailure]:
    """Every packet offered to a bridge is forwarded, destroyed-and-counted,
    or still awaiting its ring leg — cross-network losses can't vanish.

    When a ledger is given, the bridges' own drop counters are also checked
    against the ``gw.drop`` events the ledger observed (LAN-side drops carry
    a negative ``gateway`` id and are excluded — they are counted by the
    LAN's ``dropped``, not by a Gateway).
    """
    failures: List[FuzzFailure] = []
    for gw in gateways:
        if gw.ingress_attempts != gw.forwarded_to_ring + gw.ingress_drops:
            failures.append(FuzzFailure(
                "gateway_conservation",
                f"gateway {gw.sid}: {gw.ingress_attempts} LAN->ring offers "
                f"but {gw.forwarded_to_ring} forwarded + {gw.ingress_drops} "
                f"dropped"))
        in_flight = len(gw._ring_to_lan_dst)
        if gw.relayed != gw.forwarded_to_lan + gw.relay_drops + in_flight:
            failures.append(FuzzFailure(
                "gateway_conservation",
                f"gateway {gw.sid}: {gw.relayed} ring->LAN relays but "
                f"{gw.forwarded_to_lan} forwarded + {gw.relay_drops} dropped "
                f"+ {in_flight} in flight — a relay mapping leaked"))
    if ledger is not None:
        counted = sum(gw.ingress_drops + gw.relay_drops for gw in gateways)
        lan_relay_overflows = sum(
            1 for ev in ledger.gateway_dropped
            if ev.gateway < 0 and ev.reason == "overflow")
        seen = sum(1 for ev in ledger.gateway_dropped if ev.gateway >= 0)
        # a LAN overflow bounces the relay back as a Gateway relay_drop
        # without its own gateway-side event
        if counted != seen + lan_relay_overflows:
            failures.append(FuzzFailure(
                "gateway_conservation",
                f"bridges count {counted} drops but the bus saw {seen} "
                f"gateway gw.drop events (+{lan_relay_overflows} LAN "
                f"overflows bounced to relay_drops)"))
    return failures


def check_no_undeliverable(net, ledger: PacketLedger) -> List[FuzzFailure]:
    """No packet survives a full circuit once both endpoints left the ring."""
    failures: List[FuzzFailure] = []
    n = len(net.order)
    _, _, pending = ledger.classify()
    for p in pending:
        if (p.hops > n and p.dst not in net._pos and p.src not in net._pos):
            failures.append(FuzzFailure(
                "orphan",
                f"packet {p.src}->{p.dst} has travelled {p.hops} hops on a "
                f"{n}-station ring with both endpoints gone: it will "
                f"circulate forever"))
            if len(failures) >= 5:
                break
    return failures


def check_refused_calls_silent(sessions, ledger: PacketLedger
                               ) -> List[FuzzFailure]:
    """A refused call must be *silent*: admission happens before any source
    is constructed, so none of its flow ids may appear on a ledger packet.
    Flow ids are unique per FlowSpec, so matching them is exact."""
    failures: List[FuzzFailure] = []
    refused_flows: Dict[int, int] = {}    # flow_id -> call id
    for call in sessions.calls:
        if call.state == "refused":
            if call.sources:
                failures.append(FuzzFailure(
                    "refused_call",
                    f"refused call {call.cid} has {len(call.sources)} "
                    f"traffic sources attached"))
            for flow in call.flows:
                refused_flows[flow.flow_id] = call.cid
    if refused_flows:
        for p in ledger.packets:
            cid = refused_flows.get(p.flow_id)
            if cid is not None:
                failures.append(FuzzFailure(
                    "refused_call",
                    f"refused call {cid} contributed packet "
                    f"{p.src}->{p.dst} to the ledger"))
                if len(failures) >= 5:
                    break
    return failures


def rotation_bound_applies(net, scenario_dict: Dict[str, Any]) -> bool:
    """Theorem 1 covers joins and RAP pauses but not station failures, SAT
    losses or ring rebuilds; apply the bound oracle only when none occurred
    (neither scripted nor emergent, e.g. via mobility breaking a link)."""
    for event in scenario_dict.get("faults") or []:
        if event.get("kind") in ("kill", "leave", "drop_signal", "stale_sat"):
            return False
    if scenario_dict.get("mobility"):
        return False
    if scenario_dict.get("impairments"):
        # stochastic frame loss voids the Theorem-1 preconditions (any hop
        # may silently fail and trigger recovery)
        return False
    return (not net.recovery.records
            and net.recovery.ring_rebuilds == 0
            and net.trace.count("sat.lost") == 0
            and not net.network_down)


def false_trigger_oracle_applies(scenario_dict: Dict[str, Any]) -> bool:
    """The zero-false-trigger guarantee is judged only where it is promised:
    adaptive timers on, and nothing that can *legitimately* trigger recovery
    — no destructive faults, no mobility breaking links, no stochastic frame
    loss.  Joins stay in scope deliberately: the estimator's RAP allowance
    must absorb a join window without firing."""
    if not scenario_dict.get("adaptive_timers"):
        return False
    for event in scenario_dict.get("faults") or []:
        if event.get("kind") in ("kill", "leave", "drop_signal", "stale_sat"):
            return False
    if scenario_dict.get("mobility"):
        return False
    if scenario_dict.get("impairments"):
        return False
    return True


def check_no_false_triggers(net) -> List[FuzzFailure]:
    """On applicable runs (clean channel, no destructive faults), adaptive
    timers must never launch a SAT_REC: a single episode means an estimator
    under-timed a legitimate rotation and cut an innocent station out."""
    rec = net.recovery
    if rec.false_triggers:
        return [FuzzFailure(
            "false_trigger",
            f"adaptive timers fired {rec.false_triggers} false SAT_REC(s) "
            f"on a clean channel (no faults, no loss): the RTO under-timed "
            f"a legitimate rotation")]
    if rec.records:
        first = rec.records[0]
        return [FuzzFailure(
            "false_trigger",
            f"adaptive run started {len(rec.records)} recovery episode(s) "
            f"on a clean channel with no destructive faults (first: "
            f"kind={first.kind} detected at t={first.t_detected})")]
    return []


def check_rotation_bound(result) -> List[FuzzFailure]:
    """On applicable runs, the worst measured SAT rotation must respect the
    Theorem-1 bound (as computed by ``ScenarioResult.summary``)."""
    summary = result.summary()
    if summary.get("bound_holds", True):
        return []
    return [FuzzFailure(
        "rotation_bound",
        f"worst SAT rotation {summary['worst_rotation']} exceeds the "
        f"Theorem-1 bound {summary['rotation_bound']} "
        f"({summary['rotation_samples']} samples)")]
