"""JSON repro bundles: one file = one byte-identical replayable fuzz run.

A bundle freezes a (usually shrunk) :class:`~repro.fuzz.generate.FuzzCase`
together with the outcome its run produced — failure list and the canonical
trace hash.  Replaying the bundle re-runs the case from its serialized form
only and verifies both: the same failures (by kind) must reappear and the
trace hash must match byte-identically.  A clean bundle (no failures) is a
*regression* bundle: it encodes "this scenario used to break; it must now
run clean and exactly like this".

The checked-in corpus under ``tests/corpus/`` is replayed by the tier-1
suite (``tests/test_fuzz.py``), so every bug the fuzzer ever caught stays a
one-command repro: ``python -m repro fuzz --replay <bundle.json>``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.fuzz.generate import FuzzCase
from repro.fuzz.runner import FuzzResult, run_case

__all__ = ["BUNDLE_SCHEMA", "bundle_dict", "write_bundle", "load_bundle",
           "replay_bundle", "verify_bundle"]

BUNDLE_SCHEMA = 1


def bundle_dict(case: FuzzCase, result: FuzzResult,
                note: str = "",
                shrunk_from: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The canonical serialized form of one repro bundle."""
    out: Dict[str, Any] = {
        "schema": BUNDLE_SCHEMA,
        "kind": "wrt-ring-fuzz-repro",
        "case": case.to_dict(),
        "result": result.to_record(),
    }
    if note:
        out["note"] = note
    if shrunk_from is not None:
        out["shrunk_from"] = shrunk_from
    return out


def write_bundle(path, case: FuzzCase, result: FuzzResult,
                 note: str = "",
                 shrunk_from: Optional[Dict[str, Any]] = None) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = bundle_dict(case, result, note=note, shrunk_from=shrunk_from)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bundle(path) -> Dict[str, Any]:
    data = json.loads(Path(path).read_text())
    if data.get("kind") != "wrt-ring-fuzz-repro":
        raise ValueError(f"{path}: not a fuzz repro bundle")
    if data.get("schema") != BUNDLE_SCHEMA:
        raise ValueError(f"{path}: bundle schema {data.get('schema')!r} "
                         f"not supported (expected {BUNDLE_SCHEMA})")
    return data


def replay_bundle(path) -> Tuple[FuzzResult, Dict[str, Any]]:
    """Re-run the bundle's case; returns ``(fresh_result, recorded_bundle)``."""
    data = load_bundle(path)
    case = FuzzCase.from_dict(data["case"])
    return run_case(case), data


def verify_bundle(path) -> Tuple[bool, FuzzResult, List[str]]:
    """Replay and check the bundle's contract.

    Returns ``(ok, fresh_result, mismatches)`` where ``mismatches`` lists
    human-readable discrepancies: a trace-hash difference (nondeterminism or
    a behaviour change) or a change in the failure kinds (a fixed — or
    worse, newly broken — scenario).
    """
    result, data = replay_bundle(path)
    recorded = data["result"]
    mismatches: List[str] = []

    want_kinds = sorted({f["kind"] for f in recorded.get("failures", [])})
    got_kinds = result.failure_kinds()
    if want_kinds != got_kinds:
        mismatches.append(f"failure kinds changed: recorded {want_kinds}, "
                          f"replay produced {got_kinds}")

    if recorded.get("trace_hash") and result.trace_hash != recorded["trace_hash"]:
        mismatches.append(
            f"trace hash mismatch: recorded {recorded['trace_hash'][:16]}…, "
            f"replay produced {result.trace_hash[:16]}… — the run is no "
            f"longer byte-identical")

    return not mismatches, result, mismatches
