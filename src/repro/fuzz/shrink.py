"""Delta-shrinking of failing fuzz cases to minimal reproducers.

Given a failing :class:`~repro.fuzz.generate.FuzzCase`, the shrinker applies
a fixed sequence of reductions, keeping a candidate only if it still fails
with (at least one of) the original failure *kinds* — so an invariant
violation never silently shrinks into an unrelated crash:

1. drop scripted fault events one at a time, to a fixpoint;
2. simplify the drive plan (drop ``max_events`` limits, merge segments);
3. shorten the horizon (coarse bisection over fractions);
4. remove traffic, then mobility.

Every reduction re-runs the candidate, so shrinking is bounded by
``max_runs`` total executions; the result is always a case whose failure
was re-confirmed by an actual run.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Tuple

from repro.fuzz.generate import FuzzCase
from repro.fuzz.runner import run_case

__all__ = ["shrink_case"]


def _clone(case: FuzzCase, scenario: Dict[str, Any] = None,
           drive: List[Dict[str, Any]] = None) -> FuzzCase:
    return FuzzCase(seed=case.seed, index=case.index,
                    scenario=copy.deepcopy(
                        scenario if scenario is not None else case.scenario),
                    drive=copy.deepcopy(
                        drive if drive is not None else case.drive))


def shrink_case(case: FuzzCase, max_runs: int = 120) -> Tuple[FuzzCase, int]:
    """Shrink ``case`` to a smaller still-failing case.

    Returns ``(shrunk_case, runs_used)``.  If the case does not fail at all
    it is returned unchanged with ``runs_used == 1``.
    """
    baseline = run_case(case)
    if baseline.ok:
        return case, 1
    kinds = set(baseline.failure_kinds())
    runs = 1

    def still_fails(candidate: FuzzCase) -> bool:
        nonlocal runs
        if runs >= max_runs:
            return False
        runs += 1
        try:
            result = run_case(candidate)
        except Exception:   # a broken candidate is not a reproducer
            return False
        return bool(kinds & set(result.failure_kinds()))

    current = case

    # 1. drop fault events greedily, repeating until no event can go
    changed = True
    while changed and runs < max_runs:
        changed = False
        faults = current.scenario.get("faults") or []
        for i in range(len(faults) - 1, -1, -1):
            scenario = copy.deepcopy(current.scenario)
            del scenario["faults"][i]
            if not scenario["faults"]:
                del scenario["faults"]
            candidate = _clone(current, scenario=scenario)
            if still_fails(candidate):
                current = candidate
                changed = True

    # 2a. drop per-segment max_events limits
    for i, chunk in enumerate(current.drive):
        if "max_events" in chunk:
            drive = copy.deepcopy(current.drive)
            del drive[i]["max_events"]
            candidate = _clone(current, drive=drive)
            if still_fails(candidate):
                current = candidate

    # 2b. collapse the drive to a single straight run to the horizon
    if len(current.drive) > 1:
        candidate = _clone(
            current, drive=[{"until": current.scenario["horizon"]}])
        if still_fails(candidate):
            current = candidate

    # 3. shorten the horizon
    for fraction in (0.25, 0.5, 0.75):
        horizon = max(50.0, round(current.scenario["horizon"] * fraction, 1))
        if horizon >= current.scenario["horizon"]:
            continue
        candidate = _clone(current)
        candidate.scenario["horizon"] = horizon
        candidate.drive = _clip_drive(candidate.drive, horizon)
        if still_fails(candidate):
            current = candidate
            break

    # 4. strip the workload, then mobility
    if current.scenario.get("traffic", {}).get("kind") != "none":
        candidate = _clone(current)
        candidate.scenario.setdefault("traffic", {})
        candidate.scenario["traffic"] = {"kind": "none"}
        if still_fails(candidate):
            current = candidate
    if current.scenario.get("mobility"):
        candidate = _clone(current)
        del candidate.scenario["mobility"]
        if still_fails(candidate):
            current = candidate

    return current, runs


def _clip_drive(drive: List[Dict[str, Any]],
                horizon: float) -> List[Dict[str, Any]]:
    """Truncate a drive plan to a shorter horizon, keeping the first
    overflowing segment's ``max_events`` bound."""
    clipped: List[Dict[str, Any]] = []
    for chunk in drive:
        if chunk["until"] < horizon:
            clipped.append(dict(chunk))
            continue
        last = dict(chunk)
        last["until"] = horizon
        clipped.append(last)
        break
    if not clipped or clipped[-1]["until"] < horizon:
        clipped.append({"until": horizon})
    return clipped
