"""The campaign runner: fan sweep points over worker processes.

:class:`CampaignRunner` executes a :class:`~repro.campaign.sweep.Sweep`:

* points already present in the :class:`~repro.campaign.store.ResultStore`
  are *cache hits* and are not re-run (this is what makes an interrupted
  campaign resumable — completed points were flushed to the store's JSONL
  before the crash);
* remaining points run on a pool of worker processes (one process per
  point, bounded concurrency) with a per-run timeout and bounded retry on
  worker failure;
* ``workers=0`` runs everything serially in-process (deterministically
  identical results — the worker function is a pure function of the
  scenario dict);
* progress is reported live through a callback (default: one line per
  event on stderr).

The result is a :class:`CampaignResult` whose records are ordered by sweep
point — not by completion — so aggregated tables are byte-identical no
matter how the campaign was scheduled.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.campaign.store import ResultStore, point_hash
from repro.campaign.sweep import Sweep, SweepPoint
from repro.campaign.worker import _child_entry, normalize_record, run_point

__all__ = ["CampaignRunner", "CampaignResult", "PointFailure",
           "ProgressPrinter"]

ProgressFn = Callable[..., None]


@dataclass
class PointFailure:
    """A point that exhausted its retries."""

    point: SweepPoint
    error: str
    attempts: int


@dataclass
class CampaignResult:
    """Everything a finished (possibly partially failed) campaign produced."""

    sweep: Sweep
    records: List[Dict[str, Any]] = field(default_factory=list)
    failures: List[PointFailure] = field(default_factory=list)
    cached: int = 0
    ran: int = 0
    #: wall-clock duration of CampaignRunner.run(); reporting only — it is
    #: never stored with the records, which must stay deterministic
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def events_executed(self) -> int:
        """Total simulated events across all records (deterministic)."""
        return sum(r.get("events_executed", 0) for r in self.records)

    def table(self, columns: Sequence, title: Optional[str] = None) -> str:
        """Aligned table over the records (see campaign.aggregate)."""
        from repro.campaign.aggregate import campaign_table
        return campaign_table(self.records, columns, title=title)


class ProgressPrinter:
    """Default progress reporter: one stderr line per campaign event."""

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr
        self.total = 0
        self.done = 0

    def __call__(self, event: str, point: Optional[SweepPoint] = None,
                 **info: Any) -> None:
        if event == "begin":
            self.total = info["total"]
            print(f"campaign: {info['total']} points, "
                  f"{info['cached']} cached, {info['pending']} to run "
                  f"(workers={info['workers']})", file=self.stream)
            return
        if event in ("cached", "done", "failed"):
            self.done += 1
        label = point.label() if point is not None else ""
        prefix = f"[{self.done:3d}/{self.total}]"
        if event == "cached":
            print(f"{prefix} cached  {label}", file=self.stream)
        elif event == "start":
            pass  # one line per finished point keeps the log readable
        elif event == "done":
            print(f"{prefix} done    {label}  {info['elapsed']:.2f}s",
                  file=self.stream)
        elif event == "retry":
            print(f"[retry {info['attempt']}] {label}: {info['reason']}",
                  file=self.stream)
        elif event == "failed":
            print(f"{prefix} FAILED  {label}: {info['reason']}",
                  file=self.stream)
        self.stream.flush()


@dataclass
class _Active:
    point: SweepPoint
    proc: multiprocessing.Process
    conn: Any
    started: float
    attempt: int


class CampaignRunner:
    """Run a sweep against a store, in parallel, with retry and resume."""

    def __init__(self, sweep: Sweep, store: Optional[ResultStore] = None,
                 workers: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 progress: Optional[ProgressFn] = None,
                 profiler=None):
        if workers is not None and workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.sweep = sweep
        self.store = store
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.progress = progress if progress is not None else ProgressPrinter()
        #: optional repro.obs.profile.Profiler; receives one "campaign.run"
        #: span per run() and one "campaign.point" span per executed point
        self.profiler = profiler

    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        run_start = time.perf_counter()
        points = self.sweep.expand()
        hashes = {p.index: point_hash(p.scenario_dict) for p in points}

        records: Dict[int, Dict[str, Any]] = {}
        pending: List[SweepPoint] = []
        cached = 0
        for point in points:
            hit = self.store.get(hashes[point.index]) if self.store else None
            if hit is not None:
                records[point.index] = self._decorate(hit, point,
                                                      hashes[point.index],
                                                      from_cache=True)
                cached += 1
            else:
                pending.append(point)

        workers = self.workers
        if workers is None:
            workers = min(len(pending), os.cpu_count() or 2)
        self.progress("begin", total=len(points), cached=cached,
                      pending=len(pending), workers=workers)
        for point in points:
            if point.index in records:
                self.progress("cached", point)

        failures: List[PointFailure] = []
        if pending:
            if workers == 0:
                self._run_serial(pending, hashes, records, failures)
            else:
                self._run_parallel(pending, hashes, records, failures,
                                   workers)
        if self.store is not None:
            self.store.write_index()

        ordered = [records[p.index] for p in points if p.index in records]
        elapsed = time.perf_counter() - run_start
        if self.profiler is not None:
            events = sum(r.get("events_executed", 0) for r in ordered)
            self.profiler.record_span(
                "campaign.run", run_start, elapsed,
                points=len(ordered), events=events)
        return CampaignResult(sweep=self.sweep, records=ordered,
                              failures=failures, cached=cached,
                              ran=len(points) - cached - len(failures),
                              elapsed_s=elapsed)

    # ------------------------------------------------------------------
    def _decorate(self, record: Dict[str, Any], point: SweepPoint,
                  key: str, from_cache: bool) -> Dict[str, Any]:
        record = dict(record)
        record.setdefault("hash", key)
        record["point"] = point.overrides
        record["index"] = point.index
        record["label"] = point.label()
        record["cached"] = from_cache
        return record

    def _complete(self, point: SweepPoint, key: str,
                  record: Dict[str, Any],
                  records: Dict[int, Dict[str, Any]], elapsed: float) -> None:
        record = normalize_record(record)
        record["hash"] = key
        record["label"] = point.label()
        if self.store is not None:
            self.store.put(record)
        records[point.index] = self._decorate(record, point, key,
                                              from_cache=False)
        if self.profiler is not None:
            self.profiler.record_span(
                "campaign.point", time.perf_counter() - elapsed, elapsed,
                events=record.get("events_executed", 0))
        self.progress("done", point, elapsed=elapsed)

    # ------------------------------------------------------------------
    def _run_serial(self, pending: Sequence[SweepPoint],
                    hashes: Dict[int, str],
                    records: Dict[int, Dict[str, Any]],
                    failures: List[PointFailure]) -> None:
        """In-process execution (no per-run timeout enforcement)."""
        import traceback
        for point in pending:
            last_error = ""
            for attempt in range(1, self.retries + 2):
                self.progress("start", point, attempt=attempt)
                start = time.perf_counter()
                try:
                    record = run_point(point.scenario_dict)
                except Exception:
                    last_error = traceback.format_exc()
                    if attempt <= self.retries:
                        self.progress("retry", point, attempt=attempt,
                                      reason=_head(last_error))
                    continue
                self._complete(point, hashes[point.index], record, records,
                               time.perf_counter() - start)
                break
            else:
                failures.append(PointFailure(point, last_error,
                                             self.retries + 1))
                self.progress("failed", point, reason=_head(last_error))

    # ------------------------------------------------------------------
    def _run_parallel(self, pending: Sequence[SweepPoint],
                      hashes: Dict[int, str],
                      records: Dict[int, Dict[str, Any]],
                      failures: List[PointFailure], workers: int) -> None:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        queue = deque(pending)
        active: Dict[int, _Active] = {}

        def launch(point: SweepPoint, attempt: int) -> None:
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_child_entry,
                               args=(child_conn, point.scenario_dict))
            proc.start()
            child_conn.close()
            active[point.index] = _Active(point, proc, parent_conn,
                                          time.perf_counter(), attempt)
            self.progress("start", point, attempt=attempt)

        def retry_or_fail(run: _Active, reason: str) -> None:
            if run.attempt <= self.retries:
                self.progress("retry", run.point, attempt=run.attempt,
                              reason=_head(reason))
                launch(run.point, run.attempt + 1)
            else:
                failures.append(PointFailure(run.point, reason, run.attempt))
                self.progress("failed", run.point, reason=_head(reason))

        import json as _json
        while queue or active:
            while queue and len(active) < workers:
                launch(queue.popleft(), attempt=1)
            made_progress = False
            for index in list(active):
                run = active[index]
                now = time.perf_counter()
                outcome = None  # (status, payload)
                if run.conn.poll():
                    try:
                        outcome = run.conn.recv()
                    except EOFError:
                        outcome = ("error", "worker died without a result "
                                            f"(exitcode {run.proc.exitcode})")
                elif not run.proc.is_alive():
                    outcome = ("error", "worker died without a result "
                                        f"(exitcode {run.proc.exitcode})")
                elif (self.timeout is not None
                      and now - run.started > self.timeout):
                    self._kill(run.proc)
                    outcome = ("error",
                               f"timeout after {self.timeout:.1f}s")
                if outcome is None:
                    continue
                made_progress = True
                run.proc.join()
                run.conn.close()
                del active[index]
                status, payload = outcome
                if status == "ok":
                    self._complete(run.point, hashes[index],
                                   _json.loads(payload), records,
                                   time.perf_counter() - run.started)
                else:
                    retry_or_fail(run, payload)
            if not made_progress:
                time.sleep(0.01)

    @staticmethod
    def _kill(proc: multiprocessing.Process) -> None:
        proc.terminate()
        proc.join(1.0)
        if proc.is_alive():  # pragma: no cover - stuck in uninterruptible IO
            proc.kill()
            proc.join(1.0)


def _head(text: str, limit: int = 120) -> str:
    lines = [ln for ln in text.strip().splitlines() if ln.strip()]
    tail = lines[-1] if lines else text.strip()
    return tail[:limit]
