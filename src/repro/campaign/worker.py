"""Per-point campaign execution — the function that runs inside workers.

Kept deliberately tiny and top-level so it is importable under both the
``fork`` and ``spawn`` multiprocessing start methods.  A point's result is
a pure function of its scenario dict (the RNG state is rebuilt from the
scenario seed inside :func:`repro.scenarios.run_scenario`), which is the
correctness assumption behind the content-addressed cache: running a point
in-process, in a worker, or on another day must produce the same record.

Records are normalized through a JSON round trip on every path, so cached,
serial and parallel results compare (and tabulate) byte-identically.
"""

from __future__ import annotations

import json
import time
import traceback
from typing import Any, Dict

from repro.campaign.sweep import canonical_json

__all__ = ["run_point", "normalize_record"]


def run_point(scenario_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Run one fully-resolved scenario dict; return its result record."""
    from repro.config_io import scenario_from_dict
    from repro.scenarios import run_scenario

    if "topology" in scenario_dict:
        # a fabric sweep point: the dict describes a whole multi-ring
        # topology, not a single scenario
        from repro.fabric.runner import run_fabric_point
        return run_fabric_point(scenario_dict)

    start = time.perf_counter()
    result = run_scenario(scenario_from_dict(scenario_dict))
    return {
        "scenario": scenario_dict,
        "summary": result.summary(),
        "elapsed": round(time.perf_counter() - start, 3),
        # deterministic (unlike "elapsed"): lets campaign-level reporting
        # derive simulated events/sec without touching the summary shape
        "events_executed": result.engine.events_executed,
    }


def normalize_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Force ``record`` through JSON so every execution path yields the
    exact same value types (tuples → lists, objects → strings, ...)."""
    return json.loads(canonical_json(record))


def _child_entry(conn, scenario_dict: Dict[str, Any]) -> None:
    """Subprocess entry: send ("ok", record-json) or ("error", traceback)."""
    try:
        payload = canonical_json(run_point(scenario_dict))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        finally:
            conn.close()
        return
    try:
        conn.send(("ok", payload))
    finally:
        conn.close()
