"""Aggregation: join campaign records back into the repo's table formats.

Campaign records are plain dicts (``scenario``, ``summary``, ``point``,
``hash``...).  This module extracts columns from them and renders the same
aligned console tables the benchmark harness prints
(:func:`aligned_table` is the single implementation behind
``benchmarks/_harness.print_table``) and the markdown tables
``analysis/report.py`` builds for ``EXPERIMENTS.md``.

A column spec is either

* a field path string — looked up in the record itself, then its
  ``summary``, then its ``scenario`` (dotted paths reach nested dicts:
  ``"traffic.rate"``, ``"config.seed"``); the header is the path; or
* a ``(header, path_or_callable)`` pair — a callable receives the whole
  record.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, \
    Tuple, Union

from repro.analysis.report import markdown_table

__all__ = ["aligned_table", "get_field", "campaign_columns",
           "campaign_table", "campaign_markdown", "default_columns"]

ColumnSpec = Union[str, Tuple[str, Union[str, Callable[[Mapping], Any]]]]


def aligned_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Right-aligned console table (floats rendered as ``%.3f``)."""
    cells = [[f"{v:.3f}" if isinstance(v, float) else str(v) for v in row]
             for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def get_field(record: Mapping[str, Any], path: str) -> Any:
    """Resolve a dotted field path against record / summary / scenario."""
    roots = (record, record.get("summary") or {}, record.get("scenario") or {})
    parts = path.split(".")
    for root in roots:
        node: Any = root
        for part in parts:
            if isinstance(node, Mapping) and part in node:
                node = node[part]
            else:
                break
        else:
            return node
    return None


def _resolve(record: Mapping[str, Any], spec: ColumnSpec) -> Any:
    accessor = spec[1] if isinstance(spec, tuple) else spec
    if callable(accessor):
        value = accessor(record)
    else:
        value = get_field(record, accessor)
    return "-" if value is None else value


def _header(spec: ColumnSpec) -> str:
    return spec[0] if isinstance(spec, tuple) else spec


def campaign_columns(records: Sequence[Mapping[str, Any]],
                     columns: Sequence[ColumnSpec],
                     ) -> Tuple[List[str], List[List[Any]]]:
    """Extract ``(headers, rows)`` from campaign records, in record order."""
    headers = [_header(c) for c in columns]
    rows = [[_resolve(r, c) for c in columns] for r in records]
    return headers, rows


def campaign_table(records: Sequence[Mapping[str, Any]],
                   columns: Sequence[ColumnSpec],
                   title: Optional[str] = None) -> str:
    """The aligned console table over ``records`` (optionally titled)."""
    headers, rows = campaign_columns(records, columns)
    table = aligned_table(headers, rows)
    return f"=== {title} ===\n{table}" if title else table


def campaign_markdown(records: Sequence[Mapping[str, Any]],
                      columns: Sequence[ColumnSpec]) -> str:
    """The GitHub-markdown table over ``records`` (EXPERIMENTS.md shape)."""
    headers, rows = campaign_columns(records, columns)
    return markdown_table(headers, rows)


def default_columns(sweep, records: Sequence[Mapping[str, Any]]
                    ) -> List[ColumnSpec]:
    """Axis fields first, then the headline summary metrics."""
    axis_fields: List[str] = []
    if getattr(sweep, "axes", None):
        axis_fields = list(sweep.axes)
    elif getattr(sweep, "points", None):
        seen: Dict[str, None] = {}
        for point in sweep.points:
            for key in point:
                seen.setdefault(key)
        axis_fields = list(seen)
    if getattr(sweep, "topology", None) is not None:
        # fabric sweeps carry fabric summaries, not scenario summaries
        metrics = ["rings", "stations", "frames_created", "frames_completed",
                   "cross_ring_deadline_miss_rate", "gw_forwards"]
    else:
        metrics = ["delivered", "goodput_per_slot", "worst_rotation",
                   "rotation_bound", "bound_holds"]
    def axis_accessor(name: str) -> Callable[[Mapping], Any]:
        def access(record: Mapping[str, Any], _name=name) -> Any:
            overrides = record.get("point") or {}
            if _name in overrides:       # overrides keep dotted keys flat
                return overrides[_name]
            return get_field(record, _name)
        return access

    columns: List[ColumnSpec] = []
    for name in axis_fields:
        columns.append((name, axis_accessor(name)))
    columns.extend(m for m in metrics if m not in axis_fields)
    return columns
