"""Campaign orchestration: parallel, cached, resumable scenario sweeps.

The paper's every figure is a parameter sweep; this package turns one into
a declarative object and an orchestrated run:

- :mod:`repro.campaign.sweep`     -- grid / zip / explicit-point sweep
  specs over :class:`~repro.scenarios.Scenario` fields, with per-point
  deterministic seed derivation;
- :mod:`repro.campaign.runner`    -- the multiprocessing campaign runner
  (per-run timeout, bounded retry, live progress);
- :mod:`repro.campaign.store`     -- content-addressed JSONL result store
  (cache hits skip completed points; interrupted campaigns resume);
- :mod:`repro.campaign.aggregate` -- join records back into the aligned
  console tables and markdown tables the repo already uses;
- :mod:`repro.campaign.worker`    -- the pure per-point worker function.

Quickstart::

    from repro.campaign import CampaignRunner, ResultStore, Sweep
    from repro.scenarios import Scenario

    sweep = Sweep(base=Scenario(horizon=5_000),
                  axes={"n": [4, 8, 12], "l": [1, 2]})
    result = CampaignRunner(sweep, ResultStore(".campaign/demo")).run()
    print(result.table(["n", "l", "delivered", "worst_rotation"]))

CLI: ``python -m repro sweep --axis n=4,8,12 --axis l=1,2``.
"""

from repro.campaign.aggregate import (aligned_table, campaign_markdown,
                                      campaign_table, default_columns,
                                      get_field)
from repro.campaign.runner import (CampaignResult, CampaignRunner,
                                   PointFailure, ProgressPrinter)
from repro.campaign.store import RESULT_SCHEMA, ResultStore, point_hash
from repro.campaign.sweep import (Sweep, SweepPoint, sweep_from_dict,
                                  sweep_to_dict)
from repro.campaign.worker import normalize_record, run_point

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "PointFailure",
    "ProgressPrinter",
    "RESULT_SCHEMA",
    "ResultStore",
    "Sweep",
    "SweepPoint",
    "aligned_table",
    "campaign_markdown",
    "campaign_table",
    "default_columns",
    "get_field",
    "normalize_record",
    "point_hash",
    "run_point",
    "sweep_from_dict",
    "sweep_to_dict",
]
