"""Content-addressed campaign result store: append-only JSONL + index.

Each completed sweep point is one JSON line in ``results.jsonl``, keyed by
a stable content hash of its fully-resolved scenario dict plus the
code-relevant configuration (package version and result-schema version).
Identical points therefore share a key across campaigns, re-running a
campaign skips every point already in the store, and an interrupted
campaign resumes exactly where it stopped — the JSONL is flushed per
record, and a truncated trailing line (a crash mid-write) is ignored on
reload.

``index.json`` is a regenerable convenience view (hash → line number,
point labels, counts) written after each campaign; the JSONL is always the
source of truth.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional

from repro import __version__
from repro.campaign.sweep import canonical_json

__all__ = ["ResultStore", "point_hash", "RESULT_SCHEMA"]

#: bump to invalidate every cached result when the record shape changes
RESULT_SCHEMA = 1


def point_hash(scenario_dict: Mapping[str, Any]) -> str:
    """Stable content hash of one sweep point.

    Covers the complete scenario description and the code-relevant config
    (package version, result schema), so results cached by an older code
    revision are never silently reused.
    """
    material = canonical_json({"scenario": scenario_dict,
                               "schema": RESULT_SCHEMA,
                               "version": __version__})
    return hashlib.sha256(material.encode()).hexdigest()[:16]


class ResultStore:
    """Campaign results under one directory, addressable by point hash."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.results_path = self.root / "results.jsonl"
        self.index_path = self.root / "index.json"
        self._records: Dict[str, Dict[str, Any]] = {}
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not self.results_path.exists():
            return
        with self.results_path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # crash mid-write left a truncated tail; the point will
                    # simply be re-run
                    continue
                key = record.get("hash")
                if key:
                    self._records[key] = record

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._records.values())

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self._records.get(key)

    # ------------------------------------------------------------------
    def put(self, record: Dict[str, Any]) -> None:
        """Append one completed-point record (must carry ``"hash"``)."""
        key = record.get("hash")
        if not key:
            raise ValueError("record needs a 'hash' key")
        if key in self._records:
            return
        with self.results_path.open("a") as fh:
            fh.write(canonical_json(record) + "\n")
            fh.flush()
        self._records[key] = record

    def write_index(self) -> None:
        """Regenerate ``index.json`` from the in-memory view."""
        entries = {}
        for line_no, record in enumerate(self._records.values()):
            entries[record["hash"]] = {
                "line": line_no,
                "label": record.get("label", ""),
            }
        payload = {
            "schema": RESULT_SCHEMA,
            "version": __version__,
            "count": len(entries),
            "results": "results.jsonl",
            "points": entries,
        }
        self.index_path.write_text(json.dumps(payload, indent=2,
                                              sort_keys=True) + "\n")
