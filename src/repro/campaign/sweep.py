"""Declarative sweep specs: grid / zip / explicit points over Scenario fields.

Every figure of the paper is a *sweep* — vary one or more :class:`Scenario`
fields, run the stack at each point, tabulate.  A :class:`Sweep` captures
that declaratively:

* ``axes`` with ``mode="grid"`` — the cartesian product of the axis values
  (the usual N × l × k table);
* ``axes`` with ``mode="zip"`` — the axes advance in lockstep (e.g. a
  horizon that grows with N);
* ``points`` — an explicit list of override dicts when the point set is
  irregular.

Axis/override keys address fields of the scenario *dict*
(:func:`repro.config_io.scenario_to_dict`); dotted keys reach nested
fields (``"traffic.rate"``, ``"mobility.wander_radius"``).  A sweep with
``topology=`` set ranges over a multi-ring fabric instead
(:class:`repro.fabric.Topology`): the base dict comes from
:func:`repro.fabric.topology_to_dict` and axes may address fabric fields
through the same dotted syntax (``"topology.rings"``,
``"topology.cross_flows"``); workers dispatch each point to
:func:`repro.fabric.run_fabric_point`.

Unless a point overrides ``seed`` itself, each point receives an
independent deterministic seed derived from the sweep's master seed via
:meth:`repro.sim.rng.RandomStreams.derive`, keyed by the point's canonical
override string — so adding, removing or reordering points never changes
any other point's sample path, and the whole campaign reproduces from one
integer.  ``derive_seeds=False`` keeps the base scenario's seed everywhere
(common-random-number comparisons).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.config_io import scenario_from_dict, scenario_to_dict
from repro.scenarios import Scenario
from repro.sim.rng import RandomStreams

__all__ = ["Sweep", "SweepPoint", "sweep_from_dict", "sweep_to_dict"]


def canonical_json(value: Any) -> str:
    """Deterministic compact JSON — the basis of point keys and hashes."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      default=str)


def apply_overrides(base: Dict[str, Any],
                    overrides: Mapping[str, Any]) -> Dict[str, Any]:
    """A deep copy of ``base`` with dotted-key ``overrides`` applied."""
    out = json.loads(json.dumps(base))
    for key, value in overrides.items():
        parts = key.split(".")
        node = out
        for part in parts[:-1]:
            nxt = node.get(part)
            if not isinstance(nxt, dict):
                nxt = {}
                node[part] = nxt
            node = nxt
        node[parts[-1]] = value
    return out


@dataclass(frozen=True)
class SweepPoint:
    """One materialized point of a sweep."""

    index: int                      #: position in sweep order
    overrides: Dict[str, Any]       #: the dotted-key overrides of this point
    scenario_dict: Dict[str, Any]   #: fully resolved scenario description
    key: str                        #: canonical JSON of ``overrides``

    def scenario(self) -> Scenario:
        if "topology" in self.scenario_dict:
            raise ValueError(
                "fabric sweep point — rebuild it with "
                "repro.fabric.topology_from_dict(point.scenario_dict)")
        return scenario_from_dict(self.scenario_dict)

    def label(self) -> str:
        """Short human-readable tag, e.g. ``n=8,l=2``."""
        if not self.overrides:
            return f"point{self.index}"
        return ",".join(f"{k}={_short(v)}" for k, v in
                        sorted(self.overrides.items()))


def _short(value: Any) -> str:
    text = canonical_json(value) if isinstance(value, (dict, list)) \
        else str(value)
    return text if len(text) <= 24 else text[:21] + "..."


@dataclass
class Sweep:
    """A declarative campaign: base scenario + the points to visit."""

    base: Scenario = field(default_factory=Scenario)
    axes: Optional[Mapping[str, Sequence[Any]]] = None
    mode: str = "grid"                       # "grid" | "zip"
    points: Optional[Sequence[Mapping[str, Any]]] = None
    name: str = ""
    seed: int = 0                            #: master seed for derivation
    derive_seeds: bool = True
    #: a :class:`repro.fabric.Topology` (or its dict form) — when set the
    #: sweep ranges over fabric runs and ``base`` is ignored (the topology
    #: carries its own per-ring base scenario)
    topology: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.mode not in ("grid", "zip"):
            raise ValueError(f"unknown sweep mode {self.mode!r}")
        if (self.axes is None) == (self.points is None):
            raise ValueError("give exactly one of axes= or points=")
        if self.axes is not None:
            lengths = {k: len(list(v)) for k, v in self.axes.items()}
            if any(n == 0 for n in lengths.values()):
                raise ValueError(f"empty sweep axis in {lengths}")
            if self.mode == "zip" and len(set(lengths.values())) > 1:
                raise ValueError(f"zip axes must have equal lengths, "
                                 f"got {lengths}")

    # ------------------------------------------------------------------
    def _override_sets(self) -> List[Dict[str, Any]]:
        if self.points is not None:
            return [dict(p) for p in self.points]
        keys = list(self.axes)
        values = [list(self.axes[k]) for k in keys]
        if self.mode == "zip":
            combos = zip(*values)
        else:
            combos = itertools.product(*values)
        return [dict(zip(keys, combo)) for combo in combos]

    def _base_dict(self) -> Dict[str, Any]:
        if self.topology is None:
            return scenario_to_dict(self.base)
        if isinstance(self.topology, Mapping):
            return json.loads(json.dumps(self.topology))
        from repro.fabric.topology import topology_to_dict
        return topology_to_dict(self.topology)

    def expand(self) -> List[SweepPoint]:
        """Materialize every point, in deterministic sweep order."""
        base_dict = self._base_dict()
        streams = RandomStreams(self.seed)
        out: List[SweepPoint] = []
        seen: Dict[str, int] = {}
        for index, overrides in enumerate(self._override_sets()):
            key = canonical_json(overrides)
            if key in seen:
                raise ValueError(f"duplicate sweep point {key} "
                                 f"(indices {seen[key]} and {index})")
            seen[key] = index
            scenario_dict = apply_overrides(base_dict, overrides)
            if self.derive_seeds and "seed" not in overrides:
                scenario_dict["seed"] = streams.derive(key)
            out.append(SweepPoint(index=index, overrides=dict(overrides),
                                  scenario_dict=scenario_dict, key=key))
        return out

    def spec_hash_material(self) -> str:
        """Canonical description of the sweep (for default naming)."""
        return canonical_json(sweep_to_dict(self))


# ----------------------------------------------------------------------
def sweep_to_dict(sweep: Sweep) -> Dict[str, Any]:
    """JSON-serializable description of ``sweep``."""
    out: Dict[str, Any] = {
        "base": scenario_to_dict(sweep.base),
        "mode": sweep.mode,
        "seed": sweep.seed,
        "derive_seeds": sweep.derive_seeds,
    }
    if sweep.name:
        out["name"] = sweep.name
    if sweep.axes is not None:
        out["axes"] = {k: list(v) for k, v in sweep.axes.items()}
    if sweep.points is not None:
        out["points"] = [dict(p) for p in sweep.points]
    if sweep.topology is not None:
        out["topology"] = sweep._base_dict()
    return out


def sweep_from_dict(data: Mapping[str, Any]) -> Sweep:
    """Build a Sweep from the dict shape :func:`sweep_to_dict` emits."""
    known = {"base", "mode", "seed", "derive_seeds", "name", "axes",
             "points", "topology"}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown sweep keys: {sorted(unknown)}")
    base = scenario_from_dict(data.get("base", {}))
    return Sweep(base=base,
                 axes=data.get("axes"),
                 mode=data.get("mode", "grid"),
                 points=data.get("points"),
                 name=data.get("name", ""),
                 seed=data.get("seed", 0),
                 derive_seeds=data.get("derive_seeds", True),
                 topology=data.get("topology"))
