"""Command-line interface.

Four subcommands, mirroring the library's main entry points::

    python -m repro simulate  --n 8 --l 2 --k 1 --horizon 20000 [--traffic ...]
    python -m repro bounds    --n 8 --l 2 --k 1 [--t-rap 9] [--backlog 4]
    python -m repro compare   --n 8 --quota 3 --horizon 10000
    python -m repro allocate  --demands rate:deadline:backlog,... [--scheme local]

``simulate`` runs a full scenario (optionally with mobility and scripted
faults) and prints the summary; ``bounds`` evaluates the paper's closed
forms; ``compare`` runs the WRT-Ring-vs-TPT trio (round trip, capacity,
failure reaction); ``allocate`` sizes the guaranteed quotas for a demand
set.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WRT-Ring (Donatiello & Furini 2003) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run a WRT-Ring scenario")
    sim.add_argument("--config", type=str, default=None,
                     help="JSON scenario file (overrides the other flags)")
    sim.add_argument("--n", type=int, default=8)
    sim.add_argument("--l", type=int, default=2)
    sim.add_argument("--k", type=int, default=1)
    sim.add_argument("--horizon", type=float, default=10_000.0)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--traffic", choices=["none", "poisson", "cbr", "video",
                                           "backlog"], default="poisson")
    sim.add_argument("--rate", type=float, default=0.05,
                     help="per-station rate for poisson traffic")
    sim.add_argument("--period", type=float, default=20.0,
                     help="period / frame interval for cbr/video")
    sim.add_argument("--service", choices=["premium", "assured", "be"],
                     default="premium")
    sim.add_argument("--deadline", type=float, default=None)
    sim.add_argument("--rap", action="store_true",
                     help="enable the Random Access Period")
    sim.add_argument("--wander", type=float, default=0.0,
                     help="mobility wander radius (0 = static)")
    sim.add_argument("--kill", type=str, default="",
                     help="comma list of station:time silent deaths")
    sim.add_argument("--leave", type=str, default="",
                     help="comma list of station:time announced departures")
    sim.add_argument("--check-invariants", action="store_true")
    sim.add_argument("--json", action="store_true", help="JSON summary")

    bounds = sub.add_parser("bounds", help="evaluate the Sec. 2.6 closed forms")
    bounds.add_argument("--n", type=int, required=True)
    bounds.add_argument("--l", type=int, required=True)
    bounds.add_argument("--k", type=int, required=True)
    bounds.add_argument("--t-rap", type=float, default=0.0)
    bounds.add_argument("--backlog", type=int, default=0,
                        help="x for the Theorem-3 access bound")
    bounds.add_argument("--rounds", type=int, default=1,
                        help="n for the Theorem-2 window bound")
    bounds.add_argument("--json", action="store_true")

    cmp_ = sub.add_parser("compare", help="WRT-Ring vs TPT trio")
    cmp_.add_argument("--n", type=int, default=8)
    cmp_.add_argument("--quota", type=int, default=3,
                      help="per-station reserved bandwidth (l+k = H)")
    cmp_.add_argument("--horizon", type=float, default=10_000.0)
    cmp_.add_argument("--json", action="store_true")

    alloc = sub.add_parser("allocate", help="size the guaranteed quotas")
    alloc.add_argument("--demands", type=str, required=True,
                       help="comma list of rate:deadline:backlog per station "
                            "(deadline '-' for none)")
    alloc.add_argument("--scheme", choices=["equal", "proportional",
                                            "normalized_proportional",
                                            "local"],
                       default="local")
    alloc.add_argument("--k", type=int, default=1,
                       help="fixed non-RT quota per station")
    alloc.add_argument("--t-rap", type=float, default=0.0)
    alloc.add_argument("--json", action="store_true")

    return parser


# ----------------------------------------------------------------------
def _parse_station_times(text: str) -> List[tuple]:
    out = []
    if not text:
        return out
    for item in text.split(","):
        station, _, when = item.partition(":")
        if not when:
            raise SystemExit(f"bad station:time entry {item!r}")
        out.append((int(station), float(when)))
    return out


def _emit(payload: dict, as_json: bool) -> None:
    if as_json:
        print(json.dumps(payload, indent=2, default=str))
        return
    for key, value in payload.items():
        print(f"{key:28s} {value}")


# ----------------------------------------------------------------------
def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.packet import ServiceClass
    from repro.faults import FaultSchedule
    from repro.scenarios import MobilitySpec, Scenario, TrafficMix, run_scenario

    if args.config is not None:
        from repro.config_io import load_scenario
        result = run_scenario(load_scenario(args.config))
        _emit(result.summary(), args.json)
        return 0

    service = {"premium": ServiceClass.PREMIUM,
               "assured": ServiceClass.ASSURED,
               "be": ServiceClass.BEST_EFFORT}[args.service]
    if service is ServiceClass.BEST_EFFORT and args.deadline is not None:
        raise SystemExit("best-effort traffic cannot carry deadlines")

    builder = FaultSchedule.builder()
    for station, when in _parse_station_times(args.kill):
        builder.kill(station, at=when)
    for station, when in _parse_station_times(args.leave):
        builder.leave(station, at=when)
    schedule = builder.build()

    scenario = Scenario(
        n=args.n, l=args.l, k=args.k,
        rap_enabled=args.rap,
        traffic=TrafficMix(kind=args.traffic, rate=args.rate,
                           period=args.period, service=service,
                           deadline=args.deadline),
        mobility=(MobilitySpec(wander_radius=args.wander)
                  if args.wander > 0 else None),
        faults=schedule if schedule.events else None,
        check_invariants=args.check_invariants,
        horizon=args.horizon, seed=args.seed)
    result = run_scenario(scenario)
    _emit(result.summary(), args.json)
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    from repro.analysis.bounds import (access_delay_bound,
                                       mean_sat_rotation_bound,
                                       sat_multi_round_bound_homogeneous,
                                       sat_rotation_bound_homogeneous)
    quotas = [(args.l, args.k)] * args.n
    payload = {
        "theorem1_sat_time": sat_rotation_bound_homogeneous(
            args.n, args.l, args.k, T_rap=args.t_rap),
        f"theorem2_{args.rounds}_rounds": sat_multi_round_bound_homogeneous(
            args.rounds, args.n, args.l, args.k, T_rap=args.t_rap),
        "proposition3_mean": mean_sat_rotation_bound(
            args.n, args.t_rap, quotas),
        f"theorem3_access_x{args.backlog}": access_delay_bound(
            args.backlog, args.l, args.n, args.t_rap, quotas),
    }
    _emit(payload, args.json)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    import random

    from repro.analysis.bounds import sat_walk_time, tpt_token_walk_time
    from repro.baselines import TPTConfig, TPTNetwork, choose_ttrt
    from repro.core.config import WRTRingConfig
    from repro.core.packet import Packet, ServiceClass
    from repro.core.ring import WRTRingNetwork
    from repro.phy.topology import build_bfs_tree
    from repro.sim.engine import Engine

    n, quota = args.n, args.quota
    l = max(quota - 1, 1)
    k = quota - l

    def saturate(net, seed=0):
        rng = random.Random(seed)

        def top(t):
            for sid in list(net.members):
                st = net.stations[sid]
                if not getattr(st, "alive", True):
                    continue
                while len(st.rt_queue) < 10:
                    dst = rng.choice([d for d in net.members if d != sid])
                    st.enqueue(Packet(src=sid, dst=dst,
                                      service=ServiceClass.PREMIUM,
                                      created=t), t)
        net.add_tick_hook(top)

    def wrt():
        engine = Engine()
        cfg = WRTRingConfig.homogeneous(range(n), l=l, k=k, rap_enabled=False)
        return WRTRingNetwork(engine, list(range(n)), cfg)

    def tpt():
        engine = Engine()
        from repro.phy.geometry import ring_placement
        from repro.phy.topology import ConnectivityGraph
        graph = ConnectivityGraph(ring_placement(n, radius=30.0), 120.0)
        children = build_bfs_tree(graph, root=0)
        ttrt = choose_ttrt([quota] * n, 2 * (n - 1), margin=1.5)
        return TPTNetwork(engine, children, root=0,
                          config=TPTConfig(H={i: quota for i in range(n)},
                                           ttrt=ttrt), graph=graph)

    # capacity
    w_net, t_net = wrt(), tpt()
    saturate(w_net)
    saturate(t_net)
    w_net.start(), t_net.start()
    w_net.engine.run(until=args.horizon)
    t_net.engine.run(until=args.horizon)
    # CSMA comparator: same stations, saturated, single cell
    from repro.baselines import CSMAConfig, CSMANetwork
    c_engine = Engine()
    c_net = CSMANetwork(c_engine, list(range(n)), config=CSMAConfig(),
                        rng=random.Random(0))
    saturate(c_net)
    c_net.start()
    c_engine.run(until=args.horizon)
    # failure reaction
    w2, t2 = wrt(), tpt()
    w2.start(), t2.start()
    w2.engine.run(until=100)
    t2.engine.run(until=100)
    w2.kill_station(n // 2)
    t2.kill_station(n // 2)
    w2.engine.run(until=50_000)
    t2.engine.run(until=50_000)
    payload = {
        "idle_round_trip_wrt": sat_walk_time(n),
        "idle_round_trip_tpt": tpt_token_walk_time(n),
        "capacity_wrt_pkt_per_slot": w_net.metrics.total_delivered / args.horizon,
        "capacity_tpt_pkt_per_slot": t_net.metrics.total_delivered / args.horizon,
        "capacity_csma_pkt_per_slot": c_net.metrics.total_delivered / args.horizon,
        "csma_collision_fraction": c_net.collision_fraction,
        "failure_repair_wrt_slots": w2.recovery.records[0].total_delay,
        "failure_repair_tpt_slots": t2.records[0].total_delay,
    }
    _emit(payload, args.json)
    return 0


def _cmd_allocate(args: argparse.Namespace) -> int:
    from repro.bandwidth import AllocationProblem, StationDemand, allocate

    demands = []
    for sid, item in enumerate(args.demands.split(",")):
        parts = item.split(":")
        if len(parts) != 3:
            raise SystemExit(f"bad demand entry {item!r}; "
                             f"expected rate:deadline:backlog")
        rate, deadline, backlog = parts
        demands.append(StationDemand(
            sid=sid, rt_rate=float(rate),
            deadline=None if deadline == "-" else float(deadline),
            max_backlog=int(backlog), k=args.k))
    problem = AllocationProblem(demands=demands, t_rap=args.t_rap)
    result = allocate(problem, scheme=args.scheme)
    payload = {
        "scheme": result.scheme,
        "feasible": result.feasible,
        "l": result.l,
        "total_l": result.total_l,
        "violations": result.violations,
    }
    _emit(payload, args.json)
    return 0 if result.feasible else 1


_COMMANDS = {
    "simulate": _cmd_simulate,
    "bounds": _cmd_bounds,
    "compare": _cmd_compare,
    "allocate": _cmd_allocate,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
