"""Command-line interface.

Eight subcommands, mirroring the library's main entry points::

    python -m repro simulate  --n 8 --l 2 --k 1 --horizon 20000 [--timeline f]
    python -m repro fabric    --rings 8 --ring-size 16 [--mode sharded]
    python -m repro sweep     --axis n=4,8,12 --axis l=1,2 [--workers 4]
    python -m repro fuzz      --runs 200 --seed 1 [--max-slots 1200] [--shrink]
    python -m repro perf      run [--quick] | check [--baseline f]
    python -m repro bounds    --n 8 --l 2 --k 1 [--t-rap 9] [--backlog 4]
    python -m repro compare   --n 8 --quota 3 --horizon 10000
    python -m repro allocate  --demands rate:deadline:backlog,... [--scheme local]

``simulate`` runs a full scenario (optionally with mobility and scripted
faults) and prints the summary — ``--timeline out.json`` additionally
exports a Chrome-trace/Perfetto timeline and ``--metrics`` a metrics-registry
snapshot (see docs/OBSERVABILITY.md); ``sweep`` runs a whole campaign of
scenarios in parallel with cached, resumable results (see
docs/CAMPAIGNS.md); ``fuzz`` hammers randomized scenarios with strict
invariants and end-of-run oracles, shrinking every failure to a replayable
repro bundle (see docs/FUZZING.md); ``perf`` runs the pinned performance
suite and gates regressions against the ``BENCH_perf.json`` trajectory;
``bounds`` evaluates the paper's closed forms; ``compare`` runs the
WRT-Ring-vs-TPT trio (round trip, capacity, failure reaction); ``allocate``
sizes the guaranteed quotas for a demand set; ``fabric`` co-simulates a
multi-ring topology bridged by gateways, serially or one process per ring
(see docs/FABRIC.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WRT-Ring (Donatiello & Furini 2003) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run a WRT-Ring scenario")
    sim.add_argument("--config", type=str, default=None,
                     help="JSON scenario file (overrides the other flags)")
    sim.add_argument("--n", type=int, default=8)
    sim.add_argument("--l", type=int, default=2)
    sim.add_argument("--k", type=int, default=1)
    sim.add_argument("--horizon", type=float, default=10_000.0)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--traffic", choices=["none", "poisson", "cbr", "video",
                                           "backlog", "onoff", "voice"],
                     default="poisson")
    sim.add_argument("--rate", type=float, default=0.05,
                     help="per-station rate for poisson traffic")
    sim.add_argument("--period", type=float, default=20.0,
                     help="period / frame interval for cbr/video")
    sim.add_argument("--peak-rate", type=float, default=0.05,
                     help="on-phase rate for onoff/voice traffic")
    sim.add_argument("--mean-on", type=float, default=350.0,
                     help="mean talkspurt length (slots) for onoff/voice")
    sim.add_argument("--mean-off", type=float, default=650.0,
                     help="mean silence length (slots) for onoff/voice")
    sim.add_argument("--service", choices=["premium", "assured", "be"],
                     default="premium")
    sim.add_argument("--deadline", type=float, default=None)
    sim.add_argument("--calls", type=int, default=0, metavar="N",
                     help="offer N voice calls over the run (QoE session "
                          "layer: admission, per-call MOS; see docs/QOE.md)")
    sim.add_argument("--call-rate", type=float, default=0.005,
                     help="call arrival rate (calls/slot)")
    sim.add_argument("--call-holding", type=float, default=2000.0,
                     help="mean call holding time (slots)")
    sim.add_argument("--call-deadline", type=float, default=150.0,
                     help="per-packet delivery deadline for calls (slots)")
    sim.add_argument("--call-mos-floor", type=float, default=3.5,
                     help="MOS threshold a call must reach to count as good")
    sim.add_argument("--call-video-fraction", type=float, default=0.0,
                     help="fraction of sessions that are video streams")
    sim.add_argument("--calls-via-rap", action="store_true",
                     help="callers join the ring through RAP before talking "
                          "(implies --rap and the broadcast channel)")
    sim.add_argument("--no-call-admission", action="store_true",
                     help="disable call-level CAC (measurement mode)")
    sim.add_argument("--rap", action="store_true",
                     help="enable the Random Access Period")
    sim.add_argument("--wander", type=float, default=0.0,
                     help="mobility wander radius (0 = static)")
    sim.add_argument("--kill", type=str, default="",
                     help="comma list of station:time silent deaths")
    sim.add_argument("--leave", type=str, default="",
                     help="comma list of station:time announced departures")
    sim.add_argument("--loss-prob", type=float, default=0.0,
                     help="independent per-hop frame-loss probability "
                          "(stochastic channel impairments; seeded)")
    sim.add_argument("--ge", type=str, default=None, metavar="P_GB:P_BG[:LOSS_BAD]",
                     help="Gilbert-Elliott bursty-loss process: good->bad "
                          "and bad->good transition probabilities, optional "
                          "loss probability in the bad state (default 1.0)")
    sim.add_argument("--noise-burst", action="append", default=[],
                     metavar="START:END[:CODE]",
                     help="deterministic noise window killing every frame "
                          "in [START, END) (optionally only on CODE); "
                          "repeatable")
    sim.add_argument("--check-invariants", action="store_true")
    sim.add_argument("--kernel", choices=["scalar", "batched"],
                     default=None,
                     help="tick driver: 'scalar' (reference, one event per "
                          "slot) or 'batched' (inline slot batching + "
                          "analytic fast-forward; byte-identical output, "
                          "see docs/KERNEL.md)")
    sim.add_argument("--adaptive-timers", action="store_true",
                     help="arm SAT_TIMERs from an RFC 6298 SRTT/RTTVAR "
                          "estimator over observed rotations (ceilinged at "
                          "the Theorem-1 bound) instead of the fixed "
                          "worst case; see docs/RESILIENCE.md")
    sim.add_argument("--timeline", type=str, default=None, metavar="OUT.json",
                     help="export a Chrome-trace/Perfetto timeline of the "
                          "run (SAT holds, RAP windows, slot occupancy, "
                          "membership events, engine wall-clock spans)")
    sim.add_argument("--metrics", action="store_true",
                     help="attach a metrics registry and include its "
                          "snapshot in the summary")
    sim.add_argument("--json", action="store_true", help="JSON summary")

    fab = sub.add_parser("fabric", help="co-simulate a multi-ring fabric "
                                        "bridged by gateways (serial or "
                                        "one process per ring)")
    fab.add_argument("--config", type=str, default=None,
                     help="JSON topology file (overrides the other flags; "
                          "see examples/conference_building.json)")
    fab.add_argument("--rings", type=int, default=4)
    fab.add_argument("--ring-size", type=int, default=8,
                     help="stations per ring (gateways included)")
    fab.add_argument("--layout", choices=["chain", "cycle", "star"],
                     default="chain")
    fab.add_argument("--placement", choices=["spread", "first"],
                     default="spread",
                     help="where gateway stations sit on each ring")
    fab.add_argument("--flows", type=int, default=4,
                     help="number of generated cross-ring flows")
    fab.add_argument("--flow-kind", choices=["cbr", "poisson"], default="cbr")
    fab.add_argument("--flow-rate", type=float, default=0.02,
                     help="per-flow rate for poisson cross traffic")
    fab.add_argument("--flow-period", type=float, default=50.0,
                     help="inter-frame period for cbr cross traffic")
    fab.add_argument("--flow-service", choices=["premium", "assured", "be"],
                     default="premium")
    fab.add_argument("--deadline", type=float, default=None,
                     help="relative end-to-end deadline per cross-ring frame")
    fab.add_argument("--min-hops", type=int, default=1,
                     help="minimum gateway hops per generated flow")
    fab.add_argument("--gateway-buffer", type=int, default=64,
                     help="per-direction gateway buffer (frames)")
    fab.add_argument("--ttl", type=float, default=None,
                     help="max slots a frame may wait in a gateway buffer")
    fab.add_argument("--sync-window", type=float, default=None,
                     help="override the conservative sync window "
                          "(default: min SAT rotation bound across rings)")
    fab.add_argument("--horizon", type=float, default=2_000.0)
    fab.add_argument("--seed", type=int, default=0)
    fab.add_argument("--mode", choices=["serial", "sharded"],
                     default="serial")
    fab.add_argument("--kernel", choices=["scalar", "batched"],
                     default="scalar",
                     help="per-ring tick driver (see docs/KERNEL.md); "
                          "applies to every shard in either mode")
    fab.add_argument("--parity", action="store_true",
                     help="run BOTH modes and verify byte-identical merged "
                          "traces and tables")
    fab.add_argument("--timeline", type=str, default=None, metavar="OUT.json",
                     help="export one merged Chrome-trace/Perfetto timeline "
                          "(all rings, one process lane each)")
    fab.add_argument("--metrics", action="store_true",
                     help="attach per-ring metric registries and include "
                          "the rolled-up snapshot in the summary")
    fab.add_argument("--no-trace", action="store_true",
                     help="disable trace recording (large runs; trace hash "
                          "degenerates to the empty hash)")
    fab.add_argument("--save", type=str, default=None, metavar="OUT.json",
                     help="write the resolved topology config and exit")
    fab.add_argument("--json", action="store_true", help="JSON summary")

    sw = sub.add_parser("sweep", help="run a scenario-sweep campaign "
                                      "(parallel, cached, resumable)")
    sw.add_argument("--config", type=str, default=None,
                    help="JSON sweep file: {base, mode, axes|points, seed,"
                         " name} (overrides the axis/base flags)")
    sw.add_argument("--axis", action="append", default=[],
                    metavar="FIELD=V1,V2,...",
                    help="sweep axis over a scenario field (repeatable; "
                         "dotted fields like traffic.rate allowed)")
    sw.add_argument("--mode", choices=["grid", "zip"], default="grid",
                    help="combine axes as cartesian product or in lockstep")
    sw.add_argument("--n", type=int, default=8)
    sw.add_argument("--l", type=int, default=2)
    sw.add_argument("--k", type=int, default=1)
    sw.add_argument("--horizon", type=float, default=10_000.0)
    sw.add_argument("--seed", type=int, default=0,
                    help="campaign master seed (per-point seeds derive "
                         "from it)")
    sw.add_argument("--traffic", choices=["none", "poisson", "cbr", "video",
                                          "backlog", "saturate", "onoff",
                                          "voice"],
                    default="poisson")
    sw.add_argument("--rate", type=float, default=0.05)
    sw.add_argument("--period", type=float, default=20.0)
    sw.add_argument("--store", type=str, default=None,
                    help="result-store directory "
                         "(default .campaign/<sweep name>)")
    sw.add_argument("--workers", type=int, default=None,
                    help="worker processes (0 = serial in-process; "
                         "default: CPU count)")
    sw.add_argument("--timeout", type=float, default=None,
                    help="per-point timeout in seconds")
    sw.add_argument("--retries", type=int, default=1,
                    help="retries per point after a worker failure")
    sw.add_argument("--columns", type=str, default=None,
                    help="comma list of table columns (summary/scenario "
                         "fields)")
    sw.add_argument("--json", action="store_true",
                    help="emit the full result records as JSON")
    sw.add_argument("--quiet", action="store_true",
                    help="suppress per-point progress lines")

    fz = sub.add_parser("fuzz", help="randomized scenario fuzzing with "
                                     "invariant checking, oracle validation "
                                     "and failure shrinking")
    fz.add_argument("--runs", type=int, default=100,
                    help="number of fuzz cases to run")
    fz.add_argument("--seed", type=int, default=0,
                    help="campaign master seed (case seeds derive from it)")
    fz.add_argument("--max-slots", type=int, default=1200,
                    help="cap on each case's simulated horizon")
    fz.add_argument("--shrink", action=argparse.BooleanOptionalAction,
                    default=True,
                    help="delta-shrink failures to minimal reproducers")
    fz.add_argument("--chaos", action="store_true",
                    help="force channel impairments into every generated "
                         "case (soak mode)")
    fz.add_argument("--adaptive", action="store_true",
                    help="force RFC 6298 adaptive SAT timers into every "
                         "generated case (otherwise drawn on ~20%% of "
                         "cases, ~50%% under --chaos)")
    fz.add_argument("--out", type=str, default=".fuzz",
                    help="directory for repro bundles and the result store")
    fz.add_argument("--store", type=str, default=None,
                    help="result-store directory (default <out>/store)")
    fz.add_argument("--replay", type=str, default=None, metavar="BUNDLE",
                    help="replay a repro bundle and verify its recorded "
                         "failures and trace hash instead of fuzzing")
    fz.add_argument("--json", action="store_true",
                    help="emit the full result records as JSON")
    fz.add_argument("--quiet", action="store_true",
                    help="suppress per-case progress lines")

    pf = sub.add_parser("perf", help="pinned performance suite and "
                                     "BENCH_perf.json regression gating")
    pf_sub = pf.add_subparsers(dest="perf_command", required=True)
    pf_run = pf_sub.add_parser("run", help="run the suite and append a "
                                           "trajectory record")
    pf_run.add_argument("--path", type=str, default="BENCH_perf.json",
                        help="trajectory file to append to")
    pf_run.add_argument("--quick", action="store_true",
                        help="reduced workloads (CI smoke sizing)")
    pf_run.add_argument("--repeats", type=int, default=2,
                        help="runs per benchmark; the best rate is kept")
    pf_run.add_argument("--note", type=str, default=None,
                        help="free-form note stored in the record")
    pf_run.add_argument("--json", action="store_true")
    pf_check = pf_sub.add_parser("check", help="gate the latest record "
                                               "against a baseline")
    pf_check.add_argument("--path", type=str, default="BENCH_perf.json",
                          help="trajectory file to check")
    pf_check.add_argument("--baseline", type=str, default=None,
                          help="baseline trajectory/record file (default: "
                               "the checked trajectory's own history)")
    pf_check.add_argument("--threshold", type=float, default=0.15,
                          help="max tolerated rate regression (0.15 = 15%%)")
    pf_check.add_argument("--json", action="store_true")

    bounds = sub.add_parser("bounds", help="evaluate the Sec. 2.6 closed forms")
    bounds.add_argument("--n", type=int, required=True)
    bounds.add_argument("--l", type=int, required=True)
    bounds.add_argument("--k", type=int, required=True)
    bounds.add_argument("--t-rap", type=float, default=0.0)
    bounds.add_argument("--backlog", type=int, default=0,
                        help="x for the Theorem-3 access bound")
    bounds.add_argument("--rounds", type=int, default=1,
                        help="n for the Theorem-2 window bound")
    bounds.add_argument("--json", action="store_true")

    cmp_ = sub.add_parser("compare", help="WRT-Ring vs TPT trio")
    cmp_.add_argument("--n", type=int, default=8)
    cmp_.add_argument("--quota", type=int, default=3,
                      help="per-station reserved bandwidth (l+k = H)")
    cmp_.add_argument("--horizon", type=float, default=10_000.0)
    cmp_.add_argument("--json", action="store_true")

    alloc = sub.add_parser("allocate", help="size the guaranteed quotas")
    alloc.add_argument("--demands", type=str, required=True,
                       help="comma list of rate:deadline:backlog per station "
                            "(deadline '-' for none)")
    alloc.add_argument("--scheme", choices=["equal", "proportional",
                                            "normalized_proportional",
                                            "local"],
                       default="local")
    alloc.add_argument("--k", type=int, default=1,
                       help="fixed non-RT quota per station")
    alloc.add_argument("--t-rap", type=float, default=0.0)
    alloc.add_argument("--json", action="store_true")

    return parser


# ----------------------------------------------------------------------
def _parse_impairments(args: argparse.Namespace):
    """Build an ImpairmentSpec from the simulate flags (None when clean)."""
    if args.loss_prob <= 0.0 and args.ge is None and not args.noise_burst:
        return None
    from repro.phy.impairments import ImpairmentSpec, NoiseBurst

    kwargs: dict = {"loss_prob": args.loss_prob}
    if args.ge is not None:
        parts = args.ge.split(":")
        if len(parts) not in (2, 3):
            raise SystemExit(f"bad --ge entry {args.ge!r}; "
                             f"expected P_GB:P_BG[:LOSS_BAD]")
        kwargs["ge_p_gb"] = float(parts[0])
        kwargs["ge_p_bg"] = float(parts[1])
        if len(parts) == 3:
            kwargs["ge_loss_bad"] = float(parts[2])
    bursts = []
    for entry in args.noise_burst:
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            raise SystemExit(f"bad --noise-burst entry {entry!r}; "
                             f"expected START:END[:CODE]")
        bursts.append(NoiseBurst(
            start=float(parts[0]), end=float(parts[1]),
            code=int(parts[2]) if len(parts) == 3 else None))
    if bursts:
        kwargs["bursts"] = tuple(bursts)
    try:
        return ImpairmentSpec(**kwargs)
    except ValueError as exc:
        raise SystemExit(f"bad impairment flags: {exc}")


def _parse_station_times(text: str) -> List[tuple]:
    out = []
    if not text:
        return out
    for item in text.split(","):
        station, _, when = item.partition(":")
        if not when:
            raise SystemExit(f"bad station:time entry {item!r}")
        out.append((int(station), float(when)))
    return out


def _emit(payload: dict, as_json: bool) -> None:
    if as_json:
        print(json.dumps(payload, indent=2, default=str))
        return
    for key, value in payload.items():
        print(f"{key:28s} {value}")


# ----------------------------------------------------------------------
def _run_observed(scenario, timeline: Optional[str],
                  metrics: bool) -> dict:
    """Build, instrument, run and summarize one scenario.

    Always profiles the engine window (so every summary carries
    ``elapsed_s`` / ``events_per_s``); the timeline trace categories and
    the metrics registry are attached only on request.
    """
    from repro.obs import (MetricsRegistry, Profiler, attach_network_metrics,
                           attach_run_profiling, enable_timeline_categories,
                           export_timeline)
    from repro.scenarios import build_scenario

    built = build_scenario(scenario)
    profiler = Profiler()
    attach_run_profiling(built.engine, profiler)
    registry = subscriber = None
    if metrics:
        registry = MetricsRegistry()
        subscriber = attach_network_metrics(built.network, registry)
    if timeline:
        enable_timeline_categories(built.trace, built.network)

    built.engine.run(until=scenario.horizon)

    payload = built.summary()
    run_report = profiler.report().get("engine.run", {})
    payload["elapsed_s"] = round(run_report.get("total_s", 0.0), 6)
    payload["events_per_s"] = round(run_report.get("events_per_s", 0.0), 1)
    if registry is not None:
        if subscriber is not None:
            subscriber.flush()
        payload["metrics"] = registry.snapshot()
    if timeline:
        count = export_timeline(timeline, built.trace, profiler,
                                extra={"scenario": built.resolved_config()})
        payload["timeline"] = {"path": timeline, "events": count}
    return payload


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.packet import ServiceClass
    from repro.faults import FaultSchedule
    from repro.scenarios import MobilitySpec, Scenario, TrafficMix

    if args.config is not None:
        from dataclasses import replace

        from repro.config_io import load_scenario
        scenario = load_scenario(args.config)
        if args.kernel is not None and args.kernel != scenario.kernel:
            scenario = replace(scenario, kernel=args.kernel)
        if args.adaptive_timers and not scenario.adaptive_timers:
            scenario = replace(scenario, adaptive_timers=True)
        payload = _run_observed(scenario, args.timeline, args.metrics)
        _emit(payload, args.json)
        return 0

    service = {"premium": ServiceClass.PREMIUM,
               "assured": ServiceClass.ASSURED,
               "be": ServiceClass.BEST_EFFORT}[args.service]
    if service is ServiceClass.BEST_EFFORT and args.deadline is not None:
        raise SystemExit("best-effort traffic cannot carry deadlines")

    builder = FaultSchedule.builder()
    for station, when in _parse_station_times(args.kill):
        builder.kill(station, at=when)
    for station, when in _parse_station_times(args.leave):
        builder.leave(station, at=when)
    schedule = builder.build()

    calls = None
    if args.calls > 0:
        from repro.qoe.sessions import CallsSpec
        calls = CallsSpec(count=args.calls, arrival_rate=args.call_rate,
                          mean_holding=args.call_holding,
                          deadline=args.call_deadline,
                          mos_floor=args.call_mos_floor,
                          video_fraction=args.call_video_fraction,
                          admission=not args.no_call_admission,
                          join_via_rap=args.calls_via_rap)

    scenario = Scenario(
        n=args.n, l=args.l, k=args.k,
        rap_enabled=args.rap or args.calls_via_rap,
        use_channel=args.calls_via_rap,
        traffic=TrafficMix(kind=args.traffic, rate=args.rate,
                           period=args.period, service=service,
                           deadline=args.deadline,
                           peak_rate=args.peak_rate, mean_on=args.mean_on,
                           mean_off=args.mean_off),
        calls=calls,
        mobility=(MobilitySpec(wander_radius=args.wander)
                  if args.wander > 0 else None),
        faults=schedule if schedule.events else None,
        impairments=_parse_impairments(args),
        check_invariants=args.check_invariants,
        kernel=args.kernel or "scalar",
        adaptive_timers=args.adaptive_timers,
        horizon=args.horizon, seed=args.seed)
    payload = _run_observed(scenario, args.timeline, args.metrics)
    _emit(payload, args.json)
    return 0


def _cmd_fabric(args: argparse.Namespace) -> int:
    from repro.core.packet import ServiceClass
    from repro.fabric import (FabricRunner, Topology, export_merged_timeline,
                              load_topology, merged_trace_lines,
                              save_topology)

    if args.config is not None:
        topo = load_topology(args.config)
    else:
        service = {"premium": ServiceClass.PREMIUM,
                   "assured": ServiceClass.ASSURED,
                   "be": ServiceClass.BEST_EFFORT}[args.flow_service]
        try:
            topo = Topology(
                rings=args.rings, ring_size=args.ring_size,
                layout=args.layout, gateway_placement=args.placement,
                cross_flows=args.flows, flow_kind=args.flow_kind,
                flow_rate=args.flow_rate, flow_period=args.flow_period,
                flow_service=service, flow_deadline=args.deadline,
                min_ring_hops=args.min_hops,
                gateway_buffer=args.gateway_buffer, frame_ttl=args.ttl,
                sync_window=args.sync_window,
                horizon=args.horizon, seed=args.seed)
        except ValueError as exc:
            raise SystemExit(f"bad topology: {exc}")
    if args.save is not None:
        save_topology(topo, args.save)
        print(f"wrote {args.save}")
        return 0

    trace = not args.no_trace

    def execute(mode):
        with FabricRunner(topo, mode=mode, trace=trace,
                          observe=args.metrics,
                          kernel=args.kernel) as runner:
            runner.run()
            return runner.result(include_trace=trace)

    result = execute(args.mode)
    if args.parity:
        other = execute("sharded" if args.mode == "serial" else "serial")
        checks = {
            "trace_hash": result.trace_hash() == other.trace_hash(),
            "ring_table": result.ring_table() == other.ring_table(),
            "flow_table": result.flow_table() == other.flow_table(),
            "summary": (dict(result.summary(), mode="") ==
                        dict(other.summary(), mode="")),
        }
        if trace:
            checks["merged_trace"] = (merged_trace_lines(result) ==
                                      merged_trace_lines(other))
        if not all(checks.values()):
            bad = ", ".join(k for k, v in checks.items() if not v)
            print(f"PARITY FAILED: {result.mode} vs {other.mode} "
                  f"differ on {bad}", file=sys.stderr)
            return 1
        print(f"parity OK: serial and sharded byte-identical "
              f"({len(checks)} checks)", file=sys.stderr)

    payload = result.summary()
    if args.metrics:
        payload["metrics"] = result.merged_metrics()
    if args.timeline is not None:
        if not trace:
            raise SystemExit("--timeline needs tracing; drop --no-trace")
        count = export_merged_timeline(args.timeline, result)
        payload["timeline"] = {"path": args.timeline, "events": count}
    if args.json:
        _emit(payload, True)
    else:
        _emit({k: v for k, v in payload.items()
               if k not in ("metrics",)}, False)
        print()
        print(result.ring_table())
        if result.topology.resolved_flows():
            print()
            print(result.flow_table())
    return 0


def _parse_axis_value(text: str):
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_axes(entries: List[str]) -> dict:
    axes = {}
    for entry in entries:
        name, sep, values = entry.partition("=")
        if not sep or not values:
            raise SystemExit(f"bad --axis entry {entry!r}; "
                             f"expected FIELD=V1,V2,...")
        axes[name] = [_parse_axis_value(v) for v in values.split(",")]
    return axes


def _cmd_sweep(args: argparse.Namespace) -> int:
    import hashlib

    from repro.campaign import (CampaignRunner, ProgressPrinter, ResultStore,
                                Sweep, campaign_table, default_columns,
                                sweep_from_dict)
    from repro.scenarios import Scenario, TrafficMix

    if args.config is not None:
        from pathlib import Path
        sweep = sweep_from_dict(json.loads(Path(args.config).read_text()))
    else:
        axes = _parse_axes(args.axis)
        if not axes:
            raise SystemExit("give at least one --axis (or --config)")
        base = Scenario(n=args.n, l=args.l, k=args.k, horizon=args.horizon,
                        seed=args.seed,
                        traffic=TrafficMix(kind=args.traffic, rate=args.rate,
                                           period=args.period))
        sweep = Sweep(base=base, axes=axes, mode=args.mode, seed=args.seed)

    name = sweep.name or "sweep-" + hashlib.sha256(
        sweep.spec_hash_material().encode()).hexdigest()[:8]
    store_dir = args.store or f".campaign/{name}"
    store = ResultStore(store_dir)

    progress = ((lambda event, point=None, **info: None) if args.quiet
                else ProgressPrinter())
    if not args.quiet:
        print(f"sweep {name}: store {store_dir} "
              f"({len(store)} results on disk)", file=sys.stderr)
    from repro.obs import Profiler
    runner = CampaignRunner(sweep, store, workers=args.workers,
                            timeout=args.timeout, retries=args.retries,
                            progress=progress, profiler=Profiler())
    result = runner.run()

    if args.json:
        print(json.dumps(result.records, indent=2, default=str))
    else:
        if args.columns:
            columns = [c.strip() for c in args.columns.split(",")]
        else:
            columns = default_columns(sweep, result.records)
        # stdout carries only the deterministic table (identical no matter
        # how the campaign was scheduled or resumed); counts and wall-clock
        # timing go to stderr
        line = (f"{result.cached} cached, {result.ran} ran, "
                f"{len(result.failures)} failed in {result.elapsed_s:.2f}s")
        if result.ran and result.elapsed_s:
            # rate over freshly executed points only — cached points cost
            # no wall-clock, counting their events would inflate the rate
            fresh = sum(r.get("events_executed", 0) for r in result.records
                        if not r.get("cached"))
            line += f" ({fresh / result.elapsed_s:,.0f} events/s)"
        print(line, file=sys.stderr)
        print(campaign_table(result.records, columns,
                             title=f"sweep {name}: "
                                   f"{len(result.records)} points"))
    for failure in result.failures:
        print(f"FAILED {failure.point.label()} "
              f"after {failure.attempts} attempts:\n{failure.error}",
              file=sys.stderr)
    return 0 if result.ok else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.campaign.store import ResultStore
    from repro.fuzz import run_fuzz_campaign, verify_bundle

    if args.replay is not None:
        ok, result, mismatches = verify_bundle(args.replay)
        payload = {
            "bundle": args.replay,
            "verified": ok,
            "failures": [f.to_dict() for f in result.failures],
            "trace_hash": result.trace_hash,
            "events_executed": result.events_executed,
            "mismatches": mismatches,
        }
        _emit(payload, args.json)
        return 0 if ok else 1

    store_dir = args.store or str(Path(args.out) / "store")
    store = ResultStore(store_dir)
    progress = ((lambda line: None) if args.quiet
                else (lambda line: print(line, file=sys.stderr)))
    if not args.quiet:
        print(f"fuzz: seed={args.seed} runs={args.runs} "
              f"store {store_dir} ({len(store)} results on disk)",
              file=sys.stderr)
    campaign = run_fuzz_campaign(args.seed, args.runs, store, args.out,
                                 max_slots=args.max_slots,
                                 shrink=args.shrink, chaos=args.chaos,
                                 adaptive=args.adaptive,
                                 progress=progress)
    if args.json:
        print(json.dumps(campaign.records, indent=2, default=str))
    else:
        print(f"{campaign.ran} ran, {campaign.cached} cached, "
              f"{len(campaign.failed)} failed")
        if not args.quiet and campaign.ran:
            print(f"fuzz: {campaign.elapsed_s:.2f}s "
                  f"({campaign.cases_per_s:.1f} fresh cases/s)",
                  file=sys.stderr)
    for record in campaign.failed:
        kinds = ",".join(sorted({f['kind'] for f in record['failures']}))
        where = record.get("bundle", "<no bundle>")
        print(f"FAILED {record['label']} [{kinds}] -> {where}",
              file=sys.stderr)
    return 0 if campaign.ok else 1


def _cmd_perf(args: argparse.Namespace) -> int:
    # lazy: obs.perf pulls in the campaign/fuzz stacks, which the other
    # subcommands never need
    from repro.obs import perf

    if args.perf_command == "run":
        progress = (lambda line: print(line, file=sys.stderr))
        results = perf.run_suite(quick=args.quick, repeats=args.repeats,
                                 progress=progress)
        record = perf.append_record(args.path, results, quick=args.quick,
                                    note=args.note)
        payload = dict(record)
        payload["path"] = args.path
        _emit(payload, args.json)
        return 0

    ok, regressions, info = perf.check_trajectory(
        args.path, baseline_path=args.baseline, threshold=args.threshold)
    if args.json:
        info["ok"] = ok
        info["regressions"] = [r.describe() for r in regressions]
        print(json.dumps(info, indent=2, default=str))
    else:
        print(f"perf check: {info['records']} record(s) in {args.path}, "
              f"baseline={info['baseline_source']}, "
              f"threshold={args.threshold:.0%}")
        for name in sorted(info.get("current", {})):
            current = info["current"][name]
            base = info.get("baseline", {}).get(name)
            delta = (f"{current / base - 1.0:+.1%} vs {base:,.0f}"
                     if base else "no baseline")
            print(f"  {name:24s} {current:>12,.0f} /s  ({delta})")
        for regression in regressions:
            print(f"REGRESSION: {regression.describe()}", file=sys.stderr)
        if ok:
            print("OK: no regressions beyond threshold")
    return 0 if ok else 1


def _cmd_bounds(args: argparse.Namespace) -> int:
    from repro.analysis.bounds import (access_delay_bound,
                                       mean_sat_rotation_bound,
                                       sat_multi_round_bound_homogeneous,
                                       sat_rotation_bound_homogeneous)
    quotas = [(args.l, args.k)] * args.n
    payload = {
        "theorem1_sat_time": sat_rotation_bound_homogeneous(
            args.n, args.l, args.k, T_rap=args.t_rap),
        f"theorem2_{args.rounds}_rounds": sat_multi_round_bound_homogeneous(
            args.rounds, args.n, args.l, args.k, T_rap=args.t_rap),
        "proposition3_mean": mean_sat_rotation_bound(
            args.n, args.t_rap, quotas),
        f"theorem3_access_x{args.backlog}": access_delay_bound(
            args.backlog, args.l, args.n, args.t_rap, quotas),
    }
    _emit(payload, args.json)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    import random

    from repro.analysis.bounds import sat_walk_time, tpt_token_walk_time
    from repro.baselines import TPTConfig, TPTNetwork, choose_ttrt
    from repro.core.config import WRTRingConfig
    from repro.core.packet import Packet, ServiceClass
    from repro.core.ring import WRTRingNetwork
    from repro.phy.topology import build_bfs_tree
    from repro.sim.engine import Engine

    n, quota = args.n, args.quota
    l = max(quota - 1, 1)
    k = quota - l

    def saturate(net, seed=0):
        rng = random.Random(seed)

        def top(t):
            for sid in list(net.members):
                st = net.stations[sid]
                if not getattr(st, "alive", True):
                    continue
                while len(st.rt_queue) < 10:
                    dst = rng.choice([d for d in net.members if d != sid])
                    st.enqueue(Packet(src=sid, dst=dst,
                                      service=ServiceClass.PREMIUM,
                                      created=t), t)
        net.add_tick_hook(top)

    def wrt():
        engine = Engine()
        cfg = WRTRingConfig.homogeneous(range(n), l=l, k=k, rap_enabled=False)
        return WRTRingNetwork(engine, list(range(n)), cfg)

    def tpt():
        engine = Engine()
        from repro.phy.geometry import ring_placement
        from repro.phy.topology import ConnectivityGraph
        graph = ConnectivityGraph(ring_placement(n, radius=30.0), 120.0)
        children = build_bfs_tree(graph, root=0)
        ttrt = choose_ttrt([quota] * n, 2 * (n - 1), margin=1.5)
        return TPTNetwork(engine, children, root=0,
                          config=TPTConfig(H={i: quota for i in range(n)},
                                           ttrt=ttrt), graph=graph)

    # capacity
    w_net, t_net = wrt(), tpt()
    saturate(w_net)
    saturate(t_net)
    w_net.start(), t_net.start()
    w_net.engine.run(until=args.horizon)
    t_net.engine.run(until=args.horizon)
    # CSMA comparator: same stations, saturated, single cell
    from repro.baselines import CSMAConfig, CSMANetwork
    c_engine = Engine()
    c_net = CSMANetwork(c_engine, list(range(n)), config=CSMAConfig(),
                        rng=random.Random(0))
    saturate(c_net)
    c_net.start()
    c_engine.run(until=args.horizon)
    # failure reaction
    w2, t2 = wrt(), tpt()
    w2.start(), t2.start()
    w2.engine.run(until=100)
    t2.engine.run(until=100)
    w2.kill_station(n // 2)
    t2.kill_station(n // 2)
    w2.engine.run(until=50_000)
    t2.engine.run(until=50_000)
    payload = {
        "idle_round_trip_wrt": sat_walk_time(n),
        "idle_round_trip_tpt": tpt_token_walk_time(n),
        "capacity_wrt_pkt_per_slot": w_net.metrics.total_delivered / args.horizon,
        "capacity_tpt_pkt_per_slot": t_net.metrics.total_delivered / args.horizon,
        "capacity_csma_pkt_per_slot": c_net.metrics.total_delivered / args.horizon,
        "csma_collision_fraction": c_net.collision_fraction,
        "failure_repair_wrt_slots": w2.recovery.records[0].total_delay,
        "failure_repair_tpt_slots": t2.records[0].total_delay,
    }
    _emit(payload, args.json)
    return 0


def _cmd_allocate(args: argparse.Namespace) -> int:
    from repro.bandwidth import AllocationProblem, StationDemand, allocate

    demands = []
    for sid, item in enumerate(args.demands.split(",")):
        parts = item.split(":")
        if len(parts) != 3:
            raise SystemExit(f"bad demand entry {item!r}; "
                             f"expected rate:deadline:backlog")
        rate, deadline, backlog = parts
        demands.append(StationDemand(
            sid=sid, rt_rate=float(rate),
            deadline=None if deadline == "-" else float(deadline),
            max_backlog=int(backlog), k=args.k))
    problem = AllocationProblem(demands=demands, t_rap=args.t_rap)
    result = allocate(problem, scheme=args.scheme)
    payload = {
        "scheme": result.scheme,
        "feasible": result.feasible,
        "l": result.l,
        "total_l": result.total_l,
        "violations": result.violations,
    }
    _emit(payload, args.json)
    return 0 if result.feasible else 1


_COMMANDS = {
    "simulate": _cmd_simulate,
    "fabric": _cmd_fabric,
    "sweep": _cmd_sweep,
    "fuzz": _cmd_fuzz,
    "perf": _cmd_perf,
    "bounds": _cmd_bounds,
    "compare": _cmd_compare,
    "allocate": _cmd_allocate,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
