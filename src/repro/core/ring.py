"""The WRT-Ring network: slotted dataplane + SAT circulation.

Model
-----
Time advances in slots (one tick per slot).  Each tick every alive station
simultaneously transmits at most one packet to its ring successor — this is
the CDMA concurrency of Sec. 2.1: station ``i`` spreads with ``code(i+1)``,
so all N hops are collision-free and simultaneous.  The dataplane is a
buffer-insertion ring (inherited from RT-Ring/MetaRing): traffic in transit
has priority, a station inserts its own packets (per the Sec. 2.2 send
algorithm) only when its insertion buffer is empty, and the destination
strips packets (spatial reuse).

The SAT control signal travels in the same direction, one hop per
``sat_hop_slots`` slots, and is seized by not-satisfied stations per the
SAT algorithm.  The Random Access Period (join), graceful/ungraceful leave
and SAT-loss recovery are orchestrated by the managers in
:mod:`repro.core.join` and :mod:`repro.core.recovery`.

Tick ordering (at integer time ``t``):

1. tick hooks (traffic sources, join requesters),
2. dataplane transmit + receive (skipped while the network is paused for a
   RAP, while rebuilding, or before the ring is up),
3. SAT step (arrival processing, RAP entry, hold/release),
4. PHY channel resolution (control handshakes, optional data validation).

Instrumentation
---------------
The network publishes every protocol fact exactly once as a typed event on
``self.events`` (see :mod:`repro.events`): trace recording, obs metrics,
fuzz oracles and the delay/deadline accounting in
:class:`repro.analysis.netmetrics.NetworkMetrics` are all subscribers.
Emit sites hold per-event emitter callables (rebound by the bus whenever
subscriptions change), so an unobserved event costs one no-op call and an
unobserved *computation* (e.g. the slot-occupancy count) is skipped via
the emitter's falsiness.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.analysis.bounds import sat_rotation_bound
from repro.analysis.netmetrics import NetworkMetrics
from repro.core.columns import ColumnState
from repro.core.config import WRTRingConfig
from repro.core.diffserv import COLUMN_CLASSES
from repro.core.packet import Packet
from repro.core.quotas import QuotaConfig
from repro.core.sat import SAT, RotationLog
from repro.core.station import WRTRingStation
from repro.events import EventBus, TraceAdapter
from repro.events import types as _ev
from repro.phy.cdma import BROADCAST_CODE, CodeSpace, assign_codes_sequential
from repro.phy.channel import Frame, SlottedChannel
from repro.sim.engine import Engine
from repro.sim.trace import NullTraceRecorder, TraceRecorder

__all__ = ["WRTRingNetwork", "NetworkMetrics"]


class WRTRingNetwork:
    """A running WRT-Ring.

    Parameters
    ----------
    engine:
        The simulation engine; the network schedules one tick per slot.
    ring_order:
        Station ids in ring sequence (successor of ``ring_order[i]`` is
        ``ring_order[i+1]``, cyclically).
    config:
        Protocol parameters; ``config.quotas`` must cover every station.
    graph:
        Optional :class:`~repro.phy.topology.ConnectivityGraph` (or a
        zero-arg callable returning one).  Needed for recovery range checks,
        join reachability and PHY validation; without it every pair is
        assumed reachable (the paper's "no hidden terminal" special case).
    channel:
        Optional :class:`~repro.phy.channel.SlottedChannel` for the control
        handshakes and (with ``config.validate_phy``) dataplane validation.
    codes:
        Optional :class:`~repro.phy.cdma.CodeSpace`; defaults to sequential
        unique codes, the paper's base assumption.
    trace:
        Optional :class:`~repro.sim.trace.TraceRecorder`.  When given (and
        not a null recorder) the network attaches a
        :class:`~repro.events.TraceAdapter` rendering its events into the
        legacy trace-record stream.
    events:
        Optional :class:`~repro.events.EventBus` to publish on.  By default
        the network owns a fresh bus.  A caller providing a shared bus is
        responsible for any trace adapter on it (the network only attaches
        one to a bus it owns, so a shared trace never records twice).
    impairments:
        Optional :class:`~repro.phy.impairments.ChannelImpairments` loss
        oracle.  When given, ring dataplane hops and SAT/SAT_REC hand-offs
        may be destroyed stochastically, and the oracle is installed on the
        channel (if any) so control-handshake frames fade too.
    """

    def __init__(self, engine: Engine, ring_order: List[int],
                 config: WRTRingConfig,
                 graph=None,
                 channel: Optional[SlottedChannel] = None,
                 codes: Optional[CodeSpace] = None,
                 trace: Optional[TraceRecorder] = None,
                 events: Optional[EventBus] = None,
                 impairments=None,
                 adaptive_timers: bool = False):
        if len(ring_order) < 2:
            raise ValueError("a ring needs at least 2 stations")
        if len(set(ring_order)) != len(ring_order):
            raise ValueError("duplicate station ids in ring order")
        missing = [sid for sid in ring_order if sid not in config.quotas]
        if missing:
            raise ValueError(f"no quotas configured for stations {missing}")

        self.engine = engine
        self.config = config
        self.trace = trace if trace is not None else NullTraceRecorder()
        self._graph_provider = (graph if callable(graph) or graph is None
                                else (lambda: graph))
        self.channel = channel
        self.codes = codes if codes is not None else assign_codes_sequential(list(ring_order))

        self.order: List[int] = list(ring_order)
        self.stations: Dict[int, WRTRingStation] = {
            sid: WRTRingStation(sid, config.quotas[sid]) for sid in ring_order}
        self._pos: Dict[int, int] = {sid: i for i, sid in enumerate(self.order)}

        self.sat = SAT()
        self._sat_lost = False
        self._sat_bound_cache = None
        self._sat_seq = 0
        self.rotation_log = RotationLog()
        #: struct-of-arrays mirror of the hot-path station state; rebound on
        #: every membership change, consumed by the batched kernel
        self.columns = ColumnState(self)
        self._refresh_members()

        #: optional :class:`~repro.phy.impairments.ChannelImpairments` —
        #: consulted for dataplane hops and SAT/SAT_REC hand-offs, and
        #: installed on the channel so control frames share the loss oracle
        self.impairments = impairments
        if channel is not None and impairments is not None:
            channel.impairments = impairments
            channel.drop_hook = self._on_frame_dropped

        self.pause_until: float = float("-inf")   # RAP pause window end
        self.rebuilding_until: Optional[float] = None
        self.network_down = False
        self.started = False
        self._tick_handle = None
        #: alternative tick callback (installed by the batched kernel before
        #: :meth:`start`); ``None`` runs the reference scalar :meth:`_tick`
        self.tick_driver: Optional[Callable[[], None]] = None
        self._tick_hooks: List[Callable[[float], None]] = []
        # the ring defines the slot grid: snap schedule times that drifted
        # off it by float accumulation (see Engine.snap_to_grid)
        engine.slot_quantum = 1.0
        self._frame_handlers: Dict[int, Callable[[Frame, float], None]] = {}
        self._delivery_callbacks: Dict[int, Callable[[Packet, float], None]] = {}

        # the event spine: analysis metrics subscribe first (so on fanned-out
        # events the accounting runs before the trace record, matching the
        # legacy inline order), then the trace adapter
        self.events = events if events is not None else EventBus()
        self.metrics = NetworkMetrics().attach(self.events)
        self._trace_adapter: Optional[TraceAdapter] = None
        if events is None and not isinstance(self.trace, NullTraceRecorder):
            self._trace_adapter = TraceAdapter(self.trace).attach(self.events)
        self.events.add_binder(self._bind_emitters)

        #: opt-in RFC 6298 SAT timers (read by RecoveryManager at
        #: construction and by JoinRequester per request) — must be set
        #: before the managers are built
        self.adaptive_timers = bool(adaptive_timers)

        # managers (imported lazily to avoid import cycles)
        from repro.core.join import JoinManager
        from repro.core.recovery import RecoveryManager
        self.join_manager = JoinManager(self)
        self.recovery = RecoveryManager(self)

        if self.channel is not None:
            for sid in self.order:
                self._register_station_listener(sid)

    # ------------------------------------------------------------------
    # topology helpers
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.order)

    @property
    def members(self) -> List[int]:
        return list(self.order)

    def successor(self, sid: int) -> int:
        return self.order[(self._pos[sid] + 1) % len(self.order)]

    def predecessor(self, sid: int) -> int:
        return self.order[(self._pos[sid] - 1) % len(self.order)]

    def graph(self):
        return self._graph_provider() if self._graph_provider is not None else None

    def reachable(self, a: int, b: int) -> bool:
        """Single-hop reachability; True when no graph is modelled."""
        g = self.graph()
        if g is None:
            return True
        if not (g.has_node(a) and g.has_node(b)):
            return False
        return g.in_range(a, b)

    def ring_latency(self) -> float:
        """S: SAT walk across the ring without stops, in slots."""
        return self.n * self.config.sat_hop_slots

    def sat_time_bound(self) -> float:
        """The current Theorem-1 bound, used to arm the SAT_TIMERs.

        Cached: it is queried on every SAT release (hot path) but only
        changes when the membership or a quota changes, both of which go
        through :meth:`_reindex`.
        """
        if self._sat_bound_cache is None:
            quotas = [self.stations[sid].quota for sid in self.order]
            self._sat_bound_cache = sat_rotation_bound(
                self.ring_latency(), self.config.effective_t_rap(), quotas)
        return self._sat_bound_cache

    def _register_station_listener(self, sid: int) -> None:
        self.channel.register_listener(
            sid, {self.codes.code_of(sid), BROADCAST_CODE})

    # ------------------------------------------------------------------
    # event emitters (rebound by the bus on every subscription change)
    # ------------------------------------------------------------------
    def _bind_emitters(self) -> None:
        em = self.events.emitter
        self._ev_tick = em(_ev.RingTick)
        self._ev_transmit = em(_ev.SlotTransmit)
        self._ev_deliver = em(_ev.SlotDeliver)
        self._ev_lost = em(_ev.PacketLost)
        self._ev_orphaned = em(_ev.PacketOrphaned)
        self._ev_occupancy = em(_ev.SlotOccupancy)
        self._ev_sat_arrive = em(_ev.SatArrive)
        self._ev_sat_hold = em(_ev.SatHold)
        self._ev_sat_rotation = em(_ev.SatRotation)
        self._ev_sat_release = em(_ev.SatRelease)
        self._ev_sat_lost = em(_ev.SatLost)
        self._ev_sat_link_loss = em(_ev.SatLinkLoss)
        self._ev_frame_dropped = em(_ev.FrameDropped)
        self._ev_sat_hop_lost = em(_ev.SatHopLost)
        self._ev_sat_stale = em(_ev.SatStaleDiscarded)
        self._ev_kill = em(_ev.StationKilled)
        self._ev_leave = em(_ev.LeaveAnnounced)
        self._ev_insert = em(_ev.StationInserted)
        self._ev_remove = em(_ev.StationRemoved)
        self._ev_enqueued = em(_ev.PacketEnqueued)
        for st in self.stations.values():
            st._ev_enqueued = self._ev_enqueued

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin ticking; the SAT starts at the first station in the order."""
        if self.started:
            raise RuntimeError("network already started")
        self.started = True
        first = self.order[0]
        self.sat.at_station = first
        self.stations[first].on_sat_arrival(self.engine.now)
        self.recovery.arm_all()
        driver = self.tick_driver if self.tick_driver is not None else self._tick
        self._tick_handle = self.engine.schedule(0.0, driver, priority=5)

    def stop(self) -> None:
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None
        self.recovery.disarm_all()

    def add_tick_hook(self, hook: Callable[[float], None]) -> None:
        """Register ``hook(t)`` to run at the start of every tick."""
        self._tick_hooks.append(hook)

    def register_frame_handler(self, station_or_code: int,
                               handler: Callable[[Frame, float], None]) -> None:
        """Deliver channel frames arriving for ``station_or_code`` to ``handler``."""
        self._frame_handlers[station_or_code] = handler

    # ------------------------------------------------------------------
    # application interface
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> None:
        """Hand a packet to its source station's MAC queues."""
        st = self.stations.get(packet.src)
        if st is None or packet.src not in self._pos:
            raise KeyError(f"source station {packet.src} is not a ring member")
        st.enqueue(packet, self.engine.now)

    # ------------------------------------------------------------------
    # fault / dynamics injection
    # ------------------------------------------------------------------
    def kill_station(self, sid: int) -> None:
        """Station disappears without notice (battery out, walked away)."""
        st = self.stations.get(sid)
        if st is None:
            raise KeyError(f"unknown station {sid}")
        st.alive = False
        self.recovery.note_failure(sid, self.engine.now)
        self._ev_kill(self.engine.now, sid)
        # a SAT at/heading to the dead station is lost with it
        if self.sat.at_station == sid or self.sat.in_flight_to == sid:
            self.drop_sat()

    def leave_gracefully(self, sid: int) -> None:
        """Sec. 2.4.2: the station announces its departure; its successor
        will convert the next SAT into a SAT_REC that cuts it out."""
        st = self.stations.get(sid)
        if st is None or sid not in self._pos:
            raise KeyError(f"station {sid} is not a ring member")
        if len(self.order) <= 2:
            raise RuntimeError("cannot leave: ring would drop below 2 stations")
        st.leaving = True
        self._ev_leave(self.engine.now, sid)

    def drop_sat(self) -> None:
        """Inject a control-signal loss (Sec. 2.5's trigger)."""
        self._sat_lost = True
        self.sat.at_station = None
        self.sat.in_flight_to = None
        self.sat.arrival_time = None
        self.recovery.note_sat_loss(self.engine.now)
        self._ev_sat_lost(self.engine.now)

    def inject_stale_sat(self, at_station: Optional[int] = None,
                         seq: Optional[int] = None) -> bool:
        """Chaos surface: a duplicated/stale control signal appears at a
        station.

        By default the duplicate carries the sequence number of the last
        signal the station accepted (a verbatim replay); the hardened
        station detects it via the monotone rotation sequence number and
        discards it — no quotas are renewed — and this returns True.

        Passing a forged ``seq`` newer than anything the station has seen
        defeats the guard: the station renews its quotas as if it had
        released a real SAT (a double grant), and the next *real* signal
        arriving there will itself be flagged stale, driving the Sec. 2.5
        recovery machinery.  Returns False in that case.
        """
        if self.network_down or self.rebuilding_until is not None:
            raise RuntimeError(
                "no control signal to duplicate while the ring is down or rebuilding")
        if at_station is None:
            at_station = self.order[0]
        if at_station not in self._pos:
            raise KeyError(f"station {at_station} is not a ring member")
        st = self.stations[at_station]
        t = self.engine.now
        if seq is None:
            seq = st.last_sat_seq
        if not self._sat_seq_fresh(at_station, seq, t):
            return True
        st.on_sat_release(t)
        return False

    # ------------------------------------------------------------------
    # membership mutation (used by join/recovery managers)
    # ------------------------------------------------------------------
    def _reindex(self) -> None:
        self._pos = {sid: i for i, sid in enumerate(self.order)}
        self._sat_bound_cache = None   # membership changed: bound changed
        self._refresh_members()

    def _refresh_members(self) -> None:
        """Rebuild the hot-path member cache after a membership change:
        the in-order station list (so the per-slot loops stop doing a dict
        lookup per station), each member's successor hint + non-successor
        recount, the preallocated per-slot scratch buffers, and the
        columnar binding."""
        members = [self.stations[sid] for sid in self.order]
        self._members = members
        n = len(members)
        for st in self.stations.values():
            st._succ_sid = None
        for i, st in enumerate(members):
            st._succ_sid = members[(i + 1) % n].sid
        for st in self.stations.values():
            succ = st._succ_sid
            st._nonsucc = sum(
                1 for q in (st.rt_queue, st.as_queue, st.be_queue)
                for p in q if p.dst != succ)
        self.columns.bind_ring()
        # per-slot scratch, reused every tick (decision codes + in-flight
        # slot contents) instead of being reallocated
        self._slot_picks: List[int] = [0] * n
        self._slot_outputs: List[Optional[Packet]] = [None] * n

    def insert_station(self, new_sid: int, after: int, quota: QuotaConfig,
                       code: Optional[int] = None) -> WRTRingStation:
        """Insert ``new_sid`` between ``after`` and its successor."""
        if new_sid in self._pos:
            raise ValueError(f"station {new_sid} already in the ring")
        if after not in self._pos:
            raise KeyError(f"ingress {after} is not a ring member")
        st = WRTRingStation(new_sid, quota)
        st._ev_enqueued = self._ev_enqueued
        self.stations[new_sid] = st
        self.config.quotas[new_sid] = quota
        self.order.insert(self._pos[after] + 1, new_sid)
        self._reindex()
        if code is None:
            code = self.codes.next_free_code()
        self.codes.assign(new_sid, code)
        if self.channel is not None:
            self._register_station_listener(new_sid)
        self.recovery.on_membership_change(arm_new=new_sid)
        self._ev_insert(self.engine.now, new_sid, after)
        return st

    def remove_station(self, sid: int) -> None:
        """Drop ``sid`` from the ring (cut-out completed / graceful leave)."""
        if sid not in self._pos:
            raise KeyError(f"station {sid} is not a ring member")
        if len(self.order) <= 2:
            raise RuntimeError("cannot remove: ring would drop below 2 stations")
        self.order.remove(sid)
        self._reindex()
        st = self.stations[sid]
        st.alive = False
        t = self.engine.now
        # every packet still buffered at the removed station — in transit or
        # waiting in its own class queues — leaves the network with it
        for queue in (st.transit, st.rt_queue, st.as_queue, st.be_queue):
            for pkt in queue:
                pkt.dropped = True
                self._ev_lost(t, pkt, "removed", sid, None)
            queue.clear()
        st._nonsucc = 0
        if self.channel is not None:
            self.channel.remove_listener(sid)
        self.recovery.on_membership_change(removed=sid)
        self._ev_remove(t, sid)

    # ------------------------------------------------------------------
    # the tick
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        t = self.engine.now
        if self._tick_body(t):
            self._tick_handle = self.engine.schedule(1.0, self._tick, priority=5)

    def _tick_body(self, t: float) -> bool:
        """One slot's worth of protocol work at time ``t``.

        Returns False when the network is down (no further ticks should be
        scheduled).  Split out from :meth:`_tick` so an alternative tick
        driver (see :mod:`repro.kernel`) can run slot bodies without going
        through the agenda for every slot.
        """
        for hook in self._tick_hooks:
            hook(t)
        self._ev_tick(t)

        if self.network_down:
            self._flush_channel(t)
            return False  # no further ticks

        if self.rebuilding_until is not None:
            if t >= self.rebuilding_until:
                self.recovery.finish_rebuild(t)
            # no dataplane, no SAT while rebuilding
        else:
            paused = t < self.pause_until
            if not paused:
                self._dataplane(t)
                self._sat_step(t)
            else:
                self.join_manager.on_rap_tick(t)
                if t + 1 >= self.pause_until:
                    # RAP closes at the end of this tick
                    self.join_manager.on_rap_end(t)

        self._flush_channel(t)
        return True

    def _flush_channel(self, t: float) -> None:
        if self.channel is None:
            return
        deliveries = self.channel.resolve_slot(t)
        for receiver, frames in deliveries.items():
            handler = self._frame_handlers.get(receiver)
            for fr in frames:
                if fr.kind == "data":
                    continue  # dataplane validation frames; payload unused
                if handler is not None:
                    handler(fr, t)

    # ------------------------------------------------------------------
    # dataplane
    # ------------------------------------------------------------------
    #: decision codes for one slot: 0..2 index COLUMN_CLASSES (own traffic),
    #: _PICK_TRANSIT forwards from the insertion buffer, _PICK_IDLE is empty
    _PICK_IDLE = -1
    _PICK_TRANSIT = 3

    def _dataplane(self, t: float) -> None:
        members = self._members
        self._decide_slot(members)
        self._apply_slot(t, members)

    def _decide_slot(self, members: List[WRTRingStation]) -> None:
        """Decision layer: what occupies each ring position this slot —
        transit forwarding, one of the station's own classes, or nothing.
        Pure: no queue pops, no quota spend, no emits; writes decision
        codes into the preallocated ``_slot_picks`` buffer."""
        picks = self._slot_picks
        transit_first = self.config.transit_priority
        for idx, st in enumerate(members):
            if not st._alive:
                picks[idx] = self._PICK_IDLE
            elif transit_first and st.transit:
                picks[idx] = self._PICK_TRANSIT
            elif not st._leaving:
                service = st._decide_class()
                if service is not None:
                    picks[idx] = service
                elif st.transit:
                    picks[idx] = self._PICK_TRANSIT
                else:
                    picks[idx] = self._PICK_IDLE
            elif st.transit:
                picks[idx] = self._PICK_TRANSIT
            else:
                picks[idx] = self._PICK_IDLE

    def _apply_slot(self, t: float, members: List[WRTRingStation]) -> None:
        """Effects layer: spend the decided authorizations (phase A) and
        advance every occupied slot one hop simultaneously (phase B),
        emitting in exactly the legacy order."""
        picks = self._slot_picks
        outputs = self._slot_outputs
        n = len(members)

        # phase A: pop the decided transmissions
        for idx in range(n):
            code = picks[idx]
            if code < 0:
                outputs[idx] = None
            elif code == self._PICK_TRANSIT:
                outputs[idx] = members[idx].transit.popleft()
            else:
                st = members[idx]
                pkt = st._pop_class(COLUMN_CLASSES[code])
                pkt.t_send = t
                self._ev_transmit(t, st.sid, pkt)
                outputs[idx] = pkt

        validate = self.config.validate_phy and self.channel is not None
        enforce = self.config.enforce_radio_links and self._graph_provider is not None
        imp = self.impairments

        # phase B: simultaneous one-hop advance
        for idx in range(n):
            pkt = outputs[idx]
            if pkt is None:
                continue
            outputs[idx] = None   # the scratch buffer must not pin packets
            src_sid = members[idx].sid
            receiver = members[(idx + 1) % n]
            dst_sid = receiver.sid
            if validate:
                self.channel.transmit(Frame(
                    src=src_sid, code=self.codes.code_of(dst_sid),
                    payload=pkt.pid, kind="data"))
            if enforce and not self.reachable(src_sid, dst_sid):
                # mobility broke this ring link: the frame is lost in the air
                pkt.dropped = True
                self._ev_lost(t, pkt, "link", src_sid, dst_sid)
                continue
            if imp is not None:
                reason = imp.loss(t, src_sid, dst_sid,
                                  code=self.codes.code_of(dst_sid))
                if reason is not None:
                    # the frame faded on the hop; no MAC-level retransmit
                    # in the paper's model, so the packet is gone
                    pkt.dropped = True
                    self._ev_lost(t, pkt, reason, src_sid, dst_sid)
                    continue
            if not receiver._alive:
                pkt.dropped = True
                self._ev_lost(t, pkt, "dead_station", src_sid, dst_sid)
                continue
            pkt.hops += 1
            if pkt.dst == dst_sid:
                self._deliver(pkt, receiver, t + 1.0)
            elif pkt.src == dst_sid:
                # came full circle: destination left the ring
                pkt.dropped = True
                self._ev_orphaned(t, pkt, "full_circle")
            elif pkt.hops > n and pkt.dst not in self._pos:
                # TTL: a full circuit without being stripped and the
                # destination is gone — if the source were still a member the
                # full-circle rule above would have reclaimed it, so it is
                # orphaned and would otherwise circulate forever
                pkt.dropped = True
                self._ev_orphaned(t, pkt, "ttl")
            else:
                receiver.transit.append(pkt)

        # slot-occupancy sampling for the timeline exporter: subscribed only
        # while the opt-in trace category is enabled, so steady-state runs
        # skip the O(n) busy count via the emitter's falsiness
        if self._ev_occupancy:
            busy = sum(1 for c in picks if c >= 0)
            self._ev_occupancy(t, busy, n)

    def add_delivery_callback(self, sid: int,
                              callback: Callable[[Packet, float], None]) -> None:
        """Run ``callback(packet, t)`` whenever a packet is delivered to
        station ``sid`` (used by the gateway to forward into the LAN)."""
        self._delivery_callbacks[sid] = callback

    def _deliver(self, pkt: Packet, receiver: WRTRingStation, t: float) -> None:
        pkt.t_deliver = t
        receiver.on_deliver(pkt)
        self._ev_deliver(t, receiver.sid, pkt)
        callback = self._delivery_callbacks.get(receiver.sid)
        if callback is not None:
            callback(pkt, t)

    # ------------------------------------------------------------------
    # impairment plumbing
    # ------------------------------------------------------------------
    def _on_frame_dropped(self, t: float, frame: Frame, receiver: int,
                          reason: str) -> None:
        """Channel drop hook: publish the loss of a control/data frame."""
        self._ev_frame_dropped(t, frame.src, receiver, frame.code,
                               frame.kind, reason)

    def next_sat_seq(self) -> int:
        """Monotone rotation sequence number, stamped on every hand-off."""
        self._sat_seq += 1
        return self._sat_seq

    def _sat_seq_fresh(self, holder: int, seq: int, t: float) -> bool:
        """Accept ``seq`` at ``holder`` iff newer than its last accepted one."""
        st = self.stations[holder]
        if seq <= st.last_sat_seq:
            self._ev_sat_stale(t, holder, seq)
            return False
        st.last_sat_seq = seq
        return True

    # ------------------------------------------------------------------
    # SAT circulation
    # ------------------------------------------------------------------
    def _sat_step(self, t: float) -> None:
        if self._sat_lost:
            return
        sat = self.sat

        if sat.in_flight:
            if sat.arrival_time > t:
                return
            holder = sat.arrive()
            if holder not in self._pos or not self.stations[holder].alive:
                # transmitted into a void: signal lost with the station
                self.drop_sat()
                return
            self._on_sat_arrival(holder, t)
            if self._sat_lost or sat.in_flight or t < self.pause_until:
                return

        holder = sat.at_station
        if holder is None:
            return
        station = self.stations[holder]
        if not station.alive:
            self.drop_sat()
            return
        if station.satisfied:
            self._release_sat(holder, t)

    def _on_sat_arrival(self, holder: int, t: float) -> None:
        sat = self.sat
        station = self.stations[holder]

        if not self._sat_seq_fresh(holder, sat.seq, t):
            # the receiver discarded a stale/duplicate signal (a forged
            # duplicate bumped its sequence horizon past the real one):
            # from the ring's perspective the control signal is gone and
            # the Sec. 2.5 watchdogs take over
            self.drop_sat()
            return

        if sat.kind == SAT.RECOVERY:
            self.recovery.on_sat_rec_arrival(holder, t)
            if self._sat_lost or sat.kind == SAT.RECOVERY:
                return
            # recovery just completed and the signal became a normal SAT
            # held here; fall through to normal processing below.

        # graceful leave: the successor of a leaving station converts the
        # SAT into a SAT_REC cutting its predecessor out (Sec. 2.4.2)
        pred = self.predecessor(holder)
        if self.stations[pred].leaving and sat.kind == SAT.NORMAL:
            self.recovery.start_graceful_cutout(failed=pred, originator=holder, t=t)
            return

        self._ev_sat_arrive(t, holder, sat.kind)
        if not station.satisfied:
            self._ev_sat_hold(t, holder)
        rotation = station.on_sat_arrival(t)
        if rotation is not None:
            self.rotation_log.add(holder, rotation)
            self.recovery.observe_rotation(holder, rotation)
            self._ev_sat_rotation(t, holder, rotation)
        if holder == self.order[0]:
            sat.rounds += 1
            self.rotation_log.mark_round(sat.hops)

        # RAP mutex release: one full round after the owner set it
        if sat.rap_owner == holder and t >= self.pause_until:
            sat.rap_mutex = False
            sat.rap_owner = None

        self.join_manager.maybe_enter_rap(holder, t)

    def _release_sat(self, holder: int, t: float) -> None:
        sat = self.sat
        station = self.stations[holder]
        station.on_sat_release(t)
        self.recovery.restart_timer(holder)
        nxt = self.successor(holder)
        if self.config.enforce_radio_links and not self.reachable(holder, nxt):
            # the ring link broke under the SAT: the signal is lost in the
            # air and the Sec. 2.5 watchdogs will recover
            self._ev_sat_link_loss(t, holder, nxt)
            self.drop_sat()
            return
        imp = self.impairments
        if imp is not None:
            reason = imp.loss(t, holder, nxt, code=self.codes.code_of(nxt),
                              kind="sat")
            if reason is not None:
                # the control frame died in the air: same consequence as a
                # broken link — the Sec. 2.5 watchdogs recover
                self._ev_sat_hop_lost(t, holder, nxt, sat.kind, reason)
                self.drop_sat()
                return
        sat.seq = self.next_sat_seq()
        sat.depart(nxt, t + self.config.sat_hop_slots)
        self._ev_sat_release(t, holder, nxt)
