"""The SAT control signal and rotation bookkeeping.

The SAT carries only control state: the ``RAP_mutex`` flag guarding the
Random Access Period (Sec. 2.4.1) and, while recovering, the SAT_REC fields
(Sec. 2.5): the address of the supposedly failed station and the code of the
recovery originator.

Movement/holding is orchestrated by :class:`~repro.core.ring.WRTRingNetwork`;
this module only models the token's state and the per-station rotation log
used to validate Theorems 1-2 and Proposition 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["SAT", "RotationLog"]


class SAT:
    """State of the circulating control signal."""

    #: signal flavours
    NORMAL = "SAT"
    RECOVERY = "SAT_REC"

    def __init__(self) -> None:
        self.kind: str = SAT.NORMAL
        # RAP coordination (Sec. 2.4.1)
        self.rap_mutex: bool = False
        self.rap_owner: Optional[int] = None
        # recovery fields (Sec. 2.5); meaningful when kind == RECOVERY
        self.failed_station: Optional[int] = None
        self.originator: Optional[int] = None
        # movement
        self.at_station: Optional[int] = None     # held/visiting here
        self.in_flight_to: Optional[int] = None   # next hop target
        self.arrival_time: Optional[float] = None
        self.hops: int = 0                         # lifetime link crossings
        self.rounds: int = 0
        #: rotation sequence number, stamped from the network's monotone
        #: counter on every hand-off; receivers discard a signal whose seq
        #: is not newer than the last one they accepted (stale/duplicate
        #: control-signal suppression — see docs/RESILIENCE.md)
        self.seq: int = 0

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> bool:
        return self.in_flight_to is not None

    def depart(self, to_station: int, arrival_time: float) -> None:
        if self.in_flight:
            raise RuntimeError("SAT is already in flight")
        self.at_station = None
        self.in_flight_to = to_station
        self.arrival_time = arrival_time

    def arrive(self) -> int:
        if not self.in_flight:
            raise RuntimeError("SAT is not in flight")
        station = self.in_flight_to
        self.at_station = station
        self.in_flight_to = None
        self.arrival_time = None
        self.hops += 1
        return station

    def to_recovery(self, failed_station: int, originator: int) -> None:
        """Turn this signal into a SAT_REC (Sec. 2.5)."""
        self.kind = SAT.RECOVERY
        self.failed_station = failed_station
        self.originator = originator

    def to_normal(self) -> None:
        """Recovery complete: 'substitute the SAT_REC with the SAT signal'."""
        self.kind = SAT.NORMAL
        self.failed_station = None
        self.originator = None

    def __repr__(self) -> str:  # pragma: no cover
        where = (f"at {self.at_station}" if self.at_station is not None
                 else f"-> {self.in_flight_to}@{self.arrival_time}")
        return f"<{self.kind} {where} mutex={self.rap_mutex} hops={self.hops}>"


class RotationLog:
    """Per-station SAT rotation-time samples (arrival-to-arrival)."""

    def __init__(self) -> None:
        self._samples: Dict[int, List[float]] = {}
        self._hops_per_round: List[int] = []
        self._last_hops_mark: int = 0

    def add(self, station: int, rotation: float) -> None:
        if rotation <= 0:
            raise ValueError(f"rotation time must be positive, got {rotation!r}")
        self._samples.setdefault(station, []).append(rotation)

    def mark_round(self, total_hops: int) -> None:
        """Record the link crossings of one completed round (E04)."""
        self._hops_per_round.append(total_hops - self._last_hops_mark)
        self._last_hops_mark = total_hops

    def samples(self, station: int) -> List[float]:
        return list(self._samples.get(station, []))

    def all_samples(self) -> List[float]:
        out: List[float] = []
        for values in self._samples.values():
            out.extend(values)
        return out

    def stations(self) -> List[int]:
        return sorted(self._samples)

    def hops_per_round(self) -> List[int]:
        return list(self._hops_per_round)

    def worst(self) -> float:
        everything = self.all_samples()
        if not everything:
            raise ValueError("no rotation samples recorded")
        return max(everything)

    def mean(self) -> float:
        everything = self.all_samples()
        if not everything:
            raise ValueError("no rotation samples recorded")
        return sum(everything) / len(everything)
