"""Secondary ring formation (the Sec. 2.4.1 aside, built out).

"If the requesting station can reach only one station, it cannot join the
network (in this case it may form another ring)."  The paper leaves the
case unanalyzed; this module implements the natural completion: stations
that cannot enter the primary ring discover each other on the broadcast
channel and, when at least two of them are mutually ring-connected, form
their own WRT-Ring — co-located with the primary and sharing the same
radio space.

Because both rings use receiver-oriented CDMA, their dataplanes are
interference-free *provided their code assignments don't clash where a
receiver could hear both rings*.  :func:`form_secondary_ring` therefore
assigns the secondary ring codes disjoint from every code audible in the
combined graph, and experiment E18 validates the coexistence through the
shared channel model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import WRTRingConfig
from repro.core.quotas import QuotaConfig
from repro.core.ring import WRTRingNetwork
from repro.events import EventBus
from repro.phy.cdma import CodeSpace
from repro.phy.channel import SlottedChannel
from repro.phy.topology import ConnectivityGraph, TopologyError, construct_ring
from repro.sim.engine import Engine
from repro.sim.trace import TraceRecorder

__all__ = ["form_secondary_ring", "SecondaryRingError", "SharedChannelPump"]


class SharedChannelPump:
    """Resolves a channel shared by several co-located networks once per
    slot, *after* all of them have transmitted.

    Each network normally resolves the channel at the end of its own tick;
    with two networks on one channel that would resolve ring A's frames
    before ring B even transmits, hiding any cross-ring interference.  The
    pump sets :attr:`~repro.phy.channel.SlottedChannel.external_pump`,
    making the per-network flushes no-ops, and performs one global
    resolution at a priority after every network tick, dispatching
    deliveries to whichever network knows the receiver.
    """

    #: must sort after the networks' tick priority (5)
    PRIORITY = 9

    def __init__(self, engine: Engine, channel: SlottedChannel, networks):
        self.engine = engine
        self.channel = channel
        self.networks = list(networks)
        channel.external_pump = True
        self._handle = None

    def start(self) -> None:
        if self._handle is not None:
            raise RuntimeError("pump already started")
        self._handle = self.engine.schedule(0.0, self._pump,
                                            priority=self.PRIORITY)

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _pump(self) -> None:
        t = self.engine.now
        deliveries = self.channel.force_resolve_slot(t)
        for receiver, frames in deliveries.items():
            for frame in frames:
                if frame.kind == "data":
                    continue  # validation frames carry no protocol payload
                for net in self.networks:
                    handler = net._frame_handlers.get(receiver)
                    if handler is not None:
                        handler(frame, t)
                        break
        self._handle = self.engine.schedule(1.0, self._pump,
                                            priority=self.PRIORITY)


class SecondaryRingError(RuntimeError):
    """The candidate stations cannot form a ring of their own."""


def form_secondary_ring(engine: Engine,
                        candidates: Sequence[int],
                        graph: ConnectivityGraph,
                        quotas: Dict[int, QuotaConfig],
                        channel: Optional[SlottedChannel] = None,
                        primary_codes: Optional[CodeSpace] = None,
                        config: Optional[WRTRingConfig] = None,
                        trace: Optional[TraceRecorder] = None,
                        events: Optional[EventBus] = None) -> WRTRingNetwork:
    """Build a second WRT-Ring over ``candidates``.

    Parameters mirror :class:`~repro.core.ring.WRTRingNetwork`, plus
    ``primary_codes``: the code space of the co-located primary ring; the
    secondary ring's codes are chosen disjoint from it, so the two rings'
    concurrent transmissions can never collide at any receiver — CDMA
    isolation, which E18 verifies through a shared channel.  By default the
    secondary ring owns its own event bus (with its own trace adapter when
    ``trace`` is shared, so both rings' records land in one stream exactly
    as before); pass ``events`` to publish on a caller-managed bus instead.

    Raises :class:`SecondaryRingError` when fewer than two candidates are
    given or no feasible ring exists among them.
    """
    candidates = list(candidates)
    if len(candidates) < 2:
        raise SecondaryRingError(
            f"need at least 2 stations to form a ring, got {len(candidates)}")
    missing = [sid for sid in candidates if not graph.has_node(sid)]
    if missing:
        raise SecondaryRingError(f"stations not in the graph: {missing}")
    missing_q = [sid for sid in candidates if sid not in quotas]
    if missing_q:
        raise SecondaryRingError(f"no quotas for stations {missing_q}")

    try:
        sub = graph.subgraph(candidates)
        order = construct_ring(sub)
    except TopologyError as exc:
        raise SecondaryRingError(
            f"no feasible secondary ring among {candidates}: {exc}") from exc

    # codes disjoint from the primary ring's
    taken = set()
    if primary_codes is not None:
        taken = {primary_codes.code_of(s) for s in primary_codes.stations()}
    codes = CodeSpace()
    next_code = 0
    for sid in order:
        while next_code in taken:
            next_code += 1
        codes.assign(sid, next_code)
        next_code += 1

    if config is None:
        config = WRTRingConfig(
            quotas={sid: quotas[sid] for sid in order},
            rap_enabled=False)
    else:
        for sid in order:
            config.quotas.setdefault(sid, quotas[sid])

    net = WRTRingNetwork(engine, order, config, graph=graph,
                         channel=channel, codes=codes, trace=trace,
                         events=events)
    return net


def partition_unreachable_requesters(graph: ConnectivityGraph,
                                     ring_members: Sequence[int],
                                     outsiders: Sequence[int]) -> List[int]:
    """The stations that can never join the primary ring: those reaching
    fewer than two *consecutive* ring members over a single hop.

    (A helper for scenario construction; the live protocol discovers this
    itself by listening to NEXT_FREE messages.)
    """
    members = list(ring_members)
    n = len(members)
    excluded = []
    for sid in outsiders:
        can_join = False
        for i in range(n):
            a, b = members[i], members[(i + 1) % n]
            if graph.in_range(sid, a) and graph.in_range(sid, b):
                can_join = True
                break
        if not can_join:
            excluded.append(sid)
    return excluded
