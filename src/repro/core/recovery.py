"""SAT-loss detection and recovery (Sec. 2.4.2 and 2.5).

Every station arms a ``SAT_TIMER`` with the current Theorem-1 bound and
restarts it whenever it releases the SAT (or sees a SAT_REC).  On expiry the
station presumes its *predecessor* failed — the station whose timer fires
first is always the next one the lost SAT would have visited — and launches
a ``SAT_REC``:

* the SAT_REC circulates like a SAT (stations renew quotas and restart
  timers) but is never held, so the repair completes in at most one walk;
* the predecessor of the presumed-failed station sends it *directly* to the
  failed station's successor (encoding with that successor's code), cutting
  the failed station out — possible only if the two are in radio range;
* if the SAT_REC returns to its originator within ``SAT_TIME``, the ring is
  re-established without the failed station and the signal becomes a normal
  SAT; otherwise the originator declares the ring lost, broadcasts
  ``RING_LOST`` and a full ring (re)formation procedure runs.

Deviation noted in DESIGN.md: the paper says stations treat the SAT_REC "as
a normal SAT", which would allow not-satisfied stations to seize it; we
forward it immediately because recovery latency is the quantity under test
(Sec. 3.3) and holding would only add traffic-dependent noise on top of the
same bounds.

Graceful departure (Sec. 2.4.2) reuses the same machinery: the successor of
a leaving station converts the next SAT it receives into a SAT_REC that cuts
the leaver out — no timer expiry needed, so it completes a detection period
faster than an unannounced death.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.adaptive import RttEstimator
from repro.core.sat import SAT
from repro.events import types as _ev
from repro.phy.cdma import BROADCAST_CODE
from repro.phy.channel import Frame
from repro.phy.topology import TopologyError, construct_ring
from repro.sim.timers import Timer

__all__ = ["RecoveryManager", "RecoveryRecord"]


@dataclass
class RecoveryRecord:
    """One recovery episode, from trigger to resolution."""

    kind: str                      # "silent" | "graceful" | "sat_loss"
    failed_station: Optional[int]
    t_event: Optional[float]       # injection time (known to the harness)
    t_detected: float              # timer expiry / leave conversion time
    t_completed: Optional[float] = None
    outcome: str = "pending"       # "cutout" | "rebuild" | "down" | "pending"
    extra: dict = field(default_factory=dict)

    @property
    def detection_delay(self) -> Optional[float]:
        if self.t_event is None:
            return None
        return self.t_detected - self.t_event

    @property
    def total_delay(self) -> Optional[float]:
        if self.t_event is None or self.t_completed is None:
            return None
        return self.t_completed - self.t_event


class RecoveryManager:
    """Owns the per-station SAT_TIMERs and the SAT_REC / rebuild procedures."""

    #: slots per alive station the distributed ring re-formation costs
    #: (one announcement round + one confirmation round on the broadcast
    #: channel; a modelling substitution documented in DESIGN.md).
    REBUILD_SLOTS_PER_STATION = 2

    def __init__(self, net) -> None:
        self.net = net
        self.timers: Dict[int, Timer] = {}
        self.records: List[RecoveryRecord] = []
        self.active: Optional[RecoveryRecord] = None
        self._pending_event: Optional[tuple] = None  # (kind, sid, t)
        self.ring_rebuilds = 0
        self._rebuild_initiator: Optional[int] = None
        self._rebuild_attempts = 0
        #: slots the network spent paused in re-formation procedures —
        #: the unavailability the mobility experiments report
        self.total_rebuild_time = 0.0
        #: adaptive SAT timers (RFC 6298 estimation; off by default so the
        #: paper's fixed Theorem-1 timer — and every existing trace — is
        #: untouched).  Estimator state survives cut-outs and rebuilds;
        #: only estimators of stations that left the ring are pruned.
        self.adaptive = bool(getattr(net, "adaptive_timers", False))
        self.estimators: Dict[int, RttEstimator] = {}
        self._last_armed: Dict[int, float] = {}
        #: SAT_REC launches whose watched-for SAT was demonstrably alive
        #: (counted in both modes; the FalseSatRec event is adaptive-only)
        self.false_triggers = 0
        net.events.add_binder(self._bind_emitters)

    def _bind_emitters(self) -> None:
        em = self.net.events.emitter
        self._ev_timeout = em(_ev.SatTimeout)
        self._ev_graceful = em(_ev.GracefulCutout)
        self._ev_rec_failed = em(_ev.SatRecFailed)
        self._ev_recovered = em(_ev.SatRecovered)
        self._ev_rebuild_start = em(_ev.RebuildStart)
        self._ev_rebuild_retry = em(_ev.RebuildRetry)
        self._ev_rebuild_done = em(_ev.RebuildDone)
        self._ev_down = em(_ev.RingDown)
        self._ev_episode = em(_ev.RecoveryEpisode)
        self._ev_lost = em(_ev.PacketLost)
        self._ev_adapted = em(_ev.TimerAdapted)
        self._ev_false_rec = em(_ev.FalseSatRec)

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def arm_all(self) -> None:
        bound = self.net.sat_time_bound()
        for sid in self.net.order:
            self._arm(sid, bound)

    def _arm(self, sid: int, bound: float) -> None:
        timer = self.timers.get(sid)
        if timer is None:
            timer = Timer(self.net.engine, bound,
                          lambda s=sid: self._on_timer_expired(s),
                          name=f"SAT_TIMER_{sid}")
            self.timers[sid] = timer
        timer.restart(bound)
        if self.adaptive:
            prev = self._last_armed.get(sid)
            self._last_armed[sid] = bound
            if prev is not None and bound != prev:
                est = self.estimators.get(sid)
                self._ev_adapted(self.net.engine.now, sid, bound,
                                 est.srtt if est is not None else None,
                                 est.rttvar if est is not None else None)

    def _bound_for(self, sid: int) -> float:
        """The duration to arm ``sid``'s SAT_TIMER with right now.

        Fixed mode: always the Theorem-1 bound.  Adaptive mode: the
        estimator's RFC 6298 timeout, ceilinged at that bound — except
        while a recovery or rebuild is in progress, where the worst case
        applies (Karn-consistent: the walk itself must be allowed the
        full ``SAT_TIME`` the paper grants it).
        """
        ceiling = self.net.sat_time_bound()
        if (not self.adaptive or self.active is not None
                or self.net.rebuilding_until is not None):
            return ceiling
        est = self.estimators.get(sid)
        if est is None:
            return ceiling
        # any rotation may legitimately absorb one RAP join window the
        # past samples never contained — budget for it additively
        return est.rto(ceiling,
                       allowance=float(self.net.config.effective_t_rap()))

    def restart_timer(self, sid: int) -> None:
        # arm-if-missing (not restart-if-present): a station that joined
        # after the last arm_all() must be watched from its first SAT
        # release, or its predecessor could die undetected
        self._arm(sid, self._bound_for(sid))

    def disarm_all(self) -> None:
        for timer in self.timers.values():
            timer.stop()

    def on_membership_change(self, arm_new: Optional[int] = None,
                             removed: Optional[int] = None) -> None:
        if removed is not None:
            timer = self.timers.pop(removed, None)
            if timer is not None:
                timer.stop()
            self.estimators.pop(removed, None)
            self._last_armed.pop(removed, None)
        # everyone re-arms at the *fixed* bound for the new membership:
        # the estimators have not yet seen a rotation of the new regime,
        # and the first post-change arrival samples it before the first
        # adaptive re-arm — so surviving estimator state is kept (the
        # tentpole: no reset to worst case) without ever under-timing
        bound = self.net.sat_time_bound()
        for sid in self.net.order:
            self._arm(sid, bound)
        if arm_new is not None and arm_new not in self.timers:
            self._arm(arm_new, bound)

    def observe_rotation(self, sid: int, rotation: float) -> None:
        """Feed one measured SAT rotation into ``sid``'s estimator.

        Karn's rule: a sample taken while a recovery episode or a ring
        rebuild is in progress is excluded — it measures the repair, not
        the steady-state rotation.  (Samples *spanning* a repair cannot
        occur at all: cut-outs and rebuilds reset every station's
        ``last_sat_arrival``, starting a fresh measurement epoch.)
        """
        if not self.adaptive:
            return
        est = self.estimators.get(sid)
        if est is None:
            est = self.estimators[sid] = RttEstimator()
        if self.active is not None or self.net.rebuilding_until is not None:
            est.exclude()
            return
        est.observe(rotation)

    @property
    def samples_excluded(self) -> int:
        """Total Karn-excluded rotation samples across all estimators."""
        return sum(est.excluded for est in self.estimators.values())

    # ------------------------------------------------------------------
    # injection notes (ground truth for the harness's latency metrics)
    # ------------------------------------------------------------------
    def note_failure(self, sid: int, t: float) -> None:
        self._pending_event = ("silent", sid, t)
        timer = self.timers.pop(sid, None)
        if timer is not None:
            timer.stop()

    def note_sat_loss(self, t: float) -> None:
        if self.active is not None:
            # the signal died during an episode already in progress (e.g.
            # the SAT_REC itself was lost): attribute the loss to the
            # running record instead of queueing a phantom trigger that
            # would mis-date the *next* episode
            self.active.extra.setdefault("extra_losses", []).append(t)
            return
        if self._pending_event is None:
            self._pending_event = ("sat_loss", None, t)

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------
    def _on_timer_expired(self, sid: int) -> None:
        net = self.net
        t = net.engine.now
        if net.network_down or net.rebuilding_until is not None:
            return
        if sid not in net._pos or not net.stations[sid].alive:
            return
        if self.active is not None:
            if sid == self.active.extra.get("originator"):
                # the SAT_REC never came back: ring lost (Sec. 2.5)
                self.start_rebuild(sid, t)
            else:
                # someone else is already recovering; stand down for a period
                self._arm(sid, net.sat_time_bound())
            return

        presumed = net.predecessor(sid)
        kind, event_sid, t_event = self._pending_event or ("sat_loss", None, None)
        self._pending_event = None
        record = RecoveryRecord(kind=kind, failed_station=presumed,
                                t_event=t_event, t_detected=t,
                                extra={"originator": sid,
                                       "injected_station": event_sid})
        self.records.append(record)
        self.active = record
        self._ev_timeout(t, sid, presumed)

        # false-trigger audit: if the SAT this timer watches for is
        # demonstrably alive (in flight or held somewhere) *and* the
        # presumed-failed predecessor is too, this SAT_REC will cut an
        # innocent station out.  The launch proceeds — that destructive
        # cost is exactly what E26 measures — but the episode is tagged
        # and counted in both modes; the typed event is adaptive-only so
        # default traces stay byte-identical.  (A live SAT still en route
        # to a dead station is a *correct* detection, hence the alive
        # check.)
        live = self.net.sat
        if (not net._sat_lost and live.kind == SAT.NORMAL
                and (live.at_station is not None or live.in_flight)
                and net.stations[presumed].alive):
            self.false_triggers += 1
            record.extra["false_trigger"] = True
            if self.adaptive:
                self._ev_false_rec(t, sid, presumed, live.seq)
        if self.adaptive:
            est = self.estimators.get(sid)
            if est is None:
                est = self.estimators[sid] = RttEstimator()
            est.on_timeout()

        # launch the SAT_REC from the detector
        sat = SAT()
        sat.to_recovery(failed_station=presumed, originator=sid)
        sat.at_station = sid
        net.sat = sat
        net._sat_lost = False
        net.stations[sid].on_sat_release(t)
        self._arm(sid, net.sat_time_bound())   # must return within SAT_TIME
        self._forward_sat_rec(sid, t)

    def start_graceful_cutout(self, failed: int, originator: int, t: float) -> None:
        """Sec. 2.4.2: successor converts the SAT into a SAT_REC."""
        net = self.net
        record = RecoveryRecord(kind="graceful", failed_station=failed,
                                t_event=t, t_detected=t,
                                extra={"originator": originator})
        self.records.append(record)
        self.active = record
        sat = net.sat
        sat.to_recovery(failed_station=failed, originator=originator)
        net.stations[originator].on_sat_release(t)
        self.restart_timer(originator)
        self._ev_graceful(t, failed)
        self._forward_sat_rec(originator, t)

    # ------------------------------------------------------------------
    # SAT_REC circulation
    # ------------------------------------------------------------------
    def _forward_sat_rec(self, holder: int, t: float) -> None:
        net = self.net
        sat = net.sat
        nxt = net.successor(holder)
        if nxt == sat.failed_station:
            # Sec. 2.5: station i-1 sends the SAT_REC with code i+1,
            # cutting station i out — feasible only within radio range.
            target = net.successor(nxt)
            if target == holder or not net.reachable(holder, target):
                # hidden terminal: the cut-out hop is impossible; the signal
                # dies and the originator's timer will declare the ring lost
                net._sat_lost = True
                sat.at_station = None
                self._ev_rec_failed(t, holder, target)
                return
            nxt = target
        if net.config.enforce_radio_links and not net.reachable(holder, nxt):
            # mobility broke even the ordinary hop: the SAT_REC is lost; the
            # originator's watchdog will escalate to a full re-formation
            net._sat_lost = True
            sat.at_station = None
            self._ev_rec_failed(t, holder, nxt)
            return
        imp = net.impairments
        if imp is not None:
            reason = imp.loss(t, holder, nxt, code=net.codes.code_of(nxt),
                              kind="sat")
            if reason is not None:
                # the SAT_REC frame faded on this hop; the originator's
                # watchdog will escalate to a full re-formation
                net._sat_lost = True
                sat.at_station = None
                net._ev_sat_hop_lost(t, holder, nxt, sat.kind, reason)
                self.note_sat_loss(t)
                return
        sat.seq = net.next_sat_seq()
        sat.depart(nxt, t + net.config.sat_hop_slots)

    def on_sat_rec_arrival(self, holder: int, t: float) -> None:
        """Called by the network when a SAT_REC reaches ``holder``."""
        net = self.net
        sat = net.sat
        if holder == sat.originator and sat.hops > 0:
            self._complete_cutout(holder, t)
            return
        # intermediate station: treat as a SAT for quota renewal and timers,
        # then forward immediately
        net.stations[holder].on_sat_release(t)
        self.restart_timer(holder)
        self._forward_sat_rec(holder, t)

    def _complete_cutout(self, holder: int, t: float) -> None:
        net = self.net
        sat = net.sat
        failed = sat.failed_station
        if failed is not None and failed in net._pos:
            if net.sat.rap_owner == failed:
                sat.rap_mutex = False
                sat.rap_owner = None
            net.remove_station(failed)
        sat.to_normal()
        # fresh rotation-measurement epoch: the recovery gap must not be
        # counted as a rotation sample against the Theorem-1 bound
        for sid in net.order:
            net.stations[sid].last_sat_arrival = None
        if self.active is not None:
            self.active.t_completed = t
            self.active.outcome = "cutout"
            self._publish_episode(self.active, t)
            self.active = None
        self.on_membership_change()
        self._ev_recovered(t, failed, holder)

    # ------------------------------------------------------------------
    # full ring re-formation
    # ------------------------------------------------------------------
    def start_rebuild(self, initiator: int, t: float) -> None:
        net = self.net
        if self.active is None:
            # direct entry (e.g. unrecoverable geometry detected later);
            # consume any pending injection note so the episode is dated
            # from the real trigger and cannot leak into a later record
            kind, event_sid, t_event = self._pending_event or ("sat_loss", None, None)
            self._pending_event = None
            self.active = RecoveryRecord(kind=kind, failed_station=None,
                                         t_event=t_event, t_detected=t,
                                         extra={"originator": initiator,
                                                "injected_station": event_sid})
            self.records.append(self.active)
        self.active.extra["rebuild_started"] = t
        net._sat_lost = True
        net.sat.at_station = None
        net.sat.rap_mutex = False
        net.sat.rap_owner = None
        net.pause_until = float("-inf")
        self.disarm_all()
        alive = [sid for sid in net.order if net.stations[sid].alive]
        duration = self.REBUILD_SLOTS_PER_STATION * max(len(alive), 1)
        net.rebuilding_until = t + duration
        self.total_rebuild_time += duration
        self._rebuild_initiator = initiator
        self._rebuild_attempts = 0
        if net.channel is not None:
            net.channel.transmit(Frame(src=initiator, code=BROADCAST_CODE,
                                       payload="RING_LOST", kind="control"))
        self._ev_rebuild_start(t, initiator, duration)

    def finish_rebuild(self, t: float) -> None:
        net = self.net
        net.rebuilding_until = None
        alive = [sid for sid in net.order if net.stations[sid].alive]
        graph = net.graph()
        try:
            if len(alive) < 2:
                raise TopologyError("fewer than 2 alive stations")
            if graph is not None:
                new_order = construct_ring(graph.subgraph(alive))
            else:
                new_order = alive
        except TopologyError as exc:
            self._rebuild_attempts += 1
            if (len(alive) >= 2 and
                    self._rebuild_attempts < net.config.rebuild_retry_limit):
                # stations may wander back into range: keep trying (the
                # Sec. 2.5 "new procedure to form a ring" runs until it
                # succeeds or the operator gives up)
                duration = self.REBUILD_SLOTS_PER_STATION * len(alive)
                net.rebuilding_until = t + duration
                self.total_rebuild_time += duration
                self._ev_rebuild_retry(t, self._rebuild_attempts, str(exc))
                return
            net.network_down = True
            if self.active is not None:
                self.active.outcome = "down"
                self.active.t_completed = t
                self.active.extra["error"] = str(exc)
                self._publish_episode(self.active, t)
                self.active = None
            self._ev_down(t, str(exc))
            return

        dropped = [sid for sid in net.order if sid not in new_order]
        for sid in dropped:
            st = net.stations[sid]
            # every packet still buffered at a dropped station is lost —
            # class queues included, not just the insertion buffer
            for queue in (st.transit, st.rt_queue, st.as_queue, st.be_queue):
                for pkt in queue:
                    pkt.dropped = True
                    self._ev_lost(t, pkt, "rebuild", sid, None)
                queue.clear()
            if net.channel is not None:
                net.channel.remove_listener(sid)
        net.order = new_order
        net._reindex()
        self.ring_rebuilds += 1

        initiator = self._rebuild_initiator
        if initiator not in net._pos:
            initiator = net.order[0]
        sat = SAT()
        sat.at_station = initiator
        net.sat = sat
        net._sat_lost = False
        for sid in net.order:
            net.stations[sid].last_sat_arrival = None
        net.stations[initiator].on_sat_arrival(t)
        self.timers.clear()
        self._last_armed.clear()
        # estimator state *survives* the rebuild (the whole point of the
        # adaptive mode: no reset to worst case); only the estimators of
        # stations the new ring left behind are pruned
        for sid in list(self.estimators):
            if sid not in net._pos:
                del self.estimators[sid]
        self.arm_all()
        if self.active is not None:
            self.active.outcome = "rebuild"
            self.active.t_completed = t
            self._publish_episode(self.active, t)
            self.active = None
        self._ev_rebuild_done(t, list(net.order))

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _publish_episode(self, record: RecoveryRecord, t: float) -> None:
        """Emit the finished episode onto the event bus (obs counts them)."""
        self._ev_episode(t, record.kind, record.outcome,
                         record.failed_station, record.total_delay)
