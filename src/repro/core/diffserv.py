"""Mapping Internet Differentiated Services onto WRT-Ring (Sec. 2.3).

The paper maps the two-bit Diffserv architecture [15] onto the quotas:

- **Premium** (full guarantees)        -> the guaranteed ``l`` quota,
- **Assured** (priority, no guarantee) -> a share ``k1`` of the ``k`` quota,
- **best-effort** (lowest priority)    -> the remaining ``k2 = k - k1``.

The mapping is purely local: "any single station can decide the number of
classes of services to implement ... without affecting and without being
affected by the behavior of the other stations."  :class:`DiffservProfile`
expresses a station's class mix and produces the corresponding
:class:`~repro.core.quotas.QuotaConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.packet import ServiceClass
from repro.core.quotas import QuotaConfig

__all__ = ["COLUMN_CLASSES", "DiffservProfile", "split_k_quota",
           "dscp_to_service_class"]

#: Canonical order of the service classes in the struct-of-arrays dataplane
#: state (:mod:`repro.core.columns`) and in the decision codes the ring's
#: decision layer hands to its effects layer: Premium, Assured, best-effort
#: — identical to the strict send priority of Sec. 2.2/2.3, and indexable
#: by ``int(ServiceClass)`` since the enum values follow the same order.
COLUMN_CLASSES: Tuple[ServiceClass, ...] = (
    ServiceClass.PREMIUM, ServiceClass.ASSURED, ServiceClass.BEST_EFFORT)


def split_k_quota(k: int, assured_fraction: float) -> Tuple[int, int]:
    """Split ``k`` into ``(k1, k2)`` with ``k1 ≈ assured_fraction * k``.

    ``k1 + k2 == k`` always holds (Sec. 2.3's constraint).
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if not 0.0 <= assured_fraction <= 1.0:
        raise ValueError(f"assured_fraction must be in [0,1], got {assured_fraction!r}")
    k1 = round(k * assured_fraction)
    return k1, k - k1


@dataclass(frozen=True)
class DiffservProfile:
    """A station's desired per-round class capacities, in packets."""

    premium: int
    assured: int
    best_effort: int

    def __post_init__(self) -> None:
        for name in ("premium", "assured", "best_effort"):
            v = getattr(self, name)
            if v < 0:
                raise ValueError(f"{name} must be >= 0, got {v}")
        if self.premium + self.assured + self.best_effort == 0:
            raise ValueError("profile must reserve at least one packet per round")

    def to_quota(self) -> QuotaConfig:
        """The Sec. 2.3 mapping: premium->l, assured->k1, best_effort->k2."""
        return QuotaConfig(l=self.premium, k1=self.assured, k2=self.best_effort)

    @classmethod
    def from_quota(cls, quota: QuotaConfig) -> "DiffservProfile":
        return cls(premium=quota.l, assured=quota.k1, best_effort=quota.k2)

    def service_share(self, service: ServiceClass) -> int:
        if service is ServiceClass.PREMIUM:
            return self.premium
        if service is ServiceClass.ASSURED:
            return self.assured
        return self.best_effort


#: Two-bit-architecture codepoint names -> WRT-Ring service classes.
_DSCP_MAP = {
    "premium": ServiceClass.PREMIUM,
    "ef": ServiceClass.PREMIUM,          # expedited forwarding
    "assured": ServiceClass.ASSURED,
    "af": ServiceClass.ASSURED,          # assured forwarding
    "best_effort": ServiceClass.BEST_EFFORT,
    "be": ServiceClass.BEST_EFFORT,
    "default": ServiceClass.BEST_EFFORT,
}


def dscp_to_service_class(name: str) -> ServiceClass:
    """Map a Diffserv class name (as used at the gateway) to a ring class."""
    try:
        return _DSCP_MAP[name.lower()]
    except KeyError:
        raise ValueError(f"unknown Diffserv class {name!r}; "
                         f"known: {sorted(_DSCP_MAP)}") from None
