"""WRT-Ring: the paper's primary contribution.

A slotted virtual-ring MAC with receiver-oriented CDMA, SAT-regulated
transmission quotas (``l`` real-time + ``k = k1 + k2`` non-real-time per SAT
round), Diffserv-compatible service classes, RAP-based station insertion,
graceful/ungraceful departure and SAT-loss recovery — implementing Sections
2.1-2.5 of the paper, with the Section 2.6 bounds available in
:mod:`repro.analysis.bounds` and enforced by the admission controller.

Entry point: :class:`~repro.core.ring.WRTRingNetwork` built from a
:class:`~repro.core.config.WRTRingConfig`.
"""

from repro.core.packet import Packet, ServiceClass
from repro.core.quotas import QuotaConfig
from repro.core.config import WRTRingConfig
from repro.core.station import WRTRingStation
from repro.core.sat import SAT, RotationLog
from repro.core.ring import WRTRingNetwork
from repro.core.join import JoinRequester, JoinOutcome
from repro.core.admission import AdmissionController, AdmissionDecision
from repro.core.diffserv import DiffservProfile, split_k_quota

__all__ = [
    "Packet",
    "ServiceClass",
    "QuotaConfig",
    "WRTRingConfig",
    "WRTRingStation",
    "SAT",
    "RotationLog",
    "WRTRingNetwork",
    "JoinRequester",
    "JoinOutcome",
    "AdmissionController",
    "AdmissionDecision",
    "DiffservProfile",
    "split_k_quota",
]
