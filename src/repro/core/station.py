"""A WRT-Ring station: class queues, quota counters, send/SAT state.

Implements the Sec. 2.2 *send algorithm* and the station-side half of the
*SAT algorithm*:

- per-class FIFO queues (Premium / Assured / best-effort);
- ``RT_PCK`` and ``NRT_PCK`` counters incremented on transmission and cleared
  when the station releases the SAT;
- *satisfied* iff ``RT_PCK == l`` or the real-time queue is empty;
- packet selection with strict priority Premium > Assured > best-effort,
  where Assured/best-effort draw from the shared ``k`` authorization with
  per-subclass caps ``k1`` / ``k2`` (Sec. 2.3 — "providing k1 with higher
  priority than k2, the network access mechanism doesn't change").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.core.packet import Packet, ServiceClass
from repro.core.quotas import QuotaConfig
from repro.events.bus import NULL_EMITTER

__all__ = ["WRTRingStation"]


class WRTRingStation:
    """Protocol state of one ring member."""

    #: :class:`~repro.events.types.PacketEnqueued` emitter, pushed in by the
    #: owning network's binder (class-level no-op so a standalone station —
    #: unit tests, pre-insertion joiners — emits into the void)
    _ev_enqueued = NULL_EMITTER

    def __init__(self, sid: int, quota: QuotaConfig):
        self.sid = sid
        # columnar binding: the owning ring's ColumnState and this station's
        # row index, set by WRTRingNetwork._reindex (None/-1 while standalone
        # or after leaving the ring).  The lifecycle setters below write
        # through to the bound column cells; hot per-slot state stays in
        # plain attributes (a numpy cell access costs ~12x an attribute
        # load) and is bulk-synced at kernel batch-window boundaries.
        self._cols = None
        self._idx = -1
        #: ring-successor hint plus an incremental count of queued packets
        #: *not* addressed to it — the batched kernel's saturated path may
        #: only engage while every buffered packet is one hop from delivery.
        #: A standalone station (no successor) counts everything, failing
        #: safe toward the scalar path.
        self._succ_sid: Optional[int] = None
        self._nonsucc = 0
        self._quota = quota
        self.rt_queue: Deque[Packet] = deque()
        self.as_queue: Deque[Packet] = deque()
        self.be_queue: Deque[Packet] = deque()
        #: insertion (transit) buffer — RT-Ring inherits MetaRing's buffer
        #: insertion dataplane: traffic in transit through this station is
        #: forwarded with priority over the station's own packets, which is
        #: what lets a station always spend an authorization in one slot and
        #: makes the Sec. 2.6 bounds hold.
        self.transit: Deque[Packet] = deque()
        # per-round counters (cleared on SAT release)
        self.rt_pck = 0
        self.nrt_pck = 0
        self.as_pck = 0   # Assured share of nrt_pck
        self.be_pck = 0   # best-effort share of nrt_pck
        # lifetime stats
        self.sent: Dict[ServiceClass, int] = {c: 0 for c in ServiceClass}
        self.received: Dict[ServiceClass, int] = {c: 0 for c in ServiceClass}
        self.enqueued: Dict[ServiceClass, int] = {c: 0 for c in ServiceClass}
        self.sat_visits = 0
        self.sat_holds = 0          # visits where the SAT had to be seized
        self.last_sat_arrival: Optional[float] = None
        self.last_sat_departure: Optional[float] = None
        #: highest control-signal sequence number this station has accepted;
        #: a signal arriving with seq <= this is a duplicate/stale replay
        #: and is discarded instead of renewing quotas
        self.last_sat_seq = -1
        # dynamic state (shadow attributes behind the write-through
        # properties below)
        self._alive = True
        self._leaving = False

    # ------------------------------------------------------------------
    # lifecycle fields: thin views over the ring's columnar state
    # ------------------------------------------------------------------
    @property
    def quota(self) -> QuotaConfig:
        return self._quota

    @quota.setter
    def quota(self, value: QuotaConfig) -> None:
        self._quota = value
        if self._cols is not None:
            self._cols.set_quota(self._idx, value)

    @property
    def alive(self) -> bool:
        return self._alive

    @alive.setter
    def alive(self, value: bool) -> None:
        self._alive = value
        if self._cols is not None:
            self._cols.set_alive(self._idx, value)

    @property
    def leaving(self) -> bool:
        return self._leaving

    @leaving.setter
    def leaving(self, value: bool) -> None:
        self._leaving = value
        if self._cols is not None:
            self._cols.set_leaving(self._idx, value)

    # ------------------------------------------------------------------
    # queueing
    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet, now: float) -> None:
        """Accept a packet from the application layer into its class queue."""
        if not self._alive:
            raise RuntimeError(f"station {self.sid} is not alive")
        if packet.src != self.sid:
            raise ValueError(
                f"packet src {packet.src} enqueued at station {self.sid}")
        packet.t_enqueue = now
        queue = self._queue_for(packet.service)
        queue.append(packet)
        if packet.dst != self._succ_sid:
            self._nonsucc += 1
        self.enqueued[packet.service] += 1
        self._ev_enqueued(now, self.sid, packet)

    def _queue_for(self, service: ServiceClass) -> Deque[Packet]:
        if service is ServiceClass.PREMIUM:
            return self.rt_queue
        if service is ServiceClass.ASSURED:
            return self.as_queue
        return self.be_queue

    def queue_length(self, service: Optional[ServiceClass] = None) -> int:
        if service is None:
            return len(self.rt_queue) + len(self.as_queue) + len(self.be_queue)
        return len(self._queue_for(service))

    def queue_depths(self) -> Dict[str, int]:
        """Current depth of every buffer — the station's publishing surface
        for the observability sampler (repro.obs.integrate)."""
        return {"rt": len(self.rt_queue), "as": len(self.as_queue),
                "be": len(self.be_queue), "transit": len(self.transit)}

    # ------------------------------------------------------------------
    # Sec. 2.2 send algorithm
    # ------------------------------------------------------------------
    @property
    def may_send_rt(self) -> bool:
        """Rule 1: real-time allowed while fewer than ``l`` sent this round."""
        return self.rt_pck < self._quota.l and bool(self.rt_queue)

    @property
    def _rt_exhausted_or_empty(self) -> bool:
        """Rule 2's precondition: RT buffer empty or RT quota used up."""
        return not self.rt_queue or self.rt_pck >= self._quota.l

    @property
    def may_send_assured(self) -> bool:
        return (self._rt_exhausted_or_empty
                and self.nrt_pck < self._quota.k
                and self.as_pck < self._quota.k1
                and bool(self.as_queue))

    @property
    def may_send_be(self) -> bool:
        return (self._rt_exhausted_or_empty
                and self.nrt_pck < self._quota.k
                and self.be_pck < self._quota.k2
                and bool(self.be_queue)
                # k1 has strict priority over k2 within the same station
                and not self.may_send_assured)

    def _decide_class(self) -> Optional[ServiceClass]:
        """Decision half of the send algorithm: which class would fill an
        empty slot right now, or None.  Pure — touches no state, so the
        ring's decision layer (and tests) can probe without side effects."""
        if self.may_send_rt:
            return ServiceClass.PREMIUM
        if self.may_send_assured:
            return ServiceClass.ASSURED
        if self.may_send_be:
            return ServiceClass.BEST_EFFORT
        return None

    def _pop_class(self, service: ServiceClass) -> Packet:
        """Effects half: dequeue the head of *service* and spend the
        authorization.  Caller guarantees the class was decided sendable."""
        if service is ServiceClass.PREMIUM:
            pkt = self.rt_queue.popleft()
            self.rt_pck += 1
        elif service is ServiceClass.ASSURED:
            pkt = self.as_queue.popleft()
            self.nrt_pck += 1
            self.as_pck += 1
        else:
            pkt = self.be_queue.popleft()
            self.nrt_pck += 1
            self.be_pck += 1
        if pkt.dst != self._succ_sid:
            self._nonsucc -= 1
        self.sent[pkt.service] += 1
        return pkt

    def select_packet(self) -> Optional[Packet]:
        """Pick the next packet to insert into an empty slot, or None.

        Follows the send algorithm with Premium > Assured > best-effort
        priority; updates the round counters.  Composition of the
        decision and effects layers above.
        """
        service = self._decide_class()
        if service is None:
            return None
        return self._pop_class(service)

    # ------------------------------------------------------------------
    # Sec. 2.2 SAT algorithm (station side)
    # ------------------------------------------------------------------
    @property
    def satisfied(self) -> bool:
        """Satisfied iff ``RT_PCK == l`` or the real-time queue is empty.

        A leaving station is always satisfied: it no longer transmits its
        own traffic (Sec. 2.4.2) and must pass the SAT on to the successor
        that will cut it out — holding it back would stall the rotation
        until the watchdogs cut out an innocent station instead.
        """
        return (self._leaving or self.rt_pck >= self._quota.l
                or not self.rt_queue)

    def on_sat_arrival(self, now: float) -> Optional[float]:
        """Record a SAT visit; returns the rotation time if one completed."""
        rotation = None
        if self.last_sat_arrival is not None:
            rotation = now - self.last_sat_arrival
        self.last_sat_arrival = now
        self.sat_visits += 1
        if not self.satisfied:
            self.sat_holds += 1
        return rotation

    def on_sat_release(self, now: float) -> None:
        """Clear the round counters — 'after releasing the SAT, RT_PCK and
        NRT_PCK are cleared'."""
        self.last_sat_departure = now
        self.rt_pck = 0
        self.nrt_pck = 0
        self.as_pck = 0
        self.be_pck = 0

    # ------------------------------------------------------------------
    def on_deliver(self, packet: Packet) -> None:
        self.received[packet.service] += 1

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Station {self.sid} {self.quota} q=({len(self.rt_queue)},"
                f"{len(self.as_queue)},{len(self.be_queue)}) "
                f"rt_pck={self.rt_pck} nrt_pck={self.nrt_pck}>")
