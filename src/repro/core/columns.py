"""Struct-of-arrays mirror of the per-station hot-path protocol state.

:class:`ColumnState` packs the scalar ``WRTRingStation`` objects into numpy
columns — quotas, class-queue depths, per-round send counters, SAT visit
bookkeeping, liveness masks and the SAT position — so the batched kernel can
reason about *all* stations with array operations instead of per-object
attribute walks.

The ring owns one live instance (``WRTRingNetwork.columns``), rebound on
every membership change via :meth:`bind_ring`.  Two tiers of state:

* **Write-through cells** — the rare lifecycle fields (``alive``,
  ``leaving``, ``quota``) are mirrored eagerly: the station properties
  write both the shadow attribute and the bound column cell, bumping
  :attr:`generation` so the kernel can detect perturbation mid-window.
  Hot per-slot fields deliberately stay plain python attributes on the
  station (a numpy cell read costs ~12x a plain attribute load), and are
  bulk-refreshed with :meth:`sync_hot` only at batch-window boundaries.
* **Snapshot columns** — :meth:`sync_from_network` /
  :meth:`verify_against` round-trip the column view against the scalar
  objects, which is how the kernel unit tests (and a parity-diff
  debugging session) prove the two representations agree field by field.

:func:`hop_plan` is the analytic heart of quiescent fast-forward: given
the SAT's in-flight anchor and a hop budget it computes, per station, how
many visits land in the jump window and when the last one arrives — one
vectorized expression instead of a per-slot simulation loop.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["ColumnState", "hop_plan"]


def hop_plan(n: int, i1: int, K: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized visit plan for ``K`` SAT hops around an ``n``-ring.

    Hop ``j`` (0-based) arrives at ring offset ``(i1 + j) % n``.  Returns
    ``(offsets, counts, last_j)`` where ``counts[d]`` is the number of visits
    the station at offset ``(i1 + d) % n`` receives and ``last_j[d]`` the hop
    index of its final visit (-1 when unvisited).
    """
    if K < 0:
        raise ValueError(f"hop budget must be non-negative, got {K}")
    offsets = np.arange(n)
    counts = np.where(offsets < K, (K - offsets + n - 1) // n, 0)
    last_j = np.where(counts > 0, offsets + (counts - 1) * n, -1)
    return offsets, counts, last_j


def _nonsucc_count(st) -> int:
    """Recount of queued packets not addressed to the ring successor —
    the ground truth the incremental ``st._nonsucc`` counter must track."""
    succ = st._succ_sid
    return sum(1 for q in (st.rt_queue, st.as_queue, st.be_queue)
               for p in q if p.dst != succ)


class ColumnState:
    """Numpy-column view of a :class:`~repro.core.ring.WRTRingNetwork`."""

    def __init__(self, net) -> None:
        self.net = net
        #: bumped on every write-through lifecycle change and every rebind;
        #: the batched kernel snapshots it at window start and aborts a
        #: replay window when it moves (membership/liveness perturbation)
        self.generation = 0
        self.sync_from_network()

    # ------------------------------------------------------------------
    # live binding (ring-owned instance only)
    # ------------------------------------------------------------------
    def bind_ring(self) -> None:
        """Rebuild every column and (re)bind the member stations' cells.

        Called by ``WRTRingNetwork._reindex`` on every membership change.
        Stations that left the ring are detached (their lifecycle setters
        stop writing through), members get their column row index.
        """
        net = self.net
        for st in net.stations.values():
            st._cols = None
            st._idx = -1
        self.sync_from_network()
        for idx, st in enumerate(self._stations):
            st._cols = self
            st._idx = idx
        self.generation += 1

    def set_alive(self, idx: int, value: bool) -> None:
        self.alive[idx] = value
        self.generation += 1

    def set_leaving(self, idx: int, value: bool) -> None:
        self.leaving[idx] = value
        self.generation += 1

    def set_quota(self, idx: int, quota) -> None:
        self.quota_l[idx] = quota.l
        self.quota_k[idx] = quota.k
        self.quota_k1[idx] = quota.k1
        self.quota_k2[idx] = quota.k2
        self.generation += 1

    # ------------------------------------------------------------------
    def sync_from_network(self) -> None:
        """Rebuild every column from the scalar station objects."""
        net = self.net
        order = list(net.order)
        stations = [net.stations[sid] for sid in order]
        self._stations = stations
        n = len(order)
        self.order = np.array(order, dtype=np.int64)

        self.quota_l = np.array([st.quota.l for st in stations], dtype=np.int64)
        self.quota_k = np.array([st.quota.k for st in stations], dtype=np.int64)
        self.quota_k1 = np.array([st.quota.k1 for st in stations], dtype=np.int64)
        self.quota_k2 = np.array([st.quota.k2 for st in stations], dtype=np.int64)

        self.alive = np.array([st.alive for st in stations], dtype=bool)
        self.leaving = np.array([st.leaving for st in stations], dtype=bool)

        self.sat_visits = np.array([st.sat_visits for st in stations], dtype=np.int64)
        self.sat_holds = np.array([st.sat_holds for st in stations], dtype=np.int64)
        self.last_sat_seq = np.array([st.last_sat_seq for st in stations], dtype=np.int64)
        self.last_arrival = np.array(
            [np.nan if st.last_sat_arrival is None else st.last_sat_arrival
             for st in stations], dtype=np.float64)
        self.last_departure = np.array(
            [np.nan if st.last_sat_departure is None else st.last_sat_departure
             for st in stations], dtype=np.float64)

        sat = net.sat
        pos = net._pos
        #: SAT position encoded as a ring offset: holder index when held,
        #: destination index when in flight (``sat_in_flight`` disambiguates;
        #: -1 when the signal is lost or heading to a just-removed station)
        self.sat_in_flight = sat.in_flight
        if sat.in_flight:
            self.sat_pos = pos.get(sat.in_flight_to, -1)
        elif sat.at_station is not None and sat.at_station in pos:
            self.sat_pos = pos[sat.at_station]
        else:
            self.sat_pos = -1
        self.sat_arrival_time = (np.nan if sat.arrival_time is None
                                 else sat.arrival_time)
        self.sat_hops = sat.hops
        self.sat_seq = sat.seq
        self.n = n
        self.sync_hot()

    def sync_hot(self) -> None:
        """Refresh the per-slot columns — queue depths, round counters,
        non-successor counts — from the bound stations.  Cheap enough for
        a batch-window boundary; far too hot for every slot (which is why
        these fields live as plain attributes on the station between
        windows)."""
        sts = self._stations
        n = self.n
        self.rt_depth = np.fromiter(
            (len(st.rt_queue) for st in sts), dtype=np.int64, count=n)
        self.as_depth = np.fromiter(
            (len(st.as_queue) for st in sts), dtype=np.int64, count=n)
        self.be_depth = np.fromiter(
            (len(st.be_queue) for st in sts), dtype=np.int64, count=n)
        self.transit_depth = np.fromiter(
            (len(st.transit) for st in sts), dtype=np.int64, count=n)
        self.rt_pck = np.fromiter(
            (st.rt_pck for st in sts), dtype=np.int64, count=n)
        self.nrt_pck = np.fromiter(
            (st.nrt_pck for st in sts), dtype=np.int64, count=n)
        self.as_pck = np.fromiter(
            (st.as_pck for st in sts), dtype=np.int64, count=n)
        self.be_pck = np.fromiter(
            (st.be_pck for st in sts), dtype=np.int64, count=n)
        self.nonsucc = np.fromiter(
            (st._nonsucc for st in sts), dtype=np.int64, count=n)

    # ------------------------------------------------------------------
    # saturated-regime helpers (the batched kernel's decision inputs)
    # ------------------------------------------------------------------
    def members_saturated(self) -> bool:
        """Early-exit scan over the live members: every one alive and
        staying, transit buffers empty, all queued traffic addressed to
        the ring successor, and at least one packet buffered.  Pure
        python on the hot shadow attributes — this runs on every tick the
        cheaper gate checks pass, so it must not touch numpy cells."""
        total = 0
        for st in self._stations:
            if (not st._alive or st._leaving or st.transit or st._nonsucc):
                return False
            total += len(st.rt_queue) + len(st.as_queue) + len(st.be_queue)
        return total > 0

    def segment_budgets(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized remaining send budgets of the current SAT round.

        Per station: ``r`` RT sends (residual ``l`` clamped by the RT
        depth), then ``a`` Assured and ``b`` best-effort sends drawing
        from the shared residual ``k`` with the ``k1``/``k2`` caps —
        the column form of ``QuotaConfig.send_schedule``.  Call
        :meth:`sync_hot` first.
        """
        r = np.minimum(np.maximum(self.quota_l - self.rt_pck, 0),
                       self.rt_depth)
        nb = np.maximum(self.quota_k - self.nrt_pck, 0)
        a = np.minimum(np.minimum(
            np.maximum(self.quota_k1 - self.as_pck, 0), nb), self.as_depth)
        b = np.minimum(np.minimum(
            np.maximum(self.quota_k2 - self.be_pck, 0), nb - a), self.be_depth)
        return r, a, b

    @staticmethod
    def send_bounds(r: np.ndarray, a: np.ndarray,
                    b: np.ndarray) -> np.ndarray:
        """Cumulative slot boundaries of each station's send run: row 0 is
        where the RT burst ends (offset from the segment start), row 1
        where Assured ends, row 2 where the whole burst ends — the
        slot→class assignment used by the saturated walk."""
        return np.cumsum(np.stack((r, a, b)), axis=0)

    # ------------------------------------------------------------------
    def slot_occupancy(self) -> int:
        """Stations that would contend for the current slot (non-empty
        queues or transit traffic) — the columnar form of the dataplane's
        busy count."""
        return int(np.count_nonzero(
            (self.rt_depth + self.as_depth + self.be_depth
             + self.transit_depth) > 0))

    def quiescent_mask(self) -> np.ndarray:
        """Per-station 'nothing buffered, fully alive' mask."""
        return ((self.rt_depth == 0) & (self.as_depth == 0)
                & (self.be_depth == 0) & (self.transit_depth == 0)
                & self.alive & ~self.leaving)

    # ------------------------------------------------------------------
    def verify_against(self, net=None) -> List[str]:
        """Field-by-field comparison with the scalar station objects.

        Returns a list of human-readable mismatch strings (empty = the
        column view and the object view agree) — the primitive the kernel
        unit tests and parity debugging build on.
        """
        net = net if net is not None else self.net
        issues: List[str] = []
        order = list(net.order)
        if order != self.order.tolist():
            issues.append(f"ring order: columns {self.order.tolist()} "
                          f"vs network {order}")
            return issues
        scalar_fields = {
            "quota_l": lambda st: st.quota.l,
            "quota_k": lambda st: st.quota.k,
            "quota_k1": lambda st: st.quota.k1,
            "quota_k2": lambda st: st.quota.k2,
            "rt_depth": lambda st: len(st.rt_queue),
            "as_depth": lambda st: len(st.as_queue),
            "be_depth": lambda st: len(st.be_queue),
            "transit_depth": lambda st: len(st.transit),
            "rt_pck": lambda st: st.rt_pck,
            "nrt_pck": lambda st: st.nrt_pck,
            "as_pck": lambda st: st.as_pck,
            "be_pck": lambda st: st.be_pck,
            "alive": lambda st: st.alive,
            "leaving": lambda st: st.leaving,
            "sat_visits": lambda st: st.sat_visits,
            "sat_holds": lambda st: st.sat_holds,
            "last_sat_seq": lambda st: st.last_sat_seq,
            # the incremental counter against a ground-truth recount —
            # catches any enqueue/pop path that skipped the maintenance
            "nonsucc": _nonsucc_count,
        }
        for name, getter in scalar_fields.items():
            column = getattr(self, name)
            for idx, sid in enumerate(order):
                want = getter(net.stations[sid])
                got = column[idx]
                if bool(got != want):
                    issues.append(f"{name}[{sid}]: column {got!r} vs "
                                  f"station {want!r}")
        for name, attr in (("last_arrival", "last_sat_arrival"),
                           ("last_departure", "last_sat_departure")):
            column = getattr(self, name)
            for idx, sid in enumerate(order):
                want = getattr(net.stations[sid], attr)
                got = None if np.isnan(column[idx]) else float(column[idx])
                if got != want:
                    issues.append(f"{name}[{sid}]: column {got!r} vs "
                                  f"station {want!r}")
        sat = net.sat
        if self.sat_in_flight != sat.in_flight:
            issues.append(f"sat_in_flight: column {self.sat_in_flight} "
                          f"vs sat {sat.in_flight}")
        if self.sat_hops != sat.hops:
            issues.append(f"sat_hops: column {self.sat_hops} vs sat {sat.hops}")
        if self.sat_seq != sat.seq:
            issues.append(f"sat_seq: column {self.sat_seq} vs sat {sat.seq}")
        return issues
