"""Station insertion: the Random Access Period and the join handshake
(Sec. 2.4.1, Fig. 3).

Each SAT round at most one station may open a RAP, guarded by the
``RAP_mutex`` flag carried in the SAT.  The RAP has an *earing* phase
(``T_ear`` slots) and an *update* phase (``T_update`` slots); the network is
idle for the whole ``T_rap = T_ear + T_update``.

Handshake on the broadcast/CDMA channel:

1. the ingress station broadcasts ``NEXT_FREE`` (its address+code, its
   successor's address+code, ``T_ear`` and the maximum resources the network
   can still offer);
2. a requesting station that has heard ``NEXT_FREE`` from two *consecutive*
   ring stations — i.e. it can reach both over a single hop — replies during
   the earing phase with a ``JOIN_REQ`` spread with the ingress's code,
   containing its address, its own code and its ``(l, k)`` quotas.  Several
   requesters answering in the same slot collide at the ingress; each picks
   a uniformly random reply slot so collisions resolve across RAPs;
3. the ingress runs admission control and answers ``JOIN_ACK`` (accept or
   reject) with its own code — exactly what the requester is listening for;
4. in the update phase the topology change is broadcast and the new station
   enters the ring between the ingress and its successor at the RAP's end.

If the requester hears no reply within ``T_ear`` slots it abandons the
attempt and waits for later ``NEXT_FREE`` messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.core.admission import AdmissionController
from repro.core.quotas import QuotaConfig
from repro.events import types as _ev
from repro.phy.cdma import BROADCAST_CODE
from repro.phy.channel import Frame
from repro.sim.process import Signal

__all__ = ["JoinManager", "JoinRequester", "JoinOutcome",
           "NextFree", "JoinRequest", "JoinAck", "RingUpdate"]


# ----------------------------------------------------------------------
# message payloads
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NextFree:
    """The ingress announcement opening a RAP."""

    sender: int
    sender_code: int
    next_station: int
    next_code: int
    t_ear: int
    max_resources: int    # largest l+k the network could still admit
    rap_end: float


@dataclass(frozen=True)
class JoinRequest:
    requester: int
    code_new: int
    quota: QuotaConfig
    deadline_req: Optional[float] = None
    max_backlog: int = 0


@dataclass(frozen=True)
class JoinAck:
    requester: int
    accepted: bool
    reason: str
    after_station: int


@dataclass(frozen=True)
class RingUpdate:
    """Update-phase broadcast: the topology change everyone (including the
    new station, whose ACK may have been lost to a collision) learns from."""

    new_station: int
    after_station: int


class JoinOutcome(Enum):
    LISTENING = "listening"
    REQUEST_SENT = "request_sent"
    ACCEPTED = "accepted"
    JOINED = "joined"
    REJECTED = "rejected"
    GAVE_UP = "gave_up"   # capped retries exhausted (lossy channel)


# ----------------------------------------------------------------------
@dataclass
class _RapSession:
    ingress: int
    t0: float
    t_ear_end: float
    t_end: float
    accepted: Optional[JoinRequest] = None
    requests_heard: List[JoinRequest] = field(default_factory=list)


class JoinManager:
    """Network-side RAP scheduling and the ingress role."""

    def __init__(self, net) -> None:
        self.net = net
        self.admission = AdmissionController(net)
        self._countdown: Dict[int, int] = {}
        self.session: Optional[_RapSession] = None
        self.raps_opened = 0
        self.joins_completed = 0
        self.joins_rejected = 0
        if net.channel is not None:
            for sid in net.order:
                net.register_frame_handler(sid, self._on_station_frame)
        net.events.add_binder(self._bind_emitters)

    def _bind_emitters(self) -> None:
        em = self.net.events.emitter
        self._ev_open = em(_ev.RapOpen)
        self._ev_request = em(_ev.RapRequest)
        self._ev_close = em(_ev.RapClose)

    # ------------------------------------------------------------------
    def effective_s_round(self) -> int:
        """The paper requires ``S_round(i) >= N``."""
        return max(self.net.config.s_round, self.net.n)

    def maybe_enter_rap(self, holder: int, t: float) -> bool:
        """Called on every SAT arrival; opens a RAP when this station is due
        and the mutex is free."""
        net = self.net
        if not net.config.rap_enabled:
            return False
        count = self._countdown.get(holder)
        if count is None:
            # stagger initial duties so roughly one station is due per round
            count = net._pos[holder] + 1
        count -= 1
        self._countdown[holder] = count
        if count > 0 or net.sat.rap_mutex:
            return False

        sat = net.sat
        sat.rap_mutex = True
        sat.rap_owner = holder
        self._countdown[holder] = self.effective_s_round()
        cfg = net.config
        self.session = _RapSession(
            ingress=holder, t0=t,
            t_ear_end=t + cfg.t_ear, t_end=t + cfg.t_rap)
        net.pause_until = t + cfg.t_rap
        self.raps_opened += 1
        self._ev_open(t, holder)

        if net.channel is not None:
            nxt = net.successor(holder)
            payload = NextFree(
                sender=holder,
                sender_code=net.codes.code_of(holder),
                next_station=nxt,
                next_code=net.codes.code_of(nxt),
                t_ear=cfg.t_ear,
                max_resources=self.admission.max_admissible_quota(),
                rap_end=t + cfg.t_rap)
            net.channel.transmit(Frame(src=holder, code=BROADCAST_CODE,
                                       payload=payload, kind="control"))
        return True

    # ------------------------------------------------------------------
    def on_rap_tick(self, t: float) -> None:
        """Hook for paused ticks; the handshake itself is frame-driven."""

    def on_rap_end(self, t: float) -> None:
        session = self.session
        if session is None:
            return
        self.session = None
        req = session.accepted
        if req is None:
            self._ev_close(t, session.ingress, None, None)
            return
        if req.requester in self.net._pos:
            # stale duplicate accept (the requester's earlier ACK was lost
            # to a collision and it re-requested); the ring already has it
            self._ev_close(t, session.ingress, None, req.requester)
            return
        code = req.code_new
        used = {self.net.codes.code_of(s) for s in self.net.codes.stations()}
        if code in used or code == BROADCAST_CODE:
            code = None
        self.net.insert_station(req.requester, after=session.ingress,
                                quota=req.quota, code=code)
        self.joins_completed += 1
        if self.net.channel is not None:
            # update phase: broadcast the topology change (Sec. 2.4.1's
            # T_update); this is also the joiner's fallback confirmation
            self.net.channel.transmit(Frame(
                src=session.ingress, code=BROADCAST_CODE,
                payload=RingUpdate(new_station=req.requester,
                                   after_station=session.ingress),
                kind="control"))
        self._ev_close(t, session.ingress, req.requester, None)

    # ------------------------------------------------------------------
    def _on_station_frame(self, frame: Frame, t: float) -> None:
        payload = frame.payload
        if not isinstance(payload, JoinRequest):
            return
        session = self.session
        if session is None or t >= session.t_ear_end:
            return  # not in an earing phase: ignore stray requests
        ingress = session.ingress
        session.requests_heard.append(payload)
        if session.accepted is not None:
            return  # one admission per RAP
        decision = self.admission.evaluate(payload)
        ack = JoinAck(requester=payload.requester, accepted=decision.accepted,
                      reason=decision.reason, after_station=ingress)
        # reply in the next slot, spread with the ingress's own code —
        # exactly the code the requester is waiting on (Sec. 2.4.1)
        reply = Frame(src=ingress, code=self.net.codes.code_of(ingress),
                      payload=ack, kind="control")
        self.net.engine.schedule(1.0, self.net.channel.transmit, reply)
        if decision.accepted:
            session.accepted = payload
        else:
            self.joins_rejected += 1
        self._ev_request(t, payload.requester, decision.accepted,
                         decision.reason)


# ----------------------------------------------------------------------
class JoinRequester:
    """A station outside the ring executing the Sec. 2.4.1 'new station'
    algorithm over the broadcast channel."""

    #: adaptive mode: ceiling on the RAP-opportunity skip window, so the
    #: exponential backoff cannot push the ``max_attempts`` give-up
    #: deadline beyond ``max_attempts * (BACKOFF_CAP + 1)`` opportunities
    BACKOFF_CAP = 8

    def __init__(self, net, new_sid: int, quota: QuotaConfig,
                 code_new: Optional[int] = None,
                 deadline_req: Optional[float] = None,
                 max_backlog: int = 0,
                 rng=None,
                 max_attempts: Optional[int] = None,
                 retry_jitter: int = 0):
        if net.channel is None:
            raise ValueError("joining requires a PHY channel on the network")
        if new_sid in net._pos:
            raise ValueError(f"station {new_sid} is already a ring member")
        self.net = net
        self.sid = new_sid
        self.quota = quota
        self.code_new = code_new if code_new is not None else 1000 + new_sid
        self.deadline_req = deadline_req
        self.max_backlog = max_backlog
        self.rng = rng
        #: None = retry across RAP rounds forever (the paper's behaviour on
        #: a clean channel); an int caps the attempts before GAVE_UP
        self.max_attempts = max_attempts
        #: after a failed attempt, skip a random 0..retry_jitter NEXT_FREE
        #: opportunities — decorrelates requesters whose JOIN_REQs keep
        #: colliding or fading on a lossy channel (needs ``rng``)
        self.retry_jitter = retry_jitter
        self._skip_next = 0
        #: adaptive mode (``net.adaptive_timers``): the retry window grows
        #: exponentially per timeout instead of the uniform retry_jitter
        #: draw, reusing the RttEstimator's RFC 6298 backoff counter
        self.adaptive = bool(getattr(net, "adaptive_timers", False))
        if self.adaptive:
            from repro.core.adaptive import RttEstimator
            self._backoff = RttEstimator()

        self.state = JoinOutcome.LISTENING
        self.heard: Dict[int, NextFree] = {}
        self.cycle_complete = False
        self.candidate: Optional[int] = None
        self._tx_at: Optional[float] = None
        self._tx_frame: Optional[Frame] = None
        self._ack_deadline: Optional[float] = None
        self._await_code: Optional[int] = None
        self.t_started = net.engine.now
        self.t_requested: Optional[float] = None
        self.t_joined: Optional[float] = None
        self.attempts = 0
        self.rejections = 0
        self.joined = Signal(net.engine, name=f"join[{new_sid}]")

        net.channel.register_listener(new_sid, {BROADCAST_CODE})
        net.register_frame_handler(new_sid, self._on_frame)
        net.add_tick_hook(self._on_tick)

    # ------------------------------------------------------------------
    def _on_frame(self, frame: Frame, t: float) -> None:
        payload = frame.payload
        if isinstance(payload, NextFree):
            self._on_next_free(payload, t)
        elif isinstance(payload, JoinAck) and payload.requester == self.sid:
            self._on_ack(payload, t)
        elif isinstance(payload, RingUpdate) and payload.new_station == self.sid:
            # update-phase broadcast names us: we are in, even if the ACK
            # was lost to a collision
            if self.state is not JoinOutcome.JOINED:
                self._stop_awaiting()
                self._tx_at = None
                self._tx_frame = None
                self.state = JoinOutcome.ACCEPTED

    def _on_next_free(self, nf: NextFree, t: float) -> None:
        if nf.sender in self.heard:
            # a repeat sender: every ring station has had its RAP turn
            self.cycle_complete = True
        self.heard[nf.sender] = nf
        if self.state is not JoinOutcome.LISTENING:
            return
        if not self.cycle_complete:
            return
        if nf.max_resources < self.quota.total:
            return  # network advertises insufficient capacity; keep waiting
        # "two consecutive stations reachable over a single hop": we heard
        # this sender, and we have also heard its successor announce —
        # hearing is symmetric in the unit-disk model, so both are reachable
        if nf.next_station not in self.heard:
            return
        if self._skip_next > 0:
            # randomized retry backoff: sit this RAP out
            self._skip_next -= 1
            return
        self.candidate = nf.sender
        self._send_request(nf, t)

    def _send_request(self, nf: NextFree, t: float) -> None:
        backoff_max = max(nf.t_ear - 2, 0)
        backoff = self.rng.randint(0, backoff_max) if (self.rng and backoff_max) else 0
        self._tx_at = t + 1 + backoff
        req = JoinRequest(requester=self.sid, code_new=self.code_new,
                          quota=self.quota, deadline_req=self.deadline_req,
                          max_backlog=self.max_backlog)
        self._tx_frame = Frame(src=self.sid, code=nf.sender_code,
                               payload=req, kind="control")
        self._ack_deadline = self._tx_at + nf.t_ear
        self._await_code = nf.sender_code
        self.state = JoinOutcome.REQUEST_SENT
        self.attempts += 1
        if self.t_requested is None:
            self.t_requested = self._tx_at

    def _on_ack(self, ack: JoinAck, t: float) -> None:
        if self.state is not JoinOutcome.REQUEST_SENT:
            return
        self._stop_awaiting()
        if ack.accepted:
            self.state = JoinOutcome.ACCEPTED
        else:
            self.rejections += 1
            self.state = JoinOutcome.REJECTED

    def _stop_awaiting(self) -> None:
        if self._await_code is not None:
            codes = self.net.channel.listen_codes(self.sid)
            codes.discard(self._await_code)
            self.net.channel.register_listener(self.sid, codes)
            self._await_code = None
        self._ack_deadline = None

    # ------------------------------------------------------------------
    def _on_tick(self, t: float) -> None:
        if self.state in (JoinOutcome.JOINED, JoinOutcome.GAVE_UP):
            return
        if self.sid in self.net._pos:
            # we are a ring member — even if both the ACK and the
            # update-phase broadcast were lost to collisions or fading,
            # membership itself is the confirmation (we start hearing the
            # dataplane); without this check a lossy channel strands an
            # inserted station in REQUEST_SENT forever
            self._stop_awaiting()
            self._tx_at = None
            self._tx_frame = None
            self.state = JoinOutcome.JOINED
            self.t_joined = t
            self.joined.succeed(t)
            return
        if self._tx_at is not None and t >= self._tx_at:
            self.net.channel.transmit(self._tx_frame)
            self.net.channel.add_listen_code(self.sid, self._await_code)
            self._tx_at = None
            self._tx_frame = None
        if (self.state is JoinOutcome.REQUEST_SENT
                and self._ack_deadline is not None
                and t > self._ack_deadline):
            # Sec. 2.4.1: no reply within T_ear -> wait for next NEXT_FREE
            self._stop_awaiting()
            if (self.max_attempts is not None
                    and self.attempts >= self.max_attempts):
                self.state = JoinOutcome.GAVE_UP
                return
            if self.adaptive:
                # exponential backoff on timeout: double the skip window
                # per failure (RFC 6298 §5.5 via the estimator's counter),
                # capped so the give-up deadline stays bounded
                self._backoff.on_timeout()
                window = min(int(self._backoff.backoff) // 2,
                             self.BACKOFF_CAP)
                if self.rng is not None and window > 0:
                    self._skip_next = self.rng.randint(0, window)
                else:
                    self._skip_next = window
            elif self.rng is not None and self.retry_jitter > 0:
                self._skip_next = self.rng.randint(0, self.retry_jitter)
            self.state = JoinOutcome.LISTENING

    # ------------------------------------------------------------------
    @property
    def join_latency(self) -> Optional[float]:
        if self.t_joined is None:
            return None
        return self.t_joined - self.t_started
