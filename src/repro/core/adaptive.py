"""Adaptive SAT-timer estimation (RFC 6298 style) for WRT-Ring.

The paper arms every station's ``SAT_TIMER`` with the fixed Theorem-1
worst case ``SAT_TIME`` (Sec. 2.5).  That is *safe* — a timer can never
fire while a live SAT is still on its way — but slow: on an impaired
channel the ring only notices a lost SAT after the full worst-case
rotation, even when observed rotations are a tenth of the bound.

:class:`RttEstimator` closes that gap with the TCP retransmission-timer
estimator of RFC 6298, applied to SAT inter-arrival times:

* ``SRTT``/``RTTVAR`` smoothing with the RFC constants (``ALPHA`` = 1/8,
  ``BETA`` = 1/4, first sample seeds ``SRTT = R``, ``RTTVAR = R/2``);
* Karn's rule — samples taken during recovery rounds or SAT_REC walks are
  excluded by the caller (:meth:`RecoveryManager.observe_rotation`), so a
  stretched post-repair rotation never poisons the estimate;
* exponential backoff on timeout (doubled per expiry, reset by the next
  valid sample), bounded so the timeout interval stays finite;
* two safety rails the RFC does not need but a token ring does: a *floor*
  at the largest rotation ever observed (a timeout below a rotation that
  actually happened would be a guaranteed false trigger under identical
  conditions) and a *ceiling* at the Theorem-1 bound, so the adaptive
  timer is never **less** safe than the paper's fixed one.

The estimator is deliberately engine-agnostic (plain floats in, plain
floats out): :class:`~repro.core.recovery.RecoveryManager` feeds it
rotation samples and arms timers from :meth:`rto`;
:class:`~repro.core.join.JoinRequester` reuses only the backoff counter
to space its RAP retries exponentially.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["RttEstimator"]


class RttEstimator:
    """Per-station smoothed rotation-time estimator with safety rails."""

    #: RFC 6298 smoothing gains
    ALPHA = 0.125
    BETA = 0.25
    #: RFC 6298 variance multiplier (``RTO = SRTT + K * RTTVAR``)
    K = 4.0
    #: clock granularity: one slot
    G = 1.0
    #: headroom multiplier on the RFC interval — rotations are bursty
    #: (RAP pauses, saturated quota walks), and a false SAT_REC cuts an
    #: innocent station out of the ring, so the cost asymmetry warrants
    #: more margin than TCP's retransmission
    SAFETY = 2.0
    #: backoff is capped so the timeout interval stays finite even under
    #: a pathological expiry storm (the ceiling caps the RTO anyway)
    MAX_BACKOFF = 64.0

    __slots__ = ("srtt", "rttvar", "max_sample", "backoff",
                 "samples", "excluded")

    def __init__(self) -> None:
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.max_sample = 0.0
        self.backoff = 1.0
        self.samples = 0
        self.excluded = 0

    # ------------------------------------------------------------------
    def observe(self, sample: float) -> None:
        """Fold one valid (non-Karn-excluded) rotation sample in."""
        if sample <= 0:
            raise ValueError(f"rotation sample must be > 0, got {sample!r}")
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = ((1.0 - self.BETA) * self.rttvar
                           + self.BETA * abs(self.srtt - sample))
            self.srtt = (1.0 - self.ALPHA) * self.srtt + self.ALPHA * sample
        self.max_sample = max(self.max_sample, sample)
        self.backoff = 1.0
        self.samples += 1

    def exclude(self) -> None:
        """Count a Karn-excluded sample (recovery/rebuild rounds)."""
        self.excluded += 1

    def on_timeout(self) -> None:
        """Exponential backoff: the next :meth:`rto` doubles (RFC 6298
        §5.5) until a valid sample resets it."""
        self.backoff = min(self.backoff * 2.0, self.MAX_BACKOFF)

    # ------------------------------------------------------------------
    def rto(self, ceiling: float, allowance: float = 0.0) -> float:
        """The retransmission-timeout analogue: the SAT_TIMER duration.

        ``ceiling`` is the Theorem-1 ``SAT_TIME`` bound for the *current*
        membership (it changes across cut-outs and joins, so the caller
        passes it per arm rather than the estimator caching a stale one).
        ``allowance`` is an additive pause budget the next rotation may
        legitimately contain even though no past sample did — the caller
        passes ``T_rap`` when the RAP is enabled, since any rotation can
        absorb one join window.  Before the first sample the estimator
        knows nothing and returns the ceiling — exactly the paper's
        fixed timer.

        Unlike TCP, rotation times have a *legitimate* load-dependent
        dynamic range (an idle rotation is ``S``; a saturated one
        approaches the bound), so the deviation term is floored at
        ``SRTT`` itself: a long-converged idle estimator keeps at least
        ``SAFETY * 2 * SRTT`` of headroom and a sudden traffic burst
        stretching the next rotation severalfold is not declared a
        failure.  A spurious timeout here costs an innocent cut-out —
        far worse than TCP's spurious retransmit — hence the rails.
        """
        if self.srtt is None:
            return ceiling
        deviation = max(self.G, self.K * self.rttvar, self.srtt)
        raw = self.SAFETY * (self.srtt + deviation) * self.backoff + allowance
        # floor: never below a rotation that demonstrably happened
        return min(ceiling, max(raw, self.max_sample + self.G))
