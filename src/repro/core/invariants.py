"""Runtime invariant checking for WRT-Ring.

A :class:`RingInvariantChecker` hooks into a network's tick loop and
verifies, every slot, the structural invariants the Sec. 2.2 algorithms and
the Sec. 2.6 proofs rest on:

* **quota discipline** — ``RT_PCK <= l``, ``NRT_PCK <= k``,
  ``AS_PCK <= k1``, ``BE_PCK <= k2`` and ``AS_PCK + BE_PCK == NRT_PCK``
  at every station at all times;
* **satisfaction consistency** — a station holding the SAT past a tick is
  not satisfied (modulo the RAP pause), and `satisfied` agrees with its
  definition (``RT_PCK == l`` or empty RT queue);
* **single control signal** — the SAT is in exactly one place (held,
  in flight, or deliberately lost);
* **packet conservation** — every packet ever enqueued is in exactly one
  of: a class queue, a transit buffer, the air (one-slot flight), delivered,
  orphaned or lost.  Nothing vanishes, nothing duplicates;
* **membership coherence** — ``order``/position map/alive flags agree.

The checker is used by the fuzz/soak tests and can be attached in any
simulation at ~20% overhead.
"""

from __future__ import annotations

from typing import List

from repro.core.packet import ServiceClass
from repro.events.types import RingTick

__all__ = ["InvariantViolation", "RingInvariantChecker"]


class InvariantViolation(AssertionError):
    """An invariant failed; message carries the offending state."""


class RingInvariantChecker:
    """Attach with ``checker.attach(net.events)``: the checker subscribes to
    the per-tick :class:`~repro.events.types.RingTick` event, which fires
    after the tick hooks (so traffic injected this tick is already
    enqueued) and before the dataplane moves anything.

    ``strict`` raises on first violation; otherwise violations accumulate
    in :attr:`violations` for post-mortem inspection.
    """

    def __init__(self, net, strict: bool = True):
        self.net = net
        self.strict = strict
        self.violations: List[str] = []
        self.checks_run = 0
        self._enqueued_baseline = self._total_enqueued()

    def attach(self, bus) -> "RingInvariantChecker":
        bus.subscribe(RingTick, self._on_tick_event)
        return self

    def _on_tick_event(self, ev) -> None:
        self.on_tick(ev.t)

    # ------------------------------------------------------------------
    def _fail(self, message: str) -> None:
        self.violations.append(message)
        if self.strict:
            raise InvariantViolation(message)

    def _total_enqueued(self) -> int:
        return sum(sum(st.enqueued.values())
                   for st in self.net.stations.values())

    # ------------------------------------------------------------------
    def on_tick(self, t: float) -> None:
        self.checks_run += 1
        self._check_quota_discipline(t)
        self._check_sat_singleton(t)
        self._check_membership(t)
        self._check_conservation(t)

    # ------------------------------------------------------------------
    def _check_quota_discipline(self, t: float) -> None:
        for sid in self.net.order:
            st = self.net.stations[sid]
            q = st.quota
            if st.rt_pck > q.l:
                self._fail(f"t={t}: station {sid} RT_PCK {st.rt_pck} > l {q.l}")
            if st.nrt_pck > q.k:
                self._fail(f"t={t}: station {sid} NRT_PCK {st.nrt_pck} > k {q.k}")
            if st.as_pck > q.k1:
                self._fail(f"t={t}: station {sid} AS_PCK {st.as_pck} > k1 {q.k1}")
            if st.be_pck > q.k2:
                self._fail(f"t={t}: station {sid} BE_PCK {st.be_pck} > k2 {q.k2}")
            if st.as_pck + st.be_pck != st.nrt_pck:
                self._fail(f"t={t}: station {sid} AS+BE "
                           f"{st.as_pck}+{st.be_pck} != NRT {st.nrt_pck}")
            # the satisfied predicate must match its Sec. 2.2 definition
            # (a leaving station relinquishes its claim on the SAT)
            expected = st.leaving or st.rt_pck >= q.l or not st.rt_queue
            if st.satisfied != expected:
                self._fail(f"t={t}: station {sid} satisfied={st.satisfied} "
                           f"disagrees with definition")

    def _check_sat_singleton(self, t: float) -> None:
        sat = self.net.sat
        held = sat.at_station is not None
        flying = sat.in_flight_to is not None
        lost = self.net._sat_lost
        rebuilding = self.net.rebuilding_until is not None
        if held and flying:
            self._fail(f"t={t}: SAT both held at {sat.at_station} and "
                       f"in flight to {sat.in_flight_to}")
        if not (held or flying) and not lost and not rebuilding \
                and not self.net.network_down:
            self._fail(f"t={t}: SAT vanished without being marked lost")
        if held and sat.at_station not in self.net._pos \
                and not self.net.network_down:
            self._fail(f"t={t}: SAT held by non-member {sat.at_station}")

    def _check_membership(self, t: float) -> None:
        net = self.net
        if sorted(net._pos.values()) != list(range(len(net.order))):
            self._fail(f"t={t}: position map inconsistent with order")
        for idx, sid in enumerate(net.order):
            if net._pos.get(sid) != idx:
                self._fail(f"t={t}: station {sid} order/pos mismatch")
        if len(set(net.order)) != len(net.order):
            self._fail(f"t={t}: duplicate station in ring order")

    def _check_conservation(self, t: float) -> None:
        net = self.net
        enqueued = self._total_enqueued() - self._enqueued_baseline
        # ``enqueued`` is a lifetime counter, so it sums over every station
        # that ever existed; live buffers count ring *members* only — a
        # packet sitting in a removed station's queue has left the network
        # and must have been accounted as lost, not silently parked
        members = [net.stations[sid] for sid in net.order]
        in_queues = sum(st.queue_length() for st in members)
        in_transit = sum(len(st.transit) for st in members)
        delivered = net.metrics.total_delivered
        gone = net.metrics.lost + net.metrics.orphaned
        accounted = in_queues + in_transit + delivered + gone
        # packets spend exactly one slot in the air between phase B of one
        # tick and arrival bookkeeping of the same tick, so at hook time
        # (start of tick) everything is in a buffer or terminal state
        if accounted != enqueued:
            self._fail(
                f"t={t}: packet conservation broken: enqueued={enqueued} "
                f"!= queued {in_queues} + transit {in_transit} + "
                f"delivered {delivered} + lost/orphaned {gone}")

    # ------------------------------------------------------------------
    @property
    def clean(self) -> bool:
        return not self.violations
