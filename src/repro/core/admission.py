"""Admission control driven by the Sec. 2.6 bounds.

The paper's join procedure says "the station specifies its QoS traffic
requirements and the network checks if the requirements can be satisfied".
The check this module implements is exactly the worst-case machinery of
Sec. 2.6:

* the post-join Theorem-1 bound must stay within the network-wide delay
  budget (``config.max_network_delay``), and
* for every station with a registered QoS requirement — a deadline ``D_i``
  on the access delay of a real-time packet arriving behind at most ``x_i``
  queued packets — the Theorem-3 bound evaluated on the *post-join* ring
  must still be ≤ ``D_i`` (including the requirement the joiner itself
  declares in its ``JOIN_REQ``).

Rejecting a join request therefore never degrades the service of admitted
stations: guarantees are preserved by construction (E02/E03's property).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.bounds import access_delay_bound, sat_rotation_bound
from repro.core.quotas import QuotaConfig

__all__ = ["AdmissionController", "AdmissionDecision", "QoSRequirement"]


@dataclass(frozen=True)
class QoSRequirement:
    """Per-station real-time requirement: access delay <= deadline for a
    packet arriving behind at most ``max_backlog`` queued RT packets."""

    deadline: float
    max_backlog: int = 0

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline!r}")
        if self.max_backlog < 0:
            raise ValueError(f"max_backlog must be >= 0, got {self.max_backlog!r}")


@dataclass(frozen=True)
class AdmissionDecision:
    accepted: bool
    reason: str
    projected_sat_bound: float
    violated_station: Optional[int] = None


class AdmissionController:
    """Evaluates join requests against the registered guarantees."""

    def __init__(self, net) -> None:
        self.net = net
        self.requirements: Dict[int, QoSRequirement] = {}
        self.decisions: List[AdmissionDecision] = []

    # ------------------------------------------------------------------
    def register_requirement(self, sid: int, deadline: float,
                             max_backlog: int = 0) -> None:
        """Declare that station ``sid`` needs the Theorem-3 guarantee."""
        self.requirements[sid] = QoSRequirement(deadline, max_backlog)

    def clear_requirement(self, sid: int) -> None:
        self.requirements.pop(sid, None)

    # ------------------------------------------------------------------
    def _projected_ring(self, new_quota: QuotaConfig) -> Tuple[float, float, list]:
        net = self.net
        S_new = (net.n + 1) * net.config.sat_hop_slots
        t_rap = net.config.effective_t_rap()
        quotas = [net.stations[sid].quota for sid in net.order] + [new_quota]
        return S_new, t_rap, quotas

    def evaluate(self, request) -> AdmissionDecision:
        """Admission verdict for a ``JoinRequest``-shaped object (needs
        ``.quota``, ``.deadline_req``, ``.max_backlog``)."""
        net = self.net
        S_new, t_rap, quotas = self._projected_ring(request.quota)
        projected = sat_rotation_bound(S_new, t_rap, quotas)

        budget = net.config.max_network_delay
        if budget is not None and projected > budget:
            decision = AdmissionDecision(
                False, f"projected SAT_TIME {projected:.0f} exceeds network "
                       f"budget {budget:.0f}", projected)
            self.decisions.append(decision)
            return decision

        # existing stations' Theorem-3 guarantees on the post-join ring
        for sid, req in self.requirements.items():
            if sid not in net._pos:
                continue
            l_i = net.stations[sid].quota.l
            if l_i == 0:
                continue
            worst = access_delay_bound(req.max_backlog, l_i, S_new, t_rap, quotas)
            if worst > req.deadline:
                decision = AdmissionDecision(
                    False, f"station {sid} guarantee {req.deadline:.0f} would "
                           f"be violated (worst {worst:.0f})",
                    projected, violated_station=sid)
                self.decisions.append(decision)
                return decision

        # the joiner's own requirement
        if request.deadline_req is not None:
            if request.quota.l == 0:
                decision = AdmissionDecision(
                    False, "deadline requested but l=0 (no guaranteed quota)",
                    projected)
                self.decisions.append(decision)
                return decision
            worst = access_delay_bound(request.max_backlog, request.quota.l,
                                       S_new, t_rap, quotas)
            if worst > request.deadline_req:
                decision = AdmissionDecision(
                    False, f"requested deadline {request.deadline_req:.0f} "
                           f"unachievable (worst {worst:.0f})", projected)
                self.decisions.append(decision)
                return decision

        decision = AdmissionDecision(True, "admitted", projected)
        self.decisions.append(decision)
        return decision

    # ------------------------------------------------------------------
    def max_admissible_quota(self) -> int:
        """Largest ``l + k`` a joiner could request and still be admitted
        under the network budget alone (advertised in ``NEXT_FREE``)."""
        net = self.net
        budget = net.config.max_network_delay
        if budget is None:
            return 10 ** 6  # effectively unlimited
        S_new = (net.n + 1) * net.config.sat_hop_slots
        t_rap = net.config.effective_t_rap()
        current = sum(net.stations[sid].quota.total for sid in net.order)
        headroom = budget - S_new - t_rap - 2.0 * current
        return max(int(headroom // 2.0), 0)
