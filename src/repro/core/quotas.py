"""Per-station transmission quotas (the ``l`` and ``k`` local parameters).

During each SAT round a station may transmit at most ``l`` real-time packets
and ``k`` non-real-time packets (Sec. 2.2).  Sec. 2.3 splits ``k = k1 + k2``
to carve an Assured class (priority share ``k1``) and a best-effort class
(``k2``) out of the non-guaranteed quota; this requires no protocol change,
so :class:`QuotaConfig` stores the split and exposes ``k`` as their sum.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["QuotaConfig"]


@dataclass(frozen=True)
class QuotaConfig:
    """Quotas for one station.

    ``l``  — guaranteed real-time packets per SAT round (Premium).
    ``k1`` — Assured packets per SAT round (part of the ``k`` quota).
    ``k2`` — best-effort packets per SAT round (rest of the ``k`` quota).
    """

    l: int
    k1: int
    k2: int

    def __post_init__(self) -> None:
        for name in ("l", "k1", "k2"):
            v = getattr(self, name)
            if not isinstance(v, int):
                raise TypeError(f"quota {name} must be int, got {v!r}")
            if v < 0:
                raise ValueError(f"quota {name} must be >= 0, got {v}")
        if self.l == 0 and self.k == 0:
            raise ValueError("a station needs l + k >= 1 to ever transmit")

    @property
    def k(self) -> int:
        """The total non-real-time quota (``k1 + k2``), as in Sec. 2.2."""
        return self.k1 + self.k2

    @property
    def total(self) -> int:
        """``l + k`` — the per-round authorization total in the bounds."""
        return self.l + self.k

    @classmethod
    def two_class(cls, l: int, k: int) -> "QuotaConfig":
        """The base Sec. 2.2 configuration: RT + best-effort only."""
        return cls(l=l, k1=0, k2=k)

    @classmethod
    def three_class(cls, l: int, k1: int, k2: int) -> "QuotaConfig":
        """The Sec. 2.3 Diffserv configuration: Premium/Assured/best-effort."""
        return cls(l=l, k1=k1, k2=k2)

    def with_l(self, l: int) -> "QuotaConfig":
        return QuotaConfig(l=l, k1=self.k1, k2=self.k2)

    def send_schedule(self, rt_pck: int, nrt_pck: int, as_pck: int,
                      be_pck: int, rt_depth: int, as_depth: int,
                      be_depth: int) -> "tuple[int, int, int]":
        """Remaining consecutive sends of the current SAT round.

        Given the round counters and class-queue depths, an unblocked
        backlogged station transmits ``r`` real-time packets, then ``a``
        Assured, then ``b`` best-effort — in that strict order, one per
        slot, with ``a`` and ``b`` drawing from the shared residual ``k``
        authorization under the ``k1``/``k2`` caps.  This closed form is
        the per-station decision rule the batched kernel's saturated walk
        evaluates instead of calling ``select_packet`` slot by slot (and
        what :meth:`repro.core.columns.ColumnState.segment_budgets`
        vectorizes across the ring).
        """
        r = min(max(self.l - rt_pck, 0), rt_depth)
        nb = max(self.k - nrt_pck, 0)
        a = min(max(self.k1 - as_pck, 0), nb, as_depth)
        b = min(max(self.k2 - be_pck, 0), nb - a, be_depth)
        return r, a, b

    def __str__(self) -> str:
        return f"l={self.l},k={self.k}(k1={self.k1},k2={self.k2})"
