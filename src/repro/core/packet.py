"""Packets and service classes.

One packet occupies exactly one slot (the paper's normalization).  Service
classes map the paper's Sec. 2.3 Diffserv classes:

- ``PREMIUM``  — real-time traffic, consumes the guaranteed ``l`` quota;
- ``ASSURED``  — non-real-time with priority, consumes the ``k1`` share of ``k``;
- ``BEST_EFFORT`` — lowest priority, consumes the ``k2`` share of ``k``.

The base protocol of Sec. 2.2 uses two classes only; it corresponds to
``k1 = 0`` (everything non-real-time is BEST_EFFORT).
"""

from __future__ import annotations

import itertools
from enum import IntEnum
from typing import Optional

__all__ = ["ServiceClass", "Packet"]


class ServiceClass(IntEnum):
    """Service class; lower value = higher priority."""

    PREMIUM = 0
    ASSURED = 1
    BEST_EFFORT = 2

    @property
    def is_real_time(self) -> bool:
        return self is ServiceClass.PREMIUM

    @property
    def short(self) -> str:
        return {ServiceClass.PREMIUM: "RT",
                ServiceClass.ASSURED: "AS",
                ServiceClass.BEST_EFFORT: "BE"}[self]


_packet_ids = itertools.count()


class Packet:
    """One slot-sized packet with its lifecycle timestamps.

    Timestamps (all in slot units; ``None`` until the event happens):

    - ``created``    — generation time at the application,
    - ``t_enqueue``  — entered the station's class queue,
    - ``t_send``     — first put on the medium (access delay ends here),
    - ``t_deliver``  — stripped by the destination.

    ``deadline`` is absolute (slot time by which delivery is required), or
    ``None`` for traffic without timing constraints.
    """

    __slots__ = ("pid", "src", "dst", "service", "created", "deadline",
                 "t_enqueue", "t_send", "t_deliver", "flow_id", "dropped",
                 "hops")

    def __init__(self, src: int, dst: int, service: ServiceClass,
                 created: float, deadline: Optional[float] = None,
                 flow_id: Optional[int] = None):
        if src == dst:
            raise ValueError(f"packet src == dst == {src}")
        if deadline is not None and deadline < created:
            raise ValueError(f"deadline {deadline} before creation {created}")
        self.pid: int = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.service = service
        self.created = created
        self.deadline = deadline
        self.flow_id = flow_id
        self.t_enqueue: Optional[float] = None
        self.t_send: Optional[float] = None
        self.t_deliver: Optional[float] = None
        self.dropped: bool = False
        #: ring hops travelled; the dataplane's orphan TTL (a packet whose
        #: source and destination both left would otherwise circle forever)
        self.hops: int = 0

    # ------------------------------------------------------------------
    @property
    def access_delay(self) -> Optional[float]:
        """Queueing time at the source MAC: enqueue -> first transmission."""
        if self.t_send is None or self.t_enqueue is None:
            return None
        return self.t_send - self.t_enqueue

    @property
    def end_to_end_delay(self) -> Optional[float]:
        if self.t_deliver is None:
            return None
        return self.t_deliver - self.created

    @property
    def delivered(self) -> bool:
        return self.t_deliver is not None

    @property
    def missed_deadline(self) -> bool:
        """True iff the packet has a deadline and verifiably missed it."""
        if self.deadline is None:
            return False
        if self.t_deliver is not None:
            return self.t_deliver > self.deadline
        return self.dropped

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Packet #{self.pid} {self.service.short} {self.src}->{self.dst} "
                f"created={self.created}>")
