"""Top-level WRT-Ring configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.quotas import QuotaConfig

__all__ = ["WRTRingConfig"]


@dataclass
class WRTRingConfig:
    """Protocol parameters (all times in slots).

    ``t_ear`` / ``t_update``
        The two phases of the Random Access Period (Sec. 2.4.1);
        ``T_rap = t_ear + t_update``.
    ``s_round``
        SAT rounds a station must wait after serving as ingress before it may
        enter the RAP again.  The paper requires ``s_round >= N``; the network
        enforces ``max(s_round, N)`` at runtime as stations come and go.
    ``rap_enabled``
        When False the network never opens a RAP (no joins possible) and the
        bounds use ``T_rap = 0`` — the configuration used for pure
        bound-validation runs.
    ``sat_hop_slots``
        ``T_proc + T_prop`` for the SAT control signal, per ring hop.  The
        data conveyor always advances one hop per slot (that *is* the slot);
        the Sec. 3.3 sweeps vary only the control-signal cost.
    ``validate_phy``
        Route every data hop through the CDMA channel model and assert it is
        delivered collision-free (slow; used by tests and E01).
    ``max_network_delay``
        Admission budget: a join is accepted only if the post-join Theorem-1
        bound stays within this many slots (None = no budget, accept all).
    ``enforce_radio_links``
        When True (and a connectivity graph is attached), every data hop and
        SAT hop physically requires the two stations to be in radio range at
        that moment: a mobility-broken ring link destroys what crosses it,
        and the SAT-loss machinery takes over.  Off by default — the paper's
        bound analysis assumes an intact ring; the mobility experiments turn
        it on.
    """

    quotas: Dict[int, QuotaConfig] = field(default_factory=dict)
    t_ear: int = 8
    t_update: int = 4
    s_round: int = 0           # 0 -> "use N" at runtime
    rap_enabled: bool = True
    sat_hop_slots: int = 1
    validate_phy: bool = False
    max_network_delay: Optional[float] = None
    enforce_radio_links: bool = False
    #: how many consecutive ring re-formation attempts may fail before the
    #: network is declared down.  1 = the static-topology behaviour (if no
    #: ring exists now, none ever will); mobility scenarios raise it so the
    #: network re-forms when stations wander back into range.
    rebuild_retry_limit: int = 1
    #: the buffer-insertion discipline WRT-Ring inherits from RT-Ring /
    #: MetaRing: traffic in transit is forwarded before the station's own
    #: insertions.  False inverts it (own packets first) — an ablation knob
    #: (experiment E23) showing the discipline is what keeps per-hop
    #: forwarding progress (and therefore delivery) bounded.
    transit_priority: bool = True

    def __post_init__(self) -> None:
        if self.t_ear < 2:
            raise ValueError(f"t_ear must be >= 2 slots (announce + reply), got {self.t_ear}")
        if self.t_update < 1:
            raise ValueError(f"t_update must be >= 1 slot, got {self.t_update}")
        if self.s_round < 0:
            raise ValueError(f"s_round must be >= 0, got {self.s_round}")
        if self.sat_hop_slots < 1:
            raise ValueError(f"sat_hop_slots must be >= 1, got {self.sat_hop_slots}")
        if self.rebuild_retry_limit < 1:
            raise ValueError(
                f"rebuild_retry_limit must be >= 1, got {self.rebuild_retry_limit}")
        for sid, q in self.quotas.items():
            if not isinstance(q, QuotaConfig):
                raise TypeError(f"quotas[{sid}] must be QuotaConfig, got {q!r}")

    @property
    def t_rap(self) -> int:
        """``T_rap = T_ear + T_update`` (Sec. 2.4.1)."""
        return self.t_ear + self.t_update

    def effective_t_rap(self) -> int:
        """The T_rap that enters the bounds: 0 when the RAP is disabled."""
        return self.t_rap if self.rap_enabled else 0

    @classmethod
    def homogeneous(cls, station_ids, l: int, k: int, **kwargs) -> "WRTRingConfig":
        """Identical two-class quotas for every station (Propositions 1-3)."""
        quotas = {sid: QuotaConfig.two_class(l, k) for sid in station_ids}
        return cls(quotas=quotas, **kwargs)
