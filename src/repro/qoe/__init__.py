"""QoE subsystem: voice/multimedia sessions and perceptual quality scoring.

``repro.qoe.sessions`` models call lifecycles (arrival, admission, holding,
teardown, mid-call cuts) over a WRT-Ring; ``repro.qoe.score`` folds
per-packet outcomes into E-model R-factor/MOS scores; ``repro.qoe.capacity``
(imported explicitly — it depends on :mod:`repro.scenarios`, which in turn
imports this package) binary-searches the voice-call capacity of WRT-Ring
vs the TPT and CSMA baselines.
"""

from repro.qoe.score import (DEFAULT_MOS_FLOOR, FlowScore, PerceptualScorer,
                             burst_ratio, e_model_r, loss_runs, mos_from_r,
                             score_outcomes)
from repro.qoe.sessions import (CallsSpec, SessionManager, VideoSession,
                                VoiceCall)

__all__ = ["CallsSpec", "SessionManager", "VoiceCall", "VideoSession",
           "PerceptualScorer", "FlowScore", "DEFAULT_MOS_FLOOR",
           "loss_runs", "burst_ratio", "e_model_r", "mos_from_r",
           "score_outcomes"]
