"""Perceptual quality scoring: packet outcomes -> E-model R-factor -> MOS.

The paper motivates WRT-Ring with QoS for *applications* (voice,
multimedia), but deadline-miss ratios are a network-side abstraction.  This
module closes the gap with the standard telephony pipeline (ITU-T G.107
E-model, simplified to the terms our simulation can feed):

1. **Per-packet outcomes.**  A :class:`PerceptualScorer` subscribes to the
   delivery/drop events on a network's bus and classifies every packet of
   its registered flows: delivered on time, delivered *late* (past its
   deadline — a real-time receiver has already played silence, so late
   counts as lost), or destroyed.  Packets still unresolved when the flow
   is finalized count as lost once their deadline has passed; unresolved
   packets whose deadline has *not* yet passed (in flight when the
   measurement window closed) are censored — excluded from scoring — so a
   finite horizon doesn't punish the tail of an otherwise clean flow.

2. **Loss-burst run lengths.**  Outcomes are ordered by packet creation
   and folded into loss-run statistics; the E-model's burst ratio
   ``BurstR = mean_burst_len * (1 - p)`` (clamped to >= 1) captures how
   much worse clustered loss sounds than independent loss at the same rate.

3. **R-factor and MOS.**  ``R = 93.2 - Id(d) - Ie_eff`` with the delay
   impairment ``Id(d) = 0.024 d + 0.11 (d - 177.3) H(d - 177.3)`` (d = mean
   one-way delay in ms of the on-time packets) and the G.711 packet-loss
   impairment ``Ie_eff = (95 - Ie) * Ppl / (Ppl / BurstR + Bpl)`` (Ie = 0,
   Bpl = 4.3, Ppl in percent).  R maps to MOS through the usual cubic,
   clamped to [1.0, 4.5].

Determinism contract: scores are computed from event payloads and packet
lifecycle fields only — never from process-global identifiers (``pid`` and
``flow_id`` differ between two runs in the same process), so summaries stay
byte-identical across the scalar and batched kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.events.types import PacketLost, PacketOrphaned, SlotDeliver

__all__ = ["FlowScore", "PerceptualScorer", "loss_runs", "burst_ratio",
           "e_model_r", "mos_from_r", "score_outcomes",
           "DEFAULT_MOS_FLOOR", "G711_BPL"]

#: "acceptable" telephony threshold: MOS 3.5 ~ R 70 (G.107 Annex B)
DEFAULT_MOS_FLOOR = 3.5
#: G.711 packet-loss robustness factor (ITU-T G.113 Appendix I)
G711_BPL = 4.3


# ----------------------------------------------------------------------
# the E-model pipeline (pure functions, unit-testable in isolation)
# ----------------------------------------------------------------------
def loss_runs(outcomes: List[bool]) -> List[int]:
    """Lengths of the consecutive-loss runs in an outcome sequence
    (``True`` = delivered on time, ``False`` = lost/late)."""
    runs: List[int] = []
    current = 0
    for ok in outcomes:
        if ok:
            if current:
                runs.append(current)
            current = 0
        else:
            current += 1
    if current:
        runs.append(current)
    return runs


def burst_ratio(outcomes: List[bool]) -> float:
    """E-model BurstR: mean loss-run length relative to the expected run
    length under independent loss at the same rate (``1 / (1 - p)``), i.e.
    ``mean_run * (1 - p)``.  1.0 for independent (or no) loss; > 1 when
    losses cluster.  Clamped to >= 1 so sparse samples can't *reward*
    loss."""
    if not outcomes:
        return 1.0
    runs = loss_runs(outcomes)
    if not runs:
        return 1.0
    p = sum(runs) / len(outcomes)
    if p >= 1.0:
        return float(len(outcomes))
    mean_run = sum(runs) / len(runs)
    return max(1.0, mean_run * (1.0 - p))


def e_model_r(loss_pct: float, burst_r: float = 1.0, delay_ms: float = 0.0,
              ie: float = 0.0, bpl: float = G711_BPL) -> float:
    """Simplified G.107 rating: ``R = 93.2 - Id(delay) - Ie_eff(loss)``.

    ``loss_pct`` is the effective packet loss in **percent** (late packets
    already folded in by the caller); ``delay_ms`` the mean one-way delay
    in milliseconds.
    """
    if loss_pct < 0 or burst_r <= 0:
        raise ValueError(f"invalid loss {loss_pct!r} / burst {burst_r!r}")
    id_delay = 0.024 * delay_ms
    if delay_ms > 177.3:
        id_delay += 0.11 * (delay_ms - 177.3)
    ie_eff = ie + (95.0 - ie) * loss_pct / (loss_pct / burst_r + bpl)
    return 93.2 - id_delay - ie_eff


def mos_from_r(r: float) -> float:
    """ITU-T G.107 Annex B mapping, clamped to the MOS scale [1.0, 4.5]."""
    if r <= 0:
        return 1.0
    if r >= 100.0:
        return 4.5
    mos = 1.0 + 0.035 * r + 7e-6 * r * (r - 60.0) * (100.0 - r)
    return max(1.0, min(4.5, mos))


def score_outcomes(outcomes: List[bool], delay_ms: float = 0.0,
                   ie: float = 0.0, bpl: float = G711_BPL
                   ) -> Tuple[float, float, float]:
    """(loss_pct, R, MOS) for one outcome sequence + mean on-time delay."""
    if outcomes:
        loss_pct = 100.0 * outcomes.count(False) / len(outcomes)
    else:
        loss_pct = 0.0
    r = e_model_r(loss_pct, burst_ratio(outcomes), delay_ms, ie=ie, bpl=bpl)
    return loss_pct, r, mos_from_r(r)


# ----------------------------------------------------------------------
@dataclass
class FlowScore:
    """Perceptual verdict for one unidirectional flow."""

    sent: int               # scored packets (censored tail excluded)
    delivered: int          # on time
    late: int               # delivered past the deadline (counted as lost)
    lost: int               # destroyed, or unresolved past the deadline
    censored: int           # in flight at finalize, deadline still open
    loss_pct: float         # effective loss (late + lost), percent
    burst_r: float
    mean_delay_slots: float  # mean e2e delay of the on-time packets
    r_factor: float
    mos: float

    def to_dict(self) -> Dict[str, float]:
        return {"sent": self.sent, "delivered": self.delivered,
                "late": self.late, "lost": self.lost,
                "censored": self.censored,
                "loss_pct": round(self.loss_pct, 4),
                "burst_r": round(self.burst_r, 4),
                "mean_delay_slots": round(self.mean_delay_slots, 4),
                "r_factor": round(self.r_factor, 4),
                "mos": round(self.mos, 4)}


class _FlowState:
    """Streaming per-flow outcome accumulator."""

    __slots__ = ("outcomes", "delay_sum", "ontime", "resolved")

    def __init__(self) -> None:
        #: (creation_time, pid) -> delivered-on-time; pids order packets of
        #: one flow by creation (each source emits sequentially) but never
        #: leave this process-local structure
        self.outcomes: Dict[Tuple[float, int], bool] = {}
        self.delay_sum = 0.0
        self.ontime = 0
        self.resolved = 0


class PerceptualScorer:
    """Folds a network's delivery/drop events into per-flow MOS scores.

    Usage: ``scorer.attach(net.events)``, register each flow of interest
    with :meth:`register_flow`, run, then :meth:`finalize_flow` with the
    flow's generated packets (unresolved ones count as lost).  Works
    against any network exposing the shared event vocabulary — WRT-Ring,
    TPT and CSMA all emit ``SlotDeliver``/``PacketLost``/``PacketOrphaned``
    on their buses.

    ``slot_ms`` converts slot delays to milliseconds for the E-model's
    ``Id`` term (default 1 ms/slot: a 20-slot voice period = G.711's 20 ms
    packetization, a 150-slot deadline = the ITU one-way delay target).
    """

    def __init__(self, slot_ms: float = 1.0, ie: float = 0.0,
                 bpl: float = G711_BPL):
        if slot_ms <= 0:
            raise ValueError(f"slot_ms must be positive, got {slot_ms!r}")
        self.slot_ms = slot_ms
        self.ie = ie
        self.bpl = bpl
        self._flows: Dict[int, _FlowState] = {}
        self._scores: Dict[int, FlowScore] = {}

    # ------------------------------------------------------------------
    def attach(self, bus) -> "PerceptualScorer":
        bus.subscribe(SlotDeliver, self._on_deliver)
        bus.subscribe(PacketLost, self._on_lost)
        bus.subscribe(PacketOrphaned, self._on_orphaned)
        return self

    def register_flow(self, flow_id: int) -> None:
        """Start scoring packets stamped with ``flow_id``."""
        self._flows.setdefault(flow_id, _FlowState())

    # ------------------------------------------------------------------
    def _state_for(self, pkt) -> Optional[_FlowState]:
        if pkt.flow_id is None:
            return None
        return self._flows.get(pkt.flow_id)

    def _on_deliver(self, ev) -> None:
        state = self._state_for(ev.packet)
        if state is None:
            return
        pkt = ev.packet
        ok = pkt.deadline is None or ev.t <= pkt.deadline
        state.outcomes[(pkt.created, pkt.pid)] = ok
        state.resolved += 1
        if ok:
            state.ontime += 1
            state.delay_sum += ev.t - pkt.created

    def _record_loss(self, pkt) -> None:
        state = self._state_for(pkt)
        if state is None:
            return
        state.outcomes[(pkt.created, pkt.pid)] = False
        state.resolved += 1

    def _on_lost(self, ev) -> None:
        self._record_loss(ev.packet)

    def _on_orphaned(self, ev) -> None:
        self._record_loss(ev.packet)

    # ------------------------------------------------------------------
    def finalize_flow(self, flow_id: int, generated,
                      now: Optional[float] = None) -> FlowScore:
        """Close the books on one flow.  ``generated`` is the flow's packet
        list in creation order (a generator's ``.packets``).  A packet
        without a recorded outcome is *lost* if its deadline has already
        passed (``now`` is the clock at finalize), and *censored* —
        excluded from the score — while its deadline is still open: the
        receiver hasn't given up on it, the measurement window just ended
        first.  With ``now=None`` (or no deadline) every unresolved packet
        is censored.  Idempotent."""
        if flow_id in self._scores:
            return self._scores[flow_id]
        state = self._flows.get(flow_id)
        if state is None:
            raise KeyError(f"flow {flow_id} was never registered")
        outcomes: List[bool] = []
        delivered = late = lost = censored = 0
        for pkt in generated:
            ok = state.outcomes.get((pkt.created, pkt.pid))
            if ok:
                delivered += 1
                outcomes.append(True)
            elif ok is None:
                if (now is not None and pkt.deadline is not None
                        and pkt.deadline < now):
                    lost += 1
                    outcomes.append(False)
                else:
                    censored += 1
            else:
                outcomes.append(False)
                if pkt.t_deliver is not None:
                    late += 1
                else:
                    lost += 1
        mean_delay = (state.delay_sum / state.ontime) if state.ontime else 0.0
        loss_pct, r, mos = score_outcomes(
            outcomes, delay_ms=mean_delay * self.slot_ms,
            ie=self.ie, bpl=self.bpl)
        score = FlowScore(sent=len(outcomes), delivered=delivered, late=late,
                          lost=lost, censored=censored, loss_pct=loss_pct,
                          burst_r=burst_ratio(outcomes),
                          mean_delay_slots=mean_delay, r_factor=r, mos=mos)
        self._scores[flow_id] = score
        return score
