"""Voice-call capacity search: WRT-Ring vs TPT vs CSMA, in MOS terms.

The paper compares MACs by aggregate throughput and delay bounds; end
users experience *calls that sound acceptable or don't*.  This driver
restates the comparison in those terms: the **capacity** of a protocol is
the largest number of concurrent voice calls for which at least
``target`` (default 95%) of the offered calls score at or above the MOS
floor (default 3.5).

The search doubles the call count until the criterion fails, then binary
searches the boundary; every probe is one deterministic seeded run, and
all probes are reported so a capacity claim is auditable from its output.

WRT-Ring runs through the full :mod:`repro.scenarios` stack (admission
disabled — capacity is a *measurement*, CAC would clip the overload
probes).  TPT and CSMA are driven directly with the same session
parameters and the same scorer attached to their event buses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.qoe.score import PerceptualScorer
from repro.qoe.sessions import CallsSpec
from repro.scenarios import Scenario, TrafficMix, run_scenario
from repro.sim.rng import RandomStreams
from repro.traffic.flows import FlowSpec
from repro.traffic.generators import OnOffSource

__all__ = ["CapacityResult", "CAPACITY_SPEC", "measure_fraction",
           "voice_capacity", "capacity_table", "PROTOCOLS"]

PROTOCOLS = ("wrt", "tpt", "csma")

#: session parameters pinned for capacity probes: calls ramp in quickly
#: (one every ~2 slots) and hold for effectively the whole run, so the
#: probe measures steady concurrent load, not churn
CAPACITY_SPEC = CallsSpec(count=1, arrival_rate=0.5, mean_holding=1e6,
                          admission=False)


@dataclass
class CapacityResult:
    """Outcome of one protocol's capacity search."""

    protocol: str
    capacity: int                 # max calls meeting the criterion (0 = none)
    target: float
    mos_floor: float
    stations: int
    horizon: float
    probes: Dict[int, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"protocol": self.protocol, "capacity": self.capacity,
                "target": self.target, "mos_floor": self.mos_floor,
                "stations": self.stations, "horizon": self.horizon,
                "probes": {str(k): round(v, 4)
                           for k, v in sorted(self.probes.items())}}


# ----------------------------------------------------------------------
# per-protocol probes: calls -> fraction of calls at/above the MOS floor
# ----------------------------------------------------------------------
def _measure_wrt(calls: int, stations: int, horizon: float, seed: int,
                 spec: CallsSpec) -> float:
    scenario = Scenario(
        n=stations, l=2, k=1, traffic=TrafficMix(kind="none"),
        calls=replace(spec, count=calls),
        horizon=horizon, seed=seed, kernel="batched")
    result = run_scenario(scenario)
    return result.sessions.fraction_acceptable()


def _build_tpt(engine, stations: int):
    from repro.baselines import TPTConfig, TPTNetwork, choose_ttrt
    from repro.phy.geometry import ring_placement
    from repro.phy.topology import ConnectivityGraph, build_bfs_tree

    graph = ConnectivityGraph(ring_placement(stations, radius=30.0), 120.0)
    children = build_bfs_tree(graph, root=0)
    ttrt = choose_ttrt([3] * stations, 2 * (stations - 1), margin=1.5)
    return TPTNetwork(engine, children, root=0,
                      config=TPTConfig(H={i: 3 for i in range(stations)},
                                       ttrt=ttrt), graph=graph)


def _build_csma(engine, stations: int, seed: int):
    from repro.baselines import CSMAConfig, CSMANetwork
    return CSMANetwork(engine, list(range(stations)), config=CSMAConfig(),
                       rng=random.Random(seed))


def _measure_baseline(protocol: str, calls: int, stations: int,
                      horizon: float, seed: int, spec: CallsSpec) -> float:
    from repro.sim.engine import Engine

    engine = Engine()
    if protocol == "tpt":
        net = _build_tpt(engine, stations)
    elif protocol == "csma":
        net = _build_csma(engine, stations, seed)
    else:  # pragma: no cover - guarded by measure_fraction
        raise ValueError(f"unknown baseline {protocol!r}")

    scorer = PerceptualScorer(slot_ms=spec.slot_ms).attach(net.events)
    streams = RandomStreams(seed)
    pick = streams.stream("capacity.pick")
    arrivals = streams.stream("capacity.arrivals")
    members = list(range(stations))
    call_flows: List[List[Tuple[FlowSpec, OnOffSource]]] = []
    t = 0.0
    for cid in range(calls):
        t += arrivals.expovariate(spec.arrival_rate)
        holding = arrivals.expovariate(1.0 / spec.mean_holding)
        a = pick.choice(members)
        b = pick.choice([m for m in members if m != a])
        directions = []
        for s, d in ((a, b), (b, a)):
            flow = FlowSpec(src=s, dst=d, service=spec.service_class,
                            deadline=spec.deadline)
            source = OnOffSource(
                engine, flow, net.enqueue, spec.peak_rate,
                spec.mean_talkspurt, spec.mean_silence,
                rng=streams.stream(f"capacity.onoff.{cid}.{s}"),
                start=t, stop=t + holding)
            scorer.register_flow(flow.flow_id)
            directions.append((flow, source))
        call_flows.append(directions)

    net.start()
    engine.run(until=horizon)

    good = 0
    for directions in call_flows:
        mos = min(scorer.finalize_flow(flow.flow_id, source.packets,
                                       now=engine.now).mos
                  for flow, source in directions)
        if mos >= spec.mos_floor:
            good += 1
    return good / calls if calls else 1.0


def measure_fraction(protocol: str, calls: int, stations: int = 12,
                     horizon: float = 4000.0, seed: int = 1,
                     spec: CallsSpec = CAPACITY_SPEC) -> float:
    """Fraction of ``calls`` concurrent calls at/above the MOS floor."""
    if protocol == "wrt":
        return _measure_wrt(calls, stations, horizon, seed, spec)
    if protocol in ("tpt", "csma"):
        return _measure_baseline(protocol, calls, stations, horizon, seed,
                                 spec)
    raise ValueError(f"unknown protocol {protocol!r}; known: {PROTOCOLS}")


# ----------------------------------------------------------------------
def _search(probe: Callable[[int], float], target: float,
            max_calls: int) -> Tuple[int, Dict[int, float]]:
    """Largest M in [0, max_calls] with probe(M) >= target (doubling +
    bisection; every probe memoized and reported)."""
    probes: Dict[int, float] = {}

    def measure(m: int) -> float:
        if m not in probes:
            probes[m] = probe(m)
        return probes[m]

    if measure(1) < target:
        return 0, probes
    lo, hi = 1, 2
    while hi <= max_calls and measure(hi) >= target:
        lo, hi = hi, hi * 2
    if lo >= max_calls:
        return max_calls, probes
    hi = min(hi, max_calls + 1)
    # invariant: measure(lo) >= target, measure(hi) < target (or hi off-range)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if measure(mid) >= target:
            lo = mid
        else:
            hi = mid
    return lo, probes


def voice_capacity(protocol: str, stations: int = 12,
                   horizon: float = 4000.0, seed: int = 1,
                   target: float = 0.95, max_calls: int = 64,
                   spec: CallsSpec = CAPACITY_SPEC) -> CapacityResult:
    """Binary-search ``protocol``'s voice-call capacity."""
    if not 0.0 < target <= 1.0:
        raise ValueError(f"target must be in (0, 1], got {target!r}")
    capacity, probes = _search(
        lambda m: measure_fraction(protocol, m, stations, horizon, seed,
                                   spec),
        target, max_calls)
    return CapacityResult(protocol=protocol, capacity=capacity,
                          target=target, mos_floor=spec.mos_floor,
                          stations=stations, horizon=horizon, probes=probes)


def capacity_table(protocols: Sequence[str] = PROTOCOLS,
                   **kwargs) -> Dict[str, CapacityResult]:
    """The E25 comparison: capacity per protocol, same session parameters."""
    return {protocol: voice_capacity(protocol, **kwargs)
            for protocol in protocols}
