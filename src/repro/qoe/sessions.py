"""Voice/multimedia sessions over a WRT-Ring: arrival, admission, teardown.

The paper's target applications are interactive voice and multimedia; this
module models them as *sessions* on top of the traffic generators:

* :class:`VoiceCall` — a bidirectional pair of on/off talkspurt flows
  (:class:`~repro.traffic.generators.OnOffSource`) with G.711-style
  defaults in slot units: one packet per 20 slots at peak (20 ms
  packetization at 1 ms/slot), ~350-slot talkspurts, ~650-slot silences,
  a 150-slot delivery deadline (the ITU one-way target).
* :class:`VideoSession` — a unidirectional GoP-patterned stream
  (:class:`~repro.traffic.generators.VideoSource`).
* :class:`SessionManager` — drives the lifecycle: calls arrive as a
  Poisson process, are admitted or refused by call-level CAC built on the
  Sec. 2.6 bounds (or, with ``join_via_rap``, by the network's own
  RAP/:class:`~repro.core.admission.AdmissionController` machinery while
  the caller joins the ring as a new station), run for an exponential
  holding time, and end — or are *cut* mid-call when an endpoint is
  killed, cut out, or dropped by a ring rebuild.

Member-mode CAC (the default) admits a call only if (a) the Theorem-3
access-delay bound on the current ring still meets the call's deadline and
(b) both endpoints keep their mean admitted voice load within the
guaranteed throughput ``l_i`` per worst-case SAT rotation — so refusals
grow naturally with concurrent calls, mirroring the paper's "the network
checks if the requirements can be satisfied".

Determinism contract: call arrivals/holding times are pre-drawn from named
RNG streams at construction and scheduled as engine events at priority -1
(the fault-schedule priority, before the slot tick), endpoints are drawn
at fire time from the then-current membership, and no tick hook is
installed unless ``join_via_rap`` demands one — so the batched kernel's
fast-forward stays effective through silences and both kernels replay the
same byte-identical event stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.analysis.bounds import access_delay_bound, sat_rotation_bound
from repro.core.packet import ServiceClass
from repro.core.quotas import QuotaConfig
from repro.events.types import (CallCut, CallEnded, CallRefused, CallStarted,
                                RebuildDone, RingDown, StationKilled,
                                StationRemoved)
from repro.qoe.score import DEFAULT_MOS_FLOOR, FlowScore, PerceptualScorer
from repro.traffic.flows import FlowSpec

__all__ = ["CallsSpec", "VoiceCall", "VideoSession", "SessionManager"]

_SERVICES = {"premium": ServiceClass.PREMIUM,
             "assured": ServiceClass.ASSURED,
             "best_effort": ServiceClass.BEST_EFFORT}

#: station ids allocated to RAP-joining callers (clear of the fuzz
#: schedule's 100+ join faults and any plausible ring membership)
RAP_CALLER_BASE = 500


@dataclass(frozen=True)
class CallsSpec:
    """Declarative description of a call-arrival workload."""

    count: int = 10                 # calls offered over the run
    arrival_rate: float = 0.005     # calls/slot (Poisson)
    mean_holding: float = 2000.0    # exponential holding time, slots
    packet_period: float = 20.0     # slots between packets at peak (G.711)
    mean_talkspurt: float = 350.0   # mean ON duration, slots
    mean_silence: float = 650.0     # mean OFF duration, slots
    deadline: float = 150.0         # per-packet delivery deadline, slots
    service: str = "premium"
    mos_floor: float = DEFAULT_MOS_FLOOR
    slot_ms: float = 1.0            # slot -> ms for the E-model delay term
    video_fraction: float = 0.0     # fraction of sessions that are video
    admission: bool = True          # run call-level CAC
    join_via_rap: bool = False      # callers join the ring through RAP

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.arrival_rate <= 0 or self.mean_holding <= 0:
            raise ValueError("arrival_rate and mean_holding must be positive")
        if self.packet_period <= 0:
            raise ValueError(f"packet_period must be positive, "
                             f"got {self.packet_period!r}")
        if self.mean_talkspurt <= 0 or self.mean_silence <= 0:
            raise ValueError("mean_talkspurt and mean_silence must be positive")
        if self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline!r}")
        if self.service not in _SERVICES:
            raise ValueError(f"unknown service {self.service!r}; "
                             f"known: {sorted(_SERVICES)}")
        if not 0.0 <= self.video_fraction <= 1.0:
            raise ValueError(f"video_fraction must be in [0, 1], "
                             f"got {self.video_fraction!r}")

    @property
    def peak_rate(self) -> float:
        return 1.0 / self.packet_period

    @property
    def mean_rate(self) -> float:
        """Long-run per-direction offered load, packets/slot."""
        return self.peak_rate * self.mean_talkspurt / (self.mean_talkspurt
                                                       + self.mean_silence)

    @property
    def service_class(self) -> ServiceClass:
        return _SERVICES[self.service]

    # -- (de)serialization: non-default keys only, so configs stay tidy --
    def to_dict(self) -> Dict[str, Any]:
        defaults = CallsSpec()
        out: Dict[str, Any] = {"count": self.count}
        for key in ("arrival_rate", "mean_holding", "packet_period",
                    "mean_talkspurt", "mean_silence", "deadline", "service",
                    "mos_floor", "slot_ms", "video_fraction", "admission",
                    "join_via_rap"):
            value = getattr(self, key)
            if value != getattr(defaults, key):
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CallsSpec":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown calls keys: {sorted(unknown)}")
        return cls(**data)


# ----------------------------------------------------------------------
class _SessionBase:
    """Common lifecycle state of one call/session."""

    kind = "voice"

    def __init__(self, cid: int, src: int, dst: int, spec: CallsSpec,
                 t_arrive: float, holding: float):
        self.cid = cid
        self.src = src
        self.dst = dst
        self.spec = spec
        self.t_arrive = t_arrive
        self.holding = holding
        self.state = "pending"
        self.t_start: Optional[float] = None
        self.t_stop: Optional[float] = None
        self.refusal_reason: Optional[str] = None
        self.cut_station: Optional[int] = None
        self.flows: List[FlowSpec] = []
        self.sources: List[Any] = []
        self.scores: List[FlowScore] = []

    # flows are allocated at PENDING so a refused call owns flow ids the
    # oracles can assert never reached the ledger
    def _make_flows(self) -> List[FlowSpec]:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def mos(self) -> Optional[float]:
        """Call MOS = the worse of the two directions (a conversation is
        only as good as its bad leg)."""
        if not self.scores:
            return None
        return min(s.mos for s in self.scores)

    def describe(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"call": self.cid, "kind": self.kind,
                               "src": self.src, "dst": self.dst,
                               "state": self.state}
        if self.t_start is not None:
            out["t_start"] = self.t_start
        if self.t_stop is not None:
            out["t_stop"] = self.t_stop
        if self.refusal_reason is not None:
            out["refused"] = self.refusal_reason
        if self.cut_station is not None:
            out["cut_station"] = self.cut_station
        if self.mos is not None:
            out["mos"] = round(self.mos, 4)
            out["directions"] = [s.to_dict() for s in self.scores]
        return out


class VoiceCall(_SessionBase):
    """A bidirectional talkspurt call: one on/off flow per direction."""

    kind = "voice"

    def _make_flows(self) -> List[FlowSpec]:
        spec = self.spec
        self.flows = [
            FlowSpec(src=self.src, dst=self.dst, service=spec.service_class,
                     deadline=spec.deadline),
            FlowSpec(src=self.dst, dst=self.src, service=spec.service_class,
                     deadline=spec.deadline),
        ]
        return self.flows

    @property
    def offered_rate(self) -> float:
        """Mean offered load per endpoint (each endpoint sources one
        direction), packets/slot."""
        return self.spec.mean_rate


class VideoSession(_SessionBase):
    """A unidirectional GoP-patterned stream src -> dst."""

    kind = "video"

    def _make_flows(self) -> List[FlowSpec]:
        spec = self.spec
        self.flows = [
            FlowSpec(src=self.src, dst=self.dst, service=spec.service_class,
                     deadline=spec.deadline),
        ]
        return self.flows

    @property
    def offered_rate(self) -> float:
        # VideoSource default GoP IBBPBBPBB at I:6/P:4/B:2 = 28 packets
        # per 9 frames; one frame per packet_period slots
        return 28.0 / (9.0 * self.spec.packet_period)


# ----------------------------------------------------------------------
class SessionManager:
    """Owns the call population of one scenario run."""

    def __init__(self, net, workload, spec: CallsSpec, streams,
                 scorer: Optional[PerceptualScorer] = None):
        self.net = net
        self.workload = workload
        self.spec = spec
        self.scorer = scorer if scorer is not None else PerceptualScorer(
            slot_ms=spec.slot_ms)
        self.scorer.attach(net.events)
        self.calls: List[_SessionBase] = []
        self._active_rate: Dict[int, float] = {}
        self._requesters: Dict[int, Any] = {}   # cid -> JoinRequester
        self._finalized = False

        self._pick = streams.stream("calls.pick")
        arrivals = streams.stream("calls.arrivals")
        engine = net.engine
        t = 0.0
        for cid in range(spec.count):
            t += arrivals.expovariate(spec.arrival_rate)
            holding = arrivals.expovariate(1.0 / spec.mean_holding)
            video = (spec.video_fraction > 0
                     and arrivals.random() < spec.video_fraction)
            # priority -1: same slot-relative ordering as the fault
            # schedule, identical under both kernels
            engine.schedule_at(t, self._call_arrives, cid, holding, video,
                               priority=-1)

        net.events.add_binder(self._bind)
        net.events.subscribe(StationKilled, self._on_station_gone)
        net.events.subscribe(StationRemoved, self._on_station_gone)
        net.events.subscribe(RebuildDone, self._on_rebuild_done)
        net.events.subscribe(RingDown, self._on_ring_down)
        if spec.join_via_rap:
            if net.channel is None:
                raise ValueError("calls.join_via_rap needs the broadcast "
                                 "channel (set use_channel=True)")
            if not net.config.rap_enabled:
                raise ValueError("calls.join_via_rap needs rap_enabled=True")
            # polling the requesters needs a tick hook; RAP mode already
            # suppresses the batched fast-forward, so this costs nothing
            net.add_tick_hook(self._poll_requesters)

    def _bind(self) -> None:
        bus = self.net.events
        self._ev_started = bus.emitter(CallStarted)
        self._ev_refused = bus.emitter(CallRefused)
        self._ev_ended = bus.emitter(CallEnded)
        self._ev_cut = bus.emitter(CallCut)

    # ------------------------------------------------------------------
    # arrival and admission
    # ------------------------------------------------------------------
    def _call_arrives(self, cid: int, holding: float, video: bool) -> None:
        net = self.net
        t = net.engine.now
        members = [sid for sid in net.members if net.stations[sid].alive]
        spec = self.spec

        if spec.join_via_rap:
            if not members:
                self._note_refused(self._new_session(cid, -1, -1, t, holding,
                                                     video), "ring_down")
                return
            caller = RAP_CALLER_BASE + cid
            callee = self._pick.choice(members)
            call = self._new_session(cid, caller, callee, t, holding, video)
            call._make_flows()
            self._join_via_rap(call)
            return

        if len(members) < 2:
            self._note_refused(self._new_session(cid, -1, -1, t, holding,
                                                 video), "ring_down")
            return
        a = self._pick.choice(members)
        b = self._pick.choice([m for m in members if m != a])
        call = self._new_session(cid, a, b, t, holding, video)
        call._make_flows()

        if spec.admission:
            verdict = self._admit(call)
            if verdict is not None:
                self._note_refused(call, verdict)
                return
        self._activate(call)

    def _new_session(self, cid: int, a: int, b: int, t: float,
                     holding: float, video: bool) -> _SessionBase:
        cls = VideoSession if video else VoiceCall
        call = cls(cid, a, b, self.spec, t, holding)
        self.calls.append(call)
        return call

    def _admit(self, call: _SessionBase) -> Optional[str]:
        """Call-level CAC on the current ring; None = admitted, else the
        refusal reason."""
        net = self.net
        cfg = net.config
        spec = self.spec
        S = net.n * cfg.sat_hop_slots
        t_rap = cfg.effective_t_rap()
        quotas = [net.stations[sid].quota for sid in net.order]

        # Theorem 3: a freshly queued RT packet must make its deadline
        l_src = max(net.stations[call.src].quota.l, 1)
        worst = access_delay_bound(0, l_src, S, t_rap, quotas)
        if worst > spec.deadline:
            return "deadline_unachievable"

        # load: mean admitted session load per endpoint must fit within
        # the guaranteed throughput l_i per worst-case rotation
        rotation = sat_rotation_bound(S, t_rap, quotas)
        endpoints = ((call.src, call.offered_rate),
                     (call.dst, call.offered_rate if call.kind == "voice"
                      else 0.0))
        for sid, added in endpoints:
            l_i = net.stations[sid].quota.l
            load = self._active_rate.get(sid, 0.0) + added
            if load * rotation > l_i:
                return "capacity"
        return None

    def _join_via_rap(self, call: _SessionBase) -> None:
        from repro.core.join import JoinRequester
        net = self.net
        requester = JoinRequester(
            net, call.src, QuotaConfig.two_class(1, 1),
            deadline_req=self.spec.deadline, max_attempts=5)
        self._requesters[call.cid] = requester
        requester.joined.add_callback(
            lambda proc, _call=call: self._on_caller_joined(_call))

    def _on_caller_joined(self, call: _SessionBase) -> None:
        self._requesters.pop(call.cid, None)
        if call.state == "pending":
            self._activate(call)

    def _poll_requesters(self, t: float) -> None:
        if not self._requesters:
            return
        for cid, requester in list(self._requesters.items()):
            state = getattr(requester.state, "value", requester.state)
            if state in ("rejected", "gave_up"):
                del self._requesters[cid]
                call = next(c for c in self.calls if c.cid == cid)
                if call.state == "pending":
                    self._note_refused(call, state)

    # ------------------------------------------------------------------
    # activation and teardown
    # ------------------------------------------------------------------
    def _activate(self, call: _SessionBase) -> None:
        net = self.net
        spec = self.spec
        t = net.engine.now
        call.state = "active"
        call.t_start = t
        t_end = t + call.holding
        for flow in call.flows:
            self.scorer.register_flow(flow.flow_id)
            if call.kind == "video":
                src = self.workload.add_video(
                    flow, frame_interval=spec.packet_period, stop=t_end)
            else:
                src = self.workload.add_onoff(
                    flow, peak_rate=spec.peak_rate,
                    mean_on=spec.mean_talkspurt, mean_off=spec.mean_silence,
                    stop=t_end)
            call.sources.append(src)
        self._add_rate(call, +1.0)
        net.engine.schedule_at(t_end, self._call_ends, call, priority=-1)
        self._ev_started(t, call.cid, call.src, call.dst)

    def _add_rate(self, call: _SessionBase, sign: float) -> None:
        self._active_rate[call.src] = (self._active_rate.get(call.src, 0.0)
                                       + sign * call.offered_rate)
        if call.kind == "voice":
            self._active_rate[call.dst] = (
                self._active_rate.get(call.dst, 0.0)
                + sign * call.offered_rate)

    def _note_refused(self, call: _SessionBase, reason: str) -> None:
        call.state = "refused"
        call.refusal_reason = reason
        self._ev_refused(self.net.engine.now, call.cid, reason)

    def _call_ends(self, call: _SessionBase) -> None:
        if call.state != "active":
            return
        call.state = "ended"
        call.t_stop = self.net.engine.now
        self._add_rate(call, -1.0)
        self._ev_ended(call.t_stop, call.cid)
        self._leave_after_call(call)

    def _cut(self, call: _SessionBase, t: float, station: int) -> None:
        call.state = "cut"
        call.t_stop = t
        call.cut_station = station
        for src in call.sources:
            # absolute stop: the generator exits at its next activity check
            # (mid-burst or mid-silence)
            src.stop = t
        self._add_rate(call, -1.0)
        self._ev_cut(t, call.cid, station)
        self._leave_after_call(call)

    def _leave_after_call(self, call: _SessionBase) -> None:
        """A RAP-joined caller has no business on the ring once its call is
        over: announce a graceful leave (Sec. 2.4.2) so the ring returns to
        its pre-call size instead of growing by one station per completed
        call.  Skipped when the caller is already gone (killed, cut out,
        dropped in a rebuild) or the ring is too small/degraded to cut
        anyone out."""
        net = self.net
        if not (self.spec.join_via_rap and call.src >= RAP_CALLER_BASE):
            return
        st = net.stations.get(call.src)
        if (call.src not in net._pos or st is None or not st.alive
                or st.leaving):
            return
        if net.network_down or len(net.order) <= 2:
            return
        net.leave_gracefully(call.src)

    def _on_station_gone(self, ev) -> None:
        for call in self.calls:
            if call.state == "active" and ev.station in (call.src, call.dst):
                self._cut(call, ev.t, ev.station)

    def _on_rebuild_done(self, ev) -> None:
        surviving = set(ev.order)
        for call in self.calls:
            if call.state != "active":
                continue
            for endpoint in (call.src, call.dst):
                if endpoint not in surviving:
                    self._cut(call, ev.t, endpoint)
                    break

    def _on_ring_down(self, ev) -> None:
        for call in self.calls:
            if call.state == "active":
                self._cut(call, ev.t, -1)

    # ------------------------------------------------------------------
    # scoring and reporting
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Score every call that carried traffic.  Idempotent; call after
        the run (``summary`` does)."""
        if self._finalized:
            return
        self._finalized = True
        now = self.net.engine.now
        for call in self.calls:
            if not call.sources:
                continue
            call.scores = [
                self.scorer.finalize_flow(flow.flow_id, source.packets,
                                          now=now)
                for flow, source in zip(call.flows, call.sources)]

    def counts(self) -> Dict[str, int]:
        by_state: Dict[str, int] = {"pending": 0, "active": 0, "refused": 0,
                                    "ended": 0, "cut": 0}
        for call in self.calls:
            by_state[call.state] += 1
        return by_state

    def summary(self) -> Dict[str, Any]:
        self.finalize()
        spec = self.spec
        by_state = self.counts()
        scored = [c for c in self.calls if c.mos is not None]
        mos_values = [c.mos for c in scored]
        out: Dict[str, Any] = {
            "offered": len(self.calls),
            "admitted": by_state["active"] + by_state["ended"]
            + by_state["cut"],
            "refused": by_state["refused"],
            "ended": by_state["ended"],
            "cut": by_state["cut"],
            "active_at_end": by_state["active"],
            "mos_floor": spec.mos_floor,
        }
        if mos_values:
            out["mean_mos"] = round(sum(mos_values) / len(mos_values), 4)
            out["min_mos"] = round(min(mos_values), 4)
            good = sum(1 for m in mos_values if m >= spec.mos_floor)
            out["above_floor"] = good
            out["fraction_above_floor"] = round(good / len(mos_values), 4)
        out["calls"] = [c.describe() for c in self.calls]
        return out

    def fraction_acceptable(self, include_refused: bool = True) -> float:
        """Fraction of offered calls at/above the MOS floor.  Refused and
        ring-down calls count against the fraction when
        ``include_refused`` (a refused caller is an unhappy caller)."""
        self.finalize()
        scored = [c for c in self.calls if c.mos is not None]
        denom = len(self.calls) if include_refused else len(scored)
        if denom == 0:
            return 1.0
        good = sum(1 for c in scored if c.mos >= self.spec.mos_floor)
        return good / denom
