"""Scenario (de)serialization: JSON-friendly dicts <-> Scenario objects.

Lets complete experiments be described as config files and run with
``python -m repro simulate --config scenario.json`` — the usual workflow of
simulation studies (parameter files under version control, results
regenerable from them).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

from repro.core.packet import ServiceClass
from repro.core.quotas import QuotaConfig
from repro.faults import FaultEvent, FaultSchedule
from repro.phy.geometry import Arena
from repro.phy.impairments import ImpairmentSpec
from repro.qoe.sessions import CallsSpec
from repro.scenarios import MobilitySpec, Scenario, TrafficMix

__all__ = ["scenario_to_dict", "scenario_from_dict",
           "load_scenario", "save_scenario"]

_SERVICE_NAMES = {c.name.lower(): c for c in ServiceClass}


def _service_to_name(service: ServiceClass) -> str:
    return service.name.lower()


def _service_from_name(name: str) -> ServiceClass:
    try:
        return _SERVICE_NAMES[name.lower()]
    except KeyError:
        raise ValueError(f"unknown service class {name!r}; "
                         f"known: {sorted(_SERVICE_NAMES)}") from None


# ----------------------------------------------------------------------
def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """A JSON-serializable description of ``scenario``."""
    out: Dict[str, Any] = {
        "n": scenario.n,
        "placement": scenario.placement,
        "radius": scenario.radius,
        "range_margin": scenario.range_margin,
        "arena": {"width": scenario.arena.width,
                  "height": scenario.arena.height},
        "l": scenario.l,
        "k": scenario.k,
        "rap_enabled": scenario.rap_enabled,
        "t_ear": scenario.t_ear,
        "t_update": scenario.t_update,
        "use_channel": scenario.use_channel,
        "validate_phy": scenario.validate_phy,
        "check_invariants": scenario.check_invariants,
        "horizon": scenario.horizon,
        "seed": scenario.seed,
        "traffic": {
            "kind": scenario.traffic.kind,
            "rate": scenario.traffic.rate,
            "period": scenario.traffic.period,
            "service": _service_to_name(scenario.traffic.service),
            "deadline": scenario.traffic.deadline,
            "neighbours_only": scenario.traffic.neighbours_only,
        },
    }
    if scenario.traffic.kind in ("onoff", "voice"):
        # the talkspurt-shape keys matter only to these kinds; emitted
        # conditionally so every other config keeps its historical shape
        out["traffic"].update(peak_rate=scenario.traffic.peak_rate,
                              mean_on=scenario.traffic.mean_on,
                              mean_off=scenario.traffic.mean_off)
    if scenario.traffic.kind == "prefill":
        out["traffic"]["burst"] = scenario.traffic.burst
    if scenario.kernel != "scalar":
        # emitted only when non-default so existing configs, corpus bundles
        # and campaign-store keys keep their exact historical shape
        out["kernel"] = scenario.kernel
    if scenario.adaptive_timers:
        out["adaptive_timers"] = True
    if scenario.calls is not None:
        out["calls"] = scenario.calls.to_dict()
    if scenario.quotas is not None:
        out["quotas"] = {str(sid): [q.l, q.k1, q.k2]
                         for sid, q in scenario.quotas.items()}
    if scenario.mobility is not None:
        out["mobility"] = {
            "wander_radius": scenario.mobility.wander_radius,
            "speed": scenario.mobility.speed,
            "update_every": scenario.mobility.update_every,
        }
    if scenario.faults is not None:
        out["faults"] = [
            {"time": e.time, "kind": e.kind, "station": e.station,
             **({"params": e.params} if e.params else {})}
            for e in scenario.faults.events]
    if scenario.impairments is not None:
        out["impairments"] = scenario.impairments.to_dict()
    return out


def scenario_from_dict(data: Dict[str, Any]) -> Scenario:
    """Build a Scenario from the dict shape :func:`scenario_to_dict` emits."""
    data = dict(data)
    kwargs: Dict[str, Any] = {}
    for key in ("n", "placement", "radius", "range_margin", "l", "k",
                "rap_enabled", "t_ear", "t_update", "use_channel",
                "validate_phy", "check_invariants", "horizon", "seed",
                "kernel", "adaptive_timers"):
        if key in data:
            kwargs[key] = data[key]

    if "arena" in data:
        kwargs["arena"] = Arena(**data["arena"])

    if "traffic" in data:
        traffic = dict(data["traffic"])
        if "service" in traffic:
            traffic["service"] = _service_from_name(traffic["service"])
        kwargs["traffic"] = TrafficMix(**traffic)

    if "quotas" in data and data["quotas"] is not None:
        kwargs["quotas"] = {
            int(sid): QuotaConfig(l=vals[0], k1=vals[1], k2=vals[2])
            for sid, vals in data["quotas"].items()}

    if "mobility" in data and data["mobility"] is not None:
        kwargs["mobility"] = MobilitySpec(**data["mobility"])

    if "faults" in data and data["faults"]:
        events = []
        for entry in data["faults"]:
            events.append(FaultEvent(time=entry["time"], kind=entry["kind"],
                                     station=entry.get("station"),
                                     params=entry.get("params", {})))
        kwargs["faults"] = FaultSchedule(events)

    if "impairments" in data and data["impairments"] is not None:
        kwargs["impairments"] = ImpairmentSpec.from_dict(data["impairments"])

    if "calls" in data and data["calls"] is not None:
        kwargs["calls"] = CallsSpec.from_dict(data["calls"])

    unknown = set(data) - {"n", "placement", "radius", "range_margin",
                           "arena", "l", "k", "rap_enabled", "t_ear",
                           "t_update", "use_channel", "validate_phy",
                           "check_invariants", "horizon", "seed", "kernel",
                           "adaptive_timers", "traffic", "quotas", "mobility",
                           "faults", "impairments", "calls"}
    if unknown:
        raise ValueError(f"unknown scenario keys: {sorted(unknown)}")
    return Scenario(**kwargs)


# ----------------------------------------------------------------------
def save_scenario(scenario: Scenario, path) -> None:
    Path(path).write_text(json.dumps(scenario_to_dict(scenario), indent=2))


def load_scenario(path) -> Scenario:
    return scenario_from_dict(json.loads(Path(path).read_text()))
