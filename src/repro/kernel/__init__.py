"""Batched stepping kernel: inline slot batching + analytic fast-forward.

``Scenario.kernel = "batched"`` (CLI: ``--kernel batched``) installs
:class:`~repro.kernel.batched.BatchedKernel` as the network's tick driver;
the scalar per-event path stays the reference implementation.  The
differential harness in :mod:`repro.kernel.diff` is the equivalence contract:
byte-identical trace hashes, per-station tables and summaries across both
kernels for every checked-in fuzz corpus bundle and a seeded scenario grid.
"""

from repro.kernel.batched import BatchedKernel, install_batched_kernel
from repro.kernel.columns import ColumnState, hop_plan

__all__ = ["BatchedKernel", "install_batched_kernel", "ColumnState",
           "hop_plan"]
