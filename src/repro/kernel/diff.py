"""Differential harness: scalar vs batched kernel, byte-for-byte.

The equivalence contract of :mod:`repro.kernel` is not "close enough" — it is
*identical observable output*: the same trace hash, the same per-station
tables, the same summary.  This module runs the same experiment through both
tick drivers and diffs everything observable:

* :func:`diff_scenario` — build+run a :class:`~repro.scenarios.Scenario`
  under each kernel and compare trace hash, summary JSON, per-station table
  and rotation samples.
* :func:`diff_fuzz_case` — replay a serialized fuzz case (irregular
  ``run(until=..., max_events=...)`` drive chunks included) under each kernel
  and compare the full result records.
* :func:`seeded_grid` — the pinned scenario grid the ``kernel-parity`` CI
  job sweeps: idle rings, Poisson/CBR/video/backlogged traffic, RAP joins,
  scripted kills and rebuilds, invariant checkers on and off.

``events_executed`` is excluded everywhere: the batched driver dispatches
fewer agenda events by design (that is the speedup), and the count was never
part of the protocol's observable behaviour.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List

from repro.core.packet import ServiceClass
from repro.core.quotas import QuotaConfig
from repro.scenarios import Scenario, ScenarioResult, TrafficMix, run_scenario

__all__ = ["KernelDiff", "diff_scenario", "diff_fuzz_case", "seeded_grid",
           "station_table"]


@dataclass
class KernelDiff:
    """Outcome of one scalar-vs-batched comparison."""

    label: str
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        if self.ok:
            return f"{self.label}: parity OK"
        lines = "\n  ".join(self.mismatches[:10])
        return f"{self.label}: {len(self.mismatches)} mismatch(es)\n  {lines}"


# ----------------------------------------------------------------------
def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, default=str)


def _strip_events_executed(record: Dict[str, Any]) -> Dict[str, Any]:
    return {k: v for k, v in record.items() if k != "events_executed"}


def station_table(result: ScenarioResult) -> Dict[str, Any]:
    """Per-station observable state after a run (the 'tables' of the
    equivalence contract)."""
    net = result.network
    table: Dict[str, Any] = {}
    for sid in sorted(net.stations):
        st = net.stations[sid]
        table[str(sid)] = {
            "alive": st.alive,
            "enqueued": {svc.name: cnt for svc, cnt in st.enqueued.items()},
            "sent": {svc.name: cnt for svc, cnt in st.sent.items()},
            "received": {svc.name: cnt for svc, cnt in st.received.items()},
            "queue_depths": st.queue_depths(),
            "sat_visits": st.sat_visits,
            "sat_holds": st.sat_holds,
            "last_sat_seq": st.last_sat_seq,
            "last_sat_arrival": st.last_sat_arrival,
            "last_sat_departure": st.last_sat_departure,
            "rotation_samples": net.rotation_log.samples(sid),
        }
    table["_sat"] = {
        "kind": net.sat.kind, "at": net.sat.at_station,
        "to": net.sat.in_flight_to, "arrival": net.sat.arrival_time,
        "hops": net.sat.hops, "rounds": net.sat.rounds, "seq": net.sat.seq,
    }
    table["_hops_per_round"] = net.rotation_log.hops_per_round()
    return table


def _compare_runs(label: str, scalar: ScenarioResult,
                  batched: ScenarioResult) -> KernelDiff:
    from repro.fuzz.runner import hash_trace

    diff = KernelDiff(label)
    hs, hb = hash_trace(scalar.trace), hash_trace(batched.trace)
    if hs != hb:
        diff.mismatches.append(f"trace hash: scalar {hs[:16]} vs batched "
                               f"{hb[:16]} ({len(scalar.trace.events)} vs "
                               f"{len(batched.trace.events)} events)")
        for ev_s, ev_b in zip(scalar.trace.events, batched.trace.events):
            key_s = (ev_s.time, ev_s.category, _canonical(ev_s.fields))
            key_b = (ev_b.time, ev_b.category, _canonical(ev_b.fields))
            if key_s != key_b:
                diff.mismatches.append(f"first trace divergence: "
                                       f"scalar {key_s} vs batched {key_b}")
                break
    summary_s = _strip_events_executed(scalar.summary())
    summary_b = _strip_events_executed(batched.summary())
    if _canonical(summary_s) != _canonical(summary_b):
        for key in sorted(set(summary_s) | set(summary_b)):
            left = _canonical(summary_s.get(key))
            right = _canonical(summary_b.get(key))
            if left != right:
                diff.mismatches.append(
                    f"summary[{key}]: scalar {left} vs batched {right}")
    table_s, table_b = station_table(scalar), station_table(batched)
    if _canonical(table_s) != _canonical(table_b):
        for key in sorted(set(table_s) | set(table_b)):
            left = _canonical(table_s.get(key))
            right = _canonical(table_b.get(key))
            if left != right:
                diff.mismatches.append(
                    f"table[{key}]: scalar {left} vs batched {right}")
    if scalar.engine.now != batched.engine.now:
        diff.mismatches.append(f"final clock: scalar {scalar.engine.now!r} "
                               f"vs batched {batched.engine.now!r}")
    return diff


# ----------------------------------------------------------------------
def diff_scenario(scenario: Scenario, label: str = "scenario") -> KernelDiff:
    """Run ``scenario`` under both kernels and diff everything observable."""
    scalar = run_scenario(replace(scenario, kernel="scalar"))
    batched = run_scenario(replace(scenario, kernel="batched"))
    return _compare_runs(label, scalar, batched)


def diff_fuzz_case(case, label: str = "case") -> KernelDiff:
    """Replay a fuzz case (drive chunks, probes, oracles) under both kernels
    and diff the full result records (minus ``events_executed``)."""
    from repro.fuzz.generate import FuzzCase
    from repro.fuzz.runner import run_case

    def with_kernel(kernel: str) -> FuzzCase:
        data = case.to_dict()
        scenario = dict(data["scenario"])
        if kernel == "scalar":
            scenario.pop("kernel", None)
        else:
            scenario["kernel"] = kernel
        return FuzzCase(seed=data["seed"], index=data["index"],
                        scenario=scenario, drive=list(data["drive"]))

    diff = KernelDiff(label)
    record_s = _strip_events_executed(run_case(with_kernel("scalar")).to_record())
    record_b = _strip_events_executed(run_case(with_kernel("batched")).to_record())
    if _canonical(record_s) != _canonical(record_b):
        for key in sorted(set(record_s) | set(record_b)):
            left = _canonical(record_s.get(key))
            right = _canonical(record_b.get(key))
            if left != right:
                diff.mismatches.append(
                    f"record[{key}]: scalar {left} vs batched {right}")
    return diff


# ----------------------------------------------------------------------
def seeded_grid() -> List[Scenario]:
    """The pinned parity grid: one scenario per protocol regime.

    Horizons are sized so the whole grid runs both kernels in well under a
    CI minute while still crossing every fast-forward boundary many times.
    """
    from repro.faults import FaultEvent, FaultSchedule

    grid: List[Scenario] = [
        # pure quiescent circulation: fast-forward fires constantly
        Scenario(n=8, traffic=TrafficMix(kind="none"), horizon=4000, seed=11),
        # sparse Poisson: quiescent stretches interleaved with bursts
        Scenario(n=8, traffic=TrafficMix(kind="poisson", rate=0.01),
                 horizon=3000, seed=12),
        # CBR with deadlines: periodic traffic edges
        Scenario(n=6, traffic=TrafficMix(kind="cbr", period=40.0,
                                         service=ServiceClass.PREMIUM,
                                         deadline=200.0),
                 horizon=3000, seed=13),
        # video bursts to neighbours
        Scenario(n=6, traffic=TrafficMix(kind="video", period=80.0,
                                         neighbours_only=True),
                 horizon=2000, seed=14),
        # saturated: fast-forward never fires, inline batching only
        Scenario(n=6, l=2, k=1, traffic=TrafficMix(kind="saturate"),
                 horizon=1000, seed=15),
        # RAP enabled (spontaneous RAP openings suppress fast-forward)
        Scenario(n=8, rap_enabled=True, use_channel=True,
                 traffic=TrafficMix(kind="poisson", rate=0.02),
                 horizon=2000, seed=16),
        # scripted kill + recovery + rebuild machinery
        Scenario(n=8, traffic=TrafficMix(kind="poisson", rate=0.02),
                 faults=FaultSchedule([FaultEvent(time=700.0, kind="kill",
                                                  station=3)]),
                 horizon=2500, seed=17),
        # graceful leave mid-run
        Scenario(n=8, traffic=TrafficMix(kind="poisson", rate=0.02),
                 faults=FaultSchedule([FaultEvent(time=900.0, kind="leave",
                                                  station=5)]),
                 horizon=2500, seed=18),
        # SAT loss -> watchdog recovery
        Scenario(n=6, traffic=TrafficMix(kind="none"),
                 faults=FaultSchedule([FaultEvent(time=500.0,
                                                  kind="drop_signal")]),
                 horizon=2000, seed=19),
        # invariant checker subscribed to every tick (no fast-forward)
        Scenario(n=6, traffic=TrafficMix(kind="poisson", rate=0.05),
                 check_invariants=True, horizon=1000, seed=20),
        # fractional horizon: the run window edge is off the slot grid
        Scenario(n=8, traffic=TrafficMix(kind="none"), horizon=1234.5,
                 seed=21),
    ]
    # voice sessions: call arrivals/teardowns scheduled at priority -1,
    # CAC refusals, a mid-run kill cutting calls — the QoE layer must not
    # perturb fast-forward boundaries
    from repro.qoe.sessions import CallsSpec
    grid.append(
        Scenario(n=8, traffic=TrafficMix(kind="none"),
                 calls=CallsSpec(count=5, arrival_rate=0.01,
                                 mean_holding=800.0),
                 faults=FaultSchedule([FaultEvent(time=1200.0, kind="kill",
                                                  station=2)]),
                 horizon=3000, seed=22))
    grid.extend([
        # fully backlogged drain to the ring successor: the saturated path's
        # home regime (a slot-0 burst, no per-tick generator, so the
        # analytic window engages and must stay byte-identical)
        Scenario(n=6, l=2, k=1,
                 traffic=TrafficMix(kind="prefill", burst=60,
                                    neighbours_only=True),
                 horizon=900, seed=23),
        # mixed-class backlog under three-class quotas with tight Premium
        # deadlines: the window's deadline-miss classification on all three
        # drain budgets
        Scenario(n=6,
                 quotas={sid: QuotaConfig(l=1, k1=1, k2=1)
                         for sid in range(6)},
                 traffic=TrafficMix(kind="prefill", burst=40,
                                    service=ServiceClass.PREMIUM,
                                    deadline=40.0, neighbours_only=True),
                 horizon=900, seed=24),
        # saturated + a mid-drain membership change: the insert rebinds the
        # columns and forces the gate back to scalar slots until the new
        # topology's successor-addressing is saturated again
        Scenario(n=6, l=2, k=1,
                 traffic=TrafficMix(kind="prefill", burst=60,
                                    neighbours_only=True),
                 faults=FaultSchedule([FaultEvent(time=300.0, kind="insert",
                                                  station=77,
                                                  params={"after": 2})]),
                 horizon=900, seed=25),
        # adaptive timers over sparse Poisson: long quiescent stretches
        # where every replayed hop feeds the estimator and re-arms the
        # watchdogs at adaptive deadlines (the deferred-maintenance path)
        Scenario(n=8, adaptive_timers=True,
                 traffic=TrafficMix(kind="poisson", rate=0.01),
                 horizon=3000, seed=26),
        # adaptive timers + scripted kill: expiry-driven SAT_REC with
        # backoff, Karn exclusion during the walk, estimator state kept
        # across the cut-out
        Scenario(n=8, adaptive_timers=True,
                 traffic=TrafficMix(kind="poisson", rate=0.02),
                 faults=FaultSchedule([FaultEvent(time=700.0, kind="kill",
                                                  station=3)]),
                 horizon=2500, seed=27),
        # adaptive timers in the saturated regime: the analytic window is
        # gated off, so the drain must replay slot-by-slot and still match
        Scenario(n=6, l=2, k=1, adaptive_timers=True,
                 traffic=TrafficMix(kind="prefill", burst=60,
                                    neighbours_only=True),
                 horizon=900, seed=28),
    ])
    return grid
