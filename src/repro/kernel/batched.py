"""Batched stepping driver with analytic fast-forward.

The scalar reference path schedules one agenda event per slot and walks every
station each tick.  :class:`BatchedKernel` replaces the tick *driver* (not the
protocol): one agenda callback advances many slots inline, and provably
quiescent stretches — nothing buffered anywhere, the SAT circulating a fully
alive ring, no timer or traffic event due, no RAP/channel/impairment machinery
armed — are fast-forwarded analytically instead of simulated slot by slot.

Equivalence is structural, not aspirational:

* Non-quiescent slots run the *same* ``WRTRingNetwork._tick_body`` as the
  scalar path, in the same order, at the same times; the only difference is
  how the next slot is reached (``Engine.advance_to`` instead of a heap
  push/pop per slot).
* While any SAT event has a subscriber (every traced run), fast-forward
  synthesizes each skipped hop by running the real ``_sat_step`` at the real
  hop time — the emitted event stream is byte-identical by construction.
* Only when no SAT emitter is live (trace-off fabric shards, perf harnesses)
  does the jump collapse into the closed-form column update from
  :mod:`repro.kernel.columns` — the big win the ``batched_tick_rate``
  benchmark measures.
* The mirror-image regime — every member backlogged with successor-addressed
  traffic, nothing else armed — is handled the same way by the *saturated*
  path: the residual quota budgets from ``ColumnState.segment_budgets`` make
  each station's sends consecutive, so SAT holds and releases follow in
  closed form and a whole window of slots is applied from one merged event
  list (``_saturated_run``; the ``saturated_slot_rate`` benchmark's regime).
* Runs driven with ``max_events`` budgets fall back to exactly one slot per
  agenda event so budget chunk boundaries keep their scalar meaning.

``events_executed`` is the one engine statistic allowed to differ (fewer
agenda dispatches is the whole point); every protocol-visible output —
traces, tables, summaries — must match byte for byte.  See docs/KERNEL.md.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.diffserv import COLUMN_CLASSES
from repro.core.sat import SAT
from repro.events.types import (PacketEnqueued, PacketLost, PacketOrphaned,
                                SlotDeliver, SlotTransmit)
from repro.kernel.columns import hop_plan

__all__ = ["BatchedKernel", "install_batched_kernel"]

#: a saturated window shorter than this is not worth the setup cost
_MIN_SAT_WINDOW = 8


def install_batched_kernel(net) -> "BatchedKernel":
    """Install a batched tick driver on ``net`` (before ``net.start()``)."""
    return BatchedKernel(net)


class BatchedKernel:
    """Drives a :class:`~repro.core.ring.WRTRingNetwork` in batched mode."""

    def __init__(self, net) -> None:
        if net.started:
            raise RuntimeError(
                "install the batched kernel before network start()")
        if net.tick_driver is not None:
            raise RuntimeError("a tick driver is already installed")
        self.net = net
        self.engine = net.engine
        #: the ring-owned struct-of-arrays state (kept as an attribute for
        #: the historical ``kernel.columns`` access path)
        self.columns = net.columns
        #: packets accepted into any MAC queue and not yet delivered/lost —
        #: maintained from the event spine, so it is exact whenever every
        #: packet exit emits (the invariant the spine already guarantees);
        #: paths that strand packets (e.g. a killed station before cut-out)
        #: only ever over-count, which disables fast-forward, never corrupts it
        self.buffered = 0
        #: fast-forward telemetry (for tests and perf analysis)
        self.ff_jumps = 0
        self.ff_slots_skipped = 0
        #: saturated-path telemetry: engaged windows and slots they covered
        self.sat_windows = 0
        self.sat_slots = 0
        self._dataplane_private = False
        #: adaptive SAT timers change state on every hop (estimator samples,
        #: re-armed deadlines), so skipped hops must always be replayed
        #: through the real ``_sat_step`` and the saturated analytic path —
        #: whose inline sends run *ahead* of engine time — stays off
        self._adaptive = bool(getattr(net, "adaptive_timers", False))
        net.tick_driver = self._drive
        bus = net.events
        bus.subscribe(PacketEnqueued, self._on_packet_in)
        bus.subscribe(SlotDeliver, self._on_packet_out)
        bus.subscribe(PacketLost, self._on_packet_out)
        bus.subscribe(PacketOrphaned, self._on_packet_out)
        bus.add_binder(self._recheck_dataplane_subs)

    # ------------------------------------------------------------------
    def _on_packet_in(self, _ev) -> None:
        self.buffered += 1

    def _on_packet_out(self, _ev) -> None:
        self.buffered -= 1

    def _recheck_dataplane_subs(self) -> None:
        """Re-derive (on every subscription change) whether the dataplane
        events are *privately* consumed: the saturated path applies the
        transmit/deliver effects inline, which is only sound while the
        subscriber tuples are exactly the consumers it replicates —
        network metrics plus its own buffered counter.  Any extra
        subscriber (a scorer, a gateway, an oracle) turns the path off."""
        bus = self.net.events
        mt = self.net.metrics
        self._dataplane_private = (
            bus.subscribers(SlotTransmit) == (mt._on_transmit,)
            and bus.subscribers(SlotDeliver)
            == (mt._on_deliver, self._on_packet_out))

    # ------------------------------------------------------------------
    # the tick driver
    # ------------------------------------------------------------------
    def _drive(self) -> None:
        """One agenda dispatch: run slot bodies inline until an agenda event
        (timer, traffic arrival, fault), the run window edge, or a budget
        boundary forces control back to the engine loop."""
        net = self.net
        eng = self.engine
        while True:
            t = eng.now
            if not net._tick_body(t):
                return  # network down: no further ticks (scalar behaviour)
            nxt = t + 1.0
            until = eng.run_until
            if (until is not None and not eng.run_budgeted
                    and not eng.stopped):
                if self._quiescent(t):
                    nxt = self._fast_forward(t, until)
                elif self._saturated(t):
                    nxt = self._saturated_run(t, until)
            if eng.stopped or eng.run_budgeted or (until is not None
                                                   and nxt > until):
                break
            pending = eng.peek()
            if pending is not None and pending <= nxt:
                break
            eng.advance_to(nxt)
        net._tick_handle = eng.schedule_at(nxt, self._drive, priority=5)

    # ------------------------------------------------------------------
    # quiescence
    # ------------------------------------------------------------------
    def _quiescent(self, t: float) -> bool:
        """True when every slot from ``t+1`` on is provably a no-op apart
        from SAT circulation over a fully alive, satisfied ring."""
        net = self.net
        if self.buffered != 0:
            return False
        # tick-observable machinery: per-tick hooks (backlog traffic,
        # mobility), RingTick subscribers (invariant checkers, probes) and
        # occupancy sampling all see every slot — cannot skip any
        if net._tick_hooks or net._ev_tick or net._ev_occupancy:
            return False
        if net.channel is not None or net.impairments is not None:
            return False
        cfg = net.config
        if cfg.rap_enabled or cfg.enforce_radio_links:
            return False
        if (net.network_down or net.rebuilding_until is not None
                or t < net.pause_until):
            return False
        sat = net.sat
        if (net._sat_lost or sat.kind != SAT.NORMAL or sat.rap_mutex
                or not sat.in_flight):
            return False
        if not float(t).is_integer():
            return False  # ticks live on the integer grid; be conservative
        stations = net.stations
        for sid in net.order:
            st = stations[sid]
            if not st.alive or st.leaving:
                return False
        return True

    # ------------------------------------------------------------------
    # analytic fast-forward
    # ------------------------------------------------------------------
    def _fast_forward(self, t: float, until: float) -> float:
        """Skip the quiescent slots after ``t``; return the next tick time.

        Slots ``t+1 .. t+T`` are provably no-ops except for SAT hand-offs,
        where ``T`` is bounded by the run window (ticks after ``until`` never
        run) and by the next live agenda event (a timer or traffic arrival
        may change the world, so no skipped slot may lie at or beyond it).
        The skipped hand-offs are synthesized exactly; the resume tick is
        ``t + T + 1`` — the same pending-tick position the scalar path
        would reach.
        """
        eng = self.engine
        net = self.net
        ti = int(t)
        T = int(math.floor(until)) - ti
        horizon_event = eng.peek()
        if horizon_event is not None:
            # the last whole tick strictly before the event
            T = min(T, int(math.ceil(horizon_event)) - 1 - ti)
        if T < 2:
            return t + 1.0  # nothing worth skipping

        sat = net.sat
        h = float(net.config.sat_hop_slots)
        a0 = sat.arrival_time   # hop j lands at a0 + j*h
        t_stop = float(ti + T)
        K = 0 if a0 > t_stop else int((t_stop - a0) // h) + 1

        self.ff_jumps += 1
        self.ff_slots_skipped += T - 1

        if K == 0:
            return t_stop + 1.0
        if (self._adaptive or net._ev_sat_release or net._ev_sat_rotation
                or net._ev_sat_arrive):
            # adaptive mode always replays: each hop feeds the rotation
            # estimator and may re-arm a SAT_TIMER at a new deadline, and
            # both must happen at the real hop time for scalar parity
            return self._replay_hops(a0, h, K, t_stop)
        self._bulk_hops(a0, h, K)
        return t_stop + 1.0

    def _replay_hops(self, a0: float, h: float, K: int,
                     t_stop: float) -> float:
        """Emitting path: run the real ``_sat_step`` at each hop time, so
        subscribers (the trace adapter above all) observe the identical
        event stream the scalar path would have produced."""
        eng = self.engine
        net = self.net
        sat = net.sat
        for j in range(K):
            tau = a0 + j * h
            if self._adaptive:
                # a previous hop's adaptive re-arm may have moved a
                # SAT_TIMER deadline inside the window (the rto floor at
                # max_sample + G makes that unreachable in a quiescent
                # ring, but the guard keeps safety structural): hand
                # control back so the engine fires it on schedule.
                # ``<=`` because timers (priority 0) beat ticks (5).
                pending = eng.peek()
                if pending is not None and pending <= tau:
                    return math.floor(eng.now) + 1.0
            eng.advance_to(tau)
            net._sat_step(tau)
            if (self.buffered or eng.stopped or net._sat_lost
                    or not sat.in_flight or sat.kind != SAT.NORMAL):
                # a subscriber perturbed the world mid-jump: resume normal
                # ticking at the next slot, exactly where scalar would tick
                return math.floor(eng.now) + 1.0
        return t_stop + 1.0

    def _bulk_hops(self, a0: float, h: float, K: int) -> None:
        """Closed-form path (no SAT subscribers): apply the net effect of
        ``K`` hand-offs with the columnar visit plan from
        :func:`~repro.kernel.columns.hop_plan`."""
        net = self.net
        eng = self.engine
        sat = net.sat
        order = net.order
        n = len(order)
        i1 = net._pos[sat.in_flight_to]
        s0 = sat.seq
        hops0 = sat.hops
        log = net.rotation_log
        round_rotation = float(n) * h

        offsets, counts, last_j = hop_plan(n, i1, K)
        last_tau = a0 + last_j * h
        last_seq = s0 + last_j

        # per-station net effect of every visit in the window
        visited = [(int(last_j[d]), int(d)) for d in range(n) if counts[d] > 0]
        for _, d in visited:
            sid = order[(i1 + d) % n]
            st = net.stations[sid]
            c = int(counts[d])
            first_tau = a0 + d * h
            if st.last_sat_arrival is not None:
                log.add(sid, first_tau - st.last_sat_arrival)
            for _ in range(c - 1):
                log.add(sid, round_rotation)
            st.sat_visits += c
            st.last_sat_arrival = float(last_tau[d])
            st.last_sat_departure = float(last_tau[d])
            st.last_sat_seq = int(last_seq[d])
            st.rt_pck = 0
            st.nrt_pck = 0
            st.as_pck = 0
            st.be_pck = 0

        # completed rounds: hops landing on order[0]
        first_round_hop = (n - i1) % n
        for j in range(first_round_hop, K, n):
            sat.rounds += 1
            log.mark_round(hops0 + j + 1)

        # each visited station's SAT_TIMER was restarted at every release;
        # only the final restart survives — rearm once, in release order,
        # at the exact deadline the scalar path would have left armed
        for _, d in sorted(visited):
            eng.advance_to(float(last_tau[d]))
            net.recovery.restart_timer(order[(i1 + d) % n])

        sat.hops = hops0 + K
        sat.seq = s0 + K
        net._sat_seq = s0 + K
        sat.at_station = None
        sat.in_flight_to = order[(i1 + K) % n]
        sat.arrival_time = a0 + (K - 1) * h + h

    # ------------------------------------------------------------------
    # saturated regime
    # ------------------------------------------------------------------
    def _saturated(self, t: float) -> bool:
        """True when the coming slots are a pure drain of successor-addressed
        backlog under quota control: every member alive and staying, transit
        buffers empty, all queued traffic one hop from home, the SAT a normal
        in-flight signal, and nothing else — no hooks, channel, impairments,
        RAP, gateways or extra dataplane subscribers — able to observe or
        perturb individual slots.  Cheapest checks first; the per-station
        scan runs only when everything else already passed."""
        net = self.net
        if self._adaptive:
            # the saturated walk applies sends inline *ahead* of engine
            # time; a mid-window bail back to scalar ticking would replay
            # them.  Sound only because non-adaptive SAT steps cannot move
            # timer deadlines into the window — adaptive ones can, so the
            # regime runs slot-by-slot (still byte-identical, just slower)
            return False
        if self.buffered <= 0 or not self._dataplane_private:
            return False
        if net._tick_hooks or net._ev_tick or net._ev_occupancy:
            return False
        if net.channel is not None or net.impairments is not None:
            return False
        cfg = net.config
        if cfg.rap_enabled or cfg.enforce_radio_links:
            return False
        if net._delivery_callbacks:
            return False
        if (net.network_down or net.rebuilding_until is not None
                or t < net.pause_until):
            return False
        sat = net.sat
        if (net._sat_lost or sat.kind != SAT.NORMAL or sat.rap_mutex
                or not sat.in_flight):
            return False
        if not float(t).is_integer():
            return False
        return net.columns.members_saturated()

    def _emit_sends(self, events: list, i: int, s: int, r: int, a: int,
                    b: int, limit: int) -> "tuple[int, int, int]":
        """Append station ``i``'s send events for one segment.

        The segment's sends are consecutive from its start ``s``: ``r`` RT
        slots, then ``a`` Assured from ``s + r``, then ``b`` best-effort
        from ``s + r + a`` — truncated at ``limit`` (the release slot, or
        the window edge for a still-open segment).  Returns the executed
        ``(r, a, b)`` counts."""
        avail = limit - s + 1
        if avail <= 0:
            return 0, 0, 0
        r_done = min(r, avail)
        a_done = min(a, max(0, avail - r))
        b_done = min(b, max(0, avail - r - a))
        for j in range(r_done):
            events.append((s + j, 0, i, 0))
        base = s + r
        for j in range(a_done):
            events.append((base + j, 0, i, 1))
        base = s + r + a
        for j in range(b_done):
            events.append((base + j, 0, i, 2))
        return r_done, a_done, b_done

    def _saturated_run(self, t: float, until: float) -> float:
        """Advance the saturated slots after ``t`` analytically; return the
        next tick time.

        Phase 1 *walks* the SAT itinerary: per station, the residual quota
        budgets make its sends consecutive from its segment start, so each
        arrival time, hold decision and release slot follows in closed form
        (release ``R = max(tau, seg_start + r - 1)``; a release truncates
        the Assured/best-effort tail and opens a fresh segment at ``R+1``).
        The walk builds one merged event list — (slot, kind, pos) with
        sends before the slot's SAT step — and never touches live state.

        Phase 2 *applies* the list in slot order.  Sends are always applied
        inline (the gate proved metrics + the buffered counter are the only
        consumers, and every packet is one hop from home).  SAT steps run
        in one of two modes: while any SAT emitter has a subscriber the
        real ``_sat_step`` runs at the real hop time (byte-identical event
        stream, with divergence tripwires against the prediction);
        otherwise the hand-off bookkeeping is inlined and only each
        station's final SAT_TIMER restart is re-armed, as in
        :meth:`_bulk_hops`."""
        eng = self.engine
        net = self.net
        cols = self.columns
        ti = int(t)
        T = int(math.floor(until)) - ti
        horizon_event = eng.peek()
        if horizon_event is not None:
            T = min(T, int(math.ceil(horizon_event)) - 1 - ti)
        if T < _MIN_SAT_WINDOW:
            return t + 1.0
        t_end = ti + T

        members = net._members
        n = len(members)
        sat = net.sat
        h = int(net.config.sat_hop_slots)
        q_l = [st._quota.l for st in members]
        q_k = [st._quota.k for st in members]
        q_k1 = [st._quota.k1 for st in members]
        q_k2 = [st._quota.k2 for st in members]

        # ---- phase 1: analytic walk -----------------------------------
        cols.sync_hot()
        r0, a0, b0 = cols.segment_budgets()
        seg_start = [ti + 1] * n
        seg_r = [int(x) for x in r0]
        seg_a = [int(x) for x in a0]
        seg_b = [int(x) for x in b0]
        rem_rt = [int(x) for x in cols.rt_depth]
        rem_as = [int(x) for x in cols.as_depth]
        rem_be = [int(x) for x in cols.be_depth]

        events: list = []
        final_release = [None] * n
        tau = int(sat.arrival_time)
        pos = net._pos[sat.in_flight_to]
        seq = sat.seq
        hops0 = sat.hops
        arrivals = 0
        held_pos = None
        while tau <= t_end:
            i = pos
            arrivals += 1
            s = seg_start[i]
            r, a, b = seg_r[i], seg_a[i], seg_b[i]
            sat_from = s + r - 1 if r > 0 else -1
            hold = tau < sat_from
            R = sat_from if hold else tau
            if R > t_end:
                # held past the window edge: record the arrival and stop
                events.append((tau, 1, i, ("hop", tau, None, True, seq,
                                           arrivals)))
                held_pos = i
                break
            events.append((tau, 1, i, ("hop", tau, R, hold, seq, arrivals)))
            if R > tau:
                events.append((R, 1, i, ("rel", R)))
            r_done, a_done, b_done = self._emit_sends(
                events, i, s, r, a, b, R)
            rem_rt[i] -= r_done
            rem_as[i] -= a_done
            rem_be[i] -= b_done
            seg_start[i] = R + 1
            # QuotaConfig.send_schedule with the round counters cleared
            # (the release wiped them), inlined off the hot walk
            seg_r[i] = q_l[i] if q_l[i] < rem_rt[i] else rem_rt[i]
            a_new = min(q_k1[i], q_k[i], rem_as[i])
            seg_a[i] = a_new
            seg_b[i] = min(q_k2[i], q_k[i] - a_new, rem_be[i])
            final_release[i] = R
            seq += 1
            pos = (i + 1) % n
            tau = R + h
        # flush the still-open segments, clipped to the window edge
        for i in range(n):
            if seg_start[i] <= t_end:
                self._emit_sends(events, i, seg_start[i], seg_r[i],
                                 seg_a[i], seg_b[i], t_end)
        events.sort()

        self.sat_windows += 1
        self.sat_slots += T

        # ---- phase 2: ordered application -----------------------------
        replay = bool(net._ev_sat_release or net._ev_sat_rotation
                      or net._ev_sat_arrive or net._ev_sat_hold)
        gen0 = cols.generation
        mt = net.metrics
        transmitted = mt.transmitted
        delivered = mt.delivered
        access = [mt.access_delay[c].samples for c in COLUMN_CLASSES]
        e2e = [mt.e2e_delay[c].samples for c in COLUMN_CLASSES]
        dtr = mt.deadlines
        rot_log = net.rotation_log

        for slot, kind, i, payload in events:
            if kind == 0:
                # one send: the scalar phase-A pop/transmit plus the
                # phase-B one-hop delivery to the ring successor, with the
                # metrics consumers' effects applied directly (delay
                # samples can't be negative here, so the series validation
                # is safe to skip)
                st = members[i]
                svc = COLUMN_CLASSES[payload]
                pkt = st._pop_class(svc)
                ts = float(slot)
                pkt.t_send = ts
                transmitted[svc] += 1
                access[payload].append(ts - pkt.t_enqueue)
                succ = members[(i + 1) % n]
                pkt.hops += 1
                td = ts + 1.0
                pkt.t_deliver = td
                succ.received[svc] += 1
                delivered[svc] += 1
                e2e[payload].append(td - pkt.created)
                dl = pkt.deadline
                if dl is not None:
                    if td <= dl:
                        dtr.met += 1
                    else:
                        dtr.missed += 1
                        dtr.miss_lateness.append(td - dl)
                self.buffered -= 1
            elif replay:
                tf = float(slot)
                buffered0 = self.buffered
                eng.advance_to(tf)
                net._sat_step(tf)
                if (eng.stopped or net._sat_lost
                        or net.sat.kind != SAT.NORMAL
                        or cols.generation != gen0
                        or self.buffered != buffered0):
                    # a subscriber perturbed the world mid-window: all
                    # effects through this slot are applied, so resume
                    # normal ticking exactly where scalar would tick
                    return math.floor(eng.now) + 1.0
                if payload[0] == "hop":
                    want_held = payload[2] is None or payload[2] > payload[1]
                    if want_held != (net.sat.at_station is not None):
                        raise RuntimeError(
                            f"saturated walk diverged at t={slot}: predicted "
                            f"{'hold' if want_held else 'release'} at "
                            f"{members[i].sid}, SAT is {net.sat!r}")
                elif not net.sat.in_flight:
                    raise RuntimeError(
                        f"saturated walk diverged at t={slot}: predicted "
                        f"release from {members[i].sid}, SAT is {net.sat!r}")
            elif payload[0] == "hop":
                _, ptau, pR, hold, pseq, arrival_no = payload
                st = members[i]
                tf = float(slot)
                if st.last_sat_arrival is not None:
                    rot_log.add(st.sid, tf - st.last_sat_arrival)
                st.last_sat_arrival = tf
                st.last_sat_seq = pseq
                st.sat_visits += 1
                if hold:
                    st.sat_holds += 1
                if i == 0:
                    sat.rounds += 1
                    rot_log.mark_round(hops0 + arrival_no)
                if pR == slot:
                    # arrived satisfied: released within the same SAT step
                    st.last_sat_departure = tf
                    st.rt_pck = 0
                    st.nrt_pck = 0
                    st.as_pck = 0
                    st.be_pck = 0
            else:
                st = members[i]
                st.last_sat_departure = float(slot)
                st.rt_pck = 0
                st.nrt_pck = 0
                st.as_pck = 0
                st.be_pck = 0

        if not replay:
            # deferred SAT_TIMER maintenance: every release restarted the
            # holder's watchdog, but only the final restart survives —
            # re-arm once per station, in release order (see _bulk_hops)
            rearms = sorted((R, i) for i, R in enumerate(final_release)
                            if R is not None)
            for R, i in rearms:
                eng.advance_to(float(R))
                net.recovery.restart_timer(members[i].sid)
            sat.hops = hops0 + arrivals
            sat.seq = seq
            net._sat_seq = seq
            if held_pos is not None:
                sat.at_station = members[held_pos].sid
                sat.in_flight_to = None
                sat.arrival_time = None
            else:
                sat.at_station = None
                sat.in_flight_to = members[pos].sid
                sat.arrival_time = float(tau)
        return float(t_end) + 1.0
