"""Batched stepping driver with analytic fast-forward.

The scalar reference path schedules one agenda event per slot and walks every
station each tick.  :class:`BatchedKernel` replaces the tick *driver* (not the
protocol): one agenda callback advances many slots inline, and provably
quiescent stretches — nothing buffered anywhere, the SAT circulating a fully
alive ring, no timer or traffic event due, no RAP/channel/impairment machinery
armed — are fast-forwarded analytically instead of simulated slot by slot.

Equivalence is structural, not aspirational:

* Non-quiescent slots run the *same* ``WRTRingNetwork._tick_body`` as the
  scalar path, in the same order, at the same times; the only difference is
  how the next slot is reached (``Engine.advance_to`` instead of a heap
  push/pop per slot).
* While any SAT event has a subscriber (every traced run), fast-forward
  synthesizes each skipped hop by running the real ``_sat_step`` at the real
  hop time — the emitted event stream is byte-identical by construction.
* Only when no SAT emitter is live (trace-off fabric shards, perf harnesses)
  does the jump collapse into the closed-form column update from
  :mod:`repro.kernel.columns` — the big win the ``batched_tick_rate``
  benchmark measures.
* Runs driven with ``max_events`` budgets fall back to exactly one slot per
  agenda event so budget chunk boundaries keep their scalar meaning.

``events_executed`` is the one engine statistic allowed to differ (fewer
agenda dispatches is the whole point); every protocol-visible output —
traces, tables, summaries — must match byte for byte.  See docs/KERNEL.md.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.sat import SAT
from repro.events.types import (PacketEnqueued, PacketLost, PacketOrphaned,
                                SlotDeliver)
from repro.kernel.columns import ColumnState, hop_plan

__all__ = ["BatchedKernel", "install_batched_kernel"]


def install_batched_kernel(net) -> "BatchedKernel":
    """Install a batched tick driver on ``net`` (before ``net.start()``)."""
    return BatchedKernel(net)


class BatchedKernel:
    """Drives a :class:`~repro.core.ring.WRTRingNetwork` in batched mode."""

    def __init__(self, net) -> None:
        if net.started:
            raise RuntimeError(
                "install the batched kernel before network start()")
        if net.tick_driver is not None:
            raise RuntimeError("a tick driver is already installed")
        self.net = net
        self.engine = net.engine
        self.columns = ColumnState(net)
        #: packets accepted into any MAC queue and not yet delivered/lost —
        #: maintained from the event spine, so it is exact whenever every
        #: packet exit emits (the invariant the spine already guarantees);
        #: paths that strand packets (e.g. a killed station before cut-out)
        #: only ever over-count, which disables fast-forward, never corrupts it
        self.buffered = 0
        #: fast-forward telemetry (for tests and perf analysis)
        self.ff_jumps = 0
        self.ff_slots_skipped = 0
        net.tick_driver = self._drive
        bus = net.events
        bus.subscribe(PacketEnqueued, self._on_packet_in)
        bus.subscribe(SlotDeliver, self._on_packet_out)
        bus.subscribe(PacketLost, self._on_packet_out)
        bus.subscribe(PacketOrphaned, self._on_packet_out)

    # ------------------------------------------------------------------
    def _on_packet_in(self, _ev) -> None:
        self.buffered += 1

    def _on_packet_out(self, _ev) -> None:
        self.buffered -= 1

    # ------------------------------------------------------------------
    # the tick driver
    # ------------------------------------------------------------------
    def _drive(self) -> None:
        """One agenda dispatch: run slot bodies inline until an agenda event
        (timer, traffic arrival, fault), the run window edge, or a budget
        boundary forces control back to the engine loop."""
        net = self.net
        eng = self.engine
        while True:
            t = eng.now
            if not net._tick_body(t):
                return  # network down: no further ticks (scalar behaviour)
            nxt = t + 1.0
            until = eng.run_until
            if (until is not None and not eng.run_budgeted
                    and not eng.stopped and self._quiescent(t)):
                nxt = self._fast_forward(t, until)
            if eng.stopped or eng.run_budgeted or (until is not None
                                                   and nxt > until):
                break
            pending = eng.peek()
            if pending is not None and pending <= nxt:
                break
            eng.advance_to(nxt)
        net._tick_handle = eng.schedule_at(nxt, self._drive, priority=5)

    # ------------------------------------------------------------------
    # quiescence
    # ------------------------------------------------------------------
    def _quiescent(self, t: float) -> bool:
        """True when every slot from ``t+1`` on is provably a no-op apart
        from SAT circulation over a fully alive, satisfied ring."""
        net = self.net
        if self.buffered != 0:
            return False
        # tick-observable machinery: per-tick hooks (backlog traffic,
        # mobility), RingTick subscribers (invariant checkers, probes) and
        # occupancy sampling all see every slot — cannot skip any
        if net._tick_hooks or net._ev_tick or net._ev_occupancy:
            return False
        if net.channel is not None or net.impairments is not None:
            return False
        cfg = net.config
        if cfg.rap_enabled or cfg.enforce_radio_links:
            return False
        if (net.network_down or net.rebuilding_until is not None
                or t < net.pause_until):
            return False
        sat = net.sat
        if (net._sat_lost or sat.kind != SAT.NORMAL or sat.rap_mutex
                or not sat.in_flight):
            return False
        if not float(t).is_integer():
            return False  # ticks live on the integer grid; be conservative
        stations = net.stations
        for sid in net.order:
            st = stations[sid]
            if not st.alive or st.leaving:
                return False
        return True

    # ------------------------------------------------------------------
    # analytic fast-forward
    # ------------------------------------------------------------------
    def _fast_forward(self, t: float, until: float) -> float:
        """Skip the quiescent slots after ``t``; return the next tick time.

        Slots ``t+1 .. t+T`` are provably no-ops except for SAT hand-offs,
        where ``T`` is bounded by the run window (ticks after ``until`` never
        run) and by the next live agenda event (a timer or traffic arrival
        may change the world, so no skipped slot may lie at or beyond it).
        The skipped hand-offs are synthesized exactly; the resume tick is
        ``t + T + 1`` — the same pending-tick position the scalar path
        would reach.
        """
        eng = self.engine
        net = self.net
        ti = int(t)
        T = int(math.floor(until)) - ti
        horizon_event = eng.peek()
        if horizon_event is not None:
            # the last whole tick strictly before the event
            T = min(T, int(math.ceil(horizon_event)) - 1 - ti)
        if T < 2:
            return t + 1.0  # nothing worth skipping

        sat = net.sat
        h = float(net.config.sat_hop_slots)
        a0 = sat.arrival_time   # hop j lands at a0 + j*h
        t_stop = float(ti + T)
        K = 0 if a0 > t_stop else int((t_stop - a0) // h) + 1

        self.ff_jumps += 1
        self.ff_slots_skipped += T - 1

        if K == 0:
            return t_stop + 1.0
        if (net._ev_sat_release or net._ev_sat_rotation
                or net._ev_sat_arrive):
            return self._replay_hops(a0, h, K, t_stop)
        self._bulk_hops(a0, h, K)
        return t_stop + 1.0

    def _replay_hops(self, a0: float, h: float, K: int,
                     t_stop: float) -> float:
        """Emitting path: run the real ``_sat_step`` at each hop time, so
        subscribers (the trace adapter above all) observe the identical
        event stream the scalar path would have produced."""
        eng = self.engine
        net = self.net
        sat = net.sat
        for j in range(K):
            tau = a0 + j * h
            eng.advance_to(tau)
            net._sat_step(tau)
            if (self.buffered or eng.stopped or net._sat_lost
                    or not sat.in_flight or sat.kind != SAT.NORMAL):
                # a subscriber perturbed the world mid-jump: resume normal
                # ticking at the next slot, exactly where scalar would tick
                return math.floor(eng.now) + 1.0
        return t_stop + 1.0

    def _bulk_hops(self, a0: float, h: float, K: int) -> None:
        """Closed-form path (no SAT subscribers): apply the net effect of
        ``K`` hand-offs with the columnar visit plan from
        :func:`~repro.kernel.columns.hop_plan`."""
        net = self.net
        eng = self.engine
        sat = net.sat
        order = net.order
        n = len(order)
        i1 = net._pos[sat.in_flight_to]
        s0 = sat.seq
        hops0 = sat.hops
        log = net.rotation_log
        round_rotation = float(n) * h

        offsets, counts, last_j = hop_plan(n, i1, K)
        last_tau = a0 + last_j * h
        last_seq = s0 + last_j

        # per-station net effect of every visit in the window
        visited = [(int(last_j[d]), int(d)) for d in range(n) if counts[d] > 0]
        for _, d in visited:
            sid = order[(i1 + d) % n]
            st = net.stations[sid]
            c = int(counts[d])
            first_tau = a0 + d * h
            if st.last_sat_arrival is not None:
                log.add(sid, first_tau - st.last_sat_arrival)
            for _ in range(c - 1):
                log.add(sid, round_rotation)
            st.sat_visits += c
            st.last_sat_arrival = float(last_tau[d])
            st.last_sat_departure = float(last_tau[d])
            st.last_sat_seq = int(last_seq[d])
            st.rt_pck = 0
            st.nrt_pck = 0
            st.as_pck = 0
            st.be_pck = 0

        # completed rounds: hops landing on order[0]
        first_round_hop = (n - i1) % n
        for j in range(first_round_hop, K, n):
            sat.rounds += 1
            log.mark_round(hops0 + j + 1)

        # each visited station's SAT_TIMER was restarted at every release;
        # only the final restart survives — rearm once, in release order,
        # at the exact deadline the scalar path would have left armed
        for _, d in sorted(visited):
            eng.advance_to(float(last_tau[d]))
            net.recovery.restart_timer(order[(i1 + d) % n])

        sat.hops = hops0 + K
        sat.seq = s0 + K
        net._sat_seq = s0 + K
        sat.at_station = None
        sat.in_flight_to = order[(i1 + K) % n]
        sat.arrival_time = a0 + (K - 1) * h + h
